"""Tests for the analysis tooling (capture, unused bits, saturation, layer errors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.capture import CapturingLayer, capture_layer_io, release_capture
from repro.analysis.layer_error import layer_output_errors, selection_layer_errors
from repro.analysis.reports import format_table
from repro.analysis.saturation import saturation_profiles
from repro.analysis.unused_bits import (
    bit_extraction_error_comparison,
    layer_unused_bit_profile,
    model_unused_bit_profiles,
)
from repro.quant.qmodel import iter_quantized_layers
from repro.tensor import Tensor, no_grad


class TestCapture:
    def test_capture_and_release(self, flexiq_runtime, calibration_batch):
        model = flexiq_runtime.model
        target = [name for name, _ in iter_quantized_layers(model)][1]
        original = model.get_submodule(target)
        wrappers = capture_layer_io(model, [target])
        assert isinstance(model.get_submodule(target), CapturingLayer)
        with no_grad():
            model(Tensor(calibration_batch[:4]))
        assert wrappers[target].last_input is not None
        assert wrappers[target].last_output is not None
        release_capture(model, wrappers)
        assert model.get_submodule(target) is original

    def test_wrapper_delegates_attributes(self, flexiq_runtime):
        model = flexiq_runtime.model
        target = [name for name, _ in iter_quantized_layers(model)][1]
        wrapper = CapturingLayer(model.get_submodule(target))
        assert wrapper.feature_channels == model.get_submodule(target).feature_channels


class TestUnusedBits:
    def test_profiles_for_all_layers(self, flexiq_runtime):
        profiles = model_unused_bit_profiles(flexiq_runtime.model)
        assert len(profiles) == 3
        for profile in profiles.values():
            hist = profile.histogram()
            assert sum(hist.values()) == pytest.approx(1.0, abs=1e-6)
            assert all(value >= 0 for value in hist.values())

    def test_layer_profile_shapes(self, flexiq_runtime):
        name, layer = iter_quantized_layers(flexiq_runtime.model)[1]
        profile = layer_unused_bit_profile(name, layer)
        assert profile.weight_unused.shape == (layer.feature_channels,)
        assert profile.act_unused.shape == (layer.feature_channels,)
        assert profile.fraction_with_unused() >= 0.0

    def test_layer_filter(self, flexiq_runtime):
        names = [name for name, _ in iter_quantized_layers(flexiq_runtime.model)]
        profiles = model_unused_bit_profiles(flexiq_runtime.model, layer_names=names[:1])
        assert set(profiles) == set(names[:1])

    def test_bit_extraction_error_comparison(self, flexiq_runtime):
        """Figure 1: FlexiQ's extraction error never exceeds naive lowering."""
        for name, layer in iter_quantized_layers(flexiq_runtime.model):
            errors = bit_extraction_error_comparison(layer, low_ratio=0.5)
            assert errors["flexiq"] <= errors["uniform"] + 1e-9
            assert errors["uniform"] >= 0


class TestSaturation:
    def test_profiles_computed_on_fresh_data(self, flexiq_runtime, mlp_dataset):
        profiles = saturation_profiles(
            flexiq_runtime.model, mlp_dataset.test_images[:32]
        )
        assert len(profiles) == 3
        for profile in profiles.values():
            assert profile.saturated_fraction.shape == (profile.num_channels,)
            assert 0.0 <= profile.fraction_saturated_channels() <= 1.0
            assert (profile.saturation_depth() >= 0).all()

    def test_calibration_data_rarely_saturates(self, flexiq_runtime, calibration_batch):
        """Static windows were derived from this data, so saturation is minimal."""
        profiles = saturation_profiles(flexiq_runtime.model, calibration_batch)
        mean_sat = np.mean(
            [profile.saturated_fraction.mean() for profile in profiles.values()]
        )
        assert mean_sat < 0.1

    def test_model_restored_after_analysis(self, flexiq_runtime, mlp_dataset):
        before = [name for name, _ in iter_quantized_layers(flexiq_runtime.model)]
        saturation_profiles(flexiq_runtime.model, mlp_dataset.test_images[:16])
        after = [name for name, _ in iter_quantized_layers(flexiq_runtime.model)]
        assert before == after


class TestLayerErrors:
    def test_figure14_shape_and_ordering(self, flexiq_runtime, mlp_dataset):
        errors = layer_output_errors(
            flexiq_runtime, mlp_dataset.test_images[:16], ratios=(0.5, 1.0)
        )
        assert len(errors) >= 1
        for per_layer in errors.values():
            assert {"int4", "flexiq_50", "flexiq_100"} <= set(per_layer)
            # Errors are normalised and finite.
            assert all(np.isfinite(v) and v >= 0 for v in per_layer.values())
            # More 4-bit channels -> more error (weak monotonicity).
            assert per_layer["flexiq_50"] <= per_layer["flexiq_100"] + 0.05
            # FlexiQ at 100% does not exceed uniform INT4 by a wide margin.
            assert per_layer["flexiq_100"] <= per_layer["int4"] * 1.5 + 0.05

    def test_selection_layer_errors_structure(self, trained_mlp, calibration_batch, mlp_dataset):
        from repro.core import FlexiQConfig, FlexiQPipeline
        from repro.core.selection import SelectionConfig

        runtimes = {}
        for algorithm in ("greedy", "random"):
            config = FlexiQConfig(
                ratios=(0.5, 1.0), group_size=4, selection=algorithm,
                selection_config=SelectionConfig(group_size=4),
            )
            runtimes[algorithm] = FlexiQPipeline(trained_mlp, calibration_batch, config).run()
        table = selection_layer_errors(
            runtimes, mlp_dataset.test_images[:16], ratios=(0.5, 1.0)
        )
        assert len(table) >= 1
        for per_layer in table.values():
            assert set(per_layer) == {"greedy", "random"}
            for per_algorithm in per_layer.values():
                assert set(per_algorithm) == {0.5, 1.0}


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(
            ["model", "acc"], [["resnet18", 71.234], ["vit", 80.1]], precision=1,
            title="Table X",
        )
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "model" in lines[1] and "acc" in lines[1]
        assert "71.2" in text and "80.1" in text

    def test_format_table_handles_ints_and_strings(self):
        text = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
        assert " 1 |  x" in text or "1 |  x" in text

"""Seeded chaos smoke test (its own CI matrix entry).

A randomized-but-reproducible fault plane: for a handful of fixed seeds, a
random :class:`~repro.serving.resilience.FaultSchedule` (crashes, slowdowns
and recoveries at random window-aligned-ish instants, never sinking more
than ``num_servers - 2`` servers at once) is injected into a cluster
serving a diurnal trace.  The test asserts **invariants only** — it makes
no claim about latency or SLOs, which are covered by the deterministic
suites:

* conservation: every admitted request ends served or dropped, exactly
  once, with batch records covering exactly the served population;
* determinism: re-running the identical scenario reproduces the latency
  vector bit for bit;
* the merged telemetry timeline is time-ordered.

The generator lives here (not in the library): it maintains per-server
health so it only emits legal schedules (no recover-for-healthy-server,
no same-instant conflicts), exercising `FaultSchedule` validation with
every draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.traces import DiurnalTrace
from repro.serving import (
    BatchExecution,
    BatchingConfig,
    ClusterEngine,
    FaultEvent,
    FaultSchedule,
    RequeueAtHeadMigration,
    ServerSpec,
    StepCheckpoint,
)

NUM_SERVERS = 4
DURATION = 4.0
WINDOW = 0.25
SEEDS = (0, 1, 2, 3, 4)


class FixedExecutor:
    """Deterministic executor: every batch takes exactly ``seconds``."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)

    def execute(self, batch, mode, ratio):
        return BatchExecution(service_time=self.seconds)


def random_schedule(seed: int) -> FaultSchedule:
    """A legal random fault script: tracked health, bounded blast radius.

    At most ``NUM_SERVERS - 2`` servers are ever failed/degraded at once
    (the cluster always keeps two healthy servers), event instants are
    unique per server, and recoveries only target servers with an
    outstanding fault.
    """
    rng = np.random.default_rng(seed)
    healthy = set(range(NUM_SERVERS))
    faulted: set = set()
    used_instants: set = set()
    events = []
    time = 0.0
    while True:
        time += float(rng.uniform(0.2, 0.8))
        if time >= DURATION:
            break
        time = round(time, 3)
        if time in used_instants:
            continue
        used_instants.add(time)
        recover_ok = bool(faulted)
        sink_ok = len(faulted) < NUM_SERVERS - 2
        roll = rng.random()
        if recover_ok and (roll < 0.4 or not sink_ok):
            server = int(rng.choice(sorted(faulted)))
            events.append(FaultEvent(time=time, server=server, kind="recover"))
            faulted.discard(server)
            healthy.add(server)
        elif sink_ok:
            server = int(rng.choice(sorted(healthy)))
            if rng.random() < 0.5:
                events.append(FaultEvent(time=time, server=server, kind="crash"))
            else:
                events.append(
                    FaultEvent(
                        time=time,
                        server=server,
                        kind="slowdown",
                        factor=float(rng.uniform(2.0, 8.0)),
                    )
                )
            healthy.discard(server)
            faulted.add(server)
    return FaultSchedule(events)


def run_chaos(seed: int, tracer=None):
    specs = [
        ServerSpec(
            name=f"g{i}",
            speed=1000.0,
            executor=FixedExecutor(0.02),
            zone="AB"[i % 2],
        )
        for i in range(NUM_SERVERS)
    ]
    cluster = ClusterEngine(
        specs,
        BatchingConfig(max_batch=16),
        placer="spread",
        fault_schedule=random_schedule(seed),
        migration=RequeueAtHeadMigration(delay=0.01),
        checkpoint=StepCheckpoint(steps=4),
        window=WINDOW,
        tracer=tracer,
    )
    cluster.register("m", mode="int8")
    trace = DiurnalTrace(
        night_rate=200.0,
        peak_rate=800.0,
        duration=DURATION,
        period=DURATION,
        num_phases=16,
        seed=seed,
    ).generate()
    return cluster.run(trace=trace, record_responses=True), trace


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants(seed):
    outcome, trace = run_chaos(seed)
    result = outcome.result
    admitted = len(trace.arrival_times)
    served = result.latencies.size
    # No request lost, none served twice.
    assert served + result.dropped == admitted
    assert sum(record.size for record in result.batch_records) == served
    assert len(result.responses) == admitted
    assert all(response is not None for response in result.responses)
    assert sum(1 for r in result.responses if not r.dropped) == served
    assert sum(1 for r in result.responses if r.dropped) == result.dropped
    # The fault script really ran.
    assert outcome.fault_events
    # The merged timeline is deterministic and time-ordered.
    times = [event.time for event in outcome.timeline()]
    assert times == sorted(times)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_chaos_is_reproducible(seed):
    first, _ = run_chaos(seed)
    second, _ = run_chaos(seed)
    np.testing.assert_array_equal(first.result.latencies, second.result.latencies)
    assert first.result.dropped == second.result.dropped
    assert [
        (e.time, e.server, e.kind) for e in first.fault_events
    ] == [(e.time, e.server, e.kind) for e in second.fault_events]


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_traces_conserve_requests(seed):
    """Sampled traces conserve requests under randomized fault schedules.

    Every traced request must end in exactly one live terminal span
    (served or dropped) even across preemptions, migrations and
    checkpointed re-execution — preemption retracts the optimistic
    terminal and the re-serve (or drop) writes the replacement.  The
    traced run must also be byte-identical in outcome to the untraced
    one: tracing observes, it never perturbs.
    """
    from repro.obs import Tracer

    tracer = Tracer(sample_rate=0.25)
    outcome, trace = run_chaos(seed, tracer=tracer)
    untraced, _ = run_chaos(seed)
    np.testing.assert_array_equal(
        outcome.result.request_latencies, untraced.result.request_latencies
    )

    terminals = tracer.terminal_requests()
    assert terminals, "sampling at 25% must trace someone"
    assert all(count == 1 for count in terminals.values())
    # Terminal kinds agree with the engine's verdict per request.
    columns = tracer.spans()
    responses = outcome.result.responses
    from repro.obs import SPAN_DROPPED, SPAN_SERVED

    for kind, slot in zip(columns["kind"], columns["request"]):
        if kind == SPAN_SERVED:
            assert not responses[int(slot)].dropped
        elif kind == SPAN_DROPPED:
            assert responses[int(slot)].dropped
    # Migration hops in the trace match the engine's migration count:
    # every successful requeue leaves exactly one migrate/retry instant.
    counts = tracer.span_counts()
    assert counts["migrate"] + counts["retry"] == outcome.result.migrated


def test_generator_respects_blast_radius():
    for seed in SEEDS:
        schedule = random_schedule(seed)
        down: set = set()
        for event in schedule:
            if event.kind == "recover":
                down.discard(event.server)
            else:
                down.add(event.server)
            assert len(down) <= NUM_SERVERS - 2

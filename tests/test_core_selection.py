"""Tests for channel scoring and the selection algorithms (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scoring import ChannelScore, estimate_channel_scores, score_layer
from repro.core.selection import (
    ChannelSelection,
    SelectionConfig,
    build_layer_groups,
    evolutionary_selection,
    greedy_selection,
    random_selection,
)


def make_scores(layer_channels, seed=0):
    """Synthetic per-layer channel scores."""
    rng = np.random.default_rng(seed)
    scores = {}
    for name, channels in layer_channels.items():
        values = rng.uniform(0.1, 10.0, size=channels)
        scores[name] = ChannelScore(
            layer_name=name, scores=values,
            weight_range=values, act_range=np.ones(channels),
        )
    return scores


LAYERS = {"layer_a": 16, "layer_b": 32, "layer_c": 8}


class TestChannelScore:
    def test_group_scores_sum(self):
        score = ChannelScore("x", np.arange(8, dtype=float), np.ones(8), np.ones(8))
        np.testing.assert_allclose(score.group_scores(4), [6.0, 22.0])

    def test_group_scores_indivisible_raises(self):
        score = ChannelScore("x", np.ones(6), np.ones(6), np.ones(6))
        with pytest.raises(ValueError):
            score.group_scores(4)

    def test_ranked_channels(self):
        score = ChannelScore("x", np.array([3.0, 1.0, 2.0]), np.ones(3), np.ones(3))
        np.testing.assert_array_equal(score.ranked_channels(), [1, 2, 0])

    def test_score_layer_uses_range_product(self, flexiq_runtime):
        name, layer = flexiq_runtime.flexiq_layers()[1]
        score = score_layer(name, layer)
        assert score.num_channels == layer.feature_channels
        expected = score.weight_range * score.act_range
        np.testing.assert_allclose(score.scores, expected)

    def test_estimate_channel_scores_requires_calibration(self):
        from repro.nn.layers import Linear
        from repro.nn.module import Sequential
        from repro.quant.qmodel import quantize_model

        model = Sequential(Linear(8, 8), Linear(8, 8), Linear(8, 4))
        quantized = quantize_model(model, 8)  # not calibrated
        with pytest.raises(RuntimeError):
            estimate_channel_scores(quantized)


class TestLayerGroups:
    def test_group_sizes_with_remainder(self):
        groups = build_layer_groups(make_scores({"x": 10}), group_size=4)
        np.testing.assert_array_equal(groups["x"].group_sizes, [4, 4, 2])
        assert groups["x"].num_groups == 3

    def test_group_scores_shape(self):
        groups = build_layer_groups(make_scores(LAYERS), group_size=4)
        assert groups["layer_b"].group_scores.shape == (8,)


class TestGreedyAndRandom:
    def test_greedy_hits_target_ratio(self):
        scores = make_scores(LAYERS)
        for ratio in (0.25, 0.5, 0.75, 1.0):
            selection = greedy_selection(scores, ratio, SelectionConfig(group_size=4))
            assert selection.achieved_ratio() == pytest.approx(ratio, abs=0.08)

    def test_greedy_prefers_low_scores(self):
        scores = make_scores({"only": 16}, seed=3)
        selection = greedy_selection(scores, 0.5, SelectionConfig(group_size=4))
        groups = selection.layers["only"]
        chosen = selection.group_masks["only"]
        chosen_scores = groups.group_scores[chosen]
        rejected_scores = groups.group_scores[~chosen]
        assert chosen_scores.max() <= rejected_scores.min() + 1e-9

    def test_random_hits_target_ratio(self):
        scores = make_scores(LAYERS)
        selection = random_selection(scores, 0.5, SelectionConfig(group_size=4), seed=1)
        assert selection.achieved_ratio() == pytest.approx(0.5, abs=0.08)

    def test_random_differs_across_seeds(self):
        scores = make_scores(LAYERS)
        a = random_selection(scores, 0.5, SelectionConfig(group_size=4), seed=1)
        b = random_selection(scores, 0.5, SelectionConfig(group_size=4), seed=2)
        assert any(
            not np.array_equal(a.group_masks[name], b.group_masks[name]) for name in LAYERS
        )

    def test_nested_base_respected(self):
        scores = make_scores(LAYERS)
        low = greedy_selection(scores, 0.25, SelectionConfig(group_size=4))
        high = greedy_selection(scores, 0.75, SelectionConfig(group_size=4), base=low)
        assert high.is_superset_of(low)
        assert not low.is_superset_of(high)

    def test_fixed_high_channels_never_selected(self):
        scores = make_scores({"only": 16}, seed=5)
        groups = build_layer_groups(scores, 4)
        fixed = {"only": np.array([True, False, False, False])}
        selection = greedy_selection(
            scores, 0.75, SelectionConfig(group_size=4), fixed_high=fixed
        )
        assert not selection.group_masks["only"][0]


class TestChannelSelectionStructure:
    def test_channel_mask_expansion(self):
        scores = make_scores({"x": 8})
        selection = greedy_selection(scores, 0.5, SelectionConfig(group_size=4))
        mask = selection.channel_mask("x")
        assert mask.shape == (8,)
        assert mask.sum() == 4

    def test_layer_ratio(self):
        scores = make_scores(LAYERS)
        selection = greedy_selection(scores, 1.0, SelectionConfig(group_size=4))
        for name in LAYERS:
            assert selection.layer_ratio(name) == pytest.approx(1.0)

    def test_copy_is_independent(self):
        scores = make_scores({"x": 8})
        selection = greedy_selection(scores, 0.5, SelectionConfig(group_size=4))
        clone = selection.copy()
        clone.group_masks["x"][:] = True
        assert selection.group_masks["x"].sum() < clone.group_masks["x"].sum()


class TestEvolutionary:
    @staticmethod
    def _oracle_fitness(target_mask_by_layer):
        """Fitness = Hamming distance to a hidden 'oracle' assignment."""

        def fitness(selection: ChannelSelection) -> float:
            distance = 0.0
            for name, target in target_mask_by_layer.items():
                distance += float(np.sum(selection.group_masks[name] != target))
            return distance

        return fitness

    def test_improves_over_generations_and_beats_random(self):
        scores = make_scores(LAYERS, seed=7)
        groups = build_layer_groups(scores, 4)
        rng = np.random.default_rng(0)
        # Oracle: half the groups of every layer, chosen arbitrarily.
        oracle = {
            name: rng.permutation(
                np.repeat([True, False], [layer.num_groups // 2,
                                          layer.num_groups - layer.num_groups // 2])
            )
            for name, layer in groups.items()
        }
        fitness = self._oracle_fitness(oracle)
        config = SelectionConfig(group_size=4, population_size=12, generations=10, seed=3)
        best, history = evolutionary_selection(
            scores, 0.5, fitness, config=config, return_history=True
        )
        random_sel = random_selection(scores, 0.5, config, seed=11)
        assert history[-1] <= history[0]
        assert fitness(best) <= fitness(random_sel)

    def test_result_hits_target_and_is_nested(self):
        scores = make_scores(LAYERS, seed=9)
        config = SelectionConfig(group_size=4, population_size=8, generations=4, seed=1)
        fitness = lambda s: float(sum(mask.sum() for mask in s.group_masks.values()))
        base = greedy_selection(scores, 0.25, config)
        best = evolutionary_selection(scores, 0.75, fitness, config=config, base=base)
        assert best.achieved_ratio() == pytest.approx(0.75, abs=0.08)
        assert best.is_superset_of(base)

    def test_respects_fixed_high(self):
        scores = make_scores({"only": 32}, seed=2)
        fixed = {"only": np.zeros(8, dtype=bool)}
        fixed["only"][:2] = True
        config = SelectionConfig(group_size=4, population_size=6, generations=3, seed=0)
        best = evolutionary_selection(
            scores, 0.5, lambda s: 0.0, config=config, fixed_high=fixed
        )
        assert not best.group_masks["only"][:2].any()


class TestSelectionProperties:
    @given(
        ratio=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_selection_ratio_and_bounds(self, ratio, seed):
        scores = make_scores(LAYERS, seed=seed)
        selection = random_selection(
            scores, ratio, SelectionConfig(group_size=4), seed=seed
        )
        achieved = selection.achieved_ratio()
        assert 0.0 <= achieved <= 1.0
        assert achieved == pytest.approx(ratio, abs=0.1)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_nestedness_chain(self, seed):
        scores = make_scores(LAYERS, seed=seed)
        config = SelectionConfig(group_size=4)
        previous = None
        for ratio in (0.25, 0.5, 0.75, 1.0):
            current = greedy_selection(scores, ratio, config, base=previous)
            if previous is not None:
                assert current.is_superset_of(previous)
            previous = current

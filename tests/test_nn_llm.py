"""Tests for the tiny decoder LM used by the Section 8.10 case study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.text import SyntheticTextCorpus, TextCorpusConfig, build_text_corpus
from repro.nn.llm import TinyDecoderLM, causal_mask, tiny_lm
from repro.tensor import no_grad
from repro.train.loop import train_language_model


@pytest.fixture(scope="module")
def lm():
    return TinyDecoderLM(vocab_size=32, max_seq_len=16, embed_dim=16, depth=2,
                         num_heads=2, rng=np.random.default_rng(0))


class TestCausalMask:
    def test_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert mask[0, 1] < -1e8
        assert mask[2, 1] == 0.0

    def test_causality_of_logits(self, lm):
        ids = np.random.default_rng(0).integers(0, 32, size=(1, 10))
        with no_grad():
            base = lm(ids).data.copy()
        changed = ids.copy()
        changed[0, 9] = (changed[0, 9] + 1) % 32
        with no_grad():
            out = lm(changed).data
        np.testing.assert_allclose(base[0, :9], out[0, :9], atol=1e-5)


class TestForwardAndLoss:
    def test_logit_shape(self, lm):
        ids = np.zeros((3, 12), dtype=np.int64)
        assert lm(ids).shape == (3, 12, 32)

    def test_sequence_too_long_raises(self, lm):
        with pytest.raises(ValueError):
            lm(np.zeros((1, 99), dtype=np.int64))

    def test_loss_close_to_uniform_at_init(self, lm):
        ids = np.random.default_rng(1).integers(0, 32, size=(4, 12))
        loss = lm.loss(ids).item()
        assert abs(loss - np.log(32)) < 1.0

    def test_perplexity_positive_and_bounded_at_init(self, lm):
        ids = np.random.default_rng(2).integers(0, 32, size=(8, 12))
        ppl = lm.perplexity(ids)
        assert 1.0 < ppl < 32 * 3


class TestTrainingOnCorpus:
    def test_training_reduces_perplexity(self):
        corpus = SyntheticTextCorpus(
            TextCorpusConfig(vocab_size=32, train_tokens=4000, test_tokens=800,
                             seq_len=16, seed=3)
        )
        model = TinyDecoderLM(vocab_size=32, max_seq_len=16, embed_dim=16, depth=2,
                              num_heads=2, rng=np.random.default_rng(0))
        test = corpus.test_sequences()
        before = model.perplexity(test)
        batches = corpus.train_batches(batch_size=16, rng=np.random.default_rng(0))
        losses = train_language_model(model, batches, epochs=3, learning_rate=0.15)
        after = model.perplexity(test)
        assert after < before * 0.9
        assert losses[-1] < losses[0]

    def test_builder(self):
        model = tiny_lm(vocab_size=64, rng=np.random.default_rng(0))
        assert model.vocab_size == 64
        assert build_text_corpus().config.vocab_size == 64

"""Tests for the Module/Parameter container machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


class Block(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(4, 4, rng=np.random.default_rng(0))
        self.act = ReLU()

    def forward(self, x):
        return self.act(self.fc(x))


class Net(Module):
    def __init__(self):
        super().__init__()
        self.blocks = ModuleList([Block(), Block()])
        self.head = Linear(4, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        for block in self.blocks:
            x = block(x)
        return self.head(x) * self.scale


class TestRegistration:
    def test_named_parameters_collects_nested(self):
        net = Net()
        names = dict(net.named_parameters())
        assert "blocks.0.fc.weight" in names
        assert "head.bias" in names
        assert "scale" in names

    def test_parameter_count(self):
        net = Net()
        expected = 2 * (4 * 4 + 4) + (4 * 2 + 2) + 1
        assert net.num_parameters() == expected

    def test_named_modules_paths(self):
        net = Net()
        names = [name for name, _ in net.named_modules()]
        assert "" in names
        assert "blocks.1.fc" in names

    def test_reassigning_attribute_clears_registration(self):
        net = Net()
        net.head = Linear(4, 3, rng=np.random.default_rng(2))
        assert net.get_submodule("head").out_features == 3
        net.head = None
        assert "head" not in dict(net.named_children())


class TestSubmoduleAccess:
    def test_get_submodule(self):
        net = Net()
        assert isinstance(net.get_submodule("blocks.0.fc"), Linear)

    def test_get_submodule_missing_raises(self):
        with pytest.raises(KeyError):
            Net().get_submodule("blocks.7")

    def test_set_submodule_replaces_and_forward_uses_it(self):
        net = Net()
        replacement = Linear(4, 4, rng=np.random.default_rng(3))
        replacement.weight.data[:] = 0.0
        replacement.bias.data[:] = 1.0
        net.set_submodule("blocks.1.fc", replacement)
        out = net(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert net.get_submodule("blocks.1.fc") is replacement
        assert out.shape == (1, 2)

    def test_set_submodule_inside_module_list(self):
        net = Net()
        new_block = Block()
        net.set_submodule("blocks.0", new_block)
        assert net.blocks[0] is new_block
        assert list(net.blocks)[0] is new_block

    def test_set_submodule_missing_raises(self):
        with pytest.raises(KeyError):
            Net().set_submodule("does.not.exist", Block())


class TestStateDict:
    def test_roundtrip(self):
        net = Net()
        state = net.state_dict()
        other = Net()
        for param in other.parameters():
            param.data = param.data + 1.0
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        np.testing.assert_allclose(net(x).data, other(x).data, atol=1e-6)

    def test_includes_buffers(self):
        conv = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(0)))
        from repro.nn.layers import BatchNorm2d

        model = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(0)), BatchNorm2d(4))
        state = model.state_dict()
        assert any("running_mean" in key for key in state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["head.weight"] = np.zeros((5, 5), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_unknown_key_raises(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)


class TestModesAndGrad:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert all(not module.training for _, module in net.named_modules())
        net.train()
        assert all(module.training for _, module in net.named_modules())

    def test_zero_grad(self):
        net = Net()
        out = net(Tensor(np.ones((1, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(3, 5, rng=np.random.default_rng(0)), ReLU())
        out = seq(Tensor(np.ones((2, 3), dtype=np.float32)))
        assert out.shape == (2, 5)
        assert (out.data >= 0).all()

    def test_sequential_len_and_getitem(self):
        seq = Sequential(ReLU(), ReLU(), ReLU())
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)

    def test_module_list_append_and_iterate(self):
        items = ModuleList()
        items.append(ReLU())
        items.append(ReLU())
        assert len(items) == 2
        assert all(isinstance(m, ReLU) for m in items)

    def test_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

"""Tests for the iteration-level generation subsystem (continuous batching).

Covers the PR 7 tentpole end to end: the prefill/decode cost split on
:class:`ServiceTimeModel`, the :class:`IterationScheduler` loop (join/retire
at iteration boundaries, admission policies, starvation guard), the
run-to-completion baseline and the headline continuous-beats-static claim,
mid-sequence precision switching through the generation policy context,
streaming token telemetry (tokens/sec + TTFT windows), preemption of
in-flight sequences with generated-token progress (composing with
``StepCheckpoint`` salvage and transfer pricing), real execution through
``RuntimeExecutor.execute_step``, and the ``streaming_summary`` edge cases
(prefill-only, single-token, all-dropped, empty percentile lists).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.traces import PoissonTrace
from repro.serving import (
    DecodePressureRatioPolicy,
    FcfsAdmission,
    IterationScheduler,
    ModeledGenerationBackend,
    PolicyContext,
    PrefillPriorityAdmission,
    PriorityScheduler,
    Request,
    RuntimeExecutor,
    RuntimeGenerationBackend,
    ServiceTimeModel,
    StepCheckpoint,
    TelemetryBus,
    TokenBudgetAdmission,
    requests_from_trace,
    run_to_completion,
    streaming_summary,
)


@pytest.fixture(scope="module")
def gen_model():
    return ServiceTimeModel(
        "vit_base",
        gpu="a6000",
        anchor_batches=(1, 8, 16, 32),
        decode_token_fraction=0.05,
    )


@pytest.fixture(scope="module")
def backend(gen_model):
    return ModeledGenerationBackend(gen_model)


def gen_requests(profiles, model="m"):
    """Requests from (arrival, prompt_tokens, max_new_tokens) triples."""
    return [
        Request(
            request_id=i,
            model=model,
            arrival_time=float(arrival),
            prefill_tokens=int(prompt),
            max_new_tokens=int(new),
        )
        for i, (arrival, prompt, new) in enumerate(profiles)
    ]


def mixed_trace(rate=120, duration=1.5, seed=7):
    trace = PoissonTrace(rate, duration=duration, seed=seed).generate()
    return requests_from_trace(
        trace,
        model="m",
        prefill_tokens=[32, 512, 96, 256],
        max_new_tokens=[96, 8, 160, 16],
    )


# ----------------------------------------------------------------------
# Prefill/decode cost split on the service-time model
# ----------------------------------------------------------------------
class TestPrefillDecodeSplit:
    def test_prefill_scales_with_prompt_tokens(self, gen_model):
        one_shot = gen_model.batch_latency(1, "int8")
        assert gen_model.prefill_latency(0, "int8") == 0.0
        # tokens_per_sample tokens cost exactly one batch-1 forward.
        assert gen_model.prefill_latency(64, "int8") == one_shot
        assert gen_model.prefill_latency(1, "int8") == one_shot  # ceil
        assert gen_model.prefill_latency(512, "int8") == gen_model.batch_latency(
            8, "int8"
        )
        # Partial chunks round up, so 65 tokens pay the 2-sample forward.
        assert gen_model.prefill_latency(65, "int8") == gen_model.batch_latency(
            2, "int8"
        )

    def test_decode_scales_with_width(self, gen_model):
        assert gen_model.decode_latency(0, "int8") == 0.0
        for width in (1, 4, 8):
            assert gen_model.decode_latency(width, "int8") == pytest.approx(
                gen_model.batch_latency(width, "int8") * 0.05
            )
        # A decode step is much cheaper than the equally wide one-shot.
        assert gen_model.decode_latency(8, "int8") < gen_model.batch_latency(
            8, "int8"
        )

    def test_decode_fraction_defaults_to_token_share(self):
        model = ServiceTimeModel(
            "vit_base", gpu="a6000", prefill_tokens_per_sample=32
        )
        assert model.decode_token_fraction == pytest.approx(1.0 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeModel("vit_base", prefill_tokens_per_sample=0)
        with pytest.raises(ValueError):
            ServiceTimeModel("vit_base", decode_token_fraction=0.0)


# ----------------------------------------------------------------------
# The iteration loop
# ----------------------------------------------------------------------
class TestIterationScheduler:
    def test_single_sequence_token_stream(self, backend, gen_model):
        requests = gen_requests([(0.0, 64, 5)])
        result = IterationScheduler(backend, max_batch=4).run(requests)
        (response,) = result.responses
        assert response.tokens == 5
        assert response.finished
        # First token lands at the prefill's end; the rest one decode
        # step apart (width 1 throughout).
        prefill = gen_model.prefill_latency(64, "flexiq", 0.0)
        step = gen_model.decode_latency(1, "flexiq", 0.0)
        assert response.ttft == pytest.approx(prefill)
        assert response.token_times[0] == pytest.approx(prefill)
        gaps = np.diff(response.token_times)
        assert gaps == pytest.approx([step] * 4)
        assert response.finish_time == pytest.approx(result.duration)

    def test_prefill_only_request_has_zero_decode_steps(self, backend):
        requests = gen_requests([(0.0, 128, 1)])
        result = IterationScheduler(backend).run(requests)
        (response,) = result.responses
        assert response.tokens == 1
        assert response.finished
        assert len(result.iterations) == 1
        assert result.iterations[0].prefills == 1
        assert result.iterations[0].decode_width == 0

    def test_finished_leave_and_queued_join_at_boundaries(self, backend):
        # A short sequence retires mid-run and a late arrival takes its
        # place while the long sequence keeps decoding — the continuous-
        # batching property itself.
        requests = gen_requests(
            [(0.0, 64, 3), (0.0, 64, 200), (0.005, 64, 3)]
        )
        scheduler = IterationScheduler(backend, max_batch=2)
        result = scheduler.run(requests)
        assert all(r.finished for r in result.responses)
        late = result.responses[2]
        long = result.responses[1]
        # The late arrival finished long before the long sequence did:
        # it joined a running batch instead of waiting behind it.
        assert late.finish_time < long.finish_time
        widths = [record.decode_width for record in result.iterations]
        assert max(widths) == 2
        assert 1 in widths  # the batch really shrank when members left

    def test_token_conservation_and_determinism(self, backend):
        requests = mixed_trace(rate=80, duration=1.0)
        expected = sum(r.max_new_tokens for r in requests)
        first = IterationScheduler(backend, max_batch=8).run(requests)
        second = IterationScheduler(backend, max_batch=8).run(requests)
        assert first.tokens == expected
        assert all(r.finished for r in first.responses)
        for a, b in zip(first.responses, second.responses):
            assert a.token_times == b.token_times

    def test_max_new_tokens_zero_rejected(self, backend):
        with pytest.raises(ValueError, match="max_new_tokens"):
            IterationScheduler(backend).run(gen_requests([(0.0, 64, 0)]))

    def test_run_to_completion_pads_full_width(self, backend, gen_model):
        # Static batching decodes at full width until the longest member
        # finishes; the 2-token member's slot is padded for the rest.
        requests = gen_requests([(0.0, 64, 2), (0.0, 64, 10)])
        result = run_to_completion(requests, backend, max_batch=2)
        (record,) = result.iterations
        step2 = gen_model.decode_latency(2, "flexiq", 0.0)
        prefill = gen_model.prefill_latency(64, "flexiq", 0.0)
        # 2 prefills + 9 full-width decode steps, padding included.
        assert record.finish - record.start == pytest.approx(
            2 * prefill + 9 * step2
        )
        continuous = IterationScheduler(backend, max_batch=2).run(requests)
        assert continuous.duration < result.duration

    def test_continuous_beats_static_on_both_axes(self, backend):
        # The headline claim, on the mixed trace shape of the example.
        requests = mixed_trace()
        static = run_to_completion(requests, backend, max_batch=8)
        continuous = IterationScheduler(backend, max_batch=8).run(requests)
        static_stream = static.streaming((99,))
        continuous_stream = continuous.streaming((99,))
        assert continuous_stream["ttft_p99"] < static_stream["ttft_p99"]
        assert (
            continuous_stream["tokens_per_sec"] > static_stream["tokens_per_sec"]
        )
        assert continuous.tokens == static.tokens


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class TestAdmission:
    def test_fcfs_respects_scheduler_discipline(self, backend):
        # With a priority scheduler, the high-priority late sequence is
        # admitted ahead of earlier low-priority ones (admission_key =
        # discipline key + arrival + slot — the engine's queue ordering).
        requests = [
            Request(0.0, "m", request_id=0, priority=0, prefill_tokens=64, max_new_tokens=4),
            Request(0.0, "m", request_id=1, priority=0, prefill_tokens=64, max_new_tokens=4),
            Request(0.0, "m", request_id=2, priority=5, prefill_tokens=64, max_new_tokens=4),
        ]
        result = IterationScheduler(
            backend, max_batch=1, scheduler=PriorityScheduler()
        ).run(requests)
        by_id = {r.request_id: r for r in result.responses}
        assert by_id[2].ttft < by_id[0].ttft < by_id[1].ttft

    def test_prefill_priority_admits_short_prompt_first(self, backend):
        requests = gen_requests([(0.0, 512, 4), (0.0, 32, 4)])
        fcfs = IterationScheduler(
            backend, max_batch=1, admission=FcfsAdmission()
        ).run(requests)
        spf = IterationScheduler(
            backend, max_batch=1, admission=PrefillPriorityAdmission()
        ).run(requests)
        # FCFS serves the long prompt first; prefill-priority flips it.
        assert fcfs.responses[0].ttft < fcfs.responses[1].ttft
        assert spf.responses[1].ttft < spf.responses[0].ttft
        # The short prompt's first token arrives far earlier under SPF.
        assert spf.responses[1].ttft < fcfs.responses[1].ttft

    def test_token_budget_caps_batch_footprint(self, backend):
        # Budget fits one 64-token sequence (+ its generated tokens) but
        # not two, so the second waits for the first to retire even
        # though a batch slot is free.
        requests = gen_requests([(0.0, 64, 4), (0.0, 64, 4)])
        result = IterationScheduler(
            backend, max_batch=8, admission=TokenBudgetAdmission(100)
        ).run(requests)
        assert all(r.finished for r in result.responses)
        assert max(record.decode_width for record in result.iterations) == 1
        first, second = result.responses
        assert second.token_times[0] > first.finish_time

    def test_token_budget_force_admits_oversized_prompt(self, backend):
        # A prompt larger than the whole budget still serves (alone): the
        # starvation guard admits the queue head into an empty batch.
        requests = gen_requests([(0.0, 512, 2)])
        result = IterationScheduler(
            backend, admission=TokenBudgetAdmission(100)
        ).run(requests)
        assert result.responses[0].finished

    def test_token_budget_composes_with_prefill_priority(self, backend):
        policy = TokenBudgetAdmission(200, within=PrefillPriorityAdmission())
        requests = gen_requests([(0.0, 150, 4), (0.0, 32, 4)])
        result = IterationScheduler(
            backend, max_batch=8, admission=policy
        ).run(requests)
        by_id = {r.request_id: r for r in result.responses}
        # The short prompt is ordered first by the inner policy and fits;
        # the 150-token one would blow the budget alongside it and waits.
        assert by_id[1].ttft < by_id[0].ttft

    def test_token_budget_validation(self):
        with pytest.raises(ValueError):
            TokenBudgetAdmission(0)

    def test_bad_admission_policy_rejected(self, backend):
        class Overcommit:
            def admit(self, waiting, running, slots):
                return list(waiting)  # ignores the slot cap

        requests = gen_requests([(0.0, 64, 2)] * 3)
        with pytest.raises(ValueError, match="admitted"):
            IterationScheduler(
                backend, max_batch=1, admission=Overcommit()
            ).run(requests)


# ----------------------------------------------------------------------
# Mid-sequence precision switching
# ----------------------------------------------------------------------
class TestMidSequenceRatio:
    def test_decode_pressure_switches_mid_sequence(self, backend):
        requests = mixed_trace()
        policy = DecodePressureRatioPolicy(
            pressure_threshold=900, waiting_weight=64.0
        )
        result = IterationScheduler(
            backend, max_batch=8, policy=policy
        ).run(requests)
        assert policy.switches > 0
        ratios = [record.ratio for record in result.iterations]
        assert set(ratios) == {0.0, 1.0}
        # Mid-sequence, literally: some response's tokens were generated
        # under both precisions (its lifetime spans a ratio change).
        spans = {
            (record.start, record.finish): record.ratio
            for record in result.iterations
        }

        def ratios_of(response):
            seen = set()
            for t in response.token_times:
                for (start, finish), ratio in spans.items():
                    if start < t <= finish or t == start == finish:
                        seen.add(ratio)
                        break
            return seen

        assert any(
            len(ratios_of(response)) == 2 for response in result.responses
        )

    def test_policy_reset_between_runs(self, backend):
        requests = mixed_trace(rate=60, duration=0.5)
        policy = DecodePressureRatioPolicy(pressure_threshold=10**9)
        IterationScheduler(backend, policy=policy).run(requests)
        assert policy.switches == 0  # threshold unreachable: no switches

    def test_queue_depth_fallback_without_generation_context(self):
        policy = DecodePressureRatioPolicy(
            pressure_threshold=100, queue_depth_fallback=4
        )
        assert policy.select(PolicyContext(time=0.0, queue_depth=2)) == 0.0
        assert policy.select(PolicyContext(time=0.0, queue_depth=9)) == 1.0
        assert policy.switches == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DecodePressureRatioPolicy(pressure_threshold=0)


# ----------------------------------------------------------------------
# Streaming telemetry
# ----------------------------------------------------------------------
class TestStreamingTelemetry:
    def test_token_windows_account_every_token(self, backend):
        requests = mixed_trace(rate=80, duration=1.0)
        bus = TelemetryBus(window=0.1)
        result = IterationScheduler(
            backend, max_batch=8, telemetry=bus
        ).run(requests)
        windowed = sum(
            bus.token_rate(0, w) * bus.window
            for w in range(bus.last_window + 1)
        )
        assert windowed == pytest.approx(result.tokens)
        assert bus.token_rate(0, -1) == 0.0

    def test_window_stats_expose_token_rate_and_ttft(self, backend):
        requests = gen_requests([(0.0, 64, 8), (0.0, 64, 8)])
        bus = TelemetryBus(window=10.0)  # one window covers the run
        result = IterationScheduler(backend, telemetry=bus).run(requests)
        stats = bus.server_window(0, 0)
        assert stats.tokens == result.tokens
        assert stats.tokens_per_sec == pytest.approx(result.tokens / 10.0)
        expected_ttft = max(r.ttft for r in result.responses)
        assert stats.ttft_percentile(100) == pytest.approx(expected_ttft)
        cluster = bus.cluster_window(0)
        assert cluster.tokens == result.tokens
        assert cluster.ttft_percentile(100) == pytest.approx(expected_ttft)

    def test_one_shot_windows_report_zero_tokens(self):
        bus = TelemetryBus(window=1.0)
        assert bus.token_rate(0, 0) == 0.0
        assert bus.server_window(0, 0).tokens_per_sec == 0.0


# ----------------------------------------------------------------------
# Preemption: migrating in-flight sequences with their progress
# ----------------------------------------------------------------------
class TestGenerationPreemption:
    def _run_with_preemption(self, backend, checkpoint=None, delay=0.0):
        requests = gen_requests(
            [(0.0, 64, 40), (0.0, 64, 40), (0.0, 64, 40), (0.0, 64, 40)]
        )
        scheduler = IterationScheduler(backend, max_batch=2, num_servers=2)
        scheduler.start(requests)
        records = []
        for _ in range(12):
            record = scheduler.step()
            assert record is not None
            records.append(record)
        # Kill server 0 halfway through its latest (in-flight) iteration.
        last = [r for r in records if r.server == 0][-1]
        kill_time = (last.start + last.finish) / 2.0
        report = scheduler.preempt_server(
            0, kill_time, delay=delay, checkpoint=checkpoint
        )
        result = scheduler.finish()
        return report, result, kill_time

    def test_victims_keep_generated_tokens(self, backend):
        report, result, kill_time = self._run_with_preemption(backend)
        assert report.migrated == 2
        assert result.migrated == 2
        assert all(r.finished for r in result.responses)
        assert result.tokens == 4 * 40
        migrants = [r for r in result.responses if r.migrations > 0]
        assert len(migrants) == 2
        for migrant in migrants:
            # Natural checkpoints: tokens from completed iterations
            # survived the crash; the rest were generated after it.
            survived = [t for t in migrant.token_times if t <= kill_time]
            resumed = [t for t in migrant.token_times if t > kill_time]
            assert survived and resumed
            assert migrant.tokens == 40
            assert list(migrant.token_times) == sorted(migrant.token_times)
            assert migrant.server == 1  # finished on the survivor

    def test_in_flight_iteration_rewound_exactly(self, backend):
        report, result, kill_time = self._run_with_preemption(backend)
        assert report.iterations == 1
        # No record of the dead server's killed iteration remains.
        for record in result.iterations:
            if record.server == 0:
                assert record.finish <= kill_time

    def test_checkpoint_restore_prices_migration(self, backend):
        # The transfer is priced large enough to outlast the survivor's
        # own backlog, so the migrants' resume time is transfer-bound.
        checkpoint = StepCheckpoint(
            steps=4, transfer_cost=0.05, transfer_per_step=0.01
        )
        _, priced, kill_time = self._run_with_preemption(
            backend, checkpoint=checkpoint
        )
        _, free, _ = self._run_with_preemption(backend)
        priced_migrants = [r for r in priced.responses if r.migrations > 0]
        free_migrants = [r for r in free.responses if r.migrations > 0]
        for migrant in priced_migrants:
            resumed = min(t for t in migrant.token_times if t > kill_time)
            # The migrant cannot resume before its state transfer lands.
            assert resumed >= kill_time + checkpoint.transfer_cost
        # Transfer pricing delays the migrants relative to the free run.
        assert max(r.finish_time for r in priced_migrants) > max(
            r.finish_time for r in free_migrants
        )

    def test_checkpoint_salvages_partial_prefill(self, backend, gen_model):
        # Kill the server mid-prefill: with a StepCheckpoint the victim
        # resumes paying only the residual prefill, so its first token
        # lands earlier than under the checkpoint-free rerun.
        prefill = gen_model.prefill_latency(512, "flexiq", 0.0)

        def run(checkpoint):
            scheduler = IterationScheduler(backend, num_servers=2)
            scheduler.start(gen_requests([(0.0, 512, 4)]))
            assert scheduler.step() is not None
            scheduler.preempt_server(0, prefill * 0.9, checkpoint=checkpoint)
            return scheduler.finish().responses[0]

        salvaged = run(StepCheckpoint(steps=4))
        lost = run(None)
        assert salvaged.finished and lost.finished
        assert salvaged.migrations == 1 and lost.migrations == 1
        assert salvaged.ttft < lost.ttft

    def test_preemption_telemetry_stays_consistent(self, backend):
        requests = gen_requests([(0.0, 64, 30)] * 4)
        bus = TelemetryBus(window=0.02, num_servers=2)
        scheduler = IterationScheduler(
            backend, max_batch=2, num_servers=2, telemetry=bus
        )
        scheduler.start(requests)
        for _ in range(10):
            assert scheduler.step() is not None
        scheduler.preempt_server(0, 0.04)
        result = scheduler.finish()
        windowed = sum(
            bus.token_rate(server, w) * bus.window
            for server in (0, 1)
            for w in range(bus.last_window + 1)
        )
        # Exact inverse accounting: rewound iterations left no residue.
        assert windowed == pytest.approx(result.tokens)

    def test_inactive_server_takes_no_more_iterations(self, backend):
        scheduler = IterationScheduler(backend, num_servers=2)
        scheduler.start(gen_requests([(0.0, 64, 10)] * 2))
        assert scheduler.step() is not None
        scheduler.preempt_server(0, 0.001)
        assert scheduler.active_servers == [1]
        result = scheduler.finish()
        post_kill = [r for r in result.iterations if r.start > 0.001]
        assert post_kill and all(r.server == 1 for r in post_kill)


# ----------------------------------------------------------------------
# Real execution through RuntimeExecutor.execute_step
# ----------------------------------------------------------------------
class TestRuntimeGenerationBackend:
    def test_generation_runs_on_real_forwards(self, flexiq_runtime, mlp_dataset):
        executor = RuntimeExecutor(
            flexiq_runtime, default_input=mlp_dataset.test_images[0]
        )
        backend = RuntimeGenerationBackend(executor, tokens_per_forward=16)
        requests = gen_requests([(0.0, 32, 3), (0.0, 16, 2), (0.0, 16, 4)])
        result = IterationScheduler(backend, max_batch=4).run(requests)
        assert all(r.finished for r in result.responses)
        assert result.tokens == 9
        # Steps counted separately from one-shot batches: generation
        # forwards are iterations, not engine batches.
        assert executor.steps_executed > 0
        assert executor.batches_executed == 0
        assert executor.requests_executed == 0
        expected_steps = sum(
            record.prefills + (1 if record.decode_width else 0)
            for record in result.iterations
        )
        assert executor.steps_executed == expected_steps
        assert executor.tokens_emitted > 0

    def test_per_step_ratio_switch_is_o1(self, flexiq_runtime, mlp_dataset):
        from repro.core.prepared import PreparedKernel
        from repro.serving.policies import RoundRobinRatioPolicy

        executor = RuntimeExecutor(
            flexiq_runtime, default_input=mlp_dataset.test_images[0]
        )
        backend = RuntimeGenerationBackend(executor, tokens_per_forward=16)
        builds_before = PreparedKernel.build_count
        planes_before = PreparedKernel.plane_build_count
        result = IterationScheduler(
            backend,
            max_batch=4,
            policy=RoundRobinRatioPolicy([0.25, 0.75]),
        ).run(gen_requests([(0.0, 16, 4), (0.0, 16, 4)]))
        assert all(r.finished for r in result.responses)
        assert executor.ratio_switches > 0
        # The mid-sequence precision switches rebuilt nothing.
        assert PreparedKernel.build_count == builds_before
        assert PreparedKernel.plane_build_count == planes_before

    def test_tokens_per_forward_validation(self, flexiq_runtime):
        with pytest.raises(ValueError):
            RuntimeGenerationBackend(
                RuntimeExecutor(flexiq_runtime), tokens_per_forward=0
            )


# ----------------------------------------------------------------------
# streaming_summary edge cases (satellite: metrics robustness)
# ----------------------------------------------------------------------
class TestStreamingSummary:
    def test_prefill_only_requests_have_no_gaps(self):
        summary = streaming_summary(
            [[0.5], [1.0]], [0.0, 0.2], percentiles=(50, 99)
        )
        assert summary["ttft_p50"] == pytest.approx(0.65)
        assert math.isnan(summary["inter_token_p50"])
        assert math.isnan(summary["inter_token_p99"])
        assert summary["tokens"] == 2.0
        assert summary["tokens_per_sec"] == pytest.approx(2.0)  # last=1.0

    def test_single_token_mixed_with_streams(self):
        summary = streaming_summary(
            [[0.1], [0.2, 0.3, 0.4]], [0.0, 0.0], percentiles=(50,)
        )
        # Only the 3-token stream contributes gaps.
        assert summary["inter_token_p50"] == pytest.approx(0.1)
        assert summary["ttft_p50"] == pytest.approx(0.15)
        assert summary["tokens"] == 4.0

    def test_all_dropped_batch_reports_nan_and_zero_rate(self):
        summary = streaming_summary([[], [], []], [0.0, 0.1, 0.2])
        assert summary["requests"] == 3.0
        assert summary["tokens"] == 0.0
        assert summary["tokens_per_sec"] == 0.0
        assert math.isnan(summary["ttft_p50"])
        assert math.isnan(summary["inter_token_p99"])

    def test_dropped_requests_excluded_from_samples_only(self):
        served = streaming_summary([[0.5, 0.6]], [0.0], percentiles=(50,))
        with_drop = streaming_summary(
            [[0.5, 0.6], []], [0.0, 0.3], percentiles=(50,)
        )
        assert with_drop["ttft_p50"] == served["ttft_p50"]
        assert with_drop["requests"] == 2.0
        assert with_drop["tokens"] == served["tokens"]

    def test_empty_percentiles_yield_rates_only(self):
        summary = streaming_summary([[0.5]], [0.0], percentiles=())
        assert set(summary) == {"tokens_per_sec", "tokens", "requests"}

    def test_explicit_duration_overrides_last_token(self):
        summary = streaming_summary([[1.0, 2.0]], [0.0], duration=10.0)
        assert summary["tokens_per_sec"] == pytest.approx(0.2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            streaming_summary([[0.5]], [0.0, 1.0])

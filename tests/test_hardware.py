"""Tests for the hardware latency models, kernels and framework baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.devices import GPU_CATALOG, get_gpu
from repro.hardware.frameworks import framework_comparison, framework_latency
from repro.hardware.gpu import GpuLatencyModel, GpuModelConfig
from repro.hardware.kernels import (
    MixedPrecisionGemm,
    mixed_gemm_reference,
    uniform_gemm_reference,
)
from repro.hardware.npu import NpuConfig, NpuLatencyModel
from repro.hardware.workloads import LayerOp, model_ops, resnet_ops, vit_ops
from repro.core.bit_extraction import extraction_shift


class TestDevices:
    def test_catalog_contains_paper_gpus(self):
        assert {"rtx3090", "a6000", "a100", "l40s"} == set(GPU_CATALOG)

    def test_lookup_case_insensitive(self):
        assert get_gpu("A6000").name == "a6000"
        with pytest.raises(KeyError):
            get_gpu("h100")

    def test_int4_rate_double_int8(self):
        for spec in GPU_CATALOG.values():
            assert spec.int4_tops == pytest.approx(2 * spec.int8_tops, rel=0.01)

    def test_a100_cuda_core_weakness(self):
        """The property Table 4 hinges on: A100 has the lowest CUDA-core rate
        relative to its tensor-core rate."""
        ratios = {
            name: spec.cuda_fp32_tflops / spec.int8_tops
            for name, spec in GPU_CATALOG.items()
        }
        assert min(ratios, key=ratios.get) == "a100"


class TestWorkloads:
    def test_vit_base_op_count_and_macs(self):
        ops = vit_ops(batch=1)
        assert any(op.name == "patch_embed" for op in ops)
        total_gmacs = sum(op.macs for op in ops) / 1e9
        # ViT-Base/16 at 224x224 is ~17.6 GMACs per image (timm reference).
        assert 14.0 < total_gmacs < 21.0

    def test_resnet18_macs(self):
        ops = resnet_ops(batch=1)
        total_gmacs = sum(op.macs for op in ops if op.kind == "gemm") / 1e9
        # ResNet-18 at 224x224 is ~1.8 GMACs per image.
        assert 1.3 < total_gmacs < 2.3

    def test_first_and_last_not_quantizable(self):
        ops = vit_ops(batch=4)
        assert not ops[0].quantizable
        assert not ops[-1].quantizable

    def test_macs_scale_with_batch(self):
        small = sum(op.macs for op in vit_ops(batch=2))
        large = sum(op.macs for op in vit_ops(batch=4))
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_model_ops_registry(self):
        for name in ("vit_base", "resnet50", "swin_small"):
            assert len(model_ops(name, 8)) > 10
        with pytest.raises(KeyError):
            model_ops("alexnet", 8)

    def test_residual_reorder_flags_present_in_resnet(self):
        assert any(op.residual_reorder for op in resnet_ops(batch=1))

    def test_layerop_flops(self):
        op = LayerOp("x", m=2, n=3, k=4)
        assert op.macs == 24 and op.flops == 48


class TestGpuLatencyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return GpuLatencyModel("a6000")

    @pytest.fixture(scope="class")
    def ops(self):
        return model_ops("vit_base", 16)

    def test_int4_faster_than_int8(self, model, ops):
        assert model.model_latency(ops, "int4") < model.model_latency(ops, "int8")

    def test_int8_faster_than_fp16(self, model, ops):
        assert model.model_latency(ops, "int8") < model.model_latency(ops, "fp16")

    def test_flexiq_latency_monotone_in_ratio(self, model, ops):
        latencies = [
            model.model_latency(ops, "flexiq", four_bit_ratio=r)
            for r in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))

    def test_flexiq_bounded_by_int8_and_close_to_int4(self, model, ops):
        int8 = model.model_latency(ops, "int8")
        int4 = model.model_latency(ops, "int4")
        flexi_full = model.model_latency(ops, "flexiq", four_bit_ratio=1.0)
        assert flexi_full <= int8
        assert flexi_full >= int4
        assert flexi_full <= int4 * 1.15  # within ~10-15% of the INT4 kernel

    def test_paper_scale_absolute_latency(self, model, ops):
        """ViT-Base / batch 16 / A6000 INT8 lands in the paper's ballpark (~12 ms)."""
        latency_ms = model.model_latency(ops, "int8") * 1e3
        assert 6.0 < latency_ms < 25.0

    def test_dynamic_extraction_adds_overhead(self, model, ops):
        base = model.model_latency(ops, "flexiq", four_bit_ratio=1.0)
        dynamic = model.model_latency(
            ops, "flexiq", four_bit_ratio=1.0, dynamic_extraction=True
        )
        assert base < dynamic < base * 1.08

    def test_a100_flexiq_penalty_larger_than_a6000(self):
        """Table 4: the CUDA-core bottleneck hurts FlexiQ more on the A100."""
        ops = model_ops("vit_base", 16)

        def penalty(gpu):
            m = GpuLatencyModel(gpu)
            return m.model_latency(ops, "flexiq", 1.0) / m.model_latency(ops, "int4")

        assert penalty("a100") > penalty("a6000")

    def test_per_layer_ratio_override(self, model, ops):
        names = [op.name for op in ops if op.quantizable and op.kind == "gemm"]
        override = {name: 1.0 for name in names[: len(names) // 2]}
        partial = model.model_latency(ops, "flexiq", 0.0, per_layer_ratio=override)
        nothing = model.model_latency(ops, "flexiq", 0.0)
        assert partial < nothing

    def test_latency_breakdown_sums_to_total(self, model, ops):
        breakdown = model.latency_breakdown(ops, "int8")
        assert sum(breakdown.values()) == pytest.approx(
            model.model_latency(ops, "int8"), rel=1e-6
        )

    def test_unknown_mode_raises(self, model, ops):
        with pytest.raises(ValueError):
            model.gemm_latency(ops[1], "int2")

    def test_ratio_switch_latency_tiny(self, model):
        assert model.ratio_switch_latency() < 1e-4

    @given(ratio=st.floats(min_value=0, max_value=1))
    @settings(max_examples=20, deadline=None)
    def test_flexiq_latency_between_int8_and_int4_property(self, ratio):
        model = GpuLatencyModel("l40s")
        op = LayerOp("g", m=4096, n=768, k=768, feature_channels=768)
        flexi = model.gemm_latency(op, "flexiq", four_bit_ratio=ratio)
        int8 = model.gemm_latency(op, "int8")
        int4 = model.gemm_latency(op, "int4")
        assert int4 * 0.99 <= flexi <= int8 * 1.07


class TestNpuModel:
    @pytest.fixture(scope="class")
    def npu(self):
        return NpuLatencyModel()

    @pytest.fixture(scope="class")
    def ops(self):
        return resnet_ops(batch=1)

    def test_four_bit_reduces_latency(self, npu, ops):
        full8 = npu.model_latency(ops, four_bit_ratio=0.0)
        full4 = npu.model_latency(ops, four_bit_ratio=1.0)
        assert full4 < full8
        # Ideal bound is 2x; overheads keep it below that.
        assert full8 / full4 < 2.05

    def test_latency_monotone_in_ratio(self, npu, ops):
        values = [npu.model_latency(ops, four_bit_ratio=r) for r in (0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_channel_group_constraint(self, npu):
        assert NpuConfig().channel_group == 64

    def test_utilization_bounded(self, npu):
        op = LayerOp("c", m=196, n=64, k=576, feature_channels=64)
        for ratio in (0.0, 0.5, 1.0):
            assert 0.0 < npu.utilization(op, ratio) <= 1.0

    def test_residual_reorder_overhead_charged(self, npu):
        op_plain = LayerOp("a", m=196, n=64, k=576, feature_channels=64)
        op_reorder = LayerOp("b", m=196, n=64, k=576, feature_channels=64,
                             residual_reorder=True)
        assert npu.op_latency(op_reorder) > npu.op_latency(op_plain)

    def test_stem_excluded_by_default(self, npu, ops):
        with_stem = npu.model_latency(ops, include_non_quantizable=True)
        without = npu.model_latency(ops)
        assert with_stem > without

    def test_ratio_switch_latency(self, npu):
        assert npu.ratio_switch_latency() <= 0.3e-6 + 1e-12


class TestKernels:
    def _setup(self, seed=0, channels=32, rows=6, out=5):
        rng = np.random.default_rng(seed)
        channel_max = rng.integers(4, 128, size=channels)
        q_x = rng.integers(-1, 2, size=(rows, channels)) * 0
        q_x = np.stack([rng.integers(-m, m + 1, size=rows) for m in channel_max], axis=1)
        q_w = np.stack([rng.integers(-m, m + 1, size=out) for m in channel_max], axis=1)
        shifts = extraction_shift(channel_max, 8, 4)
        return q_x, q_w, shifts

    def test_boundary_zero_equals_uniform_int8(self):
        q_x, q_w, shifts = self._setup()
        acc = mixed_gemm_reference(q_x, q_w, 0, shifts, shifts)
        np.testing.assert_array_equal(acc, uniform_gemm_reference(q_x, q_w, 8))

    def test_group_kernel_matches_reference_when_shifts_uniform_per_group(self):
        q_x, q_w, shifts = self._setup(seed=1)
        group = 4
        # Make shifts group-uniform so both formulations agree exactly.
        grouped_shifts = shifts.reshape(-1, group).max(axis=1).repeat(group)
        kernel = MixedPrecisionGemm(group_size=group)
        acc_kernel = kernel(q_x, q_w, 16, grouped_shifts, grouped_shifts)
        acc_ref = mixed_gemm_reference(q_x, q_w, 16, grouped_shifts, grouped_shifts)
        np.testing.assert_array_equal(acc_kernel, acc_ref)

    def test_kernel_stats_counting(self):
        q_x, q_w, shifts = self._setup(seed=2)
        kernel = MixedPrecisionGemm(group_size=8)
        kernel(q_x, q_w, 16, shifts, shifts)
        stats = kernel.stats
        assert stats.mma_int4 == 6 * 5 * 16
        assert stats.mma_int8 == 6 * 5 * 16
        assert stats.shift_accumulates == 6 * 5 * 2  # two 4-bit groups
        assert stats.weight_bytes == q_w.size

    def test_dynamic_extraction_counts_or_reductions(self):
        q_x, q_w, shifts = self._setup(seed=3)
        kernel = MixedPrecisionGemm(group_size=8)
        kernel(q_x, q_w, 16, shifts, shifts, dynamic_extraction=True)
        assert kernel.stats.dynamic_or_reductions > 0

    def test_mixed_gemm_error_vs_exact_is_bounded(self):
        q_x, q_w, shifts = self._setup(seed=4)
        exact = uniform_gemm_reference(q_x, q_w, 8)
        mixed = mixed_gemm_reference(q_x, q_w, q_x.shape[1], shifts, shifts)
        channels = q_x.shape[1]
        # Error per output <= sum over channels of extraction errors.
        bound = channels * (2 ** shifts.max()) * 130 * 1.5
        assert np.abs(exact - mixed).max() <= bound

    def test_kernel_input_validation(self):
        kernel = MixedPrecisionGemm(group_size=4)
        with pytest.raises(ValueError):
            kernel(np.zeros((2, 8)), np.zeros((3, 6)), 0, np.zeros(8), np.zeros(8))
        with pytest.raises(ValueError):
            kernel(np.zeros((2, 8)), np.zeros((3, 8)), 9, np.zeros(8), np.zeros(8))
        with pytest.raises(ValueError):
            MixedPrecisionGemm(group_size=0)


class TestFrameworks:
    @pytest.fixture(scope="class")
    def comparison(self):
        model = GpuLatencyModel("a6000")
        return framework_comparison(model, model_ops("vit_base", 16))

    def test_table3_orderings(self, comparison):
        # Our custom INT8 kernel beats CUTLASS and TensorRT INT8.
        assert comparison["custom_int8"] < comparison["cutlass_int8"]
        assert comparison["custom_int8"] < comparison["tensorrt_int8"]
        # FlexiQ 100% is within a few percent of the uniform INT4 kernel.
        assert comparison["flexiq"] < comparison["custom_int8"]
        assert comparison["flexiq"] == pytest.approx(comparison["custom_int4"], rel=0.1)
        # CUTLASS INT4 gains nothing over its INT8 path (layout transform).
        assert comparison["cutlass_int4"] == pytest.approx(
            comparison["cutlass_int8"], rel=0.05
        )
        # TensorRT weight-only INT4 is the slowest configuration.
        assert comparison["tensorrt_int4_weight_only"] == max(comparison.values())

    def test_unknown_framework_raises(self):
        model = GpuLatencyModel("a6000")
        with pytest.raises(ValueError):
            framework_latency(model, model_ops("vit_base", 16), "onnxruntime")

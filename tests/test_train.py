"""Tests for optimizers, schedules, training loops and the pretrain cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import DatasetConfig, SyntheticImageDataset
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.train.loop import TrainingConfig, evaluate_accuracy, train_classifier
from repro.train.optim import SGD, CosineLR, StepLR


class Quadratic(Module):
    """f(w) = ||w - target||^2, a deterministic optimization test problem."""

    def __init__(self, target):
        super().__init__()
        self.w = Parameter(np.zeros_like(target, dtype=np.float32))
        self.target = np.asarray(target, dtype=np.float32)

    def loss(self) -> Tensor:
        diff = self.w - Tensor(self.target)
        return (diff * diff).sum()


class TestSGD:
    def test_plain_sgd_step(self):
        model = Quadratic(np.array([1.0, -2.0]))
        opt = SGD(model.parameters(), lr=0.1, momentum=0.0)
        loss = model.loss()
        loss.backward()
        opt.step()
        # grad = 2(w - target) = [-2, 4]; w -= 0.1 * grad
        np.testing.assert_allclose(model.w.data, [0.2, -0.4], atol=1e-6)

    def test_convergence_to_target(self):
        model = Quadratic(np.array([0.5, 1.5, -1.0]))
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            model.loss().backward()
            opt.step()
        np.testing.assert_allclose(model.w.data, model.target, atol=1e-2)

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=10):
            model = Quadratic(np.array([1.0]))
            opt = SGD(model.parameters(), lr=0.01, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                model.loss().backward()
                opt.step()
            return model.loss().item()

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks_weights(self):
        model = Quadratic(np.array([0.0]))
        model.w.data[:] = 1.0
        opt = SGD(model.parameters(), lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        model.loss().backward()
        opt.step()
        # grad = 2*1 + 0.5*1 = 2.5 -> w = 1 - 0.25
        np.testing.assert_allclose(model.w.data, [0.75], atol=1e-6)

    def test_skips_parameters_without_grad(self):
        model = Quadratic(np.array([1.0]))
        opt = SGD(model.parameters(), lr=0.1)
        opt.step()  # no backward called; must not crash
        np.testing.assert_allclose(model.w.data, [0.0])

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestSchedulers:
    def test_step_lr(self):
        model = Quadratic(np.array([1.0]))
        opt = SGD(model.parameters(), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])
        assert sched.current_lr == pytest.approx(0.01)

    def test_cosine_lr_decays_to_min(self):
        model = Quadratic(np.array([1.0]))
        opt = SGD(model.parameters(), lr=1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.05)
        values = []
        for _ in range(10):
            sched.step()
            values.append(opt.lr)
        assert values[-1] == pytest.approx(0.05, abs=1e-6)
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


@pytest.fixture(scope="module")
def easy_dataset():
    return SyntheticImageDataset(
        DatasetConfig(name="easy", num_classes=3, image_size=4, train_size=96,
                      test_size=48, noise_scale=0.2, seed=11)
    )


class FlatClassifier(Module):
    def __init__(self, classes=3):
        super().__init__()
        self.fc = Linear(48, classes, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.fc(x.reshape(x.shape[0], -1))


class TestTrainingLoop:
    def test_training_improves_accuracy(self, easy_dataset):
        model = FlatClassifier()
        before = evaluate_accuracy(model, easy_dataset)
        losses = train_classifier(
            model, easy_dataset, TrainingConfig(epochs=5, learning_rate=0.05)
        )
        after = evaluate_accuracy(model, easy_dataset)
        assert after > before
        assert after > 60.0
        assert losses[-1] < losses[0]

    def test_training_is_deterministic(self, easy_dataset):
        def run():
            model = FlatClassifier()
            train_classifier(model, easy_dataset, TrainingConfig(epochs=2, seed=7))
            return model.fc.weight.data.copy()

        np.testing.assert_array_equal(run(), run())

    def test_evaluate_does_not_update_params(self, easy_dataset):
        model = FlatClassifier()
        before = model.fc.weight.data.copy()
        evaluate_accuracy(model, easy_dataset)
        np.testing.assert_array_equal(before, model.fc.weight.data)

    def test_model_left_in_eval_mode(self, easy_dataset):
        model = FlatClassifier()
        train_classifier(model, easy_dataset, TrainingConfig(epochs=1))
        assert not model.training


class TestPretrainCache:
    def test_pretrain_caches_to_disk(self, tmp_path):
        from repro.train.pretrain import pretrain_model

        model_a = pretrain_model("resnet20", epochs=1, cache_dir=tmp_path, force=True)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        model_b = pretrain_model("resnet20", epochs=1, cache_dir=tmp_path)
        for (_, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_default_epochs_by_family(self):
        from repro.nn.registry import get_spec
        from repro.train.pretrain import default_epochs

        assert default_epochs(get_spec("resnet18")) == 8
        assert default_epochs(get_spec("vit_base")) == 14
        assert default_epochs(get_spec("tiny_lm")) == 6

    def test_get_dataset_for_rejects_llm(self):
        from repro.train.pretrain import get_dataset_for

        with pytest.raises(ValueError):
            get_dataset_for("tiny_lm")

"""Tests for the shared utilities (seeding, configuration containers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import FrozenConfig, SeedSequenceFactory, set_global_seed, temp_seed
from repro.utils.seeding import get_global_seed


class TestSeeding:
    def test_set_global_seed_reproduces_numpy_stream(self):
        set_global_seed(123)
        a = np.random.rand(4)
        set_global_seed(123)
        b = np.random.rand(4)
        np.testing.assert_array_equal(a, b)
        assert get_global_seed() == 123

    def test_temp_seed_restores_state(self):
        set_global_seed(7)
        np.random.rand(3)
        before_state_sample = np.random.rand(2)
        set_global_seed(7)
        np.random.rand(3)
        with temp_seed(99):
            np.random.rand(10)
        after = np.random.rand(2)
        np.testing.assert_array_equal(before_state_sample, after)

    def test_factory_same_name_same_stream(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("dataset").normal(size=5)
        b = factory.generator("dataset").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_factory_different_names_differ(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("dataset").normal(size=5)
        b = factory.generator("model").normal(size=5)
        assert not np.array_equal(a, b)

    def test_factory_seed_is_nonnegative(self):
        factory = SeedSequenceFactory(1)
        assert factory.seed_for("anything") >= 0


class TestFrozenConfig:
    def test_attribute_and_item_access(self):
        cfg = FrozenConfig(alpha=1, beta="two")
        assert cfg.alpha == 1
        assert cfg["beta"] == "two"
        assert len(cfg) == 2
        assert set(iter(cfg)) == {"alpha", "beta"}

    def test_immutable(self):
        cfg = FrozenConfig(alpha=1)
        with pytest.raises(AttributeError):
            cfg.alpha = 2

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            FrozenConfig(alpha=1).gamma

    def test_replace_creates_new_instance(self):
        cfg = FrozenConfig(alpha=1, beta=2)
        other = cfg.replace(beta=3)
        assert cfg.beta == 2 and other.beta == 3
        assert other.alpha == 1

    def test_as_dict_is_copy(self):
        cfg = FrozenConfig(alpha=1)
        d = cfg.as_dict()
        d["alpha"] = 99
        assert cfg.alpha == 1

    def test_repr_lists_values(self):
        assert "alpha=1" in repr(FrozenConfig(alpha=1))

"""Unit tests for the autodiff tensor substrate (gradients vs finite differences)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, atol=2e-2, positive=False):
    rng = np.random.default_rng(seed)
    x_np = rng.normal(0, 1, size=shape).astype(np.float32)
    if positive:
        x_np = np.abs(x_np) + 0.5

    def scalar_fn(values):
        return float(op(Tensor(values)).sum().data)

    x = Tensor(x_np.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    numeric = numerical_gradient(scalar_fn, x_np.astype(np.float64))
    np.testing.assert_allclose(x.grad, numeric, atol=atol, rtol=1e-2)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: x + 3.0, (4, 5))

    def test_mul(self):
        check_gradient(lambda x: x * x, (3, 4))

    def test_sub_rsub(self):
        check_gradient(lambda x: 2.0 - x, (6,))

    def test_div(self):
        check_gradient(lambda x: x / 2.5, (3, 3))

    def test_rdiv(self):
        check_gradient(lambda x: 1.0 / x, (4,), positive=True)

    def test_pow(self):
        check_gradient(lambda x: x**3, (5,))

    def test_neg(self):
        check_gradient(lambda x: -x, (2, 3))

    def test_exp(self):
        check_gradient(lambda x: x.exp(), (3, 2))

    def test_log(self):
        check_gradient(lambda x: x.log(), (4,), positive=True)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt(), (4,), positive=True)

    def test_tanh(self):
        check_gradient(lambda x: x.tanh(), (3, 3))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid(), (5,))

    def test_relu(self):
        # Offset away from 0 to avoid the kink in finite differences.
        check_gradient(lambda x: (x + 5.0).relu(), (4, 4))

    def test_abs(self):
        check_gradient(lambda x: (x + 5.0).abs(), (6,))

    def test_clip(self):
        check_gradient(lambda x: x.clip(-0.5, 0.5) * 2.0, (20,), atol=5e-2)


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=1).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: x.sum(axis=0, keepdims=True).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(axis=-1).sum(), (2, 6))

    def test_var(self):
        check_gradient(lambda x: x.var(axis=-1).sum(), (2, 8), atol=3e-2)

    def test_max(self):
        rng = np.random.default_rng(3)
        x_np = rng.normal(0, 1, size=(3, 5)).astype(np.float32)
        x = Tensor(x_np, requires_grad=True)
        x.max(axis=1).sum().backward()
        # Gradient lands only on the (unique) max elements.
        expected = np.zeros_like(x_np)
        expected[np.arange(3), x_np.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestMatmulGradients:
    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T, atol=1e-5)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)), atol=1e-5)

    def test_matmul_batched(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)).astype(np.float32), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_matmul_broadcast_weight(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        (a @ w).sum().backward()
        assert w.grad.shape == (4, 5)


class TestShapeOps:
    def test_reshape_grad(self):
        check_gradient(lambda x: x.reshape(6, 2).sum(axis=0).sum(), (3, 4))

    def test_transpose_grad(self):
        check_gradient(lambda x: x.transpose(1, 0).sum(axis=0).sum(), (3, 4))

    def test_getitem_grad(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        x[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_pad_grad(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        padded = x.pad(((1, 1), (1, 1)))
        assert padded.shape == (4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_stack(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_swapaxes(self):
        x = Tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        assert x.swapaxes(0, 2).shape == (4, 3, 2)


class TestBroadcasting:
    def test_broadcast_add_grad_shapes(self):
        a = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((1, 3), dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (1, 3)
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))

    def test_broadcast_scalar(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))

    def test_broadcast_mul_vector(self):
        a = Tensor(np.ones((2, 3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.full((4,), 2.0, dtype=np.float32), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((4,), 6.0))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx (6x^2) = 12x
        np.testing.assert_allclose(x.grad, [18.0], atol=1e-5)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(1, dtype=np.float32))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_float64_downcast(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.dtype == np.float32

    def test_constructors(self):
        assert Tensor.zeros((2, 2)).data.sum() == 0
        assert Tensor.ones((2, 2)).data.sum() == 4
        r = Tensor.randn((3, 3), rng=np.random.default_rng(0))
        assert r.shape == (3, 3)

    def test_comparisons_no_grad(self):
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        mask = x > 0
        assert not mask.requires_grad
        np.testing.assert_array_equal(mask.data, [True, False])

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))

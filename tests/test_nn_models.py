"""Tests for the model zoo: architectures, registry and rebalancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.registry import (
    MODEL_REGISTRY,
    apply_pretrained_channel_statistics,
    build_model,
    get_spec,
    list_models,
)
from repro.nn.rebalance import rebalance_channel_scales
from repro.nn.resnet import resnet18, resnet20, resnet50
from repro.nn.mobilenet import mobilenet_v2
from repro.nn.vit import swin, vit
from repro.tensor import Tensor, no_grad

VISION_MODELS = [name for name in list_models() if name != "tiny_lm"]


def _input(batch=2, size=16):
    rng = np.random.default_rng(0)
    return Tensor(rng.normal(size=(batch, 3, size, size)).astype(np.float32))


class TestRegistry:
    def test_contains_paper_models(self):
        expected = {
            "resnet20", "resnet18", "resnet34", "resnet50", "mobilenet_v2",
            "vit_small", "vit_base", "deit_small", "deit_base",
            "swin_small", "swin_base", "tiny_lm",
        }
        assert expected == set(MODEL_REGISTRY)

    def test_list_models_by_family(self):
        assert "resnet18" in list_models("cnn")
        assert "vit_base" in list_models("transformer")
        assert list_models("llm") == ["tiny_lm"]

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_spec("resnet101")
        with pytest.raises(KeyError):
            build_model("nope")

    def test_abbreviations_match_paper(self):
        assert get_spec("resnet50").abbreviation == "RNet50"
        assert get_spec("swin_base").abbreviation == "Swin-B"

    def test_build_is_deterministic(self):
        a = build_model("resnet20", seed=3)
        b = build_model("resnet20", seed=3)
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = build_model("vit_small", seed=1)
        b = build_model("vit_small", seed=2)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
        )


class TestForwardShapes:
    @pytest.mark.parametrize("name", VISION_MODELS)
    def test_forward_shape(self, name):
        model = build_model(name, seed=0)
        with no_grad():
            out = model(_input())
        assert out.shape == (2, 10)
        assert np.isfinite(out.data).all()

    def test_resnet_variants_depth_ordering(self):
        # Deeper variants have more parameters.
        p18 = resnet18(rng=np.random.default_rng(0)).num_parameters()
        p34 = resnet20(rng=np.random.default_rng(0)).num_parameters()
        p50 = resnet50(rng=np.random.default_rng(0)).num_parameters()
        assert p50 > p18 > p34

    def test_resnet_features(self):
        model = resnet18(rng=np.random.default_rng(0))
        with no_grad():
            feats = model.features(_input())
        assert feats.ndim == 2

    def test_mobilenet_has_depthwise(self):
        from repro.nn.layers import Conv2d

        model = mobilenet_v2(rng=np.random.default_rng(0))
        assert any(
            isinstance(m, Conv2d) and m.groups > 1 for _, m in model.named_modules()
        )

    def test_vit_variants(self):
        small = vit("small", rng=np.random.default_rng(0))
        base = vit("base", rng=np.random.default_rng(0))
        assert base.num_parameters() > small.num_parameters()
        with pytest.raises(ValueError):
            vit("huge")

    def test_swin_variants(self):
        small = swin("small", rng=np.random.default_rng(0))
        base = swin("base", rng=np.random.default_rng(0))
        assert base.num_parameters() > small.num_parameters()
        with pytest.raises(ValueError):
            swin("giant")

    def test_vit_gradients_flow_to_patch_embed(self):
        model = vit("small", rng=np.random.default_rng(0))
        out = model(_input())
        out.sum().backward()
        grad = model.patch_embed.proj.weight.grad
        assert grad is not None and np.abs(grad).sum() > 0


class TestRebalancing:
    def test_rebalance_preserves_function_vit(self):
        model = build_model("vit_small", seed=0)
        x = _input()
        with no_grad():
            before = model(x).data.copy()
        rebalance_channel_scales(model, sigma=0.6, seed=1)
        with no_grad():
            after = model(x).data
        np.testing.assert_allclose(before, after, atol=1e-4)

    def test_rebalance_preserves_function_resnet(self):
        model = build_model("resnet50", seed=0)
        model.eval()
        x = _input()
        with no_grad():
            before = model(x).data.copy()
        rebalance_channel_scales(model, sigma=0.6, seed=2)
        with no_grad():
            after = model(x).data
        np.testing.assert_allclose(before, after, atol=1e-3)

    def test_rebalance_increases_weight_range_diversity(self):
        model = build_model("vit_small", seed=0)
        layer = model.get_submodule("blocks.0.attn.q_proj")
        before = np.abs(layer.weight.data).max(axis=0)
        spread_before = before.max() / before.min()
        rebalance_channel_scales(model, sigma=0.6, seed=3)
        after = np.abs(layer.weight.data).max(axis=0)
        spread_after = after.max() / after.min()
        assert spread_after > spread_before * 1.5

    def test_rebalance_zero_sigma_noop(self):
        model = build_model("vit_small", seed=0)
        before = model.get_submodule("blocks.0.attn.q_proj").weight.data.copy()
        rebalance_channel_scales(model, sigma=0.0, seed=0)
        np.testing.assert_array_equal(
            before, model.get_submodule("blocks.0.attn.q_proj").weight.data
        )

    def test_init_time_channel_statistics(self):
        model = build_model("resnet18", seed=0)
        before = model.get_submodule("stages.0.0.conv1").weight.data.copy()
        apply_pretrained_channel_statistics(model, np.random.default_rng(0), sigma=0.5)
        after = model.get_submodule("stages.0.0.conv1").weight.data
        assert not np.allclose(before, after)
        # Per-channel ratios are constant within a channel (pure scaling).
        ratio = after / np.where(before == 0, 1, before)
        per_channel = ratio[:, 0, :, :]
        assert np.allclose(per_channel, per_channel[0:1], atol=1e-5)

"""Tests for effective bit extraction (Section 4.1), including property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bit_extraction import (
    BitExtractionPlan,
    dynamic_extraction_shift,
    extraction_shift,
    lower_bits,
    lowering_error,
    raise_bits,
    saturation_fraction,
    unused_bits,
    used_bits,
)
from repro.quant.quantizers import lower_bitwidth_naive


class TestUsedUnusedBits:
    def test_used_bits_values(self):
        np.testing.assert_array_equal(used_bits(np.array([0, 1, 2, 3, 7, 8, 127])),
                                      [0, 1, 2, 2, 3, 4, 7])

    def test_unused_bits_8bit(self):
        np.testing.assert_array_equal(
            unused_bits(np.array([127, 63, 31, 15, 1]), bits=8), [0, 1, 2, 3, 6]
        )

    def test_unused_bits_handles_negative_maxima(self):
        np.testing.assert_array_equal(unused_bits(np.array([-31]), bits=8), [2])


class TestExtractionShift:
    def test_paper_example_positive(self):
        """Paper Figure 3: value 29 in a channel with max < 32.

        Naive 4-bit lowering keeps the top bits (shift 4): 29 -> 2 -> 32,
        a ~10% error.  FlexiQ extracts below the highest used bit (shift 2):
        29 -> 7 -> 28, under 4% error.
        """
        channel_max = 31
        shift = extraction_shift(np.array([channel_max]), 8, 4)[0]
        assert shift == 2
        value = np.array([29])
        naive = lower_bitwidth_naive(value, 8, 4)[0] * 16
        flexi = raise_bits(lower_bits(value, shift, 4), shift)[0]
        assert abs(naive - 29) / 29 > 0.09
        assert abs(flexi - 29) / 29 < 0.04

    def test_paper_example_negative(self):
        """Figure 3 right: -9 in a channel whose |min| < 16 keeps shift 1."""
        shift = extraction_shift(np.array([15]), 8, 4)[0]
        assert shift == 1
        flexi = raise_bits(lower_bits(np.array([-9]), shift, 4), shift)[0]
        assert abs(flexi - (-9)) <= 1

    def test_full_range_channel_equals_naive(self):
        assert extraction_shift(np.array([127]), 8, 4)[0] == 4

    def test_tiny_channel_clamps_to_zero(self):
        assert extraction_shift(np.array([3]), 8, 4)[0] == 0

    def test_never_exceeds_naive_shift(self):
        shifts = extraction_shift(np.arange(0, 128), 8, 4)
        assert shifts.max() <= 4
        assert shifts.min() >= 0

    def test_monotone_in_channel_max(self):
        shifts = extraction_shift(np.array([1, 7, 15, 31, 63, 127]), 8, 4)
        assert np.all(np.diff(shifts) >= 0)


class TestLowerRaise:
    def test_lower_bits_range(self):
        values = np.arange(-128, 128)
        lowered = lower_bits(values, 4, 4)
        assert lowered.min() >= -8 and lowered.max() <= 7

    def test_zero_shift_is_exact_for_small_values(self):
        values = np.arange(-8, 8)
        np.testing.assert_array_equal(lower_bits(values, 0, 4), values)
        np.testing.assert_array_equal(raise_bits(lower_bits(values, 0, 4), 0), values)

    def test_lowering_error_zero_when_exact(self):
        values = np.array([-8, 0, 4, 7]) * 4  # multiples of 2**shift
        np.testing.assert_array_equal(lowering_error(values, 2, 4), 0)

    def test_saturation_fraction(self):
        values = np.array([1, 2, 3, 100])
        assert saturation_fraction(values, 0, 4) == pytest.approx(0.25)
        assert saturation_fraction(np.array([]), 0, 4) == 0.0

    def test_per_channel_shift_broadcast(self):
        values = np.array([[60, 60], [60, 60]])
        shifts = np.array([0, 3])
        lowered = lower_bits(values, shifts[None, :], 4)
        np.testing.assert_array_equal(lowered[:, 0], [7, 7])      # saturates
        np.testing.assert_array_equal(lowered[:, 1], [8 - 1, 7])  # 60/8 = 7.5 -> 7 hmm rounds to 8? clipped


class TestDynamicShift:
    def test_matches_static_for_known_max(self):
        values = np.array([[3, 30], [-20, 5]])
        shifts = dynamic_extraction_shift(values, axis=0)
        np.testing.assert_array_equal(shifts, extraction_shift(np.array([20, 30]), 8, 4))

    def test_global_reduction(self):
        assert dynamic_extraction_shift(np.array([1, 2, 3])).item() == 0

    def test_dynamic_avoids_saturation(self):
        """When runtime values exceed the calibrated range, the dynamic shift
        widens the window and removes saturation."""
        calibrated_max = 15          # static shift = 1
        runtime_values = np.array([40, -35, 12])
        static = extraction_shift(np.array([calibrated_max]), 8, 4)[0]
        dynamic = dynamic_extraction_shift(runtime_values)
        assert saturation_fraction(runtime_values, static, 4) > 0
        assert saturation_fraction(runtime_values, dynamic, 4) == 0


class TestBitExtractionPlan:
    def test_naive_plan(self):
        plan = BitExtractionPlan.naive(6)
        assert plan.num_channels == 6
        np.testing.assert_array_equal(plan.weight_shift, 4)
        np.testing.assert_array_equal(plan.act_shift, 4)

    def test_from_channel_maxima(self):
        plan = BitExtractionPlan.from_channel_maxima(
            np.array([127, 31]), np.array([63, 7])
        )
        np.testing.assert_array_equal(plan.weight_shift, [4, 2])
        np.testing.assert_array_equal(plan.act_shift, [3, 0])

    def test_effective_bits(self):
        plan = BitExtractionPlan.from_channel_maxima(np.array([127, 31, 7]), np.array([127, 127, 127]))
        np.testing.assert_array_equal(plan.effective_weight_bits(), [4, 6, 8])

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            BitExtractionPlan(weight_shift=np.zeros(3), act_shift=np.zeros(4))

    def test_group_reduce_takes_max(self):
        plan = BitExtractionPlan(
            weight_shift=np.array([0, 3, 1, 2]), act_shift=np.array([1, 1, 4, 0])
        )
        grouped = plan.group_reduce(2)
        np.testing.assert_array_equal(grouped.weight_shift, [3, 3, 2, 2])
        np.testing.assert_array_equal(grouped.act_shift, [1, 1, 4, 4])

    def test_group_reduce_pads_short_last_group(self):
        # 6 channels, groups of 4: the trailing 2 channels form one short
        # group that shares its own maximum (no cross-contamination).
        plan = BitExtractionPlan(
            weight_shift=np.array([0, 3, 1, 2, 4, 1]),
            act_shift=np.array([1, 1, 4, 0, 2, 3]),
        )
        grouped = plan.group_reduce(4)
        np.testing.assert_array_equal(grouped.weight_shift, [3, 3, 3, 3, 4, 4])
        np.testing.assert_array_equal(grouped.act_shift, [4, 4, 4, 4, 3, 3])

    def test_group_reduce_invalid(self):
        plan = BitExtractionPlan.naive(6)
        with pytest.raises(ValueError):
            plan.group_reduce(0)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
class TestBitExtractionProperties:
    @given(
        max_abs=st.integers(min_value=1, max_value=127),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_flexiq_never_worse_than_naive_within_range(self, max_abs, seed):
        """For values inside the calibrated range, FlexiQ's extraction error is
        never larger than the naive top-bit extraction error (the Figure 1
        claim)."""
        rng = np.random.default_rng(seed)
        values = rng.integers(-max_abs, max_abs + 1, size=64)
        shift = extraction_shift(np.array([max_abs]), 8, 4)[0]
        flexi_err = lowering_error(values, shift, 4).mean()
        naive = lower_bitwidth_naive(values, 8, 4).astype(np.int64) * 16
        naive_err = np.abs(values - naive).mean()
        assert flexi_err <= naive_err + 1e-9

    @given(
        max_abs=st.integers(min_value=1, max_value=127),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_saturation_within_calibrated_range(self, max_abs, seed):
        """The static shift chosen from a channel max keeps saturation benign.

        Values right at the calibrated maximum can still round up past the
        4-bit ceiling (e.g. ``round(15 / 2) = 8``) -- the behaviour the
        paper's Figure 13 analyses -- so instead of bounding the *count* of
        saturated values (a probabilistic claim that fails for unlucky
        draws), assert the deterministic guarantee the window provides: the
        reconstruction error of every in-range value, saturated or not, is
        at most one extraction step ``2**shift``.
        """
        rng = np.random.default_rng(seed)
        values = rng.integers(-max_abs, max_abs + 1, size=64)
        shift = extraction_shift(np.array([max_abs]), 8, 4)[0]
        if shift == 0:
            assert saturation_fraction(values, shift, 4) == 0.0
        err = lowering_error(values, shift, 4)
        assert err.max() <= 2 ** shift + 1e-9

    @given(shift=st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_raise_lower_roundtrip_error_bound(self, shift):
        values = np.arange(-120, 121)
        lowered = lower_bits(values, shift, 4)
        reconstructed = raise_bits(lowered, shift)
        in_window = np.abs(values) <= 7 * (2 ** shift) + (2 ** shift) / 2
        errors = np.abs(values - reconstructed)[in_window]
        assert errors.max() <= 2 ** shift / 2 + 1e-9

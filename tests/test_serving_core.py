"""Parity and unit tests for the columnar event-driven serving core (PR 8).

The contract under test: every result the columnar fast path produces —
``EngineResult`` fields, batch records, telemetry windows — is
**bit-identical** to the object loop it replaces (``columnar=False``), and
the K=1 FIFO run stays bit-identical to the seed simulator.
"""

import numpy as np
import pytest

from repro.data.traces import DiurnalTrace, PoissonTrace, RequestTrace
from repro.serving.cluster import ClusterEngine, ServerSpec
from repro.serving.core import (
    DROPPED,
    SERVED,
    Event,
    EventCalendar,
    LazyRequests,
    P2Quantile,
    RequestStore,
    ReservoirSample,
    per_request_latencies,
    run_fifo_columnar,
)
from repro.serving.engine import (
    BatchingConfig,
    Request,
    ServingEngine,
    requests_from_trace,
)
from repro.serving.executors import ModeledExecutor
from repro.serving.metrics import streaming_percentile
from repro.serving.policies import FixedRatioPolicy
from repro.serving.resilience import FaultSchedule
from repro.serving.schedulers import EdfScheduler, PriorityScheduler
from repro.serving.simulator import ServiceTimeModel, ServingSimulator
from repro.serving.telemetry import TelemetryBus


SERVICE_MODEL = ServiceTimeModel()


def _trace(rate=400.0, duration=5.0, seed=3):
    return PoissonTrace(rate, duration, seed=seed).generate()


def _engine(columnar, num_servers=1, max_batch=8, drop_after=None, scheduler=None):
    engine = ServingEngine(
        batching=BatchingConfig(max_batch=max_batch, drop_after=drop_after),
        num_servers=num_servers,
        scheduler=scheduler,
        columnar=columnar,
    )
    engine.register(
        "m", ModeledExecutor(SERVICE_MODEL), policy=FixedRatioPolicy(0.5)
    )
    return engine


def _assert_results_identical(fast, slow):
    assert np.array_equal(fast.latencies, slow.latencies)
    assert np.array_equal(
        fast.request_latencies, slow.request_latencies, equal_nan=True
    )
    assert fast.dropped == slow.dropped
    assert fast.duration == slow.duration
    assert fast.busy_time == slow.busy_time
    assert fast.server_busy_times == slow.server_busy_times
    assert fast.migrated == slow.migrated
    assert list(fast.batch_sizes) == list(slow.batch_sizes)
    assert list(fast.batch_ratios) == list(slow.batch_ratios)
    assert len(fast.batch_records) == len(slow.batch_records)
    for a, b in zip(fast.batch_records, slow.batch_records):
        assert a == b


class TestEventCalendar:
    def test_orders_by_time(self):
        calendar = EventCalendar()
        calendar.schedule(3.0, "fault", "c")
        calendar.schedule(1.0, "fault", "a")
        calendar.schedule(2.0, "fault", "b")
        assert [calendar.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_push_order(self):
        calendar = EventCalendar()
        for tag in "abcd":
            calendar.schedule(1.0, "fault", tag)
        assert [calendar.pop().payload for _ in range(4)] == list("abcd")

    def test_peek_and_pop_due(self):
        calendar = EventCalendar()
        assert calendar.peek() is None
        assert calendar.peek_time() == float("inf")
        calendar.push(Event(time=2.0, kind="scale"))
        calendar.schedule(1.0, "fault")
        assert calendar.peek_time() == 1.0
        due = calendar.pop_due(1.5)
        assert [event.time for event in due] == [1.0]
        assert len(calendar) == 1 and bool(calendar)


class TestRequestStore:
    def test_lazy_view_matches_eager_requests(self):
        trace = _trace(duration=1.0)
        lazy = requests_from_trace(
            trace, model="m", priorities=[0, 2], deadlines=[0.1, 0.3, None]
        )
        assert isinstance(lazy, list)
        view = requests_from_trace(
            trace,
            model="m",
            priorities=[0, 2],
            deadlines=[0.1, 0.3, None],
            lazy=True,
        )
        assert isinstance(view, LazyRequests)
        assert len(view) == len(lazy) == len(trace)
        for eager, materialized in zip(lazy, view):
            assert eager == materialized
        # Negative indexing and slicing behave like a list.
        assert view[-1] == lazy[-1]
        assert list(view[2:5]) == lazy[2:5]

    def test_from_requests_round_trip(self):
        requests = [
            Request(arrival_time=0.1, model="a", priority=1, deadline=0.5),
            Request(arrival_time=0.2, model="b"),
            Request(arrival_time=0.3, model="a", request_id=7),
        ]
        store = RequestStore.from_requests(requests)
        assert store.single_model is None
        assert store.model_name_list() == ["a", "b", "a"]
        assert list(store.model_mask("a")) == [True, False, True]
        for index, original in enumerate(requests):
            rebuilt = store.request(index)
            assert rebuilt.model == original.model
            assert rebuilt.arrival_time == original.arrival_time
            assert rebuilt.priority == original.priority
            assert rebuilt.deadline == original.deadline

    def test_deadline_column_is_absolute(self):
        trace = _trace(duration=1.0)
        store = RequestStore.from_trace(trace, model="m", deadlines=[0.25])
        arrivals = store.arrivals
        # Vectorized arrival + slo must equal the per-request float sum.
        for index in (0, len(arrivals) // 2, len(arrivals) - 1):
            assert store.deadlines[index] == float(arrivals[index]) + 0.25

    def test_status_column_tracks_run(self):
        trace = _trace(rate=2000.0, duration=1.0)
        view = requests_from_trace(trace, model="m", lazy=True)
        engine = _engine(True, max_batch=4, drop_after=0.01)
        result = engine.run(requests=view)
        store = view.store
        assert int(np.count_nonzero(store.status == DROPPED)) == result.dropped
        assert (
            int(np.count_nonzero(store.status == SERVED))
            == len(trace) - result.dropped
        )


class TestColumnarParity:
    @pytest.mark.parametrize("num_servers", [1, 4])
    @pytest.mark.parametrize("drop_after", [None, 0.05])
    def test_trace_fifo(self, num_servers, drop_after):
        trace = _trace()
        fast = _engine(True, num_servers, drop_after=drop_after).run(
            trace, model="m"
        )
        slow = _engine(False, num_servers, drop_after=drop_after).run(
            trace, model="m"
        )
        _assert_results_identical(fast, slow)

    def test_k1_fifo_matches_seed_simulator(self):
        """The unbreakable invariant: columnar K=1 FIFO == seed simulator."""
        trace = _trace()
        seed = ServingSimulator(
            SERVICE_MODEL, BatchingConfig(max_batch=8)
        ).run(trace, "flexiq", ratio=0.5)
        fast = _engine(True).run(trace, model="m")
        assert np.array_equal(seed.latencies, fast.latencies)
        assert seed.batch_sizes == fast.batch_sizes
        assert seed.dropped == fast.dropped

    def test_lazy_requests_fifo(self):
        trace = _trace()
        view = requests_from_trace(trace, model="m", deadlines=[0.1, 0.4], lazy=True)
        eager = requests_from_trace(trace, model="m", deadlines=[0.1, 0.4])
        fast = _engine(True, num_servers=2).run(requests=view)
        slow = _engine(False, num_servers=2).run(requests=eager)
        _assert_results_identical(fast, slow)
        assert fast.request_models == slow.request_models
        assert len(fast.responses) == len(slow.responses)
        for a, b in zip(fast.responses, slow.responses):
            assert a == b

    @pytest.mark.parametrize(
        "scheduler_cls", [EdfScheduler, PriorityScheduler]
    )
    def test_scheduled_disciplines(self, scheduler_cls):
        trace = _trace()
        kwargs = dict(priorities=[0, 1, 2], deadlines=[0.1, 0.3, None])
        view = requests_from_trace(trace, model="m", lazy=True, **kwargs)
        eager = requests_from_trace(trace, model="m", **kwargs)
        fast = _engine(True, 2, scheduler=scheduler_cls()).run(requests=view)
        slow = _engine(False, 2, scheduler=scheduler_cls()).run(requests=eager)
        _assert_results_identical(fast, slow)
        for a, b in zip(fast.responses, slow.responses):
            assert a == b

    def test_streaming_submit_rejected_for_store_sessions(self):
        view = requests_from_trace(_trace(duration=0.5), model="m", lazy=True)
        engine = _engine(True)
        engine.start(requests=view)
        with pytest.raises(RuntimeError, match="store-backed"):
            engine.submit(Request(arrival_time=9.0, model="m"))
        engine.finish()


class TestClusterParity:
    def _cluster(self, columnar, **kwargs):
        specs = [
            ServerSpec(name=f"s{index}", speed=1.0, service_model=SERVICE_MODEL)
            for index in range(4)
        ]
        engine = ClusterEngine(
            specs,
            batching=BatchingConfig(max_batch=8, drop_after=0.05),
            columnar=columnar,
            **kwargs,
        )
        engine.register("m", policy=FixedRatioPolicy(0.5))
        return engine

    def _assert_cluster_identical(self, fast, slow, windows=6):
        _assert_results_identical(fast.result, slow.result)
        for window in range(windows):
            a = fast.telemetry.cluster_window(window)
            b = slow.telemetry.cluster_window(window)
            assert (a.served, a.batches, a.drops) == (b.served, b.batches, b.drops)
            assert a.busy_time == b.busy_time
            assert np.array_equal(
                a.latency_percentile(95), b.latency_percentile(95), equal_nan=True
            )
            assert (a.deadline_total, a.deadline_met) == (
                b.deadline_total,
                b.deadline_met,
            )

    def test_plain_cluster(self):
        trace = _trace()
        fast = self._cluster(True).run(trace, model="m")
        slow = self._cluster(False).run(trace, model="m")
        self._assert_cluster_identical(fast, slow)

    def test_faulted_cluster_still_identical(self):
        # A fault schedule forces the stepped control loop on both sides;
        # the refactored EventCalendar bookkeeping must replay the seed
        # cursor's fault ordering exactly.
        trace = _trace()
        schedule = FaultSchedule.single_crash(at=1.0, server=1, recover_at=3.0)
        fast = self._cluster(True, fault_schedule=schedule).run(trace, model="m")
        slow = self._cluster(False, fault_schedule=schedule).run(trace, model="m")
        self._assert_cluster_identical(fast, slow)
        assert [
            (event.time, event.server, event.kind)
            for event in fast.fault_events
        ] == [
            (event.time, event.server, event.kind)
            for event in slow.fault_events
        ]


class TestColumnarFifoCore:
    def test_segments_reconstruct_latencies(self):
        arrivals = np.sort(
            np.random.default_rng(0).uniform(0.0, 2.0, size=200)
        )
        tables = {
            0: [0.0]
            + [
                float(SERVICE_MODEL.batch_latency(size, "flexiq", 0.5))
                for size in range(1, 9)
            ]
        }
        run = run_fifo_columnar(
            arrivals, [0.0], [0.0], [0], tables, 8, 0.02
        )
        latencies = per_request_latencies(
            arrivals, run.seg_sizes, run.seg_finishes
        )
        assert len(latencies) == len(arrivals)
        assert int(np.count_nonzero(np.isnan(latencies))) == run.dropped
        # Each served segment's latency equals finish - arrival exactly.
        assert int(run.seg_sizes.sum()) == len(arrivals)
        assert len(run.starts) == len(run.finishes) == len(run.sizes)


class TestStreamingEstimators:
    def test_p2_tracks_exact_percentile(self):
        data = np.random.default_rng(1).exponential(1.0, size=20_000)
        estimator = P2Quantile(0.95)
        estimator.extend(data)
        exact = float(np.percentile(data, 95))
        assert abs(estimator.value - exact) / exact < 0.05
        assert len(estimator) == len(data)

    def test_p2_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        estimator.extend([3.0, 1.0, 2.0])
        assert estimator.value == 2.0

    def test_reservoir_is_deterministic_and_bounded(self):
        first = ReservoirSample(capacity=64, seed=9)
        second = ReservoirSample(capacity=64, seed=9)
        data = np.arange(5000, dtype=np.float64)
        first.extend(data)
        second.extend(data)
        assert np.array_equal(first.values, second.values)
        assert len(first.values) == 64
        assert len(first) == 5000
        # A uniform ramp's reservoir median lands near the true median.
        assert abs(first.percentile(50) - 2500.0) < 600.0

    def test_streaming_percentile_dispatch(self):
        reservoir = ReservoirSample(capacity=32, seed=0)
        reservoir.extend(np.full(100, 4.0))
        assert streaming_percentile(reservoir, 50) == 4.0
        estimator = P2Quantile(0.9)
        estimator.extend([1.0, 2.0, 3.0])
        assert streaming_percentile(estimator, 90) == pytest.approx(2.8)
        with pytest.raises(ValueError, match="tracks q=0.9"):
            streaming_percentile(estimator, 50)
        assert streaming_percentile([1.0, 3.0], 50) == 2.0


class TestTelemetryIncremental:
    def test_digest_mode_approximates_exact(self):
        trace = _trace(rate=800.0, duration=4.0)
        exact_bus = TelemetryBus(window=1.0, num_servers=2)
        digest_bus = TelemetryBus(
            window=1.0,
            num_servers=2,
            latency_digest="reservoir",
            digest_capacity=4096,
        )

        def run_with(bus):
            engine = ServingEngine(
                batching=BatchingConfig(max_batch=8),
                num_servers=2,
                telemetry=bus,
            )
            engine.register(
                "m", ModeledExecutor(SERVICE_MODEL), policy=FixedRatioPolicy(0.5)
            )
            engine.run(trace, model="m")

        run_with(exact_bus)
        run_with(digest_bus)
        for window in range(4):
            exact = exact_bus.cluster_window(window)
            digest = digest_bus.cluster_window(window)
            assert exact.served == digest.served
            exact_p95 = exact.latency_percentile(95)
            digest_p95 = digest.latency_percentile(95)
            if exact.served:
                # Capacity exceeds the per-window sample count, so the
                # reservoir is exhaustive and the percentile exact.
                assert digest_p95 == exact_p95

    def test_timeline_cache_invalidation(self):
        from repro.serving.telemetry import ScaleEvent

        bus = TelemetryBus(window=1.0, num_servers=1)
        bus.record_scale_event(
            ScaleEvent(time=2.0, action="add", server=1, active_after=2)
        )
        first = bus.timeline()
        bus.record_scale_event(
            ScaleEvent(time=1.0, action="remove", server=1, active_after=1)
        )
        second = bus.timeline()
        assert [event.time for event in second] == [1.0, 2.0]
        assert len(first) == 1
        # Returned lists are copies: mutating one must not poison the cache.
        second.clear()
        assert len(bus.timeline()) == 2


class TestTraceSortCache:
    def test_sorted_arrivals_cached_per_binding(self):
        trace = RequestTrace(
            np.asarray([3.0, 1.0, 2.0]), duration=3.0
        )
        first = trace.sorted_arrivals()
        assert list(first) == [1.0, 2.0, 3.0]
        assert trace.sorted_arrivals() is first
        assert not first.flags.writeable
        trace.arrival_times = np.asarray([5.0, 4.0])
        rebound = trace.sorted_arrivals()
        assert list(rebound) == [4.0, 5.0]
        assert rebound is not first

    def test_diurnal_day_uses_cache(self):
        trace = DiurnalTrace(
            night_rate=50, peak_rate=100, duration=4, period=4, num_phases=4
        ).generate()
        assert trace.sorted_arrivals() is trace.sorted_arrivals()

"""Tests for the serving simulator, metrics and adaptive ratio control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import FluctuatingTrace, PoissonTrace, RequestTrace
from repro.serving.adaptation import AdaptiveServingSimulator
from repro.serving.metrics import (
    attainment_within,
    latency_percentiles,
    slo_attainment,
    summarize_latencies,
)
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))


@pytest.fixture(scope="module")
def simulator(service_model):
    return ServingSimulator(service_model, BatchingConfig(max_batch=128))


class TestMetrics:
    def test_percentiles(self):
        values = np.arange(1, 101) / 1000.0
        p = latency_percentiles(values, percentiles=(50, 90))
        assert p["p50"] == pytest.approx(0.0505, abs=1e-3)
        assert p["p90"] == pytest.approx(0.0901, abs=1e-3)

    def test_empty_sample(self):
        assert np.isnan(latency_percentiles([])["p50"])
        assert np.isnan(summarize_latencies([])["median"])

    def test_summary_keys(self):
        summary = summarize_latencies([0.01, 0.02, 0.03])
        assert {"median", "p90", "p99", "mean", "max", "count"} <= set(summary)
        assert summary["count"] == 3


class TestServiceTimeModel:
    def test_monotone_in_batch_size(self, service_model):
        small = service_model.batch_latency(8, "int8")
        large = service_model.batch_latency(64, "int8")
        assert small < large

    def test_interpolates_between_anchors(self, service_model):
        mid = service_model.batch_latency(40, "int8")
        assert service_model.batch_latency(16, "int8") < mid < service_model.batch_latency(64, "int8")

    def test_mode_ordering(self, service_model):
        batch = 32
        int8 = service_model.batch_latency(batch, "int8")
        int4 = service_model.batch_latency(batch, "int4")
        flexi_half = service_model.batch_latency(batch, "flexiq", ratio=0.5)
        assert int4 < flexi_half < int8

    def test_zero_batch(self, service_model):
        assert service_model.batch_latency(0, "int8") == 0.0

    def test_caching_returns_same_values(self, service_model):
        a = service_model.batch_latency(32, "flexiq", 0.5)
        b = service_model.batch_latency(32, "flexiq", 0.5)
        assert a == b


class TestServingSimulator:
    def test_latency_at_least_service_time(self, simulator, service_model):
        trace = PoissonTrace(100, duration=3.0, seed=0).generate()
        result = simulator.run(trace, "int8")
        min_service = service_model.batch_latency(1, "int8")
        assert result.latencies.min() >= min_service * 0.99
        assert len(result.latencies) == len(trace)

    def test_latency_grows_with_request_rate(self, simulator):
        results = simulator.latency_vs_rate([200, 2000], "int8", duration=3.0)
        assert results[2000.0].median_latency > results[200.0].median_latency

    def test_int8_saturates_before_int4(self, simulator):
        """The Figure 8 effect: at high rates INT8 queues blow up, INT4 holds."""
        trace = PoissonTrace(2500, duration=4.0, seed=1).generate()
        int8 = simulator.run(trace, "int8")
        int4 = simulator.run(trace, "int4")
        assert int8.median_latency > 3 * int4.median_latency

    def test_flexiq_ratio_improves_latency_under_load(self, simulator):
        trace = PoissonTrace(2200, duration=4.0, seed=2).generate()
        low = simulator.run(trace, "flexiq", ratio=0.25)
        high = simulator.run(trace, "flexiq", ratio=1.0)
        assert high.median_latency < low.median_latency

    def test_batch_cap_respected(self, service_model):
        simulator = ServingSimulator(service_model, BatchingConfig(max_batch=16))
        trace = PoissonTrace(2000, duration=2.0, seed=3).generate()
        result = simulator.run(trace, "int4")
        assert max(result.batch_sizes) <= 16

    def test_drop_after_discards_stale_requests(self, service_model):
        simulator = ServingSimulator(
            service_model, BatchingConfig(max_batch=8, drop_after=0.05)
        )
        trace = PoissonTrace(3000, duration=2.0, seed=4).generate()
        result = simulator.run(trace, "int8")
        assert result.dropped > 0
        assert len(result.latencies) + result.dropped == len(trace)

    def test_throughput_reported(self, simulator):
        trace = PoissonTrace(500, duration=3.0, seed=5).generate()
        result = simulator.run(trace, "int8")
        assert result.throughput == pytest.approx(len(trace) / trace.duration, rel=1e-6)

    def test_ratio_schedule_used(self, simulator, service_model):
        trace = PoissonTrace(1500, duration=3.0, seed=6).generate()
        always_full = simulator.run(trace, "flexiq", ratio_schedule=lambda t: 1.0)
        always_high_precision = simulator.run(trace, "flexiq", ratio_schedule=lambda t: 0.0)
        assert always_full.median_latency < always_high_precision.median_latency

    def test_summary_consistent(self, simulator):
        trace = PoissonTrace(300, duration=2.0, seed=7).generate()
        result = simulator.run(trace, "int8")
        summary = result.summary()
        assert summary["median"] == pytest.approx(result.median_latency)
        assert summary["p90"] == pytest.approx(result.p90_latency)


class TestAdaptiveServing:
    def _controller(self, simulator, threshold=0.05):
        rates = [200, 600, 1000, 1600, 2200, 2800]

        def latency_fn(ratio, rate):
            trace = PoissonTrace(max(rate, 1), duration=2.0, seed=11).generate()
            return simulator.run(trace, "flexiq", ratio=ratio).median_latency

        profile = build_profile_from_latency_fn(rates, [0.0, 0.25, 0.5, 0.75, 1.0], latency_fn)
        return AdaptiveRatioController(profile, latency_threshold=threshold)

    def test_adaptive_raises_ratio_at_peak_and_tracks_latency(self, simulator, service_model):
        controller = self._controller(simulator)
        adaptive = AdaptiveServingSimulator(service_model, controller, control_window=1.0)
        trace = FluctuatingTrace(min_rate=800, peak_ratio=3.0, duration=20.0, seed=5).generate()
        result = adaptive.run(
            trace, accuracy_by_ratio={0.0: 84.7, 0.25: 84.6, 0.5: 84.5, 0.75: 84.4, 1.0: 83.8}
        )
        # The controller must have used higher ratios during the peak.
        assert result.average_ratio > 0.0
        ratios_used = {entry["ratio"] for entry in result.ratio_timeline}
        assert len(ratios_used) > 1
        # Effective accuracy sits between the 100% 4-bit and 8-bit accuracies.
        assert 83.8 <= result.effective_accuracy <= 84.7
        # Latency stays far below a fixed INT8 deployment at the same trace.
        int8 = ServingSimulator(service_model, BatchingConfig(max_batch=128)).run(trace, "int8")
        assert result.median_latency < int8.median_latency

    def test_without_accuracy_table(self, simulator, service_model):
        controller = self._controller(simulator)
        adaptive = AdaptiveServingSimulator(service_model, controller)
        trace = FluctuatingTrace(min_rate=300, peak_ratio=2.0, duration=5.0, seed=6).generate()
        result = adaptive.run(trace)
        assert result.effective_accuracy is None
        assert result.duration == pytest.approx(5.0)


class TestServiceTimeModelRegressions:
    def test_batch_above_largest_anchor_not_clamped(self, service_model):
        """PR 3 bugfix: ``np.interp`` silently clamped batch sizes above the
        largest anchor (128) to the 128-anchor latency, under-reporting
        service time for ``max_batch > 128`` runs."""
        at_anchor = service_model.batch_latency(128, "int8")
        beyond = service_model.batch_latency(256, "int8")
        assert beyond > at_anchor  # seed returned beyond == at_anchor
        # The out-of-range value is the exact hardware-model latency.
        from repro.hardware.workloads import model_ops

        expected = service_model.latency_model.model_latency(
            model_ops(service_model.model_name, 256), "int8", four_bit_ratio=0.0
        )
        assert beyond == pytest.approx(expected, rel=0, abs=0)
        # And it is cached: same value on repeat lookups.
        assert service_model.batch_latency(256, "int8") == beyond
        # Monotone through the anchor boundary.
        assert at_anchor < service_model.batch_latency(129, "int8") < beyond

    def test_close_ratios_do_not_collide_in_cache(self, service_model):
        """PR 3 bugfix: the anchor cache keyed on ``f"{ratio:.3f}"``, so
        ratios within 5e-4 collided and returned each other's latencies."""
        a = service_model.batch_latency(32, "flexiq", 0.5)
        b = service_model.batch_latency(32, "flexiq", 0.5003)
        assert a != b  # seed: identical (cache collision)
        assert b < a   # more 4-bit channels -> faster
        # Exactly equal ratios still share one cache entry.
        assert service_model.batch_latency(32, "flexiq", 0.5) == a


class TestMetricsRegressions:
    def test_empty_sample_count_is_zero(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0.0  # seed reported nan
        for key in ("median", "p90", "p99", "mean", "max"):
            assert np.isnan(summary[key])

    def test_fractional_percentile_keys_do_not_collide(self):
        values = np.arange(1, 1001) / 1000.0
        p = latency_percentiles(values, percentiles=(99, 99.9))
        assert set(p) == {"p99", "p99.9"}  # seed collapsed both onto "p99"
        assert p["p99.9"] > p["p99"]
        empty = latency_percentiles([], percentiles=(99, 99.9))
        assert set(empty) == {"p99", "p99.9"}
        assert all(np.isnan(v) for v in empty.values())

    def test_integer_labels_unchanged(self):
        p = latency_percentiles([0.1, 0.2], percentiles=(50, 90.0))
        assert set(p) == {"p50", "p90"}

    def test_empty_percentile_list(self):
        """No requested percentiles -> empty dict, for empty or non-empty
        samples alike (never a KeyError or a default sneaking in)."""
        assert latency_percentiles([0.1, 0.2], percentiles=()) == {}
        assert latency_percentiles([], percentiles=()) == {}


class TestSloAttainmentEdgeCases:
    def test_all_dropped_requests_attain_zero(self):
        """Every deadline-carrying request dropped (nan finish) -> 0.0, not
        nan: the population exists, it just all missed."""
        finishes = [float("nan")] * 4
        deadlines = [0.1, 0.2, 0.3, 0.4]
        assert slo_attainment(finishes, deadlines) == 0.0

    def test_mixed_none_and_nan_deadlines_excluded(self):
        """``None`` and ``nan`` deadlines both mean "no SLO" and leave the
        population; only real deadlines are scored."""
        finishes = [1.0, 1.0, 1.0, float("nan")]
        deadlines = [2.0, None, float("nan"), 0.5]
        # Population: entries 0 (met) and 3 (dropped with a deadline: miss).
        assert slo_attainment(finishes, deadlines) == pytest.approx(0.5)

    def test_no_deadlines_at_all_is_nan(self):
        assert np.isnan(slo_attainment([1.0, 2.0], [None, float("nan")]))
        assert np.isnan(slo_attainment([], []))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            slo_attainment([1.0], [0.5, 0.6])

    def test_boundary_finish_counts_as_met(self):
        assert slo_attainment([1.0], [1.0]) == 1.0

    def test_attainment_within_latency_slo(self):
        """The shared-budget twin: nan latencies (drops) are misses, the
        boundary counts as met, empty samples are nan."""
        assert attainment_within([0.1, 0.5, 0.9, float("nan")], 0.5) == pytest.approx(0.5)
        assert attainment_within([0.2], 0.2) == 1.0
        assert np.isnan(attainment_within([], 0.5))
        assert attainment_within([float("nan")] * 3, 0.5) == 0.0


class TestExecutedRatioReporting:
    def test_fixed_ratio_reported_verbatim(self, simulator):
        trace = PoissonTrace(500, duration=1.0, seed=8).generate()
        result = simulator.run(trace, "flexiq", ratio=0.25)
        assert result.ratio == 0.25

    def test_schedule_reports_batch_weighted_executed_ratio(self, simulator):
        """PR 3 bugfix: the seed reported the (unused) fixed ``ratio``
        argument even when ``ratio_schedule`` overrode it on every batch."""
        trace = PoissonTrace(1500, duration=2.0, seed=8).generate()
        result = simulator.run(
            trace, "flexiq", ratio=0.0, ratio_schedule=lambda t: 1.0
        )
        assert result.ratio == pytest.approx(1.0)  # seed reported 0.0

        mixed = simulator.run(
            trace, "flexiq", ratio=0.0,
            ratio_schedule=lambda t: 1.0 if t > 1.0 else 0.0,
        )
        assert 0.0 < mixed.ratio < 1.0

"""Tests for the Section 7 extensions: memory/bandwidth model and 2-bit NPU mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.memory import (
    MemoryFootprint,
    flexiq_footprint,
    resource_report,
    uniform_footprint,
)
from repro.hardware.npu import NpuConfig, NpuLatencyModel
from repro.hardware.workloads import LayerOp, model_ops, resnet_ops


@pytest.fixture(scope="module")
def ops():
    return model_ops("vit_base", 16)


class TestMemoryModel:
    def test_uniform_footprints_scale_with_bits(self, ops):
        int8 = uniform_footprint(ops, 8)
        int4 = uniform_footprint(ops, 4)
        assert int4.weight_bytes == pytest.approx(int8.weight_bytes / 2)
        assert int8.cache_bytes == 0.0
        assert int8.weight_traffic_bytes == int8.weight_bytes

    def test_flexiq_full_range_matches_int8_storage(self, ops):
        """Section 7: FlexiQ's footprint equals the 8-bit model's."""
        flexi = flexiq_footprint(ops, 0.0, 1.0)
        int8 = uniform_footprint(ops, 8)
        assert flexi.weight_bytes == pytest.approx(int8.weight_bytes)

    def test_flexiq_traffic_overhead_vs_int4(self, ops):
        """Runtime bit extraction reads 8-bit weights for 4-bit channels."""
        flexi = flexiq_footprint(ops, 0.0, 1.0, active_ratio=1.0)
        int4 = uniform_footprint(ops, 4)
        assert flexi.weight_traffic_bytes == pytest.approx(2 * int4.weight_traffic_bytes)

    def test_caching_removes_traffic_overhead_but_adds_memory(self, ops):
        cached = flexiq_footprint(ops, 0.0, 1.0, active_ratio=1.0, cache_extracted=True)
        uncached = flexiq_footprint(ops, 0.0, 1.0, active_ratio=1.0)
        int4 = uniform_footprint(ops, 4)
        assert cached.weight_traffic_bytes == pytest.approx(int4.weight_traffic_bytes)
        assert cached.total_bytes > uncached.total_bytes
        assert cached.cache_bytes > 0

    def test_restricted_ratio_range_shrinks_footprint(self, ops):
        """Supporting only 50-100% lets half the channels be stored in 4 bits."""
        restricted = flexiq_footprint(ops, 0.5, 1.0)
        full = flexiq_footprint(ops, 0.0, 1.0)
        int8 = uniform_footprint(ops, 8)
        int4 = uniform_footprint(ops, 4)
        assert int4.weight_bytes < restricted.weight_bytes < full.weight_bytes
        assert restricted.weight_bytes == pytest.approx(0.75 * int8.weight_bytes)

    def test_active_ratio_below_min_reads_cached_4bit(self, ops):
        footprint = flexiq_footprint(ops, 0.5, 1.0, active_ratio=0.5)
        int8 = uniform_footprint(ops, 8)
        # The permanently-4-bit prefix is read in 4-bit form.
        assert footprint.weight_traffic_bytes < int8.weight_traffic_bytes

    def test_invalid_ratio_ranges(self, ops):
        with pytest.raises(ValueError):
            flexiq_footprint(ops, 0.8, 0.5)
        with pytest.raises(ValueError):
            flexiq_footprint(ops, 0.5, 1.0, active_ratio=0.2)

    def test_resource_report_keys_and_ordering(self, ops):
        report = resource_report(ops)
        assert set(report) == {
            "uniform_int8", "uniform_int4", "flexiq_full_range",
            "flexiq_full_range_cached", "flexiq_50_100_range",
        }
        assert (
            report["uniform_int4"].total_bytes
            < report["flexiq_50_100_range"].total_bytes
            <= report["flexiq_full_range"].total_bytes
            < report["flexiq_full_range_cached"].total_bytes
        )


class TestNpuLowPrecisionExtension:
    @pytest.fixture(scope="class")
    def npu(self):
        return NpuLatencyModel()

    def test_channel_group_scaling(self, npu):
        config = NpuConfig()
        assert config.channel_group_for(8) == 32
        assert config.channel_group_for(4) == 64
        assert config.channel_group_for(2) == 128
        with pytest.raises(ValueError):
            config.channel_group_for(3)

    def test_parallelism_scaling(self):
        config = NpuConfig()
        assert config.low_bit_parallelism(2) == 4
        assert config.low_bit_parallelism(4) == 2
        assert config.low_bit_parallelism(8) == 1

    def test_two_bit_faster_than_four_bit_on_wide_layers(self, npu):
        """With enough channels to fill the 128-wide groups, 2-bit mode wins."""
        op = LayerOp("wide", m=196, n=256, k=512 * 9, feature_channels=512)
        four = npu.op_latency(op, four_bit_ratio=1.0, low_bits=4)
        two = npu.op_latency(op, four_bit_ratio=1.0, low_bits=2)
        assert two < four

    def test_two_bit_granularity_penalty_on_narrow_layers(self, npu):
        """The 128-channel group constraint wastes utilisation on narrow layers,
        the trade-off the paper highlights for the 2-bit extension."""
        narrow = LayerOp("narrow", m=196, n=64, k=96, feature_channels=96)
        cycles_4 = npu.op_cycles(narrow, four_bit_ratio=0.5, low_bits=4)
        cycles_2 = npu.op_cycles(narrow, four_bit_ratio=0.5, low_bits=2)
        # At 50% ratio the 2-bit group rounding forces the whole (padded)
        # reduction into low precision, so it cannot be slower than 4-bit --
        # but the speedup is far below the ideal 2x because the array is
        # under-utilised.
        assert cycles_2 <= cycles_4
        ideal_two_bit = npu.op_cycles(narrow, four_bit_ratio=0.0) / 4
        assert cycles_2 > ideal_two_bit

    def test_model_latency_with_two_bit_mode(self, npu):
        ops = resnet_ops(batch=1)
        four = npu.model_latency(ops, four_bit_ratio=1.0, low_bits=4)
        two = npu.model_latency(ops, four_bit_ratio=1.0, low_bits=2)
        eight = npu.model_latency(ops, four_bit_ratio=0.0)
        assert two < four < eight

    def test_low_bits_validation(self, npu):
        op = LayerOp("x", m=8, n=32, k=64, feature_channels=64)
        with pytest.raises(ValueError):
            npu.op_cycles(op, 0.5, low_bits=5)

"""Edge-case and failure-injection tests for the FlexiQ core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.bit_extraction import BitExtractionPlan, extraction_shift, lower_bits
from repro.core.layout import ChannelLayout, build_layout_plan
from repro.core.runtime import FlexiQLinear
from repro.core.selection import (
    ChannelSelection,
    SelectionConfig,
    build_layer_groups,
    greedy_selection,
)
from repro.core.scoring import ChannelScore
from repro.nn.layers import Linear
from repro.quant.qmodules import QuantLinear
from repro.tensor import Tensor
from tests.conftest import TinyMLP


class TestExtremeBitwidths:
    def test_all_zero_channel(self):
        """A channel whose calibration max is zero gets shift 0 and no error
        on zero inputs."""
        shift = extraction_shift(np.array([0]), 8, 4)[0]
        assert shift == 0
        assert lower_bits(np.zeros(4), shift, 4).sum() == 0

    def test_two_bit_lowering(self):
        values = np.array([3, -4, 1, 0])
        lowered = lower_bits(values, 0, 2)
        assert lowered.min() >= -2 and lowered.max() <= 1

    def test_plan_with_single_channel(self):
        plan = BitExtractionPlan.from_channel_maxima(np.array([5]), np.array([90]))
        assert plan.num_channels == 1
        grouped = plan.group_reduce(1)
        np.testing.assert_array_equal(grouped.weight_shift, plan.weight_shift)


class TestDegenerateSelections:
    def test_zero_ratio_selection_is_empty(self):
        scores = {
            "x": ChannelScore("x", np.arange(8, dtype=float) + 1, np.ones(8), np.ones(8))
        }
        selection = greedy_selection(scores, 0.0, SelectionConfig(group_size=4))
        assert selection.total_selected() == 0
        assert selection.achieved_ratio() == 0.0

    def test_full_ratio_selects_everything(self):
        scores = {
            "x": ChannelScore("x", np.arange(8, dtype=float) + 1, np.ones(8), np.ones(8))
        }
        selection = greedy_selection(scores, 1.0, SelectionConfig(group_size=4))
        assert selection.achieved_ratio() == 1.0

    def test_single_group_layer(self):
        scores = {
            "x": ChannelScore("x", np.ones(4), np.ones(4), np.ones(4)),
            "y": ChannelScore("y", np.ones(16), np.ones(16), np.ones(16)),
        }
        selection = greedy_selection(scores, 0.5, SelectionConfig(group_size=4))
        assert 0.3 <= selection.achieved_ratio() <= 0.7

    def test_selection_with_base_already_at_target(self):
        scores = {
            "x": ChannelScore("x", np.arange(16, dtype=float) + 1, np.ones(16), np.ones(16))
        }
        config = SelectionConfig(group_size=4)
        half = greedy_selection(scores, 0.5, config)
        again = greedy_selection(scores, 0.5, config, base=half)
        assert again.is_superset_of(half)
        assert again.total_selected() == half.total_selected()


class TestLayoutEdgeCases:
    def test_single_ratio_plan(self):
        scores = {
            "x": ChannelScore("x", np.arange(8, dtype=float) + 1, np.ones(8), np.ones(8))
        }
        selection = greedy_selection(scores, 0.5, SelectionConfig(group_size=4))
        plan = build_layout_plan({0.5: selection})
        layout = plan.layout_for("x")
        assert layout.boundaries == {0.5: 4}
        assert layout.boundary_for(0.49) == 0

    def test_layout_with_nothing_selected(self):
        scores = {
            "x": ChannelScore("x", np.ones(8), np.ones(8), np.ones(8))
        }
        selection = greedy_selection(scores, 0.0, SelectionConfig(group_size=4))
        plan = build_layout_plan({0.0: selection})
        assert plan.layout_for("x").boundary_for(1.0) == 0


class TestRuntimeEdgeCases:
    def _layer(self, in_features=8):
        source = Linear(in_features, 4, rng=np.random.default_rng(0))
        layer = FlexiQLinear(source)
        data = np.random.default_rng(1).normal(size=(16, in_features)).astype(np.float32)
        layer(Tensor(data))
        layer.freeze()
        return layer, data

    def test_unconfigured_layer_behaves_as_int8(self):
        layer, data = self._layer()
        source_like = QuantLinear(Linear(8, 4, rng=np.random.default_rng(0)))
        # An unconfigured FlexiQ layer (no layout) multiplies exactly like the
        # plain int8 kernel.
        out = layer(Tensor(data[:4]))
        assert out.shape == (4, 4)
        assert layer.max_4bit_ch == 0

    def test_boundary_beyond_configured_layout_rejected(self):
        layer, _ = self._layer()
        layout = ChannelLayout("x", np.arange(8), {1.0: 8})
        plan = BitExtractionPlan.naive(8)
        layer.configure(layout, plan)
        with pytest.raises(ValueError):
            layer.set_boundary(9)

    def test_reconfiguration_resets_boundary(self):
        layer, _ = self._layer()
        layout = ChannelLayout("x", np.arange(8), {1.0: 8})
        layer.configure(layout, BitExtractionPlan.naive(8))
        layer.set_boundary(8)
        layer.configure(layout, BitExtractionPlan.naive(8))
        assert layer.max_4bit_ch == 0


class TestPipelineEdgeCases:
    def test_single_ratio_pipeline(self, trained_mlp, calibration_batch):
        config = FlexiQConfig(
            ratios=(1.0,), group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
        )
        runtime = FlexiQPipeline(trained_mlp, calibration_batch, config).run()
        assert runtime.available_ratios == [0.0, 1.0]

    def test_tiny_calibration_set(self, trained_mlp, mlp_dataset):
        config = FlexiQConfig(
            ratios=(0.5,), group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
            fitness_samples=4,
        )
        calibration = mlp_dataset.train_images[:4]
        runtime = FlexiQPipeline(trained_mlp, calibration, config).run()
        runtime.set_ratio(0.5)
        out = runtime(Tensor(mlp_dataset.test_images[:2]))
        assert np.isfinite(out.data).all()

    def test_model_with_only_two_quantizable_layers(self, mlp_dataset):
        """With two layers both are first/last (8-bit) and nothing is selectable;
        the pipeline must still produce a working runtime."""
        from repro.nn.module import Module

        class TwoLayer(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.a = Linear(48, 16, rng=rng)
                self.b = Linear(16, 4, rng=rng)

            def forward(self, x):
                return self.b(self.a(x.reshape(x.shape[0], -1)).relu())

        config = FlexiQConfig(
            ratios=(0.5,), group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
        )
        runtime = FlexiQPipeline(TwoLayer(), mlp_dataset.train_images[:16], config).run()
        runtime.set_ratio(0.5)
        out = runtime(Tensor(mlp_dataset.test_images[:2]))
        assert out.shape == (2, 4)

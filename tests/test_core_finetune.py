"""Tests for the specialized dual-bitwidth finetuning loss (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import (
    FinetuneConfig,
    dual_bitwidth_loss,
    finetune_quantized_model,
    refresh_quantization,
    set_qat_bits,
)
from repro.quant.qmodel import iter_quantized_layers, quantize_model
from repro.tensor import Tensor, no_grad
from repro.train.loop import evaluate_accuracy


@pytest.fixture()
def quantized_mlp(trained_mlp, calibration_batch):
    batches = [calibration_batch[i : i + 16] for i in range(0, 48, 16)]
    return quantize_model(trained_mlp, weight_bits=8, calibration_batches=batches)


def softmax(logits):
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class TestQatSwitch:
    def test_set_qat_bits_toggles_all_layers(self, quantized_mlp):
        set_qat_bits(quantized_mlp, 4)
        assert all(layer.qat_bits == 4 for _, layer in iter_quantized_layers(quantized_mlp))
        set_qat_bits(quantized_mlp, None)
        assert all(layer.qat_bits is None for _, layer in iter_quantized_layers(quantized_mlp))


class TestDualLoss:
    def test_loss_is_differentiable_scalar(self, quantized_mlp, trained_mlp, mlp_dataset):
        images = mlp_dataset.train_images[:16]
        labels = mlp_dataset.train_labels[:16]
        with no_grad():
            soft = softmax(trained_mlp(Tensor(images)).data)
        loss = dual_bitwidth_loss(quantized_mlp, images, labels, soft, FinetuneConfig())
        assert loss.data.size == 1
        loss.backward()
        grads = [p.grad for p in quantized_mlp.parameters() if p.grad is not None]
        assert grads, "dual loss must produce gradients"
        # QAT mode must be switched off afterwards.
        assert all(layer.qat_bits is None for _, layer in iter_quantized_layers(quantized_mlp))

    def test_lambda_weighting(self, quantized_mlp, trained_mlp, mlp_dataset):
        images = mlp_dataset.train_images[:8]
        labels = mlp_dataset.train_labels[:8]
        with no_grad():
            soft = softmax(trained_mlp(Tensor(images)).data)
        low_only = dual_bitwidth_loss(
            quantized_mlp, images, labels, soft, FinetuneConfig(lambda_low=1.0)
        ).item()
        high_only = dual_bitwidth_loss(
            quantized_mlp, images, labels, soft, FinetuneConfig(lambda_low=0.0)
        ).item()
        # Low-bit forward pass is less accurate, so its loss is larger.
        assert low_only > high_only


class TestFinetuning:
    def test_finetuning_improves_low_bit_accuracy(self, trained_mlp, calibration_batch, mlp_dataset):
        batches = [calibration_batch[i : i + 16] for i in range(0, 48, 16)]
        quantized = quantize_model(trained_mlp, weight_bits=4, calibration_batches=batches)
        before = evaluate_accuracy(quantized, mlp_dataset)
        losses = finetune_quantized_model(
            quantized, trained_mlp, mlp_dataset,
            FinetuneConfig(epochs=2, learning_rate=5e-3),
        )
        refresh_quantization(quantized, batches)
        after = evaluate_accuracy(quantized, mlp_dataset)
        assert len(losses) == 2
        assert after >= before - 2.0  # must not regress materially
        # High-bitwidth (here: the 8-bit first/last layers plus QAT-trained
        # weights) stays functional.
        assert after > 25.0

    def test_refresh_quantization_recalibrates(self, quantized_mlp, calibration_batch):
        # Perturb weights as finetuning would, then refresh.
        for _, layer in iter_quantized_layers(quantized_mlp):
            layer.weight.data = layer.weight.data * 1.5
        old_scales = {
            name: layer.weight_qparams.scale.copy()
            for name, layer in iter_quantized_layers(quantized_mlp)
        }
        batches = [calibration_batch[i : i + 16] for i in range(0, 48, 16)]
        refresh_quantization(quantized_mlp, batches)
        for name, layer in iter_quantized_layers(quantized_mlp):
            assert not layer.calibrating
            assert not np.allclose(layer.weight_qparams.scale, old_scales[name])

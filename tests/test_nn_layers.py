"""Tests for the core layers (Linear, Conv2d, normalisation, pooling, dropout)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape_and_math(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[1, 0, 0], [0, 2, 0]], dtype=np.float32)
        layer.bias.data = np.array([1, -1], dtype=np.float32)
        out = layer(Tensor(np.array([[1.0, 2.0, 3.0]], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [[2.0, 3.0]])

    def test_no_bias(self):
        layer = Linear(4, 4, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer.num_parameters() == 16

    def test_feature_channels_is_input_dim(self):
        assert Linear(7, 3, rng=np.random.default_rng(0)).feature_channels == 7

    def test_batched_token_input(self):
        layer = Linear(8, 5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 6, 8), dtype=np.float32)))
        assert out.shape == (2, 6, 5)

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 3), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad.shape == (2, 3)
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_feature_channels(self):
        assert Conv2d(5, 8, 3, rng=np.random.default_rng(0)).feature_channels == 5

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 8, 3, groups=2)

    def test_depthwise_parameter_count(self):
        conv = Conv2d(8, 8, 3, groups=8, bias=False, rng=np.random.default_rng(0))
        assert conv.weight.size == 8 * 1 * 9

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, 1, bias=False, rng=np.random.default_rng(0))
        conv.weight.data[:] = 1.0
        x = np.random.default_rng(0).normal(size=(1, 1, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(conv(Tensor(x)).data, x, atol=1e-6)


class TestNormalisation:
    def test_batchnorm_train_normalises(self):
        bn = BatchNorm2d(4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        out = bn(x).data
        assert abs(out.mean()) < 1e-3
        assert abs(out.std() - 1.0) < 1e-2

    def test_batchnorm_updates_running_stats(self):
        bn = BatchNorm2d(2)
        before = bn.running_mean.copy()
        x = Tensor(np.random.default_rng(0).normal(5, 1, size=(4, 2, 3, 3)).astype(np.float32))
        bn(x)
        assert not np.allclose(bn.running_mean, before)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.update_buffer("running_mean", np.array([1.0, 2.0], dtype=np.float32))
        bn.update_buffer("running_var", np.array([4.0, 9.0], dtype=np.float32))
        bn.eval()
        x = Tensor(np.ones((1, 2, 1, 1), dtype=np.float32))
        out = bn(x).data.reshape(-1)
        np.testing.assert_allclose(out, [(1 - 1) / 2, (1 - 2) / 3], atol=1e-3)

    def test_layernorm_normalises_last_dim(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(1).normal(4, 3, size=(5, 16)).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    def test_layernorm_affine_params_used(self):
        ln = LayerNorm(4)
        ln.weight.data[:] = 2.0
        ln.bias.data[:] = 1.0
        x = Tensor(np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32))
        out = ln(x).data
        assert out.mean() == pytest.approx(1.0, abs=1e-4)


class TestSimpleLayers:
    def test_relu_and_relu6(self):
        x = Tensor(np.array([-2.0, 3.0, 8.0], dtype=np.float32))
        np.testing.assert_allclose(ReLU()(x).data, [0, 3, 8])
        np.testing.assert_allclose(ReLU6()(x).data, [0, 3, 6])

    def test_gelu_monotone_for_positive(self):
        x = Tensor(np.linspace(0.5, 3, 6).astype(np.float32))
        out = GELU()(x).data
        assert (np.diff(out) > 0).all()

    def test_identity(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert Identity()(x) is x

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert Flatten()(x).shape == (2, 48)

    def test_pooling_layers(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        assert AvgPool2d(2)(x).shape == (1, 1, 2, 2)
        assert MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 1)

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = Dropout(0.5)
        drop.train()
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = drop(x).data
        # Kept entries are scaled by 1/(1-p) = 2.
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

"""End-to-end smoke tests for the example scripts.

Examples are the repo's living documentation and rot silently when APIs
move; each test runs a script exactly the way the docs say to
(``python examples/<name>.py`` with ``src`` on the path) and asserts a
clean exit plus the landmark output each scenario promises.  The heavier
examples (``adaptive_serving``, ``llm_case_study``, ``hardware_latency_tour``)
are exercised by the figure benchmarks already; these cover the quickstart
path and the serving-cluster tours (placement/autoscaling and resilience).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"


def run_example(name: str, timeout: float = 300.0, args: tuple = ()) -> str:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *map(str, args)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=str(ROOT),
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    return result.stdout


def test_quickstart_runs_end_to_end():
    # The slowest of the three (~6 s warm, a few minutes if the pretrain
    # cache is cold); the generous timeout covers cold CI runners.
    out = run_example("quickstart.py", timeout=600.0)
    assert "accuracy vs precision" in out
    assert "full precision" in out and "uniform INT8" in out
    assert "average weight bits" in out


def test_cluster_serving_runs_end_to_end():
    out = run_example("cluster_serving.py")
    assert "Multi-server dispatch" in out
    assert "Deadline attainment" in out
    assert "ratio policy" in out


def test_autoscaling_cluster_runs_end_to_end():
    out = run_example("autoscaling_cluster.py")
    assert "Heterogeneous placement" in out
    assert "Elastic autoscaling" in out
    assert "Per-server adaptive ratios" in out
    # The demo's promise: scale-up and scale-down both happened.
    assert "add server" in out and "remove server" in out


def test_resilient_cluster_runs_end_to_end():
    out = run_example("resilient_cluster.py")
    assert "Fault plane" in out
    assert "Predictive placement" in out
    # The demo's promise: the crash really cost the baseline its SLO and
    # migration really saved it.
    assert "NO" in out and "Migration rescued" in out
    assert "crash server 0" in out and "recover server 0" in out


def test_continuous_batching_runs_end_to_end():
    out = run_example("continuous_batching.py")
    assert "Continuous batching" in out
    assert "run-to-completion" in out
    # The headline claim: continuous wins on both streaming axes.
    assert "beats run-to-completion on both axes" in out
    # The mid-sequence precision story: the decode-pressure policy really
    # flipped the ratio while sequences were in flight.
    assert "mid-sequence precision" in out
    assert "made 0 mid-sequence" not in out


def test_zone_outage_runs_end_to_end():
    out = run_example("zone_outage.py")
    assert "Failure domains" in out
    assert "Zone A outage" in out
    # The flat single-domain cluster misses the SLO the others meet.
    assert "NO" in out
    assert "Warm spares beat cold standby" in out
    # Warm-spare promotion/demotion landed on the merged timeline with
    # the crash's failure-domain tag.
    assert "promote server" in out and "demote server" in out
    assert "[zone:A]" in out


def test_observability_demo_runs_end_to_end(tmp_path):
    trace_path = tmp_path / "trace.json"
    out = run_example("observability_demo.py", args=(trace_path,))
    assert "Observability demo" in out
    # Request conservation held across the outage's preemptions/migrations.
    assert "one terminal each: yes" in out
    # Both burn-rate severities fired on the latency objective.
    assert "[  page] latency_150ms" in out
    assert "[ticket] latency_150ms" in out
    assert "Perfetto trace written" in out
    assert "Prometheus exposition (head):" in out
    # The written artifact is loadable, schema-valid Chrome trace JSON.
    import json

    sys.path.insert(0, str(ROOT / "src"))
    from repro.obs import validate_chrome_trace

    trace = json.loads(trace_path.read_text())
    validate_chrome_trace(trace)
    assert len(trace["traceEvents"]) > 100

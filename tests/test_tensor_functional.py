"""Tests for functional ops: convolution, pooling, activations and losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.functional import col2im, im2col


def naive_conv2d(x, w, b, stride=1, padding=0):
    """Direct convolution reference used to validate the im2col path."""
    n, c, h, width = x.shape
    out_ch, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, out_ch, out_h, out_w), dtype=np.float64)
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestIm2Col:
    def test_roundtrip_counts(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols, (oh, ow) = im2col(x, (3, 3), stride=1, padding=1)
        assert cols.shape == (2, 36, 27)
        assert (oh, ow) == (6, 6)
        # col2im of ones counts how many windows cover each pixel.
        counts = col2im(np.ones_like(cols), x.shape, (3, 3), 1, 1)
        assert counts.max() == 9  # interior pixels covered by all 9 taps
        assert counts.min() == 4  # corners covered by 4

    def test_stride_output_size(self):
        x = np.zeros((1, 1, 8, 8), dtype=np.float32)
        _, (oh, ow) = im2col(x, (3, 3), stride=2, padding=1)
        assert (oh, ow) == (4, 4)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)).astype(np.float32))
        b = Tensor(rng.normal(size=(5,)).astype(np.float32))
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        expected = naive_conv2d(x.data, w.data, b.data, stride, padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-4)

    def test_grouped_conv_shapes(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(1, 4, 6, 6)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 1, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, None, padding=1, groups=4)
        assert out.shape == (1, 4, 6, 6)

    def test_grouped_equals_blockdiag_dense(self):
        """A grouped conv must equal a dense conv with a block-diagonal kernel."""
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 4, 5, 5)).astype(np.float32))
        w_group = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        dense = np.zeros((4, 4, 3, 3), dtype=np.float32)
        dense[0:2, 0:2] = w_group[0:2]
        dense[2:4, 2:4] = w_group[2:4]
        out_grouped = F.conv2d(x, Tensor(w_group), None, padding=1, groups=2)
        out_dense = F.conv2d(x, Tensor(dense), None, padding=1)
        np.testing.assert_allclose(out_grouped.data, out_dense.data, atol=1e-4)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradients_flow(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape
        # Bias gradient is the number of output positions per channel.
        np.testing.assert_allclose(b.grad, np.full(3, 25.0), atol=1e-4)

    def test_weight_gradient_numeric(self):
        rng = np.random.default_rng(5)
        x_np = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        w_np = rng.normal(size=(2, 2, 3, 3)).astype(np.float32)

        def loss_for(weights):
            out = F.conv2d(Tensor(x_np), Tensor(weights), None, padding=1)
            return float((out * out).sum().data)

        w = Tensor(w_np.copy(), requires_grad=True)
        out = F.conv2d(Tensor(x_np), w, None, padding=1)
        (out * out).sum().backward()

        eps = 1e-3
        index = (1, 0, 1, 2)
        perturbed = w_np.copy()
        perturbed[index] += eps
        plus = loss_for(perturbed)
        perturbed[index] -= 2 * eps
        minus = loss_for(perturbed)
        numeric = (plus - minus) / (2 * eps)
        assert w.grad[index] == pytest.approx(numeric, rel=5e-2)


class TestPooling:
    def test_avg_pool(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data.reshape(-1), [2.5, 4.5, 10.5, 12.5])

    def test_max_pool(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data.reshape(-1), [5, 7, 13, 15])

    def test_max_pool_gradient_selects_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == 4
        assert x.grad[0, 0, 1, 1] == 1.0

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 1.0)


class TestActivations:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 7)).astype(np.float32))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0, atol=1e-5)
        assert (probs.data >= 0).all()

    def test_softmax_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-5
        )

    def test_gelu_values(self):
        x = Tensor(np.array([0.0, 10.0, -10.0], dtype=np.float32))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(10.0, rel=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    def test_relu6_clips(self):
        x = Tensor(np.array([-1.0, 3.0, 9.0], dtype=np.float32))
        np.testing.assert_allclose(F.relu6(x).data, [0.0, 3.0, 6.0])

    def test_silu(self):
        x = Tensor(np.array([0.0], dtype=np.float32))
        assert F.silu(x).data[0] == pytest.approx(0.0)

    def test_layer_norm_statistics(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 16)).astype(np.float32))
        weight = Tensor(np.ones(16, dtype=np.float32))
        bias = Tensor(np.zeros(16, dtype=np.float32))
        out = F.layer_norm(x, weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-4)

    def test_cross_entropy_confident(self):
        logits = np.full((1, 3), -10.0, dtype=np.float32)
        logits[0, 1] = 10.0
        loss = F.cross_entropy(Tensor(logits), np.array([1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([2])).backward()
        # Gradient pushes the target logit up (negative grad) and others down.
        assert logits.grad[0, 2] < 0
        assert logits.grad[0, 0] > 0

    def test_soft_cross_entropy_matches_hard_for_onehot(self):
        rng = np.random.default_rng(3)
        logits_np = rng.normal(size=(4, 5)).astype(np.float32)
        labels = np.array([1, 0, 3, 2])
        onehot = np.eye(5, dtype=np.float32)[labels]
        hard = F.cross_entropy(Tensor(logits_np), labels).item()
        soft = F.soft_cross_entropy(Tensor(logits_np), onehot).item()
        assert hard == pytest.approx(soft, rel=1e-5)

    def test_mse_loss(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        b = Tensor(np.array([0.0, 0.0], dtype=np.float32))
        assert F.mse_loss(a, b).item() == pytest.approx(2.5)

    def test_accuracy(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]], dtype=np.float32)
        assert F.accuracy(logits, np.array([1, 0])) == 1.0
        assert F.accuracy(logits, np.array([0, 0])) == 0.5

"""Tests for the FlexiQ mixed-precision runtime layers and model wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bit_extraction import BitExtractionPlan
from repro.core.layout import ChannelLayout
from repro.core.runtime import FlexiQConv2d, FlexiQLinear, FlexiQModel
from repro.hardware.kernels import mixed_gemm_reference
from repro.nn.layers import Conv2d, Linear
from repro.quant.qmodules import QuantConv2d, QuantLinear
from repro.quant.quantizers import quantize
from repro.tensor import Tensor, no_grad


def calibrated_flexiq_linear(in_f=16, out_f=8, seed=0):
    rng = np.random.default_rng(seed)
    source = Linear(in_f, out_f, rng=rng)
    # Give feature channels different dynamic ranges so extraction matters.
    scales = np.repeat([0.1, 0.4, 1.0, 2.0], in_f // 4).astype(np.float32)
    source.weight.data = source.weight.data * scales[None, :]
    layer = FlexiQLinear(source)
    data = (rng.normal(size=(64, in_f)) * scales[None, :]).astype(np.float32)
    layer(Tensor(data))
    layer.freeze()
    return source, layer, data


def identity_layout(channels):
    return ChannelLayout("layer", np.arange(channels), {1.0: channels})


def plan_for(layer):
    q_weight = quantize(layer.weight.data, layer.weight_qparams)
    weight_max = np.abs(q_weight.reshape(q_weight.shape[0], layer.feature_channels, -1)).max(axis=(0, 2))
    act_range = layer.input_channel_range()
    act_max = np.clip(np.round(act_range.max_abs / layer.act_qparams.scale), 0, 127)
    return BitExtractionPlan.from_channel_maxima(weight_max, act_max)


class TestConfiguration:
    def test_configure_permutes_plan(self):
        _, layer, _ = calibrated_flexiq_linear()
        plan = plan_for(layer)
        order = np.arange(16)[::-1].copy()
        layout = ChannelLayout("layer", order, {1.0: 16})
        layer.configure(layout, plan, group_size=1)
        np.testing.assert_array_equal(layer.extraction_plan.weight_shift, plan.weight_shift[order])

    def test_configure_wrong_channel_count_raises(self):
        _, layer, _ = calibrated_flexiq_linear()
        with pytest.raises(ValueError):
            layer.configure(identity_layout(8), plan_for(layer))
        with pytest.raises(ValueError):
            layer.configure(identity_layout(16), BitExtractionPlan.naive(8))

    def test_set_boundary_bounds(self):
        _, layer, _ = calibrated_flexiq_linear()
        layer.configure(identity_layout(16), plan_for(layer))
        with pytest.raises(ValueError):
            layer.set_boundary(17)
        with pytest.raises(RuntimeError):
            FlexiQLinear(Linear(4, 4, rng=np.random.default_rng(0))).set_boundary(1)

    def test_set_ratio_uses_layout_boundaries(self):
        _, layer, _ = calibrated_flexiq_linear()
        layout = ChannelLayout("layer", np.arange(16), {0.5: 8, 1.0: 16})
        layer.configure(layout, plan_for(layer))
        layer.set_ratio(0.5)
        assert layer.max_4bit_ch == 8
        layer.set_ratio(1.0)
        assert layer.max_4bit_ch == 16
        layer.set_ratio(0.0)
        assert layer.max_4bit_ch == 0

    def test_effective_weight_bits(self):
        _, layer, _ = calibrated_flexiq_linear()
        layer.configure(identity_layout(16), plan_for(layer))
        layer.set_boundary(8)
        assert layer.effective_weight_bits() == pytest.approx(6.0)
        assert layer.current_4bit_fraction() == pytest.approx(0.5)


class TestMixedPrecisionNumerics:
    def test_boundary_zero_matches_plain_int8_layer(self):
        source, layer, data = calibrated_flexiq_linear()
        reference = QuantLinear(source)
        reference(Tensor(data))
        reference.freeze()
        layer.configure(identity_layout(16), plan_for(layer))
        layer.set_boundary(0)
        x = Tensor(data[:8])
        np.testing.assert_allclose(layer(x).data, reference(x).data, atol=1e-5)

    def test_matches_hardware_kernel_reference(self):
        _, layer, data = calibrated_flexiq_linear()
        plan = plan_for(layer)
        layer.configure(identity_layout(16), plan, group_size=1)
        layer.set_boundary(8)
        x = data[:4]
        q_x = quantize(x, layer.act_qparams)
        q_w = quantize(layer.weight.data, layer.weight_qparams)
        acc = mixed_gemm_reference(
            q_x, q_w, boundary=8,
            act_shift=layer.extraction_plan.act_shift,
            weight_shift=layer.extraction_plan.weight_shift,
        )
        expected = acc * (layer.act_qparams.scale * layer.weight_qparams.scale)[None, :]
        expected = expected + layer.bias.data[None, :]
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-4, rtol=1e-4)

    def test_full_4bit_with_extraction_beats_naive_lowering(self):
        source, layer, data = calibrated_flexiq_linear(seed=3)
        x = Tensor(data[:16])
        with no_grad():
            reference = source(x).data
        plan = plan_for(layer)
        layer.configure(identity_layout(16), plan, group_size=1)
        layer.set_boundary(16)
        err_flexi = np.abs(layer(x).data - reference).mean()
        layer.configure(identity_layout(16), BitExtractionPlan.naive(16), group_size=1)
        layer.set_boundary(16)
        err_naive = np.abs(layer(x).data - reference).mean()
        assert err_flexi <= err_naive + 1e-6

    def test_error_monotone_in_ratio(self):
        source, layer, data = calibrated_flexiq_linear(seed=5)
        layer.configure(identity_layout(16), plan_for(layer), group_size=4)
        x = Tensor(data[:16])
        with no_grad():
            reference = source(x).data
        errors = []
        for boundary in (0, 8, 16):
            layer.set_boundary(boundary)
            errors.append(float(np.abs(layer(x).data - reference).mean()))
        assert errors[0] <= errors[1] + 1e-6 <= errors[2] + 2e-6

    def test_dynamic_extraction_helps_saturated_channels(self):
        """Channels whose runtime range exceeds the calibrated range saturate the
        static extraction window; dynamic extraction widens it (Section 8.6)."""
        _, layer, data = calibrated_flexiq_linear(seed=7)
        layer.configure(identity_layout(16), plan_for(layer), group_size=4)
        layer.set_boundary(16)
        # Blow up only the small-range channels (first quarter) so their values
        # stay inside the per-tensor 8-bit range but exceed their own
        # calibration-time maxima.
        x_big = data[:16].copy()
        x_big[:, :4] *= 6.0
        with no_grad():
            reference = Tensor(x_big).matmul(Tensor(layer.weight.data.T)).data + layer.bias.data
        static_err = np.abs(layer(Tensor(x_big)).data - reference).mean()
        layer.set_dynamic_extraction(True)
        dynamic_err = np.abs(layer(Tensor(x_big)).data - reference).mean()
        layer.set_dynamic_extraction(False)
        assert dynamic_err < static_err

    def test_permuted_layout_equivalent_to_identity_at_full_ratio(self):
        _, layer, data = calibrated_flexiq_linear(seed=9)
        plan = plan_for(layer)
        x = Tensor(data[:8])
        layer.configure(identity_layout(16), plan, group_size=1)
        layer.set_boundary(16)
        identity_out = layer(x).data.copy()
        order = np.random.default_rng(0).permutation(16)
        layer.configure(ChannelLayout("layer", order, {1.0: 16}), plan, group_size=1)
        layer.set_boundary(16)
        permuted_out = layer(x).data
        np.testing.assert_allclose(identity_out, permuted_out, atol=1e-5)


class TestFlexiQConv:
    def _calibrated_conv(self, seed=0):
        rng = np.random.default_rng(seed)
        source = Conv2d(8, 6, 3, padding=1, rng=rng)
        scales = np.repeat([0.1, 0.5, 1.0, 2.0], 2).astype(np.float32)
        source.weight.data = source.weight.data * scales[None, :, None, None]
        layer = FlexiQConv2d(source)
        data = (rng.normal(size=(16, 8, 6, 6)) * scales[None, :, None, None]).astype(np.float32)
        layer(Tensor(data))
        layer.freeze()
        return source, layer, data

    def test_boundary_zero_matches_quantconv(self):
        source, layer, data = self._calibrated_conv()
        reference = QuantConv2d(source)
        reference(Tensor(data))
        reference.freeze()
        plan_w = np.abs(quantize(layer.weight.data, layer.weight_qparams)).reshape(6, 8, -1).max(axis=(0, 2))
        act_max = np.clip(np.round(layer.input_channel_range().max_abs / layer.act_qparams.scale), 0, 127)
        layer.configure(identity_layout(8), BitExtractionPlan.from_channel_maxima(plan_w, act_max))
        layer.set_boundary(0)
        x = Tensor(data[:4])
        np.testing.assert_allclose(layer(x).data, reference(x).data, atol=1e-4)

    def test_error_increases_with_ratio_but_stays_bounded(self):
        source, layer, data = self._calibrated_conv(seed=2)
        plan_w = np.abs(quantize(layer.weight.data, layer.weight_qparams)).reshape(6, 8, -1).max(axis=(0, 2))
        act_max = np.clip(np.round(layer.input_channel_range().max_abs / layer.act_qparams.scale), 0, 127)
        layer.configure(identity_layout(8), BitExtractionPlan.from_channel_maxima(plan_w, act_max), group_size=4)
        x = Tensor(data[:4])
        with no_grad():
            reference = source(x).data
        layer.set_boundary(0)
        err_8 = np.abs(layer(x).data - reference).mean()
        layer.set_boundary(8)
        err_4 = np.abs(layer(x).data - reference).mean()
        assert err_8 <= err_4
        assert err_4 < 0.2 * np.abs(reference).mean() + 1e-3


class TestFlexiQModelWrapper:
    def test_available_ratios_include_zero(self, flexiq_runtime):
        assert flexiq_runtime.available_ratios[0] == 0.0
        assert 1.0 in flexiq_runtime.available_ratios

    def test_set_ratio_updates_all_layers(self, flexiq_runtime):
        flexiq_runtime.set_ratio(1.0)
        fractions = flexiq_runtime.per_layer_4bit_fraction()
        configured = [
            fraction for name, fraction in fractions.items()
            if name in flexiq_runtime.layout_plan.layouts
        ]
        assert all(fraction == pytest.approx(1.0) for fraction in configured)
        flexiq_runtime.set_ratio(0.0)
        assert all(
            fraction == 0.0 for fraction in flexiq_runtime.per_layer_4bit_fraction().values()
        )

    def test_average_weight_bits_decreases_with_ratio(self, flexiq_runtime):
        flexiq_runtime.set_ratio(0.0)
        bits_high = flexiq_runtime.average_weight_bits()
        flexiq_runtime.set_ratio(1.0)
        bits_low = flexiq_runtime.average_weight_bits()
        flexiq_runtime.set_ratio(0.0)
        assert bits_low < bits_high <= 8.0

    def test_forward_works_at_every_ratio(self, flexiq_runtime, calibration_batch):
        x = Tensor(calibration_batch[:4])
        for ratio in flexiq_runtime.available_ratios:
            flexiq_runtime.set_ratio(ratio)
            out = flexiq_runtime(x)
            assert out.shape == (4, 4)
            assert np.isfinite(out.data).all()
        flexiq_runtime.set_ratio(0.0)

"""Tests for the baseline quantization schemes (uniform, HAWQ, multi-precision)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.anyprecision import AnyPrecisionConfig, anyprecision_finetune
from repro.baselines.hawq import hawq_layerwise_quantize, layer_sensitivities
from repro.baselines.ptmq import ptmq_average_bit_assignment, ptmq_quantize
from repro.baselines.robustquant import (
    RobustQuantConfig,
    evaluate_at_bits,
    robustquant_finetune,
)
from repro.baselines.uniform import quantize_uniform, uniform_accuracy_sweep
from repro.quant.qmodel import iter_quantized_layers, model_average_bits
from repro.train.loop import evaluate_accuracy


@pytest.fixture(scope="module")
def setup(request):
    """Trained MLP, dataset and calibration shared by the baseline tests."""
    trained = request.getfixturevalue("trained_mlp")
    dataset = request.getfixturevalue("mlp_dataset")
    calibration = request.getfixturevalue("calibration_batch")
    return trained, dataset, calibration


class TestUniform:
    def test_sweep_orders_bitwidths(self, setup):
        model, dataset, calibration = setup
        sweep = uniform_accuracy_sweep(model, dataset, calibration, bit_widths=(2, 4, 8))
        assert set(sweep) == {2, 4, 8}
        assert sweep[8] >= sweep[2] - 3.0
        assert sweep[8] > 40.0

    def test_quantize_uniform_first_last_protected(self, setup):
        model, _, calibration = setup
        batches = [calibration[:32]]
        quantized = quantize_uniform(model, 4, batches)
        layers = iter_quantized_layers(quantized)
        assert layers[0][1].weight_bits == 8
        assert layers[-1][1].weight_bits == 8


class TestHawq:
    def test_sensitivities_positive_per_layer(self, setup):
        model, _, calibration = setup
        sens = layer_sensitivities(model, calibration[:32])
        assert len(sens) == 3
        assert all(value >= 0 for value in sens.values())

    def test_target_average_bits_reached(self, setup):
        model, dataset, calibration = setup
        result = hawq_layerwise_quantize(model, calibration[:32], target_average_bits=6.0)
        assert result.average_bits() <= 8.0
        assert set(result.layer_bits.values()) <= {4, 8}
        # The middle layer (only flippable one here) went to 4-bit.
        middle = list(result.layer_bits.values())[1]
        assert middle == 4
        acc = evaluate_accuracy(result.model, dataset)
        assert acc > 30.0

    def test_high_target_keeps_everything_8bit(self, setup):
        model, _, calibration = setup
        result = hawq_layerwise_quantize(model, calibration[:32], target_average_bits=8.0)
        assert set(result.layer_bits.values()) == {8}


class TestPtmq:
    def test_scale_sets_per_bitwidth(self, setup):
        model, dataset, calibration = setup
        ptmq = ptmq_quantize(model, calibration, bit_choices=(4, 6, 8))
        assert set(ptmq.scale_sets) == {4, 6, 8}
        # Scales grow as bitwidth shrinks (same range, fewer levels).
        name = next(iter(ptmq.scale_sets[4]))
        assert ptmq.scale_sets[4][name]["weight"].scale.mean() > (
            ptmq.scale_sets[8][name]["weight"].scale.mean()
        )

    def test_set_global_bits_switches_accuracy(self, setup):
        model, dataset, calibration = setup
        ptmq = ptmq_quantize(model, calibration, bit_choices=(4, 8))
        ptmq.set_global_bits(8)
        acc8 = ptmq.accuracy(dataset)
        ptmq.set_global_bits(4)
        acc4 = ptmq.accuracy(dataset)
        assert acc8 >= acc4 - 3.0
        assert ptmq.average_bits() == pytest.approx(4.0)

    def test_uncalibrated_bitwidth_rejected(self, setup):
        model, _, calibration = setup
        ptmq = ptmq_quantize(model, calibration, bit_choices=(4, 8))
        with pytest.raises(ValueError):
            ptmq.set_global_bits(6)

    def test_average_bit_assignment(self, setup):
        model, _, calibration = setup
        ptmq = ptmq_quantize(model, calibration, bit_choices=(4, 8))
        assignment = ptmq_average_bit_assignment(ptmq, target_average_bits=6.0)
        ptmq.set_layer_bits(assignment)
        assert ptmq.average_bits() <= 8.0
        layers = list(assignment)
        # First/last protected.
        assert assignment[layers[0]] == 8
        assert assignment[layers[-1]] == 8


class TestRobustQuantAndAnyPrecision:
    def test_robustquant_usable_at_multiple_bitwidths(self, setup):
        model, dataset, calibration = setup
        robust = robustquant_finetune(
            model, dataset, calibration,
            RobustQuantConfig(epochs=1, bit_choices=(4, 8), learning_rate=5e-3),
        )
        acc8 = evaluate_at_bits(robust, dataset, 8, calibration)
        acc4 = evaluate_at_bits(robust, dataset, 4, calibration)
        assert acc8 > 40.0
        assert acc4 > 25.0  # above chance after robustness training

    def test_anyprecision_runs_and_keeps_accuracy(self, setup):
        model, dataset, calibration = setup
        any_precision = anyprecision_finetune(
            model, dataset, calibration,
            AnyPrecisionConfig(epochs=1, bit_choices=(4, 8), learning_rate=5e-3),
        )
        acc = evaluate_accuracy(any_precision, dataset)
        assert acc > 40.0
        assert model_average_bits(any_precision) == pytest.approx(8.0)

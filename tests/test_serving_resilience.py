"""Tests for the resilience subsystem (faults, preemption & migration).

Covers the three pieces of :mod:`repro.serving.resilience` and their engine
and control-plane hooks:

* **Fault plane** — `FaultEvent`/`FaultSchedule` validation, slowdown
  throttling through `DegradableExecutor`, per-server health in
  `ServerSpec`, fault events on the telemetry timeline.
* **Preemption & migration** — `ServingEngine.preempt_server` rewinds
  unfinished batches exactly (records, latencies, responses, busy time,
  telemetry); migration policies requeue/drop the victims; the invariants:
  no request served twice, none silently lost, deadline-expired migrants
  counted as drops, migration latency charged explicitly.
* **Predictive placement** — telemetry-EWMA placement routes around a
  degraded server the nominal-speed placers keep trusting; batch-size-aware
  service estimators replace the scalar reference-batch speed.
* **Acceptance** — the `examples/resilient_cluster.py` scenario: a mid-run
  crash where the migrating cluster meets the p99 deadline-attainment SLO
  the non-migrating baseline misses; K=1 FIFO stays bit-identical to the
  seed with every resilience feature off.
* **Correlated failures** — two servers lost in the same window, a second
  crash landing while the first crash's migrants are still paying their
  migration delay, and a zone outage taking out every affine server of a
  model; the conservation invariants hold throughout.
* **Zone-outage acceptance** — the `examples/zone_outage.py` scenario:
  spread placement + warm spares meet the deadline-attainment SLO the flat
  single-domain cluster misses, and beat cold standby on p99.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data.traces import PoissonTrace
from repro.serving import (
    BatchExecution,
    BatchingConfig,
    ClusterEngine,
    DegradableExecutor,
    DropExpiredMigration,
    EdfScheduler,
    FaultEvent,
    FaultSchedule,
    LeastOutstandingWorkPlacer,
    Migrant,
    ModelAffinityPlacer,
    ModeledExecutor,
    PlacementContext,
    PredictivePlacer,
    QueueDepthAutoscaler,
    RedistributeMigration,
    Request,
    RequeueAtHeadMigration,
    ServerSpec,
    ServingEngine,
    ServingSimulator,
    WeightedSpeedPlacer,
    gpu_server,
    requests_from_trace,
    summarize_migrations,
)
from repro.serving.simulator import ServiceTimeModel


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))


class FixedExecutor:
    """Deterministic executor: every batch takes exactly ``seconds``."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)

    def execute(self, batch, mode, ratio):
        return BatchExecution(service_time=self.seconds)


def conserve(result, admitted: int) -> None:
    """The migration invariants: one terminal outcome per request.

    Served + dropped == admitted (none lost), batch records cover exactly
    the served requests (none served twice — a double-served request would
    appear in two records), and recorded responses agree slot by slot.
    """
    served = result.latencies.size
    assert served + result.dropped == admitted
    assert sum(record.size for record in result.batch_records) == served
    if result.responses is not None:
        assert len(result.responses) == admitted
        assert all(response is not None for response in result.responses)
        assert sum(1 for r in result.responses if not r.dropped) == served
        assert sum(1 for r in result.responses if r.dropped) == result.dropped


# ----------------------------------------------------------------------
# Fault plane primitives
# ----------------------------------------------------------------------
class TestFaultPlane:
    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, server=0, kind="explode")
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, server=0, kind="crash")
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, server=-1, kind="crash")
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, server=0, kind="slowdown", factor=0.5)

    def test_schedule_sorted_and_single_crash(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=5.0, server=1, kind="recover"),
                FaultEvent(time=2.0, server=1, kind="crash"),
            ]
        )
        assert [event.time for event in schedule] == [2.0, 5.0]
        assert schedule.servers == [1]
        crash = FaultSchedule.single_crash(0, at=1.0, recover_at=3.0)
        assert [event.kind for event in crash] == ["crash", "recover"]
        with pytest.raises(ValueError):
            FaultSchedule.single_crash(0, at=2.0, recover_at=1.0)

    def test_schedule_rejects_unknown_server(self, service_model):
        spec = gpu_server("g", "vit_base", gpu="a6000")
        with pytest.raises(ValueError):
            ClusterEngine(
                [spec], fault_schedule=FaultSchedule.single_crash(3, at=1.0)
            )

    def test_degradable_executor_stretches_service_time(self):
        wrapper = DegradableExecutor(FixedExecutor(0.5))
        batch = None
        assert wrapper.execute(batch, "int8", 0.0).service_time == 0.5
        wrapper.factor = 4.0
        assert wrapper.execute(batch, "int8", 0.0).service_time == 2.0
        wrapper.factor = 1.0
        assert wrapper.execute(batch, "int8", 0.0).service_time == 0.5

    def test_server_spec_health_state(self):
        spec = gpu_server("g", "vit_base", gpu="a6000")
        assert spec.health == "healthy" and spec.available
        spec.degrade(3.0)
        assert spec.health == "degraded" and spec.slow_factor == 3.0
        assert spec.available
        spec.fail()
        assert not spec.available
        spec.recover()
        assert spec.health == "healthy" and spec.slow_factor == 1.0
        with pytest.raises(ValueError):
            spec.degrade(1.0)


# ----------------------------------------------------------------------
# Engine-level preemption
# ----------------------------------------------------------------------
class TestPreemption:
    def _start(self, num_requests=8, num_servers=2, seconds=1.0, max_batch=4):
        engine = ServingEngine(
            BatchingConfig(max_batch=max_batch), num_servers=num_servers
        )
        engine.register("m", FixedExecutor(seconds), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i)
                for i in range(num_requests)
            ]
        )
        return engine

    def test_crash_rewinds_running_and_future_batches(self):
        engine = self._start()
        # Batches (4 requests each): server 0 [0,1), server 1 [0,1).
        first = engine.step()
        second = engine.step()
        assert (first.server, second.server) == (0, 1)
        report = engine.preempt_server(
            0, 0.5, policy=RequeueAtHeadMigration(), kill_running=True
        )
        assert (report.batches, report.migrated, report.dropped) == (1, 4, 0)
        # The crashed server's clock rewound to the kill point; its wasted
        # busy time (0.5s of a 1s batch) stays billed.
        session = engine._session
        assert session.free_at[0] == 0.5
        assert session.busy[0] == 0.5
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 8)
        assert result.migrated == 4
        # Migrants re-served on the surviving server, not before the crash.
        migrated = [r for r in result.responses if r.migrations == 1]
        assert len(migrated) == 4
        assert all(r.server == 1 and r.start_time >= 0.5 for r in migrated)

    def test_graceful_preemption_spares_the_running_batch(self):
        engine = self._start(num_requests=12, num_servers=1)
        first = engine.step()   # [0, 1)
        second = engine.step()  # [1, 2)
        third = engine.step()   # [2, 3)
        assert (first.start, second.start, third.start) == (0.0, 1.0, 2.0)
        report = engine.preempt_server(
            0, 1.5, policy=RequeueAtHeadMigration(), kill_running=False
        )
        # Only the not-yet-started batch ([2,3)) is rewound; the running
        # batch ([1,2)) drains normally and the clock stays at its finish.
        assert (report.batches, report.migrated) == (1, 4)
        assert engine._session.free_at[0] == 2.0
        result = engine.finish()
        conserve(result, 12)
        assert result.migrated == 4

    def test_preempt_without_victims_is_a_no_op(self):
        engine = self._start()
        record = engine.step()
        report = engine.preempt_server(1, 0.5, kill_running=True)
        assert (report.batches, report.migrated, report.dropped) == (0, 0, 0)
        before = list(engine._session.free_at)
        result = engine.finish()
        conserve(result, 8)
        assert record in result.batch_records
        assert before[0] == record.finish

    def test_preemption_without_policy_drops_the_work(self):
        engine = self._start()
        engine.step()
        report = engine.preempt_server(0, 0.5, policy=None, kill_running=True)
        assert (report.migrated, report.dropped) == (0, 4)
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 8)
        assert result.dropped == 4
        dropped = [r for r in result.responses if r.dropped]
        assert all(r.migrations == 0 for r in dropped)

    def test_migration_latency_charged_explicitly(self):
        engine = self._start(num_requests=4, num_servers=2)
        engine.step()
        engine.preempt_server(
            0, 0.5, policy=RequeueAtHeadMigration(delay=0.25), kill_running=True
        )
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 4)
        # Re-service cannot begin before crash time + migration delay, and
        # latency is still charged from the original arrival.
        for response in result.responses:
            assert response.start_time >= 0.75
            assert response.latency == response.finish_time - 0.0

    def test_migration_keys_clamped_to_preemption_time(self):
        class TimeTravel:
            def plan(self, migrants, time):
                return [time - 5.0] * len(migrants)

        engine = self._start(num_requests=4, num_servers=2)
        engine.step()
        engine.preempt_server(0, 0.5, policy=TimeTravel(), kill_running=True)
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 4)
        assert all(r.start_time >= 0.5 for r in result.responses)

    def test_short_migration_plan_rejected(self):
        class Short:
            def plan(self, migrants, time):
                return []

        engine = self._start()
        engine.step()
        with pytest.raises(ValueError):
            engine.preempt_server(0, 0.5, policy=Short(), kill_running=True)

    def test_preempt_validation(self):
        engine = ServingEngine(num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        with pytest.raises(RuntimeError):
            engine.preempt_server(0, 1.0)
        engine.start()
        with pytest.raises(ValueError):
            engine.preempt_server(7, 1.0)
        engine.finish()

    def test_scheduled_path_migrates_through_the_scheduler(self):
        """Migrants re-enter EDF ordering by their (unchanged) deadlines."""
        engine = ServingEngine(
            BatchingConfig(max_batch=4), num_servers=2, scheduler=EdfScheduler()
        )
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i, deadline=10.0 + i)
                for i in range(8)
            ]
        )
        engine.step()
        engine.step()
        engine.preempt_server(
            0, 0.5, policy=RequeueAtHeadMigration(), kill_running=True
        )
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 8)
        assert result.migrated == 4
        # EDF re-serves the migrated cohort earliest-deadline-first.
        migrated = sorted(
            (r for r in result.responses if r.migrations == 1),
            key=lambda r: r.start_time,
        )
        deadlines = [r.deadline for r in migrated]
        assert deadlines == sorted(deadlines)

    def test_drop_after_measures_migrant_waiting_from_migration(self):
        """Regression: the scheduled path admitted migrants with their
        *original* arrival as the drop_after reference, expiring requests
        the migration policy chose to requeue — while the FIFO path
        measured from the migration-ready key.  Both paths must restart the
        wait at the migration."""

        def run(scheduler):
            engine = ServingEngine(
                BatchingConfig(max_batch=4, drop_after=1.0),
                num_servers=2,
                scheduler=scheduler,
            )
            engine.register("m", FixedExecutor(1.0), mode="int8")
            engine.start(
                requests=[
                    Request(arrival_time=0.0, model="m", request_id=i, deadline=99.0)
                    for i in range(4)
                ]
            )
            engine.step()
            # Preempt long after drop_after would have expired the original
            # arrivals; the migrants' wait restarts at the migration.
            engine.preempt_server(
                0, 0.1, policy=RequeueAtHeadMigration(delay=2.5), kill_running=True
            )
            engine.set_active_servers([1])
            result = engine.finish()
            conserve(result, 4)
            return result

        fifo = run(None)
        edf = run(EdfScheduler())
        assert fifo.dropped == 0 and fifo.migrated == 4
        assert edf.dropped == 0 and edf.migrated == 4
        np.testing.assert_array_equal(
            np.sort(fifo.latencies), np.sort(edf.latencies)
        )

    def test_telemetry_rewound_exactly(self, service_model):
        """After preemption the windowed series match the final result."""
        trace = PoissonTrace(2500, duration=2.0, seed=3).generate()
        requests = requests_from_trace(trace, model="m")
        cluster = ClusterEngine(
            [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(2)],
            BatchingConfig(max_batch=64),
            fault_schedule=FaultSchedule.single_crash(0, at=0.8),
            migration=RequeueAtHeadMigration(delay=0.01),
            window=0.2,
        )
        cluster.register("m", mode="int8")
        outcome = cluster.run(requests=requests)
        conserve(outcome.result, len(requests))
        telemetry = outcome.telemetry
        for server in range(2):
            series = telemetry.server_series(server)
            assert sum(stats.busy_time for stats in series) == pytest.approx(
                outcome.result.server_busy_times[server]
            )
        total = sum(
            stats.served for s in range(2) for stats in telemetry.server_series(s)
        )
        assert total == outcome.result.latencies.size


# ----------------------------------------------------------------------
# Migration policies
# ----------------------------------------------------------------------
class TestMigrationPolicies:
    def _migrants(self, deadlines):
        return [
            Migrant(slot=i, arrival=0.0, deadline=deadline)
            for i, deadline in enumerate(deadlines)
        ]

    def test_requeue_at_head_plan(self):
        policy = RequeueAtHeadMigration(delay=0.5)
        assert policy.plan(self._migrants([None, None]), 2.0) == [2.5, 2.5]
        with pytest.raises(ValueError):
            RequeueAtHeadMigration(delay=-1.0)

    def test_redistribute_staggers_chunks(self):
        policy = RedistributeMigration(delay=0.1, chunk=2, stagger=0.5)
        keys = policy.plan(self._migrants([None] * 5), 1.0)
        assert keys == [1.1, 1.1, 1.6, 1.6, 2.1]
        with pytest.raises(ValueError):
            RedistributeMigration(chunk=0)

    def test_drop_expired_plan(self):
        policy = DropExpiredMigration(delay=0.5)
        keys = policy.plan(
            self._migrants([None, 1.0, 3.0]), 2.0
        )  # ready time is 2.5
        assert keys == [2.5, None, 2.5]

    def test_deadline_expired_migrants_counted_as_drops(self):
        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        # Two migrants already past their deadline at the crash, two not.
        deadlines = [0.2, 0.3, 9.0, 9.0]
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i, deadline=d)
                for i, d in enumerate(deadlines)
            ]
        )
        engine.step()
        report = engine.preempt_server(
            0, 0.5, policy=DropExpiredMigration(), kill_running=True
        )
        assert (report.migrated, report.dropped) == (2, 2)
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 4)
        assert result.dropped == 2
        dropped = {r.request_id for r in result.responses if r.dropped}
        assert dropped == {0, 1}
        # Dropped-with-deadline means missed; the served migrants can win.
        assert result.deadline_attainment() == pytest.approx(0.5)

    def test_redistribute_spreads_cohort_across_servers(self, service_model):
        """At-head re-forms one batch on one server; redistribute fans out."""
        executor = ModeledExecutor(service_model)

        def run(policy):
            engine = ServingEngine(BatchingConfig(max_batch=64), num_servers=3)
            engine.register("m", executor, mode="int8")
            engine.start(
                requests=[
                    Request(arrival_time=0.0, model="m", request_id=i)
                    for i in range(192)
                ]
            )
            engine.step(), engine.step(), engine.step()
            engine.preempt_server(0, 0.01, policy=policy, kill_running=True)
            engine.set_active_servers([1, 2])
            result = engine.finish()
            conserve(result, 192)
            return {
                r.server for r in result.responses if r.migrations == 1
            }

        at_head = run(RequeueAtHeadMigration(delay=0.001))
        spread = run(RedistributeMigration(delay=0.001, chunk=16, stagger=0.05))
        assert len(at_head) == 1
        assert len(spread) >= 2


# ----------------------------------------------------------------------
# Control-plane fault application
# ----------------------------------------------------------------------
class TestClusterFaults:
    def _requests(self, rate=2500, duration=3.0, seed=11, **kwargs):
        trace = PoissonTrace(rate, duration=duration, seed=seed).generate()
        return requests_from_trace(trace, model="m", **kwargs)

    def _cluster(self, k=3, **kwargs):
        specs = [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(k)]
        cluster = ClusterEngine(
            specs, BatchingConfig(max_batch=64), window=0.25, **kwargs
        )
        cluster.register("m", mode="int8")
        return cluster

    def test_crash_removes_server_and_recovery_restores_it(self):
        cluster = self._cluster(
            fault_schedule=FaultSchedule.single_crash(0, at=1.0, recover_at=2.0),
            migration=RequeueAtHeadMigration(delay=0.01),
        )
        outcome = cluster.run(requests=self._requests())
        conserve(outcome.result, outcome.result.request_latencies.size)
        assert [event.kind for event in outcome.fault_events] == ["crash", "recover"]
        # No batch starts on the dead server inside the outage, and the
        # server serves again after recovery.
        outage = [
            record
            for record in outcome.result.batch_records
            if record.server == 0 and 1.25 <= record.start < 2.0
        ]
        assert outage == []
        assert any(
            record.server == 0 and record.start >= 2.0
            for record in outcome.result.batch_records
        )
        assert outcome.migrated > 0

    def test_crash_without_migration_loses_the_inflight_work(self):
        requests = self._requests(deadlines=[0.8])
        lost = self._cluster(
            fault_schedule=FaultSchedule.single_crash(0, at=1.0)
        ).run(requests=requests)
        saved = self._cluster(
            fault_schedule=FaultSchedule.single_crash(0, at=1.0),
            migration=RequeueAtHeadMigration(delay=0.01),
        ).run(requests=requests)
        assert lost.result.dropped > 0
        assert saved.result.dropped == 0
        assert saved.migrated == lost.result.dropped
        conserve(lost.result, len(requests))
        conserve(saved.result, len(requests))
        assert saved.deadline_attainment() > lost.deadline_attainment()

    def test_slowdown_inflates_service_and_health(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=1.0, server=0, kind="slowdown", factor=6.0),
                FaultEvent(time=2.0, server=0, kind="recover"),
            ]
        )
        cluster = self._cluster(k=2, fault_schedule=schedule)
        outcome = cluster.run(requests=self._requests(rate=1500))
        records = outcome.result.batch_records

        def mean_seconds_per_request(lo, hi):
            window = [
                r for r in records if r.server == 0 and lo <= r.start < hi and r.size
            ]
            return np.mean([(r.finish - r.start) / r.size for r in window])

        before = mean_seconds_per_request(0.0, 1.0)
        during = mean_seconds_per_request(1.25, 2.0)
        after = mean_seconds_per_request(2.25, 3.0)
        assert during > 3 * before          # the throttle really bit
        assert after == pytest.approx(before, rel=0.5)  # and really lifted
        assert cluster.specs[0].health == "healthy"     # recovered by run end
        assert [event.kind for event in outcome.fault_events] == [
            "slowdown",
            "recover",
        ]

    def test_crash_of_sole_active_server_wakes_a_parked_spare(self):
        """A survivable fault: the fastest healthy parked server replaces a
        crashed sole-active server instead of aborting the run."""
        requests = self._requests(rate=1500, duration=3.0)
        cluster = self._cluster(
            k=2,
            fault_schedule=FaultSchedule.single_crash(0, at=1.0),
            migration=RequeueAtHeadMigration(delay=0.01),
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=1e9, scale_down_depth=-1.0, patience=1
            ),
            min_servers=1,
            initial_servers=1,
        )
        outcome = cluster.run(requests=requests)
        conserve(outcome.result, len(requests))
        emergency = [
            e for e in outcome.scale_events if "emergency replacement" in e.reason
        ]
        assert emergency and emergency[0].server == 1
        assert any(r.server == 1 for r in outcome.result.batch_records)
        assert all(
            r.server != 0 or r.start < 1.25 for r in outcome.result.batch_records
        )

    def test_slowdown_cannot_resurrect_a_crashed_server(self):
        """Regression: degrade() on a failed spec flipped health to
        'degraded', letting the autoscaler wake a dead server."""
        schedule = FaultSchedule(
            [
                FaultEvent(time=0.5, server=2, kind="crash"),
                FaultEvent(time=1.0, server=2, kind="slowdown", factor=8.0),
            ]
        )
        cluster = self._cluster(
            k=3,
            fault_schedule=schedule,
            migration=RequeueAtHeadMigration(delay=0.01),
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=1.0, scale_down_depth=0.0, patience=99
            ),
            min_servers=1,
            initial_servers=2,
        )
        outcome = cluster.run(requests=self._requests(rate=4000, duration=3.0))
        assert cluster.specs[2].health == "failed"
        # The always-scale-up autoscaler may wake server 2 *before* the
        # crash lands (boundary 0.75); after it, the slowdown must not make
        # the dead server look wakeable again.
        assert not [
            e
            for e in outcome.scale_events
            if e.action == "add" and e.server == 2 and e.time > 0.75
        ]
        assert all(
            record.server != 2 or record.start < 0.75
            for record in outcome.result.batch_records
        )

    def test_model_floors_validation(self):
        specs = [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(2)]
        with pytest.raises(ValueError):
            ClusterEngine(specs, placer="weighted", model_floors={"m": 1})
        with pytest.raises(ValueError):
            ClusterEngine(
                specs,
                placer=ModelAffinityPlacer({"a": [0]}),
                model_floors={"ghost": 1},
            )

    def test_crashing_the_last_active_server_raises(self):
        cluster = self._cluster(
            k=1, fault_schedule=FaultSchedule.single_crash(0, at=0.5)
        )
        with pytest.raises(RuntimeError):
            cluster.run(requests=self._requests(rate=1000, duration=2.0))
        # The failed run must not wedge the engine: the session is aborted
        # and the same cluster can (fail to) run again, deterministically.
        with pytest.raises(RuntimeError):
            cluster.run(requests=self._requests(rate=1000, duration=2.0))

    def test_affinity_forwards_telemetry_to_inner_placer(self):
        """Regression: the affinity wrapper dropped context.telemetry, so a
        PredictivePlacer used as the within rule was silently blind."""
        seen = []

        class Spy:
            def place(self, context):
                seen.append(context.telemetry)
                return context.active[0]

        from repro.serving import TelemetryBus

        bus = TelemetryBus(window=1.0, num_servers=2)
        placer = ModelAffinityPlacer({"a": [0, 1]}, within=Spy())
        placer.place(
            PlacementContext(
                time=0.0, free_at=[0.0, 0.0], active=[0, 1], model="a",
                telemetry=bus,
            )
        )
        assert seen == [bus]

    def test_repeated_fault_runs_identical(self):
        requests = self._requests()
        cluster = self._cluster(
            fault_schedule=FaultSchedule.single_crash(0, at=1.0, recover_at=2.0),
            migration=RequeueAtHeadMigration(delay=0.01),
        )
        first = cluster.run(requests=requests)
        second = cluster.run(requests=requests)
        np.testing.assert_array_equal(first.latencies, second.latencies)
        assert [e.kind for e in first.fault_events] == [
            e.kind for e in second.fault_events
        ]
        assert first.migrated == second.migrated

    def test_autoscaler_never_wakes_a_failed_server(self):
        requests = self._requests(rate=4000, duration=3.0)
        cluster = self._cluster(
            k=3,
            fault_schedule=FaultSchedule.single_crash(2, at=0.2),
            migration=RequeueAtHeadMigration(delay=0.01),
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=16, scale_down_depth=2, patience=2
            ),
            min_servers=1,
            initial_servers=2,
        )
        outcome = cluster.run(requests=requests)
        added = [e.server for e in outcome.scale_events if e.action == "add"]
        assert 2 not in added
        assert all(
            record.server != 2 or record.start < 0.25
            for record in outcome.result.batch_records
        )

    def test_scale_down_with_migration_restarts_pinned_batches(self):
        """An autoscaler-parked server's not-yet-started work migrates."""
        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i) for i in range(24)
            ]
        )
        for _ in range(6):
            engine.step()
        # Server 0 now has a batch pinned at [2, 3) that has not started by
        # t=1.5; park it then, the way ClusterEngine does on scale-down with
        # a migration policy: the pinned batch restarts elsewhere, the
        # running one ([1, 2)) drains.
        engine.set_active_servers([1])
        report = engine.preempt_server(
            0, 1.5, policy=RequeueAtHeadMigration(), kill_running=False
        )
        assert report.migrated == 4
        result = engine.finish()
        conserve(result, 24)
        late = [r for r in result.responses if r.migrations == 1]
        assert {r.server for r in late} == {1}


# ----------------------------------------------------------------------
# Per-model autoscaling floors
# ----------------------------------------------------------------------
class TestModelFloors:
    def test_affinity_floor_keeps_last_model_server(self, service_model):
        """The satellite: a model's last affine server is never parked."""
        specs = [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(3)]
        placer = ModelAffinityPlacer({"a": [0, 1], "b": [2]})
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=64),
            placer=placer,
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=1e9, scale_down_depth=1e9, patience=1
            ),
            min_servers=1,
            initial_servers=3,
            window=0.25,
        )
        cluster.register("a", mode="int8")
        cluster.register("b", mode="int8")
        trace_a = requests_from_trace(
            PoissonTrace(800, duration=3.0, seed=1).generate(), model="a"
        )
        trace_b = requests_from_trace(
            PoissonTrace(200, duration=3.0, seed=2).generate(), model="b"
        )
        requests = sorted(
            list(trace_a) + list(trace_b), key=lambda r: r.arrival_time
        )
        outcome = cluster.run(requests=requests)
        # The scale-down-always autoscaler wants one server; the floors keep
        # one per partition: server 2 (model b's only server) never parks.
        removed = [e.server for e in outcome.scale_events if e.action == "remove"]
        assert removed  # downscaling really happened
        assert 2 not in removed
        active_after = min(e.active_after for e in outcome.scale_events)
        assert active_after == 2  # one server per partition survives

    def test_explicit_floors_override(self, service_model):
        specs = [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(3)]
        placer = ModelAffinityPlacer({"a": [0, 1, 2]})
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=64),
            placer=placer,
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=1e9, scale_down_depth=1e9, patience=1
            ),
            min_servers=1,
            initial_servers=3,
            model_floors={"a": 2},
            window=0.25,
        )
        cluster.register("a", mode="int8")
        requests = requests_from_trace(
            PoissonTrace(800, duration=3.0, seed=1).generate(), model="a"
        )
        outcome = cluster.run(requests=requests)
        assert min(e.active_after for e in outcome.scale_events) == 2


# ----------------------------------------------------------------------
# Batch-size-aware placement estimates + predictive placement
# ----------------------------------------------------------------------
class TestPlacementEstimates:
    def test_estimators_change_the_decision_scalar_speed_gets_wrong(self):
        # Server 0: high per-batch overhead, cheap per request at size;
        # server 1: no overhead, slower per request.  At the reference
        # batch (8) their scalar speeds order 0 < 1, so scalar scoring
        # picks server 1 even for large batches — where server 0's
        # amortized overhead makes it strictly faster.
        def est0(batch):
            return 0.08 + 0.001 * batch

        def est1(batch):
            return 0.009 * batch

        speeds = [8 / est0(8), 8 / est1(8)]
        context = PlacementContext(
            time=0.0, free_at=[0.0, 0.0], active=[0, 1], batch_hint=64
        )
        scalar = WeightedSpeedPlacer(speeds)
        aware = WeightedSpeedPlacer(speeds, estimators=[est0, est1])
        assert scalar.place(context) == 1
        assert aware.place(context) == 0
        least = LeastOutstandingWorkPlacer(speeds, estimators=[est0, est1])
        assert least.place(context) == 0
        with pytest.raises(ValueError):
            WeightedSpeedPlacer(speeds, estimators=[est0])

    def test_cluster_estimators_match_spec_latency(self):
        spec = gpu_server("g", "vit_base", gpu="a6000")
        cluster = ClusterEngine([spec])
        estimator = cluster.batch_estimators()[0]
        assert estimator(32) == pytest.approx(
            spec.service_model.batch_latency(32, "int8")
        )
        placer = cluster.resolve_placer("weighted")
        assert placer.estimators is not None

    def test_cluster_estimators_follow_registered_mode(self):
        """The estimators score the precision that actually runs, even
        though named placers are resolved before register()."""
        spec = gpu_server("g", "vit_base", gpu="a6000")
        cluster = ClusterEngine([spec], placer="weighted")
        estimator = cluster.batch_estimators()[0]
        cluster.register("m", mode="int4")
        assert estimator(32) == pytest.approx(
            spec.service_model.batch_latency(32, "int4")
        )
        # A second endpoint in a different mode falls back to the int8
        # reference (the convention the spec speeds are measured at).
        cluster.register("n", mode="fp16")
        assert estimator(32) == pytest.approx(
            spec.service_model.batch_latency(32, "int8")
        )

    def test_predictive_validation_and_fallback(self, service_model):
        with pytest.raises(ValueError):
            PredictivePlacer([10.0], alpha=0.0)
        with pytest.raises(ValueError):
            PredictivePlacer([10.0], depth_weight=-1.0)
        # Without telemetry the placer scores exactly like weighted-speed.
        context = PlacementContext(
            time=1.0, free_at=[0.0, 0.5, 0.9], active=[0, 1, 2], batch_hint=8
        )
        speeds = [10.0, 20.0, 200.0]
        assert PredictivePlacer(speeds).place(context) == WeightedSpeedPlacer(
            speeds
        ).place(context)

    def test_predictive_routes_around_degraded_server(self):
        """The tentpole property: telemetry trends beat stale nominal speeds
        (asserted on the exact scenario examples/resilient_cluster.py shows,
        so the demo and the gate cannot drift apart)."""
        example = _load_example()
        outcomes = example.slowdown_scenario()
        weighted, predictive = outcomes["weighted"], outcomes["predictive"]
        assert predictive.latencies.size == weighted.latencies.size > 0
        assert predictive.p99_latency < 0.5 * weighted.p99_latency
        assert predictive.throughput > 0.95 * weighted.throughput


# ----------------------------------------------------------------------
# Acceptance: the example scenario + seed equivalence
# ----------------------------------------------------------------------
def _load_example():
    path = Path(__file__).resolve().parent.parent / "examples" / "resilient_cluster.py"
    spec = importlib.util.spec_from_file_location("resilient_cluster", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestAcceptance:
    def test_migrating_cluster_meets_slo_baseline_misses(self):
        """ISSUE 5 acceptance: mid-run crash; migration saves the p99
        deadline-attainment SLO the non-migrating baseline misses."""
        example = _load_example()
        outcomes = example.crash_scenario()
        target = example.ATTAINMENT_TARGET
        baseline = outcomes["crash, no migration"]
        assert baseline.deadline_attainment() < target         # the miss
        assert baseline.result.dropped > 0                     # lost work
        for label in (
            "crash + requeue-at-head",
            "crash + redistribute",
            "crash + drop-expired",
        ):
            saved = outcomes[label]
            assert saved.deadline_attainment() >= target       # the save
            assert saved.result.dropped == 0
            assert saved.migrated == baseline.result.dropped
            conserve(saved.result, saved.result.request_latencies.size)
        assert outcomes["no fault"].deadline_attainment() == 1.0

    def test_k1_fifo_bit_identical_with_resilience_off(self, service_model):
        """A fault-free engine run is still bit-for-bit the seed simulator."""
        trace = PoissonTrace(1800, duration=2.0, seed=17).generate()
        engine = ServingEngine(BatchingConfig(max_batch=64))
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        result = engine.run(trace=trace)
        seed = ServingSimulator(service_model, BatchingConfig(max_batch=64)).run(
            trace, "int8"
        )
        np.testing.assert_array_equal(result.latencies, seed.latencies)
        assert result.migrated == 0


# ----------------------------------------------------------------------
# Correlated failures (satellite)
# ----------------------------------------------------------------------
def _fixed_spec(name, seconds=1.0, zone=""):
    return ServerSpec(
        name=name, speed=1000.0, executor=FixedExecutor(seconds), zone=zone
    )


class TestCorrelatedFailures:
    def test_two_servers_crash_in_the_same_window(self):
        """Both batches in flight die at one boundary; every victim is
        re-served exactly once on the survivors."""
        specs = [_fixed_spec(f"g{i}") for i in range(4)]
        schedule = FaultSchedule(
            [
                FaultEvent(time=0.3, server=0, kind="crash"),
                FaultEvent(time=0.3, server=1, kind="crash"),
            ]
        )
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=4),
            fault_schedule=schedule,
            migration=RequeueAtHeadMigration(delay=0.1),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        requests = [
            Request(arrival_time=0.0, model="m", request_id=i) for i in range(8)
        ]
        outcome = cluster.run(requests=requests)
        assert [(e.time, e.server) for e in outcome.fault_events] == [
            (0.3, 0),
            (0.3, 1),
        ]
        conserve(outcome.result, 8)
        assert outcome.result.dropped == 0
        assert outcome.migrated == 8
        assert all(
            r.server in (2, 3)
            for r in outcome.result.responses
            if r.migrations > 0
        )

    def test_crash_during_migration_delay_migrates_twice(self):
        """A second crash lands on the server that picked up the first
        crash's migrants — they move again, and nothing is lost or
        double-served."""
        specs = [_fixed_spec(f"g{i}") for i in range(4)]
        schedule = FaultSchedule(
            [
                FaultEvent(time=0.3, server=0, kind="crash"),
                FaultEvent(time=1.2, server=2, kind="crash"),
            ]
        )
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=4),
            fault_schedule=schedule,
            migration=RequeueAtHeadMigration(delay=0.6),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        requests = [
            Request(arrival_time=0.0, model="m", request_id=i) for i in range(8)
        ]
        outcome = cluster.run(requests=requests)
        # Batches land on servers 0 and 1 at [0, 1).  Server 0's crash is
        # applied at the 0.5 boundary; its migrants wait out the 0.6s delay
        # and restart on idle server 2 at t=0.9 — where the second crash
        # (applied at 1.25) kills them mid-batch and they move again.
        conserve(outcome.result, 8)
        stats = summarize_migrations(outcome.result.responses)
        assert stats["migrated_requests"] == 4.0
        assert stats["max_moves"] == 2.0
        assert stats["moves"] == 8.0
        assert stats["dropped_after_migration"] == 0.0
        twice = [r for r in outcome.result.responses if r.migrations == 2]
        assert {r.server for r in twice} == {3}

    def test_zone_outage_fails_every_affine_server_of_a_model(self):
        """Zone A holds model "a"'s whole affinity partition.  When the
        zone dies, the affinity waiver serves "a" on zone B's servers
        rather than stranding the model."""
        specs = [
            _fixed_spec("a0", seconds=0.05, zone="A"),
            _fixed_spec("a1", seconds=0.05, zone="A"),
            _fixed_spec("b0", seconds=0.05, zone="B"),
            _fixed_spec("b1", seconds=0.05, zone="B"),
        ]
        placer = ModelAffinityPlacer({"a": [0, 1], "b": [2, 3]})
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            placer=placer,
            fault_schedule=FaultSchedule.zone_outage("A", at=1.0),
            migration=RequeueAtHeadMigration(delay=0.01),
            window=0.25,
        )
        cluster.register("a", mode="int8")
        cluster.register("b", mode="int8")
        trace_a = requests_from_trace(
            PoissonTrace(300, duration=2.0, seed=1).generate(), model="a"
        )
        trace_b = requests_from_trace(
            PoissonTrace(300, duration=2.0, seed=2).generate(), model="b"
        )
        requests = sorted(
            list(trace_a) + list(trace_b), key=lambda r: r.arrival_time
        )
        outcome = cluster.run(requests=requests)
        conserve(outcome.result, len(requests))
        assert outcome.result.dropped == 0
        assert outcome.migrated > 0
        # Model "a" work after the outage boundary runs on zone B only.
        late_a = [
            r
            for r in outcome.result.batch_records
            if r.model == "a" and r.start >= 1.25
        ]
        assert late_a
        assert {r.server for r in late_a} <= {2, 3}


# ----------------------------------------------------------------------
# Zone-outage acceptance: the failure-domain example scenario
# ----------------------------------------------------------------------
def _load_zone_example():
    path = Path(__file__).resolve().parent.parent / "examples" / "zone_outage.py"
    spec = importlib.util.spec_from_file_location("zone_outage", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestZoneOutageAcceptance:
    def test_warm_spares_meet_slo_flat_cluster_misses(self):
        """ISSUE 6 acceptance: a zone outage on the spread-placed,
        warm-spared cluster meets the deadline-attainment SLO the PR 5
        single-domain cluster misses — and beats cold standby on p99
        (promotion latency vs provisioning lag)."""
        example = _load_zone_example()
        outcomes = example.outage_scenario()
        target = example.ATTAINMENT_TARGET
        flat = outcomes["flat (single-domain)"]
        cold = outcomes["cold standby"]
        warm = outcomes["spread + warm spares"]
        assert outcomes["no fault"].deadline_attainment() == 1.0
        assert flat.deadline_attainment() < target            # the miss
        assert warm.deadline_attainment() >= target           # the save
        assert cold.deadline_attainment() >= target
        # Warm promotion (no provisioning lag) strictly beats cold scale-up.
        assert warm.p99_latency < cold.p99_latency
        # Both zone-A servers were covered by promoted spares, and the
        # spares were demoted once the zone recovered.
        assert [e.server for e in warm.promotions] == [4, 5]
        demotes = [e for e in warm.scale_events if e.action == "demote"]
        assert [e.server for e in demotes] == [4, 5]
        assert all(e.time > example.RECOVER_AT for e in demotes)
        # Nothing lost, nothing served twice, in any deployment.
        for outcome in outcomes.values():
            conserve(outcome.result, outcome.result.request_latencies.size)
            assert outcome.result.dropped == 0

"""Tests for the post-processing layout optimization (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layout import (
    ChannelLayout,
    LayoutPlan,
    build_channel_layout,
    build_layout_plan,
    reorder_weight_features,
)
from repro.core.selection import ChannelSelection, SelectionConfig, greedy_selection
from repro.tensor import Tensor, functional as F
from tests.test_core_selection import LAYERS, make_scores


def nested_selections(ratios=(0.25, 0.5, 0.75, 1.0), seed=0):
    scores = make_scores(LAYERS, seed=seed)
    config = SelectionConfig(group_size=4)
    selections = {}
    base = None
    for ratio in ratios:
        base = greedy_selection(scores, ratio, config, base=base)
        selections[ratio] = base
    return selections


class TestChannelLayout:
    def test_order_is_permutation(self):
        selections = nested_selections()
        layout = build_channel_layout("layer_b", selections)
        assert sorted(layout.order.tolist()) == list(range(32))
        inverse = layout.inverse_order()
        np.testing.assert_array_equal(layout.order[inverse], np.arange(32))

    def test_boundaries_monotone_in_ratio(self):
        selections = nested_selections()
        layout = build_channel_layout("layer_a", selections)
        values = [layout.boundaries[r] for r in sorted(layout.boundaries)]
        assert all(b <= a for b, a in zip(values, values[1:]))
        assert values[-1] == 16  # 100% ratio covers every channel

    def test_prefix_matches_selection(self):
        """The first boundary(r) channels in layout order are exactly the
        channels selected at ratio r."""
        selections = nested_selections()
        layout = build_channel_layout("layer_c", selections)
        for ratio, selection in selections.items():
            mask = selection.channel_mask("layer_c")
            boundary = layout.boundaries[ratio]
            prefix_channels = set(layout.order[:boundary].tolist())
            assert prefix_channels == set(np.nonzero(mask)[0].tolist())

    def test_boundary_for_interpolates_down(self):
        layout = ChannelLayout("x", np.arange(8), {0.5: 4, 1.0: 8})
        assert layout.boundary_for(0.0) == 0
        assert layout.boundary_for(0.5) == 4
        assert layout.boundary_for(0.7) == 4
        assert layout.boundary_for(1.0) == 8


class TestLayoutPlan:
    def test_build_plan_covers_all_layers(self):
        selections = nested_selections()
        plan = build_layout_plan(selections)
        assert set(plan.layouts) == set(LAYERS)
        assert plan.ratios == [0.25, 0.5, 0.75, 1.0]

    def test_non_nested_selections_rejected(self):
        scores = make_scores(LAYERS, seed=1)
        config = SelectionConfig(group_size=4)
        # Independently built selections are generally not nested.
        a = greedy_selection(scores, 0.25, config)
        b = greedy_selection(make_scores(LAYERS, seed=99), 0.5, config)
        nested = b.is_superset_of(a)
        if not nested:
            with pytest.raises(ValueError):
                build_layout_plan({0.25: a, 0.5: b})

    def test_empty_selections_rejected(self):
        with pytest.raises(ValueError):
            build_layout_plan({})

    def test_residual_reorder_bookkeeping(self):
        selections = nested_selections()
        plan = build_layout_plan(selections, residual_layers=["layer_a", "layer_b"])
        assert plan.num_residual_reorders() == 2


class TestWeightReordering:
    def test_linear_permutation_preserves_output(self):
        """Permuting features of both input and weight leaves the output unchanged
        (step 1/2 of the paper's layout procedure)."""
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(6, 10)).astype(np.float32)
        x = rng.normal(size=(3, 10)).astype(np.float32)
        order = rng.permutation(10)
        reordered = reorder_weight_features(weight, order, "linear")
        original = x @ weight.T
        permuted = x[:, order] @ reordered.T
        np.testing.assert_allclose(original, permuted, atol=1e-5)

    def test_conv_permutation_preserves_output(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(4, 6, 3, 3)).astype(np.float32)
        x = rng.normal(size=(2, 6, 5, 5)).astype(np.float32)
        order = rng.permutation(6)
        reordered = reorder_weight_features(weight, order, "conv")
        original = F.conv2d(Tensor(x), Tensor(weight), None, padding=1).data
        permuted = F.conv2d(
            Tensor(x[:, order]), Tensor(reordered), None, padding=1
        ).data
        np.testing.assert_allclose(original, permuted, atol=1e-4)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            reorder_weight_features(np.zeros((2, 2)), np.arange(2), "rnn")

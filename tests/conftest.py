"""Shared fixtures: small models, datasets and calibrated quantized models.

Fixtures are session-scoped where construction is expensive (training a tiny
model, running the FlexiQ pipeline) so the suite stays fast; tests must not
mutate session-scoped fixtures in ways that leak across tests (ratio changes
are fine because every test sets the ratio it needs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import DatasetConfig, SyntheticImageDataset
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.resnet import resnet20
from repro.nn.vit import VisionTransformer
from repro.tensor import Tensor
from repro.train.loop import TrainingConfig, train_classifier


class TinyMLP(Module):
    """Three-layer MLP on flattened images; the smallest quantizable model."""

    def __init__(self, in_features: int = 48, hidden: int = 32, classes: int = 4,
                 rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.act1 = ReLU()
        self.fc2 = Linear(hidden, hidden, rng=rng)
        self.act2 = ReLU()
        self.fc3 = Linear(hidden, classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.fc3(self.act2(self.fc2(self.act1(self.fc1(x)))))


class TinyConvNet(Module):
    """Small conv network with a residual-style structure for layout tests."""

    def __init__(self, channels: int = 8, classes: int = 4, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stem = Conv2d(3, channels, 3, padding=1, rng=rng)
        self.bn = BatchNorm2d(channels)
        self.relu = ReLU()
        self.conv1 = Conv2d(channels, channels * 2, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(channels * 2, channels * 2, 3, padding=1, rng=rng)
        self.head = Linear(channels * 2, classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn(self.stem(x)))
        x = self.relu(self.conv1(x))
        x = self.relu(self.conv2(x))
        x = x.mean(axis=(2, 3))
        return self.head(x)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticImageDataset:
    """A very small, easy dataset (4 classes, 8x8 images)."""
    return SyntheticImageDataset(
        DatasetConfig(
            name="tiny", num_classes=4, image_size=8, train_size=128,
            test_size=64, noise_scale=0.3, seed=5,
        )
    )


@pytest.fixture(scope="session")
def mlp_dataset() -> SyntheticImageDataset:
    """Dataset matched to the TinyMLP input size (3x4x4 = 48 features)."""
    return SyntheticImageDataset(
        DatasetConfig(
            name="mlp", num_classes=4, image_size=4, train_size=128,
            test_size=64, noise_scale=0.3, seed=6,
        )
    )


@pytest.fixture(scope="session")
def trained_mlp(mlp_dataset) -> TinyMLP:
    model = TinyMLP(in_features=48, hidden=32, classes=4)
    train_classifier(
        model, mlp_dataset, TrainingConfig(epochs=6, learning_rate=0.05, seed=0)
    )
    return model


@pytest.fixture(scope="session")
def trained_convnet(tiny_dataset) -> TinyConvNet:
    model = TinyConvNet(channels=8, classes=4)
    train_classifier(
        model, tiny_dataset, TrainingConfig(epochs=5, learning_rate=0.05, seed=0)
    )
    return model


@pytest.fixture(scope="session")
def calibration_batch(mlp_dataset) -> np.ndarray:
    return mlp_dataset.train_images[:48]


@pytest.fixture(scope="session")
def conv_calibration(tiny_dataset) -> np.ndarray:
    return tiny_dataset.train_images[:48]


@pytest.fixture(scope="session")
def flexiq_runtime(trained_mlp, calibration_batch):
    """A FlexiQ runtime built from the trained MLP (greedy selection, fast)."""
    from repro.core import FlexiQConfig, FlexiQPipeline
    from repro.core.selection import SelectionConfig

    config = FlexiQConfig(
        ratios=(0.25, 0.5, 0.75, 1.0),
        group_size=4,
        selection="greedy",
        selection_config=SelectionConfig(group_size=4),
    )
    pipeline = FlexiQPipeline(trained_mlp, calibration_batch, config)
    return pipeline.run()


@pytest.fixture(scope="session")
def flexiq_conv_runtime(trained_convnet, conv_calibration):
    """A FlexiQ runtime built from the small conv net."""
    from repro.core import FlexiQConfig, FlexiQPipeline
    from repro.core.selection import SelectionConfig

    config = FlexiQConfig(
        ratios=(0.5, 1.0),
        group_size=4,
        selection="greedy",
        selection_config=SelectionConfig(group_size=4),
    )
    pipeline = FlexiQPipeline(trained_convnet, conv_calibration, config)
    return pipeline.run()

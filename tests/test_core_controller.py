"""Tests for the latency profile and the adaptive ratio controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import (
    AdaptiveRatioController,
    LatencyProfile,
    build_profile_from_latency_fn,
)


def make_profile():
    """Synthetic profile: latency grows with rate, shrinks with ratio."""
    rates = [100, 500, 1000, 2000, 3000]

    def latency(ratio, rate):
        capacity = 1000.0 * (1.0 + ratio)  # higher ratio -> more capacity
        utilisation = min(rate / capacity, 0.999)
        return 0.01 / (1.0 - utilisation)

    return build_profile_from_latency_fn(rates, [0.0, 0.25, 0.5, 0.75, 1.0], latency)


class TestLatencyProfile:
    def test_build_from_fn(self):
        profile = make_profile()
        assert profile.ratios == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert profile.latency(0.0, 100) < profile.latency(0.0, 2000)

    def test_interpolation_between_rates(self):
        profile = make_profile()
        mid = profile.latency(0.5, 750)
        assert profile.latency(0.5, 500) < mid < profile.latency(0.5, 1000)

    def test_higher_ratio_lower_latency(self):
        profile = make_profile()
        assert profile.latency(1.0, 1000) < profile.latency(0.0, 1000)

    def test_clamps_beyond_profiled_range(self):
        profile = make_profile()
        assert profile.latency(0.0, 10_000) == profile.latency(0.0, 3000)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LatencyProfile(rates=np.array([1, 2]), latency_by_ratio={0.0: np.array([1.0])})


class TestAdaptiveRatioController:
    def test_steps_up_under_load(self):
        controller = AdaptiveRatioController(make_profile(), latency_threshold=0.05)
        ratio = controller.update(2500)
        assert ratio > 0.0
        # Repeated overload keeps stepping up to the maximum.
        for _ in range(5):
            ratio = controller.update(2900)
        assert ratio == 1.0

    def test_steps_down_when_load_subsides(self):
        controller = AdaptiveRatioController(make_profile(), latency_threshold=0.05)
        for _ in range(5):
            controller.update(2900)
        assert controller.current_ratio == 1.0
        for _ in range(5):
            controller.update(100)
        assert controller.current_ratio < 1.0

    def test_step_up_only_never_decreases(self):
        controller = AdaptiveRatioController(
            make_profile(), latency_threshold=0.05, step_up_only=True
        )
        for _ in range(5):
            controller.update(2900)
        for _ in range(5):
            controller.update(100)
        assert controller.current_ratio == 1.0

    def test_stays_low_under_light_load(self):
        controller = AdaptiveRatioController(make_profile(), latency_threshold=0.05)
        for _ in range(10):
            controller.update(100)
        assert controller.current_ratio == 0.0

    def test_history_and_average_ratio(self):
        controller = AdaptiveRatioController(make_profile(), latency_threshold=0.05)
        controller.update(100)
        controller.update(2900)
        assert len(controller.history) == 2
        assert 0.0 <= controller.average_ratio() <= 1.0
        assert {"rate", "ratio", "profiled_latency"} <= set(controller.history[0])

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveRatioController(
                LatencyProfile(rates=np.array([1.0]), latency_by_ratio={}),
                latency_threshold=0.1,
            )

"""Integration tests for the end-to-end FlexiQ pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.pipeline import evaluate_ratio_sweep
from repro.core.runtime import FlexiQConv2d, FlexiQLinear
from repro.core.selection import SelectionConfig
from repro.quant.qmodel import iter_quantized_layers
from repro.tensor import Tensor, no_grad
from repro.train.loop import evaluate_accuracy


class TestPipelineStructure:
    def test_layers_replaced_with_flexiq_variants(self, flexiq_runtime):
        layers = iter_quantized_layers(flexiq_runtime.model)
        assert len(layers) == 3
        assert all(isinstance(layer, (FlexiQLinear, FlexiQConv2d)) for _, layer in layers)

    def test_first_last_layers_not_selectable(self, flexiq_runtime):
        configured = set(flexiq_runtime.layout_plan.layouts)
        names = [name for name, _ in iter_quantized_layers(flexiq_runtime.model)]
        assert names[0] not in configured
        assert names[-1] not in configured
        assert set(names[1:-1]) == configured

    def test_selections_are_nested_across_ratios(self, flexiq_runtime):
        selections = flexiq_runtime.selections
        ratios = sorted(selections)
        for low, high in zip(ratios, ratios[1:]):
            assert selections[high].is_superset_of(selections[low])

    def test_selection_achieves_requested_ratios(self, flexiq_runtime):
        for ratio, selection in flexiq_runtime.selections.items():
            assert selection.achieved_ratio() == pytest.approx(ratio, abs=0.12)

    def test_boundaries_are_group_aligned_prefixes(self, flexiq_runtime):
        for name, layout in flexiq_runtime.layout_plan.layouts.items():
            boundaries = [layout.boundaries[r] for r in sorted(layout.boundaries)]
            assert all(b1 <= b2 for b1, b2 in zip(boundaries, boundaries[1:]))
            assert boundaries[-1] <= layout.num_channels


class TestPipelineAccuracy:
    def test_ratio_zero_matches_int8_accuracy(self, flexiq_runtime, mlp_dataset, trained_mlp,
                                               calibration_batch):
        from repro.baselines.uniform import quantize_uniform

        batches = [calibration_batch[i : i + 16] for i in range(0, 48, 16)]
        int8 = quantize_uniform(trained_mlp, 8, batches)
        flexiq_runtime.set_ratio(0.0)
        acc_flexi = evaluate_accuracy(flexiq_runtime.model, mlp_dataset)
        acc_int8 = evaluate_accuracy(int8, mlp_dataset)
        assert acc_flexi == pytest.approx(acc_int8, abs=3.0)

    def test_accuracy_degrades_gracefully_with_ratio(self, flexiq_runtime, mlp_dataset):
        sweep = evaluate_ratio_sweep(flexiq_runtime, mlp_dataset)
        accuracies = [sweep[r] for r in sorted(sweep)]
        # 8-bit accuracy is the best; 100% 4-bit the worst (allow small noise).
        assert max(accuracies) <= accuracies[0] + 3.0
        assert min(accuracies) >= accuracies[-1] - 3.0
        # Everything stays far above chance (25% for 4 classes).
        assert all(acc > 40.0 for acc in accuracies)

    def test_flexiq_full_4bit_not_worse_than_uniform_int4(
        self, flexiq_runtime, mlp_dataset, trained_mlp, calibration_batch
    ):
        from repro.baselines.uniform import quantize_uniform

        batches = [calibration_batch[i : i + 16] for i in range(0, 48, 16)]
        int4 = quantize_uniform(trained_mlp, 4, batches)
        acc_int4 = evaluate_accuracy(int4, mlp_dataset)
        flexiq_runtime.set_ratio(1.0)
        acc_flexi = evaluate_accuracy(flexiq_runtime.model, mlp_dataset)
        flexiq_runtime.set_ratio(0.0)
        assert acc_flexi >= acc_int4 - 3.0


class TestPipelineOptions:
    def _run(self, model, calibration, **overrides):
        defaults = dict(
            ratios=(0.5, 1.0), group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
        )
        defaults.update(overrides)
        return FlexiQPipeline(model, calibration, FlexiQConfig(**defaults)).run()

    def test_random_and_evolutionary_strategies(self, trained_mlp, calibration_batch):
        random_rt = self._run(trained_mlp, calibration_batch, selection="random")
        evo_rt = self._run(
            trained_mlp, calibration_batch, selection="evolutionary",
            selection_config=SelectionConfig(group_size=4, population_size=4, generations=2),
        )
        assert 1.0 in random_rt.layout_plan.ratios
        assert 1.0 in evo_rt.layout_plan.ratios

    def test_unknown_strategy_raises(self, trained_mlp, calibration_batch):
        with pytest.raises(ValueError):
            self._run(trained_mlp, calibration_batch, selection="simulated-annealing")

    def test_naive_lowering_ablation_not_better(self, trained_mlp, calibration_batch, mlp_dataset):
        flexi = self._run(trained_mlp, calibration_batch)
        naive = self._run(trained_mlp, calibration_batch, naive_lowering=True)
        flexi.set_ratio(1.0)
        naive.set_ratio(1.0)
        acc_flexi = evaluate_accuracy(flexi.model, mlp_dataset)
        acc_naive = evaluate_accuracy(naive.model, mlp_dataset)
        assert acc_flexi >= acc_naive - 2.0

    def test_dynamic_extraction_flag_propagates(self, trained_mlp, calibration_batch):
        runtime = self._run(trained_mlp, calibration_batch, dynamic_extraction=True)
        assert all(
            layer.dynamic_extract
            for name, layer in runtime.flexiq_layers()
            if name in runtime.layout_plan.layouts
        )

    def test_fixed_high_fraction(self, trained_mlp, calibration_batch):
        runtime = self._run(
            trained_mlp, calibration_batch,
            selection="evolutionary",
            selection_config=SelectionConfig(group_size=4, population_size=4, generations=2),
            fixed_high_fraction=0.3, ratios=(0.5,),
        )
        assert runtime.selections[0.5].achieved_ratio() == pytest.approx(0.5, abs=0.15)

    def test_finetune_requires_dataset(self, trained_mlp, calibration_batch):
        with pytest.raises(ValueError):
            self._run(trained_mlp, calibration_batch, finetune=True)

    def test_finetune_path_runs(self, trained_mlp, calibration_batch, mlp_dataset):
        from repro.core.finetune import FinetuneConfig

        config = FlexiQConfig(
            ratios=(1.0,), group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
            finetune=True,
            finetune_config=FinetuneConfig(epochs=1, learning_rate=5e-3),
        )
        pipeline = FlexiQPipeline(
            trained_mlp, calibration_batch, config, finetune_dataset=mlp_dataset
        )
        runtime = pipeline.run()
        runtime.set_ratio(1.0)
        acc = evaluate_accuracy(runtime.model, mlp_dataset)
        assert acc > 40.0


class TestConvPipeline:
    def test_conv_model_sweep(self, flexiq_conv_runtime, tiny_dataset):
        sweep = evaluate_ratio_sweep(flexiq_conv_runtime, tiny_dataset)
        assert set(sweep) == {0.0, 0.5, 1.0}
        assert all(np.isfinite(list(sweep.values())))
        assert sweep[0.0] >= sweep[1.0] - 3.0

    def test_conv_runtime_forward_shapes(self, flexiq_conv_runtime, tiny_dataset):
        flexiq_conv_runtime.set_ratio(0.5)
        with no_grad():
            out = flexiq_conv_runtime(Tensor(tiny_dataset.test_images[:4]))
        flexiq_conv_runtime.set_ratio(0.0)
        assert out.shape == (4, 4)

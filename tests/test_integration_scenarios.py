"""Cross-module integration scenarios.

These tests wire several subsystems together the way the examples and
benchmarks do: quantization pipeline -> hardware latency model -> serving
simulation -> adaptive control, exercising the interfaces between packages
rather than any single module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import FluctuatingTrace, PoissonTrace
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.memory import flexiq_footprint, uniform_footprint
from repro.hardware.npu import NpuLatencyModel
from repro.hardware.workloads import model_ops
from repro.serving.adaptation import AdaptiveServingSimulator
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator
from repro.tensor import Tensor, no_grad
from repro.train.loop import evaluate_accuracy


class TestPipelineToHardware:
    def test_selection_ratios_drive_per_layer_latency(self, flexiq_runtime):
        """The per-layer 4-bit fractions chosen by the pipeline can be replayed
        through the GPU latency model via per_layer_ratio overrides."""
        gpu = GpuLatencyModel("a6000")
        ops = model_ops("vit_base", 16)
        quantizable = [op.name for op in ops if op.quantizable and op.kind == "gemm"]

        flexiq_runtime.set_ratio(0.5)
        fractions = list(flexiq_runtime.per_layer_4bit_fraction().values())
        flexiq_runtime.set_ratio(0.0)
        # Broadcast the (small) model's fractions onto the paper-scale op list.
        per_layer = {
            name: fractions[i % len(fractions)] for i, name in enumerate(quantizable)
        }
        uniform_half = gpu.model_latency(ops, "flexiq", four_bit_ratio=0.5)
        replayed = gpu.model_latency(ops, "flexiq", per_layer_ratio=per_layer)
        int8 = gpu.model_latency(ops, "int8")
        int4 = gpu.model_latency(ops, "int4")
        assert int4 <= replayed <= int8
        assert replayed == pytest.approx(uniform_half, rel=0.25)

    def test_average_bits_consistent_with_memory_model(self, flexiq_runtime):
        """average_weight_bits at ratio r matches the footprint interpolation."""
        flexiq_runtime.set_ratio(1.0)
        bits_full = flexiq_runtime.average_weight_bits()
        flexiq_runtime.set_ratio(0.0)
        bits_zero = flexiq_runtime.average_weight_bits()
        assert bits_zero == pytest.approx(8.0)
        # First/last layers stay 8-bit, so the full-ratio average stays above 4.
        assert 4.0 < bits_full < 8.0
        ops = model_ops("vit_base", 1)
        flexi = flexiq_footprint(ops, 0.0, 1.0)
        int8 = uniform_footprint(ops, 8)
        assert flexi.weight_bytes == pytest.approx(int8.weight_bytes)

    def test_npu_and_gpu_agree_on_ordering(self):
        """Both hardware models agree that more 4-bit channels means less time."""
        ops = model_ops("resnet18", 1)
        gpu = GpuLatencyModel("rtx3090")
        npu = NpuLatencyModel()
        gpu_series = [gpu.model_latency(ops, "flexiq", r) for r in (0.0, 0.5, 1.0)]
        npu_series = [npu.model_latency(ops, four_bit_ratio=r) for r in (0.0, 0.5, 1.0)]
        assert gpu_series[0] > gpu_series[1] > gpu_series[2]
        assert npu_series[0] > npu_series[1] > npu_series[2]


class TestAccuracyLatencyTradeoff:
    def test_runtime_sweep_feeds_adaptive_serving(self, flexiq_runtime, mlp_dataset):
        """End to end: measure per-ratio accuracy of a real FlexiQ runtime, build
        a latency profile from the serving simulator, adapt under a bursty
        trace, and report an effective accuracy between the extremes."""
        from repro.core.pipeline import evaluate_ratio_sweep

        accuracy_by_ratio = evaluate_ratio_sweep(flexiq_runtime, mlp_dataset)

        service = ServiceTimeModel("vit_small", gpu="a6000", anchor_batches=(1, 16, 64))
        simulator = ServingSimulator(service, BatchingConfig(max_batch=64))
        rates = [500, 1500, 3000, 4500]

        def latency_fn(ratio, rate):
            trace = PoissonTrace(rate, duration=1.5, seed=5).generate()
            return simulator.run(trace, "flexiq", ratio=ratio).median_latency

        profile = build_profile_from_latency_fn(
            rates, sorted(accuracy_by_ratio), latency_fn
        )
        controller = AdaptiveRatioController(profile, latency_threshold=0.02)
        adaptive = AdaptiveServingSimulator(service, controller, control_window=1.0)
        trace = FluctuatingTrace(min_rate=1200, peak_ratio=3.0, duration=12.0, seed=7).generate()
        result = adaptive.run(trace, accuracy_by_ratio=accuracy_by_ratio)

        accuracies = list(accuracy_by_ratio.values())
        assert min(accuracies) - 1e-6 <= result.effective_accuracy <= max(accuracies) + 1e-6
        assert result.latencies.size == len(trace)

    def test_quantized_models_share_float_interface(self, flexiq_runtime, trained_mlp,
                                                     mlp_dataset):
        """Float, INT8-configured and 4-bit-configured models expose the same
        call interface and produce aligned predictions on easy samples."""
        x = Tensor(mlp_dataset.test_images[:8])
        with no_grad():
            float_pred = trained_mlp(x).data.argmax(axis=-1)
            flexiq_runtime.set_ratio(0.0)
            int8_pred = flexiq_runtime(x).data.argmax(axis=-1)
            flexiq_runtime.set_ratio(1.0)
            low_pred = flexiq_runtime(x).data.argmax(axis=-1)
            flexiq_runtime.set_ratio(0.0)
        assert (float_pred == int8_pred).mean() >= 0.75
        assert low_pred.shape == float_pred.shape

    def test_accuracy_latency_pareto(self, flexiq_conv_runtime, tiny_dataset):
        """Higher ratios are never slower (latency model) and the accuracy
        degradation stays bounded -- i.e. the trade-off curve is well formed."""
        from repro.core.pipeline import evaluate_ratio_sweep

        sweep = evaluate_ratio_sweep(flexiq_conv_runtime, tiny_dataset)
        gpu = GpuLatencyModel("a6000")
        ops = model_ops("resnet18", 1)
        points = []
        for ratio, accuracy in sorted(sweep.items()):
            latency = gpu.model_latency(ops, "flexiq", four_bit_ratio=ratio)
            points.append((latency, accuracy))
        latencies = [p[0] for p in points]
        assert all(b <= a + 1e-12 for a, b in zip(latencies, latencies[1:]))
        accuracies = [p[1] for p in points]
        assert max(accuracies) - min(accuracies) < 60.0

"""Tests for synthetic datasets, calibration sampling, text corpus and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.calibration import CalibrationSampler
from repro.data.synthetic import (
    DATASET_REGISTRY,
    DatasetConfig,
    SyntheticImageDataset,
    build_dataset,
)
from repro.data.text import SyntheticTextCorpus, TextCorpusConfig
from repro.data.traces import (
    DiurnalTrace,
    FluctuatingTrace,
    PoissonTrace,
    RequestTrace,
    SpikeTrace,
    merge_traces,
)


class TestSyntheticImages:
    def test_registry_entries(self):
        assert {"synthetic-cifar10", "synthetic-cifar100", "synthetic-imagenet"}.issubset(
            DATASET_REGISTRY
        )

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            build_dataset("synthetic-nothing")

    def test_shapes_and_dtypes(self):
        ds = SyntheticImageDataset(
            DatasetConfig(name="t", num_classes=5, image_size=8, train_size=64, test_size=32)
        )
        assert ds.train_images.shape == (64, 3, 8, 8)
        assert ds.test_images.shape == (32, 3, 8, 8)
        assert ds.train_images.dtype == np.float32
        assert ds.train_labels.dtype == np.int64
        assert ds.image_shape == (3, 8, 8)

    def test_labels_in_range_and_all_classes_present(self):
        ds = build_dataset("synthetic-cifar10")
        assert ds.train_labels.min() >= 0
        assert ds.train_labels.max() < ds.num_classes
        assert len(np.unique(ds.train_labels)) == ds.num_classes

    def test_deterministic_given_seed(self):
        cfg = DatasetConfig(name="d", num_classes=3, image_size=8, train_size=32, test_size=16)
        a = SyntheticImageDataset(cfg)
        b = SyntheticImageDataset(cfg)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_different_seed_differs(self):
        a = SyntheticImageDataset(DatasetConfig(name="a", seed=1, train_size=32, test_size=16))
        b = SyntheticImageDataset(DatasetConfig(name="b", seed=2, train_size=32, test_size=16))
        assert not np.array_equal(a.train_images, b.train_images)

    def test_normalised_statistics(self):
        ds = build_dataset("synthetic-imagenet")
        assert abs(float(ds.train_images.mean())) < 0.1
        assert 0.7 < float(ds.train_images.std()) < 1.3

    def test_class_structure_is_learnable_signal(self):
        """Per-class means must be more separated than the noise floor."""
        ds = build_dataset("synthetic-cifar10")
        means = np.stack(
            [ds.train_images[ds.train_labels == c].mean(axis=0) for c in range(ds.num_classes)]
        )
        between_class = np.linalg.norm(means[0] - means[1])
        within_class = float(
            np.linalg.norm(
                ds.train_images[ds.train_labels == 0][0]
                - ds.train_images[ds.train_labels == 0][1]
            )
        )
        assert between_class > 0.1 * within_class

    def test_train_batches_cover_all_and_shuffle(self):
        ds = build_dataset("synthetic-cifar10")
        batches = list(ds.train_batches(100, rng=np.random.default_rng(0)))
        total = sum(len(labels) for _, labels in batches)
        assert total == len(ds.train_labels)
        first_pass = list(ds.train_batches(100, rng=np.random.default_rng(1)))[0][1]
        second_pass = list(ds.train_batches(100, rng=np.random.default_rng(2)))[0][1]
        assert not np.array_equal(first_pass, second_pass)

    def test_test_batches_in_order(self):
        ds = build_dataset("synthetic-cifar10")
        images, labels = next(iter(ds.test_batches(16)))
        np.testing.assert_array_equal(labels, ds.test_labels[:16])

    def test_calibration_batch(self):
        ds = build_dataset("synthetic-cifar10")
        assert ds.calibration_batch(10).shape[0] == 10

    def test_build_dataset_cached(self):
        assert build_dataset("synthetic-cifar10") is build_dataset("synthetic-cifar10")
        assert build_dataset("synthetic-cifar10", cached=False) is not build_dataset(
            "synthetic-cifar10"
        )


class TestCalibrationSampler:
    def test_sample_size_and_determinism(self):
        images = np.random.default_rng(0).normal(size=(100, 3, 4, 4)).astype(np.float32)
        a = CalibrationSampler(images, size=32, seed=1)
        b = CalibrationSampler(images, size=32, seed=1)
        assert len(a) == 32
        np.testing.assert_array_equal(a.all(), b.all())

    def test_batches_and_limit(self):
        images = np.zeros((50, 3, 4, 4), dtype=np.float32)
        sampler = CalibrationSampler(images, size=40, batch_size=16)
        batches = list(sampler.batches())
        assert [len(b) for b in batches] == [16, 16, 8]
        assert sum(len(b) for b in sampler.batches(limit=20)) == 20

    def test_size_larger_than_data_clamped(self):
        images = np.zeros((10, 3, 4, 4), dtype=np.float32)
        assert len(CalibrationSampler(images, size=100)) == 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CalibrationSampler(np.zeros((4, 1)), size=0)


class TestTextCorpus:
    def test_token_ranges_and_split_sizes(self):
        corpus = SyntheticTextCorpus(TextCorpusConfig(vocab_size=16, train_tokens=2000,
                                                      test_tokens=400, seq_len=8))
        assert corpus.train_tokens.max() < 16
        assert corpus.train_sequences().shape == (250, 8)
        assert corpus.test_sequences().shape == (50, 8)

    def test_deterministic(self):
        a = SyntheticTextCorpus(TextCorpusConfig(seed=9))
        b = SyntheticTextCorpus(TextCorpusConfig(seed=9))
        np.testing.assert_array_equal(a.train_tokens, b.train_tokens)

    def test_corpus_has_structure(self):
        """Phrase reuse must make bigram distribution far from uniform."""
        corpus = SyntheticTextCorpus(TextCorpusConfig(vocab_size=32, train_tokens=8000))
        tokens = corpus.train_tokens
        pairs = tokens[:-1] * 32 + tokens[1:]
        counts = np.bincount(pairs, minlength=32 * 32)
        top_mass = np.sort(counts)[-32:].sum() / counts.sum()
        assert top_mass > 0.15  # uniform would give ~0.03

    def test_train_batches(self):
        corpus = SyntheticTextCorpus(TextCorpusConfig(train_tokens=2000, seq_len=10))
        batches = corpus.train_batches(batch_size=16, rng=np.random.default_rng(0))
        assert all(batch.shape[1] == 10 for batch in batches)


class TestTraces:
    def test_poisson_rate_matches(self):
        trace = PoissonTrace(rate_per_second=200, duration=20, seed=0).generate()
        assert trace.average_rate == pytest.approx(200, rel=0.15)
        assert trace.arrival_times.max() < 20

    def test_poisson_sorted_and_deterministic(self):
        a = PoissonTrace(100, 5, seed=2).generate()
        b = PoissonTrace(100, 5, seed=2).generate()
        assert np.all(np.diff(a.arrival_times) >= 0)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_poisson_invalid_args(self):
        with pytest.raises(ValueError):
            PoissonTrace(0, 10)
        with pytest.raises(ValueError):
            PoissonTrace(10, 0)

    def test_rate_in_window(self):
        trace = RequestTrace(arrival_times=np.array([0.1, 0.2, 0.3, 1.5]), duration=2.0)
        assert trace.rate_in_window(0.0, 1.0) == pytest.approx(3.0)
        assert trace.rate_in_window(1.0, 2.0) == pytest.approx(1.0)
        assert trace.rate_in_window(1.0, 1.0) == 0.0

    def test_fluctuating_trace_peak_ratio(self):
        gen = FluctuatingTrace(min_rate=100, peak_ratio=3.0, duration=60, num_phases=12, seed=1)
        rates = gen.phase_rates()
        assert max(rates) / min(rates) == pytest.approx(3.0, rel=0.35)
        trace = gen.generate()
        assert trace.average_rate > 100
        assert np.all(np.diff(trace.arrival_times) >= 0)

    def test_fluctuating_rate_varies_over_time(self):
        trace = FluctuatingTrace(min_rate=200, peak_ratio=3.0, duration=30, seed=2).generate()
        window = 30 / 10
        rates = [trace.rate_in_window(i * window, (i + 1) * window) for i in range(10)]
        assert max(rates) > 1.8 * min(rates)

    def test_fluctuating_phase_rates_cache_invalidated_on_mutation(self):
        """Regression: the memoized phase rates were never invalidated, so
        mutating seed/num_phases/min_rate after the first phase_rates() call
        silently returned rates for the old parameters."""
        gen = FluctuatingTrace(min_rate=100, peak_ratio=3.0, duration=60, num_phases=12, seed=1)
        first = gen.phase_rates()
        gen.seed = 2
        assert gen.phase_rates() != first          # seed: identical (stale cache)
        gen.num_phases = 6
        assert len(gen.phase_rates()) == 6         # seed: still 12 entries
        gen.min_rate = 500
        assert min(gen.phase_rates()) >= 500 * 0.9  # seed: rates for min_rate=100
        # Unchanged parameters still hit the cache (same values back).
        again = gen.phase_rates()
        assert again == gen.phase_rates()

    def test_fluctuating_generate_follows_mutated_parameters(self):
        gen = FluctuatingTrace(min_rate=100, peak_ratio=2.0, duration=10, seed=1)
        low = gen.generate()
        gen.min_rate = 1000
        high = gen.generate()
        assert high.average_rate > 5 * low.average_rate


class TestDiurnalTrace:
    def test_rate_cycle_floor_and_peak(self):
        gen = DiurnalTrace(night_rate=100, peak_rate=900, duration=60, period=60, seed=0)
        assert gen.rate_at(0.0) == pytest.approx(100.0)
        assert gen.rate_at(30.0) == pytest.approx(900.0)   # midday, half a period in
        assert gen.rate_at(60.0) == pytest.approx(100.0, abs=1e-6)
        rates = gen.phase_rates()
        assert len(rates) == gen.num_phases
        assert max(rates) > 5 * min(rates)

    def test_generated_trace_tracks_the_cycle(self):
        trace = DiurnalTrace(
            night_rate=200, peak_rate=1200, duration=40, period=40, num_phases=40, seed=3
        ).generate()
        assert np.all(np.diff(trace.arrival_times) >= 0)
        assert trace.arrival_times.max() < 40
        night = trace.rate_in_window(0.0, 5.0)
        midday = trace.rate_in_window(17.5, 22.5)
        assert midday > 3 * night

    def test_multiple_periods(self):
        gen = DiurnalTrace(night_rate=100, peak_rate=500, duration=40, period=20, seed=0)
        assert gen.rate_at(10.0) == pytest.approx(gen.rate_at(30.0))

    def test_deterministic_and_frozen(self):
        a = DiurnalTrace(night_rate=100, peak_rate=300, duration=10, seed=5).generate()
        b = DiurnalTrace(night_rate=100, peak_rate=300, duration=10, seed=5).generate()
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)
        gen = DiurnalTrace(night_rate=100, peak_rate=300)
        with pytest.raises(Exception):
            gen.seed = 9  # frozen: no stale-cache class of bugs

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(night_rate=0, peak_rate=100)
        with pytest.raises(ValueError):
            DiurnalTrace(night_rate=200, peak_rate=100)
        with pytest.raises(ValueError):
            DiurnalTrace(night_rate=100, peak_rate=200, period=0)


class TestSpikeTrace:
    def test_spike_window_rate(self):
        trace = SpikeTrace(
            base_rate=200, spike_rate=2000, spike_start=4.0, spike_duration=2.0,
            duration=10.0, seed=1,
        ).generate()
        assert np.all(np.diff(trace.arrival_times) >= 0)
        before = trace.rate_in_window(0.0, 4.0)
        during = trace.rate_in_window(4.0, 6.0)
        after = trace.rate_in_window(6.0, 10.0)
        assert during == pytest.approx(2000, rel=0.15)
        assert before == pytest.approx(200, rel=0.35)
        assert after == pytest.approx(200, rel=0.35)

    def test_rate_at(self):
        gen = SpikeTrace(
            base_rate=100, spike_rate=900, spike_start=5.0, spike_duration=1.0,
            duration=10.0,
        )
        assert gen.rate_at(4.9) == 100.0
        assert gen.rate_at(5.0) == 900.0
        assert gen.rate_at(5.999) == 900.0
        assert gen.rate_at(6.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeTrace(base_rate=100, spike_rate=50, spike_start=1.0, spike_duration=1.0)
        with pytest.raises(ValueError):
            SpikeTrace(base_rate=100, spike_rate=200, spike_start=99.0,
                       spike_duration=1.0, duration=10.0)

    def test_no_spike_degenerates_to_base(self):
        gen = SpikeTrace(
            base_rate=300, spike_rate=300, spike_start=2.0, spike_duration=1.0,
            duration=10.0, seed=2,
        )
        trace = gen.generate()
        assert trace.average_rate == pytest.approx(300, rel=0.15)


class TestMergeTraces:
    def test_rates_add(self):
        a = PoissonTrace(200, duration=10, seed=1).generate()
        b = PoissonTrace(300, duration=10, seed=2).generate()
        merged = merge_traces(a, b)
        assert len(merged) == len(a) + len(b)
        assert merged.duration == 10
        assert np.all(np.diff(merged.arrival_times) >= 0)
        assert merged.average_rate == pytest.approx(500, rel=0.15)

    def test_duration_and_description(self):
        a = PoissonTrace(100, duration=5, seed=1).generate()
        b = PoissonTrace(100, duration=8, seed=2).generate()
        assert merge_traces(a, b).duration == 8
        assert merge_traces(a, b, duration=12.0).duration == 12.0
        assert " + " in merge_traces(a, b).description

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces()

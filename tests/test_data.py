"""Tests for synthetic datasets, calibration sampling, text corpus and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.calibration import CalibrationSampler
from repro.data.synthetic import (
    DATASET_REGISTRY,
    DatasetConfig,
    SyntheticImageDataset,
    build_dataset,
)
from repro.data.text import SyntheticTextCorpus, TextCorpusConfig
from repro.data.traces import FluctuatingTrace, PoissonTrace, RequestTrace


class TestSyntheticImages:
    def test_registry_entries(self):
        assert {"synthetic-cifar10", "synthetic-cifar100", "synthetic-imagenet"}.issubset(
            DATASET_REGISTRY
        )

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            build_dataset("synthetic-nothing")

    def test_shapes_and_dtypes(self):
        ds = SyntheticImageDataset(
            DatasetConfig(name="t", num_classes=5, image_size=8, train_size=64, test_size=32)
        )
        assert ds.train_images.shape == (64, 3, 8, 8)
        assert ds.test_images.shape == (32, 3, 8, 8)
        assert ds.train_images.dtype == np.float32
        assert ds.train_labels.dtype == np.int64
        assert ds.image_shape == (3, 8, 8)

    def test_labels_in_range_and_all_classes_present(self):
        ds = build_dataset("synthetic-cifar10")
        assert ds.train_labels.min() >= 0
        assert ds.train_labels.max() < ds.num_classes
        assert len(np.unique(ds.train_labels)) == ds.num_classes

    def test_deterministic_given_seed(self):
        cfg = DatasetConfig(name="d", num_classes=3, image_size=8, train_size=32, test_size=16)
        a = SyntheticImageDataset(cfg)
        b = SyntheticImageDataset(cfg)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_different_seed_differs(self):
        a = SyntheticImageDataset(DatasetConfig(name="a", seed=1, train_size=32, test_size=16))
        b = SyntheticImageDataset(DatasetConfig(name="b", seed=2, train_size=32, test_size=16))
        assert not np.array_equal(a.train_images, b.train_images)

    def test_normalised_statistics(self):
        ds = build_dataset("synthetic-imagenet")
        assert abs(float(ds.train_images.mean())) < 0.1
        assert 0.7 < float(ds.train_images.std()) < 1.3

    def test_class_structure_is_learnable_signal(self):
        """Per-class means must be more separated than the noise floor."""
        ds = build_dataset("synthetic-cifar10")
        means = np.stack(
            [ds.train_images[ds.train_labels == c].mean(axis=0) for c in range(ds.num_classes)]
        )
        between_class = np.linalg.norm(means[0] - means[1])
        within_class = float(
            np.linalg.norm(
                ds.train_images[ds.train_labels == 0][0]
                - ds.train_images[ds.train_labels == 0][1]
            )
        )
        assert between_class > 0.1 * within_class

    def test_train_batches_cover_all_and_shuffle(self):
        ds = build_dataset("synthetic-cifar10")
        batches = list(ds.train_batches(100, rng=np.random.default_rng(0)))
        total = sum(len(labels) for _, labels in batches)
        assert total == len(ds.train_labels)
        first_pass = list(ds.train_batches(100, rng=np.random.default_rng(1)))[0][1]
        second_pass = list(ds.train_batches(100, rng=np.random.default_rng(2)))[0][1]
        assert not np.array_equal(first_pass, second_pass)

    def test_test_batches_in_order(self):
        ds = build_dataset("synthetic-cifar10")
        images, labels = next(iter(ds.test_batches(16)))
        np.testing.assert_array_equal(labels, ds.test_labels[:16])

    def test_calibration_batch(self):
        ds = build_dataset("synthetic-cifar10")
        assert ds.calibration_batch(10).shape[0] == 10

    def test_build_dataset_cached(self):
        assert build_dataset("synthetic-cifar10") is build_dataset("synthetic-cifar10")
        assert build_dataset("synthetic-cifar10", cached=False) is not build_dataset(
            "synthetic-cifar10"
        )


class TestCalibrationSampler:
    def test_sample_size_and_determinism(self):
        images = np.random.default_rng(0).normal(size=(100, 3, 4, 4)).astype(np.float32)
        a = CalibrationSampler(images, size=32, seed=1)
        b = CalibrationSampler(images, size=32, seed=1)
        assert len(a) == 32
        np.testing.assert_array_equal(a.all(), b.all())

    def test_batches_and_limit(self):
        images = np.zeros((50, 3, 4, 4), dtype=np.float32)
        sampler = CalibrationSampler(images, size=40, batch_size=16)
        batches = list(sampler.batches())
        assert [len(b) for b in batches] == [16, 16, 8]
        assert sum(len(b) for b in sampler.batches(limit=20)) == 20

    def test_size_larger_than_data_clamped(self):
        images = np.zeros((10, 3, 4, 4), dtype=np.float32)
        assert len(CalibrationSampler(images, size=100)) == 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CalibrationSampler(np.zeros((4, 1)), size=0)


class TestTextCorpus:
    def test_token_ranges_and_split_sizes(self):
        corpus = SyntheticTextCorpus(TextCorpusConfig(vocab_size=16, train_tokens=2000,
                                                      test_tokens=400, seq_len=8))
        assert corpus.train_tokens.max() < 16
        assert corpus.train_sequences().shape == (250, 8)
        assert corpus.test_sequences().shape == (50, 8)

    def test_deterministic(self):
        a = SyntheticTextCorpus(TextCorpusConfig(seed=9))
        b = SyntheticTextCorpus(TextCorpusConfig(seed=9))
        np.testing.assert_array_equal(a.train_tokens, b.train_tokens)

    def test_corpus_has_structure(self):
        """Phrase reuse must make bigram distribution far from uniform."""
        corpus = SyntheticTextCorpus(TextCorpusConfig(vocab_size=32, train_tokens=8000))
        tokens = corpus.train_tokens
        pairs = tokens[:-1] * 32 + tokens[1:]
        counts = np.bincount(pairs, minlength=32 * 32)
        top_mass = np.sort(counts)[-32:].sum() / counts.sum()
        assert top_mass > 0.15  # uniform would give ~0.03

    def test_train_batches(self):
        corpus = SyntheticTextCorpus(TextCorpusConfig(train_tokens=2000, seq_len=10))
        batches = corpus.train_batches(batch_size=16, rng=np.random.default_rng(0))
        assert all(batch.shape[1] == 10 for batch in batches)


class TestTraces:
    def test_poisson_rate_matches(self):
        trace = PoissonTrace(rate_per_second=200, duration=20, seed=0).generate()
        assert trace.average_rate == pytest.approx(200, rel=0.15)
        assert trace.arrival_times.max() < 20

    def test_poisson_sorted_and_deterministic(self):
        a = PoissonTrace(100, 5, seed=2).generate()
        b = PoissonTrace(100, 5, seed=2).generate()
        assert np.all(np.diff(a.arrival_times) >= 0)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)

    def test_poisson_invalid_args(self):
        with pytest.raises(ValueError):
            PoissonTrace(0, 10)
        with pytest.raises(ValueError):
            PoissonTrace(10, 0)

    def test_rate_in_window(self):
        trace = RequestTrace(arrival_times=np.array([0.1, 0.2, 0.3, 1.5]), duration=2.0)
        assert trace.rate_in_window(0.0, 1.0) == pytest.approx(3.0)
        assert trace.rate_in_window(1.0, 2.0) == pytest.approx(1.0)
        assert trace.rate_in_window(1.0, 1.0) == 0.0

    def test_fluctuating_trace_peak_ratio(self):
        gen = FluctuatingTrace(min_rate=100, peak_ratio=3.0, duration=60, num_phases=12, seed=1)
        rates = gen.phase_rates()
        assert max(rates) / min(rates) == pytest.approx(3.0, rel=0.35)
        trace = gen.generate()
        assert trace.average_rate > 100
        assert np.all(np.diff(trace.arrival_times) >= 0)

    def test_fluctuating_rate_varies_over_time(self):
        trace = FluctuatingTrace(min_rate=200, peak_ratio=3.0, duration=30, seed=2).generate()
        window = 30 / 10
        rates = [trace.rate_in_window(i * window, (i + 1) * window) for i in range(10)]
        assert max(rates) > 1.8 * min(rates)

"""Tests for quantized layers and the model-level quantization pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Linear
from repro.quant.qmodel import (
    calibrate_model,
    iter_quantizable_layers,
    iter_quantized_layers,
    model_average_bits,
    quantize_model,
)
from repro.quant.qmodules import QuantConv2d, QuantLinear
from repro.tensor import Tensor, no_grad


def make_linear(in_f=16, out_f=8, seed=0):
    rng = np.random.default_rng(seed)
    layer = Linear(in_f, out_f, rng=rng)
    return layer


def make_conv(in_c=4, out_c=8, seed=0, groups=1):
    rng = np.random.default_rng(seed)
    return Conv2d(in_c, out_c, 3, padding=1, groups=groups, rng=rng)


def calibrated_qlinear(bits=8, seed=0):
    source = make_linear(seed=seed)
    qlayer = QuantLinear(source, weight_bits=bits, act_bits=bits)
    rng = np.random.default_rng(seed + 1)
    data = rng.normal(size=(32, source.in_features)).astype(np.float32)
    qlayer(Tensor(data))
    qlayer.freeze()
    return source, qlayer, data


class TestQuantLinear:
    def test_calibration_then_freeze(self):
        _, qlayer, _ = calibrated_qlinear()
        assert not qlayer.calibrating
        assert qlayer.weight_qparams.per_channel
        assert qlayer.weight_qparams.scale.shape == (8,)

    def test_forward_before_freeze_records_and_matches_float(self):
        source = make_linear()
        qlayer = QuantLinear(source)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 16)).astype(np.float32))
        out = qlayer(x)
        np.testing.assert_allclose(out.data, source(x).data, atol=1e-5)
        assert qlayer.act_observer.initialized

    def test_freeze_without_data_raises(self):
        qlayer = QuantLinear(make_linear())
        with pytest.raises(RuntimeError):
            qlayer.freeze()

    def test_int8_close_to_float(self):
        source, qlayer, data = calibrated_qlinear(bits=8)
        x = Tensor(data[:8])
        ref = source(x).data
        out = qlayer(x).data
        scale = np.abs(ref).max()
        assert np.abs(out - ref).max() < 0.05 * scale

    def test_int4_worse_than_int8(self):
        source, q8, data = calibrated_qlinear(bits=8)
        _, q4, _ = calibrated_qlinear(bits=4)
        x = Tensor(data[:8])
        ref = source(x).data
        err8 = np.abs(q8(x).data - ref).mean()
        err4 = np.abs(q4(x).data - ref).mean()
        assert err4 > err8

    def test_token_shaped_input(self):
        _, qlayer, _ = calibrated_qlinear()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5, 16)).astype(np.float32))
        assert qlayer(x).shape == (2, 5, 8)

    def test_weight_channel_max_abs_shape(self):
        _, qlayer, _ = calibrated_qlinear()
        assert qlayer.weight_channel_max_abs().shape == (16,)

    def test_input_channel_range_shape(self):
        _, qlayer, _ = calibrated_qlinear()
        r = qlayer.input_channel_range()
        assert r.low.shape == (16,)

    def test_qat_forward_differentiable(self):
        _, qlayer, data = calibrated_qlinear()
        x = Tensor(data[:4], requires_grad=True)
        out = qlayer.qat_forward(x)
        out.sum().backward()
        assert qlayer.weight.grad is not None
        assert x.grad is not None

    def test_qat_forward_lower_bits_increases_error(self):
        source, qlayer, data = calibrated_qlinear()
        x = Tensor(data[:8])
        ref = source(x).data
        err8 = np.abs(qlayer.qat_forward(x, 8, 8).data - ref).mean()
        err4 = np.abs(qlayer.qat_forward(x, 4, 4).data - ref).mean()
        assert err4 > err8

    def test_qat_bits_attribute_switches_forward(self):
        _, qlayer, data = calibrated_qlinear()
        x = Tensor(data[:4])
        quantized = qlayer(x).data
        qlayer.qat_bits = 8
        qat = qlayer(x).data
        qlayer.qat_bits = None
        # Fake-quant and integer paths agree closely at 8 bits.
        np.testing.assert_allclose(quantized, qat, atol=1e-3)

    def test_reset_calibration(self):
        _, qlayer, data = calibrated_qlinear()
        qlayer.reset_calibration()
        assert qlayer.calibrating
        with pytest.raises(RuntimeError):
            qlayer.input_channel_range()


class TestQuantConv2d:
    def _calibrated(self, bits=8, groups=1):
        source = make_conv(groups=groups)
        qlayer = QuantConv2d(source, weight_bits=bits, act_bits=bits)
        data = np.random.default_rng(1).normal(size=(8, 4, 6, 6)).astype(np.float32)
        qlayer(Tensor(data))
        qlayer.freeze()
        return source, qlayer, data

    def test_int8_close_to_float(self):
        source, qlayer, data = self._calibrated()
        x = Tensor(data[:4])
        ref = source(x).data
        out = qlayer(x).data
        assert np.abs(out - ref).max() < 0.06 * np.abs(ref).max()

    def test_integer_path_equals_simulated_path(self):
        """The explicit integer GEMM and quantize-dequantize float conv agree."""
        _, qlayer, data = self._calibrated()
        x = Tensor(data[:4])
        integer = qlayer._quantized_forward(x).data
        simulated = qlayer._simulated_quantized_forward(x).data
        np.testing.assert_allclose(integer, simulated, atol=1e-3, rtol=1e-3)

    def test_depthwise_conv_supported(self):
        source, qlayer, data = self._calibrated(groups=4)
        x = Tensor(data[:4])
        out = qlayer(x)
        assert out.shape == source(x).shape
        assert np.isfinite(out.data).all()

    def test_weight_matrix_dense_view_for_groups(self):
        _, qlayer, _ = self._calibrated(groups=4)
        dense = qlayer._weight_matrix()
        assert dense.shape == (8, 4, 9)

    def test_feature_channels(self):
        _, qlayer, _ = self._calibrated()
        assert qlayer.feature_channels == 4


class SmallNet:
    """Helper building a 3-layer model for quantize_model tests."""

    @staticmethod
    def build(seed=0):
        from repro.nn.module import Module

        class Net(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(seed)
                self.conv = Conv2d(3, 8, 3, padding=1, rng=rng)
                self.mid = Linear(8, 16, rng=rng)
                self.head = Linear(16, 4, rng=rng)

            def forward(self, x):
                feats = self.conv(x).mean(axis=(2, 3))
                return self.head(self.mid(feats).relu())

        return Net()


class TestQuantizeModel:
    def _calibration(self):
        return [np.random.default_rng(7).normal(size=(16, 3, 8, 8)).astype(np.float32)]

    def test_replaces_all_layers(self):
        model = SmallNet.build()
        quantized = quantize_model(model, 8, calibration_batches=self._calibration())
        assert len(iter_quantized_layers(quantized)) == 3
        assert len(iter_quantizable_layers(quantized)) == 0

    def test_original_model_untouched(self):
        model = SmallNet.build()
        quantize_model(model, 8, calibration_batches=self._calibration())
        assert len(iter_quantizable_layers(model)) == 3

    def test_first_last_kept_at_8bit(self):
        model = SmallNet.build()
        quantized = quantize_model(model, 4, calibration_batches=self._calibration())
        layers = iter_quantized_layers(quantized)
        assert layers[0][1].weight_bits == 8
        assert layers[-1][1].weight_bits == 8
        assert layers[1][1].weight_bits == 4

    def test_average_bits(self):
        model = SmallNet.build()
        q8 = quantize_model(model, 8, calibration_batches=self._calibration())
        assert model_average_bits(q8) == pytest.approx(8.0)
        q4 = quantize_model(model, 4, calibration_batches=self._calibration())
        assert 4.0 < model_average_bits(q4) < 8.0

    def test_accuracy_preserving_at_8bit(self):
        model = SmallNet.build()
        calibration = self._calibration()
        quantized = quantize_model(model, 8, calibration_batches=calibration)
        x = Tensor(calibration[0][:8])
        with no_grad():
            ref = model(x).data
            out = quantized(x).data
        assert np.abs(out - ref).max() < 0.1 * (np.abs(ref).max() + 1e-6)

    def test_calibration_required_before_inference(self):
        model = SmallNet.build()
        quantized = quantize_model(model, 8)
        # still calibrating: forward works (records), then freeze via calibrate_model
        calibrate_model(quantized, self._calibration())
        x = Tensor(self._calibration()[0][:2])
        assert quantized(x).shape == (2, 4)

    def test_calibrate_model_empty_batches_raises(self):
        model = SmallNet.build()
        quantized = quantize_model(model, 8)
        with pytest.raises(ValueError):
            calibrate_model(quantized, [])

    def test_inplace_quantization(self):
        model = SmallNet.build()
        quantize_model(model, 8, calibration_batches=self._calibration(), inplace=True)
        assert len(iter_quantized_layers(model)) == 3

    def test_no_quantizable_layers_raises(self):
        from repro.nn.layers import ReLU
        from repro.nn.module import Sequential

        with pytest.raises(ValueError):
            quantize_model(Sequential(ReLU()), 8)

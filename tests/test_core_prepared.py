"""Tests for the prepared-kernel cache (repro.core.prepared).

Covers the contract the serving stack relies on:

* cached (prepared) and uncached (reference) forwards are bit-exact for
  FlexiQLinear/FlexiQConv2d across ratios, group sizes and dynamic
  extraction on/off;
* the cache invalidates after ``reset_calibration()`` and after a QAT
  finetune step rebinds the weights;
* ``set_ratio()``/``set_boundary()`` never requantize or re-permute weights.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.runtime as runtime_module
import repro.quant.qmodules as qmodules
from repro.core.bit_extraction import BitExtractionPlan
from repro.core.layout import ChannelLayout
from repro.core.prepared import PreparedKernel, prepare_model
from repro.core.runtime import FlexiQConv2d, FlexiQLinear
from repro.nn.layers import Conv2d, Linear
from repro.quant.quantizers import quantize
from repro.tensor import Tensor
from repro.train.optim import SGD

RATIOS = (0.0, 0.25, 0.5, 1.0)


def calibrated_linear(in_f=16, out_f=8, seed=0):
    rng = np.random.default_rng(seed)
    source = Linear(in_f, out_f, rng=rng)
    scales = np.resize(
        np.repeat([0.1, 0.4, 1.0, 2.0], max(in_f // 4, 1)), in_f
    ).astype(np.float32)
    source.weight.data = source.weight.data * scales[None, :]
    layer = FlexiQLinear(source)
    data = (rng.normal(size=(64, in_f)) * scales[None, :]).astype(np.float32)
    layer(Tensor(data))
    layer.freeze()
    return layer, data


def calibrated_conv(channels=8, out_channels=6, seed=0):
    rng = np.random.default_rng(seed)
    source = Conv2d(channels, out_channels, 3, padding=1, rng=rng)
    scales = np.repeat([0.1, 0.5, 1.0, 2.0], channels // 4).astype(np.float32)
    source.weight.data = source.weight.data * scales[None, :, None, None]
    layer = FlexiQConv2d(source)
    data = (rng.normal(size=(16, channels, 6, 6)) * scales[None, :, None, None]).astype(
        np.float32
    )
    layer(Tensor(data))
    layer.freeze()
    return layer, data


def plan_for(layer):
    q_weight = quantize(layer.weight.data, layer.weight_qparams)
    weight_max = np.abs(
        q_weight.reshape(q_weight.shape[0], layer.feature_channels, -1)
    ).max(axis=(0, 2))
    act_range = layer.input_channel_range()
    act_max = np.clip(
        np.round(act_range.max_abs / layer.act_qparams.scale), 0, 127
    )
    return BitExtractionPlan.from_channel_maxima(weight_max, act_max)


def shuffled_layout(channels, seed=7):
    order = np.random.default_rng(seed).permutation(channels)
    return ChannelLayout("layer", order, {1.0: channels})


def forward_both_paths(layer, x):
    """Run the prepared and the uncached reference path on the same input."""
    layer.use_prepared = True
    layer.prepare()
    fast = layer(x).data.copy()
    layer.use_prepared = False
    slow = layer(x).data.copy()
    layer.use_prepared = True
    return fast, slow


class TestBitExactness:
    @pytest.mark.parametrize("group_size", [1, 4])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_linear_bit_exact_across_ratios(self, group_size, dynamic):
        layer, data = calibrated_linear()
        layer.configure(
            shuffled_layout(layer.feature_channels), plan_for(layer),
            group_size=group_size,
        )
        layer.set_dynamic_extraction(dynamic)
        x = Tensor(data[:8])
        for ratio in RATIOS:
            layer.set_boundary(int(round(ratio * layer.feature_channels)))
            fast, slow = forward_both_paths(layer, x)
            np.testing.assert_array_equal(fast, slow)

    @pytest.mark.parametrize("group_size", [1, 4])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_conv_bit_exact_across_ratios(self, group_size, dynamic):
        layer, data = calibrated_conv()
        layer.configure(
            shuffled_layout(layer.feature_channels), plan_for(layer),
            group_size=group_size,
        )
        layer.set_dynamic_extraction(dynamic)
        x = Tensor(data[:4])
        for ratio in RATIOS:
            layer.set_boundary(int(round(ratio * layer.feature_channels)))
            fast, slow = forward_both_paths(layer, x)
            np.testing.assert_array_equal(fast, slow)

    def test_channels_not_multiple_of_group_size(self):
        # 18 features with groups of 4: the last (short) group shares shifts.
        layer, data = calibrated_linear(in_f=18, out_f=5, seed=3)
        layer.configure(
            shuffled_layout(18, seed=3), plan_for(layer), group_size=4
        )
        x = Tensor(data[:8])
        for boundary in (0, 5, 18):
            layer.set_boundary(boundary)
            fast, slow = forward_both_paths(layer, x)
            np.testing.assert_array_equal(fast, slow)

    def test_unconfigured_layer_matches_reference(self):
        layer, data = calibrated_linear()
        x = Tensor(data[:8])
        fast, slow = forward_both_paths(layer, x)
        np.testing.assert_array_equal(fast, slow)

    def test_model_level_bit_exact(self, flexiq_runtime, calibration_batch):
        x = Tensor(calibration_batch[:8])
        for ratio in flexiq_runtime.available_ratios:
            flexiq_runtime.set_ratio(ratio)
            flexiq_runtime.prepare(use_prepared=True)
            fast = flexiq_runtime(x).data.copy()
            flexiq_runtime.prepare(use_prepared=False)
            slow = flexiq_runtime(x).data.copy()
            np.testing.assert_array_equal(fast, slow)
        flexiq_runtime.prepare(use_prepared=True)
        flexiq_runtime.set_ratio(0.0)


class TestCacheLifecycle:
    def configured_linear(self):
        layer, data = calibrated_linear()
        layer.configure(shuffled_layout(layer.feature_channels), plan_for(layer),
                        group_size=4)
        layer.set_boundary(8)
        layer(Tensor(data[:4]))
        return layer, data

    def test_freeze_populates_weight_cache(self):
        layer, _ = self.configured_linear()
        assert layer._q_weight_cache is not None
        assert layer._q_weight_cache.dtype == np.int8
        np.testing.assert_array_equal(
            layer._q_weight_cache,
            quantize(layer.weight.data, layer.weight_qparams),
        )
        assert layer._prepared is not None

    def test_reset_calibration_invalidates(self):
        layer, _ = self.configured_linear()
        layer.reset_calibration()
        assert layer._q_weight_cache is None
        assert layer._prepared is None
        assert layer._out_scale_cache is None

    def test_qat_step_invalidates_via_weight_rebind(self):
        layer, data = self.configured_linear()
        stale_prepared = layer._prepared
        stale_q = layer._q_weight_cache
        # A finetune step: fake-quantized forward, backward, optimizer step
        # (the optimizer rebinds weight.data, as load_state_dict does too).
        optimizer = SGD([layer.weight], lr=0.5, momentum=0.0)
        out = layer.qat_forward(Tensor(data[:4]), weight_bits=4, act_bits=4)
        out.sum().backward()
        optimizer.step()
        q_new = layer.quantized_weight()
        assert q_new is not stale_q
        np.testing.assert_array_equal(
            q_new, quantize(layer.weight.data, layer.weight_qparams)
        )
        layer.prepare()
        assert layer._prepared is not stale_prepared
        assert layer._prepared.weight_src is layer.weight.data

    def test_explicit_invalidate_after_inplace_mutation(self):
        layer, _ = self.configured_linear()
        layer.weight.data *= 0.5  # in-place: identity check cannot see this
        layer.invalidate_weight_cache()
        assert layer._q_weight_cache is None
        np.testing.assert_array_equal(
            layer.quantized_weight(),
            quantize(layer.weight.data, layer.weight_qparams),
        )

    def test_configure_drops_stale_plan_state(self):
        layer, _ = self.configured_linear()
        first = layer._prepared
        layer.configure(
            shuffled_layout(layer.feature_channels, seed=11), plan_for(layer),
            group_size=1,
        )
        assert layer._prepared is not first
        assert layer._prepared is not None  # eagerly rebuilt (still frozen)


class TestRatioSwitchIsO1:
    def test_set_ratio_never_rebuilds_or_requantizes(
        self, flexiq_runtime, calibration_batch, monkeypatch
    ):
        flexiq_runtime.prepare(use_prepared=True)
        x = Tensor(calibration_batch[:4])
        flexiq_runtime(x)  # warm every boundary-plane cache

        builds = []
        original_build = PreparedKernel.build
        monkeypatch.setattr(
            PreparedKernel, "build",
            staticmethod(lambda layer, taps: builds.append(layer) or original_build(layer, taps)),
        )
        # Track quantize() calls that touch any layer's weight array:
        # activations are quantized every forward, weights must never be.
        weight_ids = {
            id(layer.weight.data) for _, layer in flexiq_runtime.flexiq_layers()
        }
        weight_quantizes = []
        original_quantize = qmodules.quantize

        def spy(values, qparams):
            if id(values) in weight_ids:
                weight_quantizes.append(values.shape)
            return original_quantize(values, qparams)

        monkeypatch.setattr(qmodules, "quantize", spy)
        monkeypatch.setattr(runtime_module, "quantize", spy)
        for ratio in flexiq_runtime.available_ratios + [0.0, 1.0, 0.0]:
            flexiq_runtime.set_ratio(ratio)
            flexiq_runtime(x)
        assert builds == []
        assert weight_quantizes == []
        flexiq_runtime.set_ratio(0.0)

    def test_prepare_model_counts_layers(self, flexiq_runtime):
        count = prepare_model(flexiq_runtime.model, use_prepared=True)
        configured = [
            name
            for name, layer in flexiq_runtime.flexiq_layers()
            if layer.layout is not None
        ]
        assert count >= len(configured)


class TestPreparedKernelInternals:
    def test_boundary_plane_reuses_extremes(self):
        layer, _ = calibrated_linear()
        layer.configure(shuffled_layout(16), plan_for(layer), group_size=4)
        prepared = layer.prepare()
        combined0 = prepared._boundary_plane(0)[0]
        assert combined0 is prepared.w8_t  # boundary 0 slices the 8-bit plane

    def test_nbytes_and_repr(self):
        layer, _ = calibrated_linear()
        layer.configure(shuffled_layout(16), plan_for(layer), group_size=4)
        prepared = layer.prepare()
        assert prepared.nbytes() > 0
        assert "PreparedKernel" in repr(prepared)

    def test_boundary_plane_cache_is_bounded(self):
        from repro.core.prepared import _MAX_BOUNDARY_PLANES

        layer, data = calibrated_linear()
        layer.configure(shuffled_layout(16), plan_for(layer), group_size=1)
        prepared = layer.prepare()
        for boundary in range(17):
            layer.set_boundary(boundary)
            layer(Tensor(data[:2]))
        assert len(prepared._boundary_planes) <= _MAX_BOUNDARY_PLANES

"""Tests for the unified serving engine (executors, policies, registry).

Covers three layers:

* **Wrapper equivalence** — ``ServingSimulator`` / ``AdaptiveServingSimulator``
  are thin wrappers over :class:`ServingEngine`; reference copies of the seed
  discrete-event loops live in this file and the wrappers must reproduce
  their latencies bit-for-bit on fixed traces.
* **Engine API** — request/response surface, multi-model registry,
  head-of-line batching, policies.
* **Real execution** — :class:`RuntimeExecutor` serving prepared FlexiQ
  runtimes end-to-end, with heterogeneous-ratio batches and no prepared-
  kernel rebuilds (the PR 1 single-variable-update claim).
"""

from __future__ import annotations

import bisect

import numpy as np
import pytest

from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.core.prepared import PreparedKernel
from repro.data.traces import FluctuatingTrace, PoissonTrace, RequestTrace
from repro.serving.adaptation import AdaptiveServingSimulator, _effective_accuracy
from repro.serving.engine import (
    BatchingConfig,
    Request,
    ServingEngine,
    requests_from_trace,
)
from repro.serving.executors import ModeledExecutor, RuntimeExecutor
from repro.serving.policies import (
    AdaptiveRatioPolicy,
    FixedRatioPolicy,
    PolicyContext,
    QueueDepthRatioPolicy,
    RatioSchedulePolicy,
    RoundRobinRatioPolicy,
    policy_selector,
)
from repro.serving.schedulers import EdfScheduler, FifoScheduler, PriorityScheduler
from repro.serving.simulator import ServiceTimeModel, ServingSimulator
from repro.tensor import Tensor


# ----------------------------------------------------------------------
# Reference implementations (verbatim seed algorithms)
# ----------------------------------------------------------------------
def seed_serving_run(service_model, batching, trace, mode, ratio=0.0, ratio_schedule=None):
    """The seed ``ServingSimulator.run`` loop, kept as the equivalence oracle.

    The ``drop_after=None`` arithmetic is the seed algorithm verbatim.  The
    drop branch models the PR 3 corrected semantics: the seed computed the
    batch window *before* filtering expired requests, so drops consumed
    batch slots and batches ran under capacity exactly when the queue was
    backed up; the fix drops the expired prefix first (arrivals are sorted,
    so expired requests always form a prefix of the arrived window) and then
    fills the batch from what remains (backfill).
    """
    arrivals = np.sort(np.asarray(trace.arrival_times, dtype=np.float64))
    num_requests = len(arrivals)
    latencies = np.zeros(num_requests, dtype=np.float64)
    batch_sizes = []
    dropped = 0

    server_free_at = 0.0
    index = 0
    max_batch = batching.max_batch
    drop_after = batching.drop_after

    while index < num_requests:
        first_arrival = arrivals[index]
        start = max(server_free_at, first_arrival)
        end_index = bisect.bisect_right(arrivals, start, lo=index)

        if drop_after is not None:
            # The seed's exact per-element predicate; expired requests form
            # a prefix of the (sorted) arrived window.
            expired = (start - arrivals[index:end_index]) > drop_after
            fresh = index + int(expired.sum())
            if fresh > index:
                dropped += fresh - index
                latencies[index:fresh] = np.nan
                index = fresh
                if index >= end_index:
                    continue

        batch_end = min(end_index, index + max_batch)
        if batch_end == index:
            batch_end = index + 1

        batch_indices = np.arange(index, batch_end)
        batch_size = len(batch_indices)
        current_ratio = ratio_schedule(start) if ratio_schedule else ratio
        service_time = service_model.batch_latency(batch_size, mode, current_ratio)
        finish = start + service_time
        latencies[batch_indices] = finish - arrivals[batch_indices]
        batch_sizes.append(batch_size)
        server_free_at = finish
        index = batch_end

    return latencies[~np.isnan(latencies)], batch_sizes, dropped


def seed_adaptive_run(service_model, controller, batching, control_window, trace):
    """The seed ``AdaptiveServingSimulator.run`` window loop."""
    num_windows = int(np.ceil(trace.duration / control_window))
    window_ratios = np.zeros(num_windows, dtype=np.float64)
    timeline = []
    for window in range(num_windows):
        start = window * control_window
        end = min(start + control_window, trace.duration)
        observed_rate = trace.rate_in_window(start, end)
        ratio = controller.update(observed_rate)
        window_ratios[window] = ratio
        timeline.append({"start": start, "rate": observed_rate, "ratio": ratio})

    def ratio_schedule(time):
        window = min(int(time / control_window), num_windows - 1)
        return float(window_ratios[window])

    latencies, _, _ = seed_serving_run(
        service_model, batching, trace, "flexiq", ratio_schedule=ratio_schedule
    )
    return latencies, window_ratios, timeline


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))


@pytest.fixture(scope="module")
def latency_profile(service_model):
    simulator = ServingSimulator(service_model, BatchingConfig(max_batch=128))
    rates = [200, 600, 1000, 1600, 2200, 2800]

    def latency_fn(ratio, rate):
        trace = PoissonTrace(max(rate, 1), duration=2.0, seed=11).generate()
        return simulator.run(trace, "flexiq", ratio=ratio).median_latency

    return build_profile_from_latency_fn(rates, [0.0, 0.25, 0.5, 0.75, 1.0], latency_fn)


# ----------------------------------------------------------------------
# Wrapper equivalence with the seed implementations
# ----------------------------------------------------------------------
class TestWrapperEquivalence:
    @pytest.mark.parametrize(
        "mode,ratio", [("int8", 0.0), ("int4", 0.0), ("flexiq", 0.5), ("flexiq", 1.0)]
    )
    def test_fixed_ratio_bit_identical(self, service_model, mode, ratio):
        batching = BatchingConfig(max_batch=128)
        trace = PoissonTrace(1800, duration=4.0, seed=17).generate()
        expected, expected_batches, expected_dropped = seed_serving_run(
            service_model, batching, trace, mode, ratio=ratio
        )
        result = ServingSimulator(service_model, batching).run(trace, mode, ratio=ratio)
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches
        assert result.dropped == expected_dropped

    def test_small_batch_cap_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=16)
        trace = PoissonTrace(2000, duration=2.0, seed=3).generate()
        expected, expected_batches, _ = seed_serving_run(
            service_model, batching, trace, "int4"
        )
        result = ServingSimulator(service_model, batching).run(trace, "int4")
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches

    def test_drop_after_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=8, drop_after=0.05)
        trace = PoissonTrace(3000, duration=2.0, seed=4).generate()
        expected, expected_batches, expected_dropped = seed_serving_run(
            service_model, batching, trace, "int8"
        )
        result = ServingSimulator(service_model, batching).run(trace, "int8")
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches
        assert result.dropped == expected_dropped > 0

    def test_ratio_schedule_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=64)
        trace = PoissonTrace(1500, duration=3.0, seed=6).generate()
        schedule = lambda t: 1.0 if t > 1.5 else 0.25  # noqa: E731
        expected, _, _ = seed_serving_run(
            service_model, batching, trace, "flexiq", ratio_schedule=schedule
        )
        result = ServingSimulator(service_model, batching).run(
            trace, "flexiq", ratio_schedule=schedule
        )
        np.testing.assert_array_equal(result.latencies, expected)

    def test_adaptive_bit_identical(self, service_model, latency_profile):
        batching = BatchingConfig(max_batch=128)
        trace = FluctuatingTrace(
            min_rate=800, peak_ratio=3.0, duration=20.0, seed=5
        ).generate()
        # Two fresh controllers: the controller is stateful, so the oracle and
        # the wrapper each need their own copy of the same starting state.
        seed_controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)
        new_controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)

        expected, window_ratios, timeline = seed_adaptive_run(
            service_model, seed_controller, batching, 1.0, trace
        )
        result = AdaptiveServingSimulator(
            service_model, new_controller, batching, control_window=1.0
        ).run(trace, accuracy_by_ratio={0.0: 84.7, 0.5: 84.5, 1.0: 83.8})

        np.testing.assert_array_equal(result.latencies, expected)
        assert result.ratio_timeline == timeline
        assert result.average_ratio == pytest.approx(float(np.mean(window_ratios)))


class TestBatchingConfigDefaults:
    def test_simulators_get_fresh_batching_instances(self, service_model):
        a = ServingSimulator(service_model)
        b = ServingSimulator(service_model)
        assert a.batching is not b.batching
        a.batching.max_batch = 2
        assert b.batching.max_batch == BatchingConfig().max_batch

    def test_adaptive_simulator_fresh_batching(self, service_model, latency_profile):
        controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)
        a = AdaptiveServingSimulator(service_model, controller)
        b = AdaptiveServingSimulator(service_model, controller)
        assert a.batching is not b.batching

    def test_engine_fresh_batching(self):
        assert ServingEngine().batching is not ServingEngine().batching


class TestEffectiveAccuracy:
    def _loop_reference(self, window_ratios, accuracy_by_ratio):
        ratios = np.asarray(sorted(accuracy_by_ratio))
        accuracies = np.asarray([accuracy_by_ratio[r] for r in ratios])
        values = []
        for ratio in window_ratios:
            index = int(np.argmin(np.abs(ratios - ratio)))
            values.append(accuracies[index])
        return float(np.mean(values)) if values else float("nan")

    def test_matches_loop_reference(self):
        table = {0.0: 84.7, 0.25: 84.6, 0.5: 84.5, 0.75: 84.4, 1.0: 83.8}
        rng = np.random.default_rng(0)
        ratios = rng.uniform(-0.2, 1.2, size=257)
        assert _effective_accuracy(ratios, table) == pytest.approx(
            self._loop_reference(ratios, table)
        )

    def test_tie_breaks_to_lower_ratio(self):
        # 0.25 is equidistant from 0.0 and 0.5: both must pick the lower one.
        table = {0.0: 90.0, 0.5: 80.0}
        ratios = np.asarray([0.25])
        assert _effective_accuracy(ratios, table) == self._loop_reference(ratios, table) == 90.0

    def test_empty_windows(self):
        assert np.isnan(_effective_accuracy(np.zeros(0), {0.0: 84.0}))


# ----------------------------------------------------------------------
# Engine API
# ----------------------------------------------------------------------
class TestServingEngineApi:
    def test_requires_exactly_one_input(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model))
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(ValueError):
            engine.run()
        with pytest.raises(ValueError):
            engine.run(trace=trace, requests=[Request(0.0, model="m")])

    def test_unregistered_model_rejected(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model))
        with pytest.raises(KeyError):
            engine.run(requests=[Request(0.0, model="other")])

    def test_no_endpoints_rejected(self):
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(RuntimeError):
            ServingEngine().run(trace=trace)

    def test_trace_needs_model_name_with_multiple_endpoints(self, service_model):
        engine = ServingEngine()
        engine.register("a", ModeledExecutor(service_model))
        engine.register("b", ModeledExecutor(service_model))
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(ValueError):
            engine.run(trace=trace)
        assert engine.run(trace=trace, model="a").latencies.size == len(trace)

    def test_responses_recorded_for_requests(self, service_model):
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        requests = [Request(arrival_time=0.001 * i, model="m", request_id=100 + i)
                    for i in range(10)]
        outcome = engine.run(requests=requests)
        assert outcome.responses is not None and len(outcome.responses) == 10
        for i, response in enumerate(outcome.responses):
            assert response.request_id == 100 + i
            assert response.model == "m"
            assert not response.dropped
            assert response.latency == pytest.approx(
                outcome.request_latencies[i]
            )
            assert response.finish_time >= response.start_time >= response.arrival_time

    def test_round_robin_policy_varies_ratio_per_batch(self, service_model):
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register(
            "m",
            ModeledExecutor(service_model),
            policy=RoundRobinRatioPolicy([0.0, 0.5, 1.0]),
        )
        trace = PoissonTrace(2000, duration=1.0, seed=1).generate()
        outcome = engine.run(trace=trace)
        assert len(outcome.batch_records) >= 3
        assert outcome.batch_ratios[:3] == [0.0, 0.5, 1.0]

    def test_multi_model_head_of_line_batching(self, service_model):
        fast = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64))
        engine = ServingEngine(BatchingConfig(max_batch=32))
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(fast), mode="int4")
        requests = [
            Request(arrival_time=0.0005 * i, model=("a" if i % 3 else "b"))
            for i in range(300)
        ]
        outcome = engine.run(requests=requests)
        # Batches never mix models.
        for record in outcome.batch_records:
            assert record.model in ("a", "b")
        served_models = [r.model for r in outcome.responses]
        assert outcome.for_model("a").size == sum(m == "a" for m in served_models)
        assert outcome.for_model("b").size == sum(m == "b" for m in served_models)
        assert outcome.for_model("a").size + outcome.for_model("b").size == 300
        # Per-batch request counts add up too.
        assert sum(outcome.batch_sizes) == 300

    def test_model_arg_validated_on_requests_path(self, service_model):
        engine = ServingEngine()
        engine.register("a", ModeledExecutor(service_model))
        engine.register("b", ModeledExecutor(service_model))
        requests = [Request(0.0, model="a"), Request(0.001, model="b")]
        with pytest.raises(ValueError):
            engine.run(requests=requests, model="a")
        with pytest.raises(KeyError):
            engine.run(requests=[Request(0.0, model="a")], model="typo")
        assert engine.run(requests=[Request(0.0, model="a")], model="a").latencies.size == 1

    def test_requests_from_trace(self):
        trace = PoissonTrace(500, duration=1.0, seed=2).generate()
        payloads = [np.zeros((2,)), np.ones((2,))]
        requests = requests_from_trace(trace, model="m", payloads=payloads)
        assert len(requests) == len(trace)
        assert all(r.model == "m" for r in requests)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        np.testing.assert_array_equal(requests[0].payload, payloads[0])
        np.testing.assert_array_equal(requests[1].payload, payloads[1])
        np.testing.assert_array_equal(requests[2].payload, payloads[0])


# ----------------------------------------------------------------------
# Real execution through RuntimeExecutor
# ----------------------------------------------------------------------
class TestRuntimeExecutor:
    def test_single_batch_outputs_match_direct_forward(self, flexiq_conv_runtime, tiny_dataset):
        images = tiny_dataset.test_images[:6]
        flexiq_conv_runtime.prepare(use_prepared=True)
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register(
            "conv",
            RuntimeExecutor(flexiq_conv_runtime),
            policy=FixedRatioPolicy(0.5),
        )
        requests = [
            Request(arrival_time=0.0, model="conv", payload=images[i])
            for i in range(len(images))
        ]
        outcome = engine.run(requests=requests)

        assert len(outcome.batch_records) == 1
        assert outcome.batch_records[0].size == len(images)
        assert outcome.batch_records[0].ratio == 0.5
        assert outcome.busy_time > 0.0

        flexiq_conv_runtime.set_ratio(0.5)
        expected = flexiq_conv_runtime(Tensor(images)).data
        for i, response in enumerate(outcome.responses):
            np.testing.assert_array_equal(response.output, expected[i])

    def test_heterogeneous_ratio_batches_no_kernel_rebuild(self, flexiq_conv_runtime, tiny_dataset):
        runtime = flexiq_conv_runtime
        runtime.prepare(use_prepared=True)
        ratios = runtime.available_ratios
        # Warm every ratio once so lazily built boundary planes exist before
        # the instrumented serving run.
        for ratio in ratios:
            runtime.forward_batch(tiny_dataset.test_images[:1], ratio=ratio)

        executor = RuntimeExecutor(runtime, default_input=tiny_dataset.test_images[0])
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("conv", executor, policy=RoundRobinRatioPolicy(ratios))
        # Spread arrivals so the engine forms several small batches.
        trace = RequestTrace(arrival_times=np.linspace(0.0, 0.01, 12), duration=0.01)

        builds_before = PreparedKernel.build_count
        planes_before = PreparedKernel.plane_build_count
        outcome = engine.run(requests=requests_from_trace(trace, model="conv"))

        assert PreparedKernel.build_count == builds_before, (
            "serving must not rebuild prepared kernels"
        )
        assert PreparedKernel.plane_build_count == planes_before, (
            "serving must not re-lower boundary planes"
        )
        assert executor.ratio_switches > 0
        assert len(set(outcome.batch_ratios)) > 1
        assert outcome.latencies.size == 12
        assert np.all(outcome.latencies > 0)

    def test_mode_overrides_ratio(self, flexiq_runtime, mlp_dataset):
        executor = RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0])
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("mlp", executor, policy=FixedRatioPolicy(0.5), mode="int4")
        trace = RequestTrace(arrival_times=np.zeros(4), duration=0.0)
        outcome = engine.run(requests=requests_from_trace(trace, model="mlp"))
        # "int4" pins the runtime to ratio 1.0 regardless of the policy, and
        # the batch records report the executed (pinned) ratio.
        assert flexiq_runtime.current_ratio == 1.0
        assert outcome.batch_ratios == [1.0]
        assert all(r.ratio == 1.0 for r in outcome.responses)
        # Simultaneous arrivals: the run spans the measured makespan, so
        # throughput is real requests/second rather than 0/0.
        assert outcome.duration > 0.0
        assert outcome.throughput > 0.0

    def test_forward_batch_resyncs_stale_layer_boundaries(self, flexiq_conv_runtime, tiny_dataset):
        runtime = flexiq_conv_runtime
        runtime.set_ratio(0.5)
        # Move one layer's boundary behind the model's back; current_ratio
        # still reads 0.5, but forward_batch must re-apply the ratio anyway.
        name, layer = next(
            (n, l) for n, l in runtime.flexiq_layers()
            if n in runtime.layout_plan.layouts
        )
        expected_boundary = layer.max_4bit_ch
        layer.set_boundary(layer.feature_channels)
        runtime.forward_batch(tiny_dataset.test_images[:1], ratio=0.5)
        assert layer.max_4bit_ch == expected_boundary

    def test_missing_payload_without_default_raises(self, flexiq_runtime):
        executor = RuntimeExecutor(flexiq_runtime)
        engine = ServingEngine()
        engine.register("mlp", executor)
        with pytest.raises(ValueError):
            engine.run(requests=[Request(0.0, model="mlp")])

    def test_multi_model_registry_real_execution(
        self, flexiq_runtime, flexiq_conv_runtime, mlp_dataset, tiny_dataset
    ):
        """Two prepared runtimes (own kernel caches) behind one engine."""
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register(
            "mlp",
            RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0]),
            policy=FixedRatioPolicy(0.25),
        )
        engine.register(
            "conv",
            RuntimeExecutor(flexiq_conv_runtime, default_input=tiny_dataset.test_images[0]),
            policy=FixedRatioPolicy(1.0),
        )
        requests = [
            Request(arrival_time=0.001 * i, model=("mlp" if i % 2 else "conv"))
            for i in range(16)
        ]
        outcome = engine.run(requests=requests)

        assert outcome.for_model("mlp").size == 8
        assert outcome.for_model("conv").size == 8
        for record in outcome.batch_records:
            expected_ratio = 0.25 if record.model == "mlp" else 1.0
            assert record.ratio == expected_ratio
        # Every response carries its model's classifier output.
        for response in outcome.responses:
            assert response.output.shape == (4,)

    def test_modeled_and_runtime_mixed_registry(self, service_model, flexiq_runtime, mlp_dataset):
        """Modeled and real executors are interchangeable under one engine."""
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register("modeled", ModeledExecutor(service_model), mode="int8")
        engine.register(
            "real",
            RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0]),
        )
        requests = [
            Request(arrival_time=0.002 * i, model=("modeled" if i % 2 else "real"))
            for i in range(12)
        ]
        outcome = engine.run(requests=requests)
        assert outcome.for_model("modeled").size == 6
        assert outcome.for_model("real").size == 6
        assert outcome.dropped == 0


# ----------------------------------------------------------------------
# Drop-path batching (PR 3 bugfix: drops must not consume batch slots)
# ----------------------------------------------------------------------
class TestDropBackfill:
    def test_batches_stay_full_while_queue_backed_up(self, service_model):
        """Under drop_after with a backlog, served batches run at capacity.

        The seed computed the batch window before the drop filter, so a
        batch that dropped k expired requests served only max_batch - k; the
        backlog then cleared slower, causing even more drops.
        """
        batching = BatchingConfig(max_batch=8, drop_after=0.05)
        trace = PoissonTrace(3000, duration=2.0, seed=4).generate()
        result = ServingSimulator(service_model, batching).run(trace, "int8")
        assert result.dropped > 0
        assert len(result.latencies) + result.dropped == len(trace)
        # Whenever requests were dropped the queue was backed up, so every
        # batch formed while dropping must be full.
        sizes = np.asarray(result.batch_sizes)
        assert (sizes == 8).mean() > 0.9  # backlogged from early on
        # Backfill serves strictly more requests than the seed's slot-wasting
        # arithmetic did on this trace (1525 of 5969).
        assert len(result.latencies) > 1525

    def test_drop_after_none_unchanged(self, service_model):
        """No drops configured: arithmetic must stay the verbatim seed loop."""
        batching = BatchingConfig(max_batch=8)
        trace = PoissonTrace(3000, duration=1.0, seed=4).generate()
        expected, expected_batches, expected_dropped = seed_serving_run(
            service_model, batching, trace, "int8"
        )
        result = ServingSimulator(service_model, batching).run(trace, "int8")
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches
        assert expected_dropped == result.dropped == 0

    def test_dropped_responses_recorded_with_own_model(self, service_model):
        """Multi-model + drop_after + record_responses interaction."""
        fast = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64))
        engine = ServingEngine(BatchingConfig(max_batch=4, drop_after=0.01))
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(fast), mode="int4")
        requests = [
            Request(arrival_time=0.0002 * i, model=("a" if i % 3 else "b"))
            for i in range(400)
        ]
        outcome = engine.run(requests=requests, record_responses=True)
        assert outcome.dropped > 0
        dropped_responses = [r for r in outcome.responses if r.dropped]
        assert len(dropped_responses) == outcome.dropped
        for i, response in enumerate(outcome.responses):
            assert response is not None
            assert response.model == requests[i].model
            if response.dropped:
                # Dropped responses carry their own model's mode and NaN
                # timing, and the latency slot is NaN too.
                assert response.mode == ("int8" if response.model == "a" else "int4")
                assert np.isnan(response.finish_time)
                assert np.isnan(outcome.request_latencies[i])
            else:
                assert response.finish_time >= response.start_time
        # for_model only reports served latencies; served + dropped covers
        # every admitted request.
        served = outcome.for_model("a").size + outcome.for_model("b").size
        assert served + outcome.dropped == len(requests)
        per_model_dropped = {
            m: sum(1 for r in dropped_responses if r.model == m) for m in ("a", "b")
        }
        assert outcome.for_model("a").size + per_model_dropped["a"] == sum(
            1 for r in requests if r.model == "a"
        )
        assert outcome.for_model("b").size + per_model_dropped["b"] == sum(
            1 for r in requests if r.model == "b"
        )


# ----------------------------------------------------------------------
# Multi-server dispatch (cluster scale-out)
# ----------------------------------------------------------------------
class TestMultiServer:
    def test_k4_near_linear_throughput_scaling(self, service_model):
        """Under sustained overload, K=4 serves ~4x the K=1 rate.

        The arrival rate must saturate even the 4-server cluster (INT8
        capacity is ~1.7k req/s per server at batch 64), so every server
        always finds a full batch and the makespan scales with 1/K.
        """
        trace = PoissonTrace(12000, duration=2.0, seed=21).generate()
        requests = requests_from_trace(trace, model="m")

        def makespan_throughput(num_servers):
            engine = ServingEngine(
                BatchingConfig(max_batch=64), num_servers=num_servers
            )
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            outcome = engine.run(requests=requests, record_responses=False)
            assert outcome.latencies.size == len(requests)
            return outcome.throughput, outcome

        single, _ = makespan_throughput(1)
        quad, outcome = makespan_throughput(4)
        assert quad >= 3.0 * single  # near-linear scale-out
        # All four servers did comparable work.
        assert outcome.num_servers == 4
        assert len(outcome.server_busy_times) == 4
        assert {record.server for record in outcome.batch_records} == {0, 1, 2, 3}
        busiest = max(outcome.server_busy_times)
        assert min(outcome.server_busy_times) > 0.5 * busiest

    def test_k1_matches_default_engine(self, service_model):
        trace = PoissonTrace(1800, duration=2.0, seed=17).generate()
        default = ServingEngine(BatchingConfig(max_batch=32))
        default.register("m", ModeledExecutor(service_model), mode="int8")
        explicit = ServingEngine(BatchingConfig(max_batch=32), num_servers=1)
        explicit.register("m", ModeledExecutor(service_model), mode="int8")
        a = default.run(trace=trace)
        b = explicit.run(trace=trace)
        np.testing.assert_array_equal(a.latencies, b.latencies)
        assert a.batch_sizes == b.batch_sizes

    def test_multi_server_reduces_latency_under_load(self, service_model):
        trace = PoissonTrace(2600, duration=2.0, seed=23).generate()
        results = {}
        for k in (1, 4):
            simulator = ServingSimulator(
                service_model, BatchingConfig(max_batch=64), num_servers=k
            )
            results[k] = simulator.run(trace, "int8")
        assert results[4].median_latency < 0.5 * results[1].median_latency

    def test_per_server_executor_list(self, service_model):
        executors = [ModeledExecutor(service_model) for _ in range(3)]
        engine = ServingEngine(BatchingConfig(max_batch=8), num_servers=3)
        engine.register("m", executors, mode="int8")
        trace = PoissonTrace(2500, duration=1.0, seed=2).generate()
        outcome = engine.run(trace=trace)
        assert outcome.latencies.size == len(trace)
        assert {record.server for record in outcome.batch_records} == {0, 1, 2}

    def test_executor_count_must_match_servers(self, service_model):
        engine = ServingEngine(num_servers=2)
        with pytest.raises(ValueError):
            engine.register("m", [ModeledExecutor(service_model)])
        with pytest.raises(ValueError):
            ServingEngine(num_servers=0)

    def test_per_server_runtime_executors_real_execution(
        self, flexiq_runtime, mlp_dataset
    ):
        """K RuntimeExecutors behind one endpoint: both servers serve batches."""
        default_input = mlp_dataset.test_images[0]
        executors = [
            RuntimeExecutor(flexiq_runtime, default_input=default_input)
            for _ in range(2)
        ]
        engine = ServingEngine(BatchingConfig(max_batch=2), num_servers=2)
        engine.register("mlp", executors, policy=FixedRatioPolicy(0.5))
        trace = RequestTrace(arrival_times=np.zeros(8), duration=0.0)
        outcome = engine.run(requests=requests_from_trace(trace, model="mlp"))
        assert outcome.latencies.size == 8
        assert {record.server for record in outcome.batch_records} == {0, 1}
        assert all(ex.batches_executed > 0 for ex in executors)
        assert sum(ex.requests_executed for ex in executors) == 8


# ----------------------------------------------------------------------
# Schedulers (priority / EDF)
# ----------------------------------------------------------------------
class TestSchedulers:
    def _serve_order(self, engine, requests):
        outcome = engine.run(requests=requests)
        order = sorted(
            (r for r in outcome.responses if not r.dropped),
            key=lambda r: (r.start_time, r.request_id),
        )
        return [r.request_id for r in order], outcome

    def test_priority_orders_queue(self, service_model):
        engine = ServingEngine(
            BatchingConfig(max_batch=1),
            scheduler=PriorityScheduler(),
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        # All but the first request are queued when the server frees: they
        # must then serve by descending priority, FIFO within a class.
        requests = [
            Request(arrival_time=0.0, model="m", request_id=0, priority=0),
            Request(arrival_time=0.001, model="m", request_id=1, priority=1),
            Request(arrival_time=0.002, model="m", request_id=2, priority=5),
            Request(arrival_time=0.003, model="m", request_id=3, priority=1),
            Request(arrival_time=0.004, model="m", request_id=4, priority=5),
        ]
        order, _ = self._serve_order(engine, requests)
        assert order == [0, 2, 4, 1, 3]

    def test_edf_orders_queue_by_deadline(self, service_model):
        engine = ServingEngine(
            BatchingConfig(max_batch=1), scheduler=EdfScheduler()
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        requests = [
            Request(arrival_time=0.0, model="m", request_id=0, deadline=9.0),
            Request(arrival_time=0.001, model="m", request_id=1, deadline=0.5),
            Request(arrival_time=0.002, model="m", request_id=2),  # no deadline
            Request(arrival_time=0.003, model="m", request_id=3, deadline=0.1),
        ]
        order, _ = self._serve_order(engine, requests)
        assert order == [0, 3, 1, 2]

    def test_fifo_scheduler_explicit_matches_default(self, service_model):
        trace = PoissonTrace(1500, duration=2.0, seed=9).generate()
        requests = requests_from_trace(trace, model="m")
        default = ServingEngine(BatchingConfig(max_batch=16))
        default.register("m", ModeledExecutor(service_model), mode="int8")
        explicit = ServingEngine(
            BatchingConfig(max_batch=16), scheduler=FifoScheduler()
        )
        explicit.register("m", ModeledExecutor(service_model), mode="int8")
        a = default.run(requests=requests, record_responses=False)
        b = explicit.run(requests=requests, record_responses=False)
        np.testing.assert_array_equal(a.request_latencies, b.request_latencies)
        assert a.batch_sizes == b.batch_sizes

    def test_non_fifo_requires_requests(self, service_model):
        engine = ServingEngine(scheduler=EdfScheduler())
        engine.register("m", ModeledExecutor(service_model))
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(ValueError):
            engine.run(trace=trace)

    def test_edf_beats_fifo_on_deadline_attainment(self, service_model):
        """The SLO story: under overload EDF wins p99-under-deadline."""
        rng = np.random.default_rng(31)
        trace = PoissonTrace(2600, duration=2.0, seed=31).generate()
        arrivals = np.sort(np.asarray(trace.arrival_times))
        # Half the requests carry a tight-but-feasible SLO, half a lax one.
        deadlines = [
            float(a) + (0.08 if rng.random() < 0.5 else 0.8) for a in arrivals
        ]
        requests = [
            Request(arrival_time=float(a), model="m", request_id=i, deadline=deadlines[i])
            for i, a in enumerate(arrivals)
        ]

        def attainment(scheduler):
            engine = ServingEngine(
                BatchingConfig(max_batch=32), scheduler=scheduler
            )
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            outcome = engine.run(requests=requests)
            lateness = np.asarray(
                [r.finish_time - r.deadline for r in outcome.responses if not r.dropped]
            )
            return outcome.deadline_attainment(), float(np.percentile(lateness, 99))

        fifo_attained, fifo_p99_late = attainment(None)
        edf_attained, edf_p99_late = attainment(EdfScheduler())
        assert edf_attained > fifo_attained
        assert edf_p99_late < fifo_p99_late

    def test_edf_with_drop_after_drops_expired(self, service_model):
        engine = ServingEngine(
            BatchingConfig(max_batch=8, drop_after=0.05), scheduler=EdfScheduler()
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        trace = PoissonTrace(3000, duration=1.0, seed=4).generate()
        requests = requests_from_trace(trace, model="m", deadlines=[0.1, 0.4])
        outcome = engine.run(requests=requests)
        assert outcome.dropped > 0
        assert outcome.latencies.size + outcome.dropped == len(requests)
        dropped_responses = [r for r in outcome.responses if r.dropped]
        assert len(dropped_responses) == outcome.dropped

    def test_multi_model_batches_never_mix_under_edf(self, service_model):
        engine = ServingEngine(
            BatchingConfig(max_batch=16), scheduler=EdfScheduler()
        )
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(service_model), mode="int4")
        rng = np.random.default_rng(7)
        requests = [
            Request(
                arrival_time=0.0005 * i,
                model=("a" if i % 2 else "b"),
                deadline=float(rng.uniform(0.05, 1.0)),
            )
            for i in range(300)
        ]
        outcome = engine.run(requests=requests)
        assert sum(outcome.batch_sizes) == 300
        for record in outcome.batch_records:
            assert record.model in ("a", "b")
        assert outcome.for_model("a").size == 150
        assert outcome.for_model("b").size == 150


# ----------------------------------------------------------------------
# Streaming admission (submit / step / finish)
# ----------------------------------------------------------------------
class TestStreamingAdmission:
    def test_streamed_chunks_match_batch_run(self, service_model):
        """Submitting ahead of the clock is equivalent to one big run()."""
        trace = PoissonTrace(1200, duration=2.0, seed=13).generate()
        requests = requests_from_trace(trace, model="m")

        def build():
            engine = ServingEngine(BatchingConfig(max_batch=16))
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            return engine

        batch_outcome = build().run(requests=requests, record_responses=False)

        engine = build()
        engine.start(record_responses=False)
        third = len(requests) // 3
        engine.submit(requests[:third])
        for _ in range(5):
            assert engine.step() is not None
        engine.submit(requests[third:])
        streamed = engine.finish()

        np.testing.assert_array_equal(
            np.sort(streamed.request_latencies), np.sort(batch_outcome.request_latencies)
        )
        assert sorted(streamed.batch_sizes) == sorted(batch_outcome.batch_sizes)

    def test_step_returns_none_until_submission(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        engine.start()
        assert engine.step() is None
        engine.submit(Request(arrival_time=0.0, model="m"))
        record = engine.step()
        assert record is not None and record.size == 1
        assert engine.step() is None
        result = engine.finish()
        assert result.latencies.size == 1
        assert result.responses[0].model == "m"

    def test_late_submission_served_at_next_opportunity(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        engine.start()
        engine.submit(Request(arrival_time=1.0, model="m", request_id=0))
        assert engine.step() is not None
        # Arrival time in the engine's past: serves immediately after the
        # server frees, with queueing delay measured from its arrival time.
        engine.submit(Request(arrival_time=0.0, model="m", request_id=1))
        record = engine.step()
        assert record is not None
        result = engine.finish()
        assert result.latencies.size == 2
        late = result.responses[1]
        assert late.start_time >= 1.0
        assert late.latency == pytest.approx(late.finish_time - 0.0)

    def test_run_is_a_thin_driver_over_streaming(self, service_model):
        trace = PoissonTrace(1500, duration=1.0, seed=3).generate()
        requests = requests_from_trace(trace, model="m")

        def build():
            engine = ServingEngine(BatchingConfig(max_batch=8))
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            return engine

        via_run = build().run(requests=requests)
        engine = build()
        engine.start(requests=requests)
        via_stream = engine.finish()
        np.testing.assert_array_equal(via_run.request_latencies, via_stream.request_latencies)
        assert via_run.batch_sizes == via_stream.batch_sizes

    def test_session_lifecycle_errors(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model))
        with pytest.raises(RuntimeError):
            engine.step()
        with pytest.raises(RuntimeError):
            engine.submit(Request(0.0, model="m"))
        with pytest.raises(RuntimeError):
            engine.finish()
        engine.start()
        with pytest.raises(RuntimeError):
            engine.start()
        with pytest.raises(KeyError):
            engine.submit(Request(0.0, model="nope"))
        engine.finish()
        # Trace sessions are fixed at start time.
        trace = PoissonTrace(100, duration=0.2, seed=0).generate()
        engine.start(trace=trace)
        with pytest.raises(RuntimeError):
            engine.submit(Request(0.0, model="m"))
        assert engine.finish().latencies.size == len(trace)

    def test_streaming_with_edf_scheduler(self, service_model):
        engine = ServingEngine(
            BatchingConfig(max_batch=1), scheduler=EdfScheduler()
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        engine.start()
        engine.submit(
            [
                Request(arrival_time=0.0, model="m", request_id=0, deadline=5.0),
                Request(arrival_time=0.001, model="m", request_id=1, deadline=0.2),
            ]
        )
        first = engine.step()
        assert first is not None
        engine.submit(Request(arrival_time=0.002, model="m", request_id=2, deadline=0.01))
        engine.finish()
        # After request 0 (head of line), the tightest pending deadline wins.


# ----------------------------------------------------------------------
# Context-aware ratio policies
# ----------------------------------------------------------------------
class TestPolicyContext:
    def test_legacy_policy_adapter_passes_time(self):
        calls = []

        class Legacy:
            def on_run_start(self, trace):
                pass

            def select(self, time):
                calls.append(time)
                return 0.25

        selector = policy_selector(Legacy())
        context = PolicyContext(time=1.5, queue_depth=7, batch_size=3)
        assert selector(context) == 0.25
        assert calls == [1.5]

    def test_context_policy_gets_queue_depth_and_batch_size(self, service_model):
        seen = []

        class Spy:
            accepts_context = True

            def on_run_start(self, trace):
                pass

            def select(self, context):
                seen.append((context.queue_depth, context.batch_size, context.model))
                return 0.0

        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("m", ModeledExecutor(service_model), policy=Spy(), mode="flexiq")
        trace = RequestTrace(arrival_times=np.zeros(10), duration=0.0)
        engine.run(trace=trace)
        # 10 simultaneous arrivals, max_batch 4: queue depths 10, 6, 2.
        assert [d for d, _, _ in seen] == [10, 6, 2]
        assert [b for _, b, _ in seen] == [4, 4, 2]
        assert all(m == "m" for _, _, m in seen)

    def test_queue_depth_policy_sheds_accuracy_under_backlog(self, service_model):
        policy = QueueDepthRatioPolicy({16: 0.5, 64: 1.0}, base_ratio=0.0)
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register("m", ModeledExecutor(service_model), policy=policy, mode="flexiq")
        # A burst of 100 simultaneous requests, then a trickle.
        burst = np.zeros(100)
        trickle = np.linspace(5.0, 6.0, 10)
        trace = RequestTrace(
            arrival_times=np.concatenate([burst, trickle]), duration=6.0
        )
        outcome = engine.run(trace=trace)
        ratios = outcome.batch_ratios
        assert ratios[0] == 1.0          # 100 queued -> full 4-bit
        assert 0.5 in ratios             # backlog draining through the mid tier
        assert ratios[-1] == 0.0         # trickle -> full precision
        # The policy reduces latency vs always-int8 on the same trace.
        fixed = ServingEngine(BatchingConfig(max_batch=8))
        fixed.register(
            "m", ModeledExecutor(service_model), policy=FixedRatioPolicy(0.0), mode="flexiq"
        )
        assert outcome.median_latency < fixed.run(trace=trace).median_latency

    def test_requests_from_trace_attaches_priorities_and_deadlines(self):
        trace = PoissonTrace(500, duration=1.0, seed=2).generate()
        requests = requests_from_trace(
            trace, model="m", priorities=[0, 3], deadlines=[0.5, None]
        )
        assert [r.priority for r in requests[:4]] == [0, 3, 0, 3]
        # Deadlines are relative SLOs, materialized as absolute times: an
        # absolute list would leave late arrivals born-expired.
        assert requests[0].deadline == pytest.approx(requests[0].arrival_time + 0.5)
        assert requests[1].deadline is None
        assert requests[2].deadline > requests[0].deadline

    def test_deadline_attainment_and_slo_metric(self, service_model):
        from repro.serving.metrics import slo_attainment

        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        requests = [
            Request(arrival_time=0.0, model="m", deadline=10.0),
            Request(arrival_time=0.0, model="m", deadline=1e-9),
            Request(arrival_time=0.0, model="m"),  # no deadline
        ]
        outcome = engine.run(requests=requests)
        assert outcome.deadline_attainment() == pytest.approx(0.5)
        finishes = [r.finish_time for r in outcome.responses]
        deadlines = [r.deadline for r in outcome.responses]
        assert slo_attainment(finishes, deadlines) == pytest.approx(0.5)
        assert np.isnan(slo_attainment([1.0], [None]))


# ----------------------------------------------------------------------
# Session robustness and result helpers
# ----------------------------------------------------------------------
class TestSessionRobustness:
    class _Exploding:
        def __init__(self, after=0):
            self.after = after
            self.calls = 0

        def execute(self, batch, mode, ratio):
            self.calls += 1
            if self.calls > self.after:
                raise RuntimeError("boom")
            from repro.serving.engine import BatchExecution

            return BatchExecution(service_time=0.001)

    def test_engine_reusable_after_executor_error(self, service_model):
        engine = ServingEngine()
        engine.register("m", self._Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(requests=[Request(0.0, model="m")])
        # The failed session was closed: the engine accepts a new run.
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        outcome = engine.run(requests=[Request(0.0, model="m")])
        assert outcome.latencies.size == 1

    def test_abort_discards_streaming_session(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        engine.start()
        engine.submit(Request(0.0, model="m"))
        engine.abort()
        with pytest.raises(RuntimeError):
            engine.step()
        engine.start()  # fresh session opens fine
        assert engine.finish().latencies.size == 0
        engine.abort()  # no-op without a session

    def test_fifo_and_scheduled_drop_sets_agree(self, service_model):
        """The fast array path and the scheduled heap path share the seed's
        exact expiry predicate and drop the same requests.

        An explicit ``FifoScheduler`` still routes through the fast path,
        so the scheduled loop is exercised with a custom arrival-order
        scheduler (empty discipline key = the engine's FIFO tie-breakers).
        """

        class ArrivalOrderScheduler:
            def key(self, request):
                return ()

        batching = BatchingConfig(max_batch=8, drop_after=0.05)
        trace = PoissonTrace(3000, duration=1.0, seed=4).generate()
        requests = requests_from_trace(trace, model="m")

        def run_with(scheduler):
            engine = ServingEngine(batching, scheduler=scheduler)
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            return engine.run(requests=requests)

        fifo = run_with(None)
        scheduled = run_with(ArrivalOrderScheduler())
        fifo_dropped = {r.request_id for r in fifo.responses if r.dropped}
        scheduled_dropped = {r.request_id for r in scheduled.responses if r.dropped}
        assert fifo_dropped == scheduled_dropped
        assert len(fifo_dropped) > 0
        # Arrival-order scheduling through the heap path reproduces the
        # FIFO latencies too.
        np.testing.assert_allclose(
            fifo.request_latencies, scheduled.request_latencies
        )

    def test_priority_ties_break_by_arrival_not_submission_order(self, service_model):
        """FIFO-within-a-priority-class must follow arrival time even when
        streaming submissions arrive out of arrival order."""
        from repro.serving.engine import BatchExecution

        class Slow:
            def execute(self, batch, mode, ratio):
                return BatchExecution(service_time=10.0)

        engine = ServingEngine(
            BatchingConfig(max_batch=1), scheduler=PriorityScheduler()
        )
        engine.register("m", Slow())
        engine.start()
        engine.submit(Request(arrival_time=0.0, model="m", request_id=0, priority=1))
        assert engine.step() is not None  # server busy until t=10
        # Submitted A-then-B, but B *arrives* first: equal priorities must
        # serve B before A.
        engine.submit(Request(arrival_time=5.0, model="m", request_id=1, priority=1))
        engine.submit(Request(arrival_time=1.0, model="m", request_id=2, priority=1))
        result = engine.finish()
        order = sorted(
            (r for r in result.responses), key=lambda r: r.start_time
        )
        assert [r.request_id for r in order] == [0, 2, 1]

    def test_mean_executed_ratio(self, service_model):
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register(
            "m",
            ModeledExecutor(service_model),
            policy=RoundRobinRatioPolicy([0.0, 1.0]),
            mode="flexiq",
        )
        trace = RequestTrace(arrival_times=np.zeros(8), duration=0.0)
        outcome = engine.run(trace=trace)
        assert outcome.batch_ratios == [0.0, 1.0]
        assert outcome.mean_executed_ratio == pytest.approx(0.5)
        # No batches served -> nan.
        empty = engine.run(requests=[])
        assert np.isnan(empty.mean_executed_ratio)

"""Tests for the unified serving engine (executors, policies, registry).

Covers three layers:

* **Wrapper equivalence** — ``ServingSimulator`` / ``AdaptiveServingSimulator``
  are thin wrappers over :class:`ServingEngine`; reference copies of the seed
  discrete-event loops live in this file and the wrappers must reproduce
  their latencies bit-for-bit on fixed traces.
* **Engine API** — request/response surface, multi-model registry,
  head-of-line batching, policies.
* **Real execution** — :class:`RuntimeExecutor` serving prepared FlexiQ
  runtimes end-to-end, with heterogeneous-ratio batches and no prepared-
  kernel rebuilds (the PR 1 single-variable-update claim).
"""

from __future__ import annotations

import bisect

import numpy as np
import pytest

from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.core.prepared import PreparedKernel
from repro.data.traces import FluctuatingTrace, PoissonTrace, RequestTrace
from repro.serving.adaptation import AdaptiveServingSimulator, _effective_accuracy
from repro.serving.engine import (
    BatchingConfig,
    Request,
    ServingEngine,
    requests_from_trace,
)
from repro.serving.executors import ModeledExecutor, RuntimeExecutor
from repro.serving.policies import (
    AdaptiveRatioPolicy,
    FixedRatioPolicy,
    RatioSchedulePolicy,
    RoundRobinRatioPolicy,
)
from repro.serving.simulator import ServiceTimeModel, ServingSimulator
from repro.tensor import Tensor


# ----------------------------------------------------------------------
# Reference implementations (verbatim seed algorithms)
# ----------------------------------------------------------------------
def seed_serving_run(service_model, batching, trace, mode, ratio=0.0, ratio_schedule=None):
    """The seed ``ServingSimulator.run`` loop, kept as the equivalence oracle."""
    arrivals = np.sort(np.asarray(trace.arrival_times, dtype=np.float64))
    num_requests = len(arrivals)
    latencies = np.zeros(num_requests, dtype=np.float64)
    batch_sizes = []
    dropped = 0

    server_free_at = 0.0
    index = 0
    max_batch = batching.max_batch
    drop_after = batching.drop_after

    while index < num_requests:
        first_arrival = arrivals[index]
        start = max(server_free_at, first_arrival)
        end_index = bisect.bisect_right(arrivals, start, lo=index)
        batch_end = min(end_index, index + max_batch)
        if batch_end == index:
            batch_end = index + 1

        if drop_after is not None:
            window = np.arange(index, batch_end)
            expired = (start - arrivals[window]) > drop_after
            if expired.any():
                expired_indices = window[expired]
                dropped += int(expired.sum())
                latencies[expired_indices] = np.nan
            batch_indices = window[~expired]
            if batch_indices.size == 0:
                index = batch_end
                continue
        else:
            batch_indices = np.arange(index, batch_end)

        batch_size = len(batch_indices)
        current_ratio = ratio_schedule(start) if ratio_schedule else ratio
        service_time = service_model.batch_latency(batch_size, mode, current_ratio)
        finish = start + service_time
        latencies[batch_indices] = finish - arrivals[batch_indices]
        batch_sizes.append(batch_size)
        server_free_at = finish
        index = batch_end

    return latencies[~np.isnan(latencies)], batch_sizes, dropped


def seed_adaptive_run(service_model, controller, batching, control_window, trace):
    """The seed ``AdaptiveServingSimulator.run`` window loop."""
    num_windows = int(np.ceil(trace.duration / control_window))
    window_ratios = np.zeros(num_windows, dtype=np.float64)
    timeline = []
    for window in range(num_windows):
        start = window * control_window
        end = min(start + control_window, trace.duration)
        observed_rate = trace.rate_in_window(start, end)
        ratio = controller.update(observed_rate)
        window_ratios[window] = ratio
        timeline.append({"start": start, "rate": observed_rate, "ratio": ratio})

    def ratio_schedule(time):
        window = min(int(time / control_window), num_windows - 1)
        return float(window_ratios[window])

    latencies, _, _ = seed_serving_run(
        service_model, batching, trace, "flexiq", ratio_schedule=ratio_schedule
    )
    return latencies, window_ratios, timeline


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))


@pytest.fixture(scope="module")
def latency_profile(service_model):
    simulator = ServingSimulator(service_model, BatchingConfig(max_batch=128))
    rates = [200, 600, 1000, 1600, 2200, 2800]

    def latency_fn(ratio, rate):
        trace = PoissonTrace(max(rate, 1), duration=2.0, seed=11).generate()
        return simulator.run(trace, "flexiq", ratio=ratio).median_latency

    return build_profile_from_latency_fn(rates, [0.0, 0.25, 0.5, 0.75, 1.0], latency_fn)


# ----------------------------------------------------------------------
# Wrapper equivalence with the seed implementations
# ----------------------------------------------------------------------
class TestWrapperEquivalence:
    @pytest.mark.parametrize(
        "mode,ratio", [("int8", 0.0), ("int4", 0.0), ("flexiq", 0.5), ("flexiq", 1.0)]
    )
    def test_fixed_ratio_bit_identical(self, service_model, mode, ratio):
        batching = BatchingConfig(max_batch=128)
        trace = PoissonTrace(1800, duration=4.0, seed=17).generate()
        expected, expected_batches, expected_dropped = seed_serving_run(
            service_model, batching, trace, mode, ratio=ratio
        )
        result = ServingSimulator(service_model, batching).run(trace, mode, ratio=ratio)
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches
        assert result.dropped == expected_dropped

    def test_small_batch_cap_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=16)
        trace = PoissonTrace(2000, duration=2.0, seed=3).generate()
        expected, expected_batches, _ = seed_serving_run(
            service_model, batching, trace, "int4"
        )
        result = ServingSimulator(service_model, batching).run(trace, "int4")
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches

    def test_drop_after_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=8, drop_after=0.05)
        trace = PoissonTrace(3000, duration=2.0, seed=4).generate()
        expected, expected_batches, expected_dropped = seed_serving_run(
            service_model, batching, trace, "int8"
        )
        result = ServingSimulator(service_model, batching).run(trace, "int8")
        np.testing.assert_array_equal(result.latencies, expected)
        assert result.batch_sizes == expected_batches
        assert result.dropped == expected_dropped > 0

    def test_ratio_schedule_bit_identical(self, service_model):
        batching = BatchingConfig(max_batch=64)
        trace = PoissonTrace(1500, duration=3.0, seed=6).generate()
        schedule = lambda t: 1.0 if t > 1.5 else 0.25  # noqa: E731
        expected, _, _ = seed_serving_run(
            service_model, batching, trace, "flexiq", ratio_schedule=schedule
        )
        result = ServingSimulator(service_model, batching).run(
            trace, "flexiq", ratio_schedule=schedule
        )
        np.testing.assert_array_equal(result.latencies, expected)

    def test_adaptive_bit_identical(self, service_model, latency_profile):
        batching = BatchingConfig(max_batch=128)
        trace = FluctuatingTrace(
            min_rate=800, peak_ratio=3.0, duration=20.0, seed=5
        ).generate()
        # Two fresh controllers: the controller is stateful, so the oracle and
        # the wrapper each need their own copy of the same starting state.
        seed_controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)
        new_controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)

        expected, window_ratios, timeline = seed_adaptive_run(
            service_model, seed_controller, batching, 1.0, trace
        )
        result = AdaptiveServingSimulator(
            service_model, new_controller, batching, control_window=1.0
        ).run(trace, accuracy_by_ratio={0.0: 84.7, 0.5: 84.5, 1.0: 83.8})

        np.testing.assert_array_equal(result.latencies, expected)
        assert result.ratio_timeline == timeline
        assert result.average_ratio == pytest.approx(float(np.mean(window_ratios)))


class TestBatchingConfigDefaults:
    def test_simulators_get_fresh_batching_instances(self, service_model):
        a = ServingSimulator(service_model)
        b = ServingSimulator(service_model)
        assert a.batching is not b.batching
        a.batching.max_batch = 2
        assert b.batching.max_batch == BatchingConfig().max_batch

    def test_adaptive_simulator_fresh_batching(self, service_model, latency_profile):
        controller = AdaptiveRatioController(latency_profile, latency_threshold=0.05)
        a = AdaptiveServingSimulator(service_model, controller)
        b = AdaptiveServingSimulator(service_model, controller)
        assert a.batching is not b.batching

    def test_engine_fresh_batching(self):
        assert ServingEngine().batching is not ServingEngine().batching


class TestEffectiveAccuracy:
    def _loop_reference(self, window_ratios, accuracy_by_ratio):
        ratios = np.asarray(sorted(accuracy_by_ratio))
        accuracies = np.asarray([accuracy_by_ratio[r] for r in ratios])
        values = []
        for ratio in window_ratios:
            index = int(np.argmin(np.abs(ratios - ratio)))
            values.append(accuracies[index])
        return float(np.mean(values)) if values else float("nan")

    def test_matches_loop_reference(self):
        table = {0.0: 84.7, 0.25: 84.6, 0.5: 84.5, 0.75: 84.4, 1.0: 83.8}
        rng = np.random.default_rng(0)
        ratios = rng.uniform(-0.2, 1.2, size=257)
        assert _effective_accuracy(ratios, table) == pytest.approx(
            self._loop_reference(ratios, table)
        )

    def test_tie_breaks_to_lower_ratio(self):
        # 0.25 is equidistant from 0.0 and 0.5: both must pick the lower one.
        table = {0.0: 90.0, 0.5: 80.0}
        ratios = np.asarray([0.25])
        assert _effective_accuracy(ratios, table) == self._loop_reference(ratios, table) == 90.0

    def test_empty_windows(self):
        assert np.isnan(_effective_accuracy(np.zeros(0), {0.0: 84.0}))


# ----------------------------------------------------------------------
# Engine API
# ----------------------------------------------------------------------
class TestServingEngineApi:
    def test_requires_exactly_one_input(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model))
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(ValueError):
            engine.run()
        with pytest.raises(ValueError):
            engine.run(trace=trace, requests=[Request(0.0, model="m")])

    def test_unregistered_model_rejected(self, service_model):
        engine = ServingEngine()
        engine.register("m", ModeledExecutor(service_model))
        with pytest.raises(KeyError):
            engine.run(requests=[Request(0.0, model="other")])

    def test_no_endpoints_rejected(self):
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(RuntimeError):
            ServingEngine().run(trace=trace)

    def test_trace_needs_model_name_with_multiple_endpoints(self, service_model):
        engine = ServingEngine()
        engine.register("a", ModeledExecutor(service_model))
        engine.register("b", ModeledExecutor(service_model))
        trace = PoissonTrace(100, duration=0.5, seed=0).generate()
        with pytest.raises(ValueError):
            engine.run(trace=trace)
        assert engine.run(trace=trace, model="a").latencies.size == len(trace)

    def test_responses_recorded_for_requests(self, service_model):
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        requests = [Request(arrival_time=0.001 * i, model="m", request_id=100 + i)
                    for i in range(10)]
        outcome = engine.run(requests=requests)
        assert outcome.responses is not None and len(outcome.responses) == 10
        for i, response in enumerate(outcome.responses):
            assert response.request_id == 100 + i
            assert response.model == "m"
            assert not response.dropped
            assert response.latency == pytest.approx(
                outcome.request_latencies[i]
            )
            assert response.finish_time >= response.start_time >= response.arrival_time

    def test_round_robin_policy_varies_ratio_per_batch(self, service_model):
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register(
            "m",
            ModeledExecutor(service_model),
            policy=RoundRobinRatioPolicy([0.0, 0.5, 1.0]),
        )
        trace = PoissonTrace(2000, duration=1.0, seed=1).generate()
        outcome = engine.run(trace=trace)
        assert len(outcome.batch_records) >= 3
        assert outcome.batch_ratios[:3] == [0.0, 0.5, 1.0]

    def test_multi_model_head_of_line_batching(self, service_model):
        fast = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64))
        engine = ServingEngine(BatchingConfig(max_batch=32))
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(fast), mode="int4")
        requests = [
            Request(arrival_time=0.0005 * i, model=("a" if i % 3 else "b"))
            for i in range(300)
        ]
        outcome = engine.run(requests=requests)
        # Batches never mix models.
        for record in outcome.batch_records:
            assert record.model in ("a", "b")
        served_models = [r.model for r in outcome.responses]
        assert outcome.for_model("a").size == sum(m == "a" for m in served_models)
        assert outcome.for_model("b").size == sum(m == "b" for m in served_models)
        assert outcome.for_model("a").size + outcome.for_model("b").size == 300
        # Per-batch request counts add up too.
        assert sum(outcome.batch_sizes) == 300

    def test_model_arg_validated_on_requests_path(self, service_model):
        engine = ServingEngine()
        engine.register("a", ModeledExecutor(service_model))
        engine.register("b", ModeledExecutor(service_model))
        requests = [Request(0.0, model="a"), Request(0.001, model="b")]
        with pytest.raises(ValueError):
            engine.run(requests=requests, model="a")
        with pytest.raises(KeyError):
            engine.run(requests=[Request(0.0, model="a")], model="typo")
        assert engine.run(requests=[Request(0.0, model="a")], model="a").latencies.size == 1

    def test_requests_from_trace(self):
        trace = PoissonTrace(500, duration=1.0, seed=2).generate()
        payloads = [np.zeros((2,)), np.ones((2,))]
        requests = requests_from_trace(trace, model="m", payloads=payloads)
        assert len(requests) == len(trace)
        assert all(r.model == "m" for r in requests)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        np.testing.assert_array_equal(requests[0].payload, payloads[0])
        np.testing.assert_array_equal(requests[1].payload, payloads[1])
        np.testing.assert_array_equal(requests[2].payload, payloads[0])


# ----------------------------------------------------------------------
# Real execution through RuntimeExecutor
# ----------------------------------------------------------------------
class TestRuntimeExecutor:
    def test_single_batch_outputs_match_direct_forward(self, flexiq_conv_runtime, tiny_dataset):
        images = tiny_dataset.test_images[:6]
        flexiq_conv_runtime.prepare(use_prepared=True)
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register(
            "conv",
            RuntimeExecutor(flexiq_conv_runtime),
            policy=FixedRatioPolicy(0.5),
        )
        requests = [
            Request(arrival_time=0.0, model="conv", payload=images[i])
            for i in range(len(images))
        ]
        outcome = engine.run(requests=requests)

        assert len(outcome.batch_records) == 1
        assert outcome.batch_records[0].size == len(images)
        assert outcome.batch_records[0].ratio == 0.5
        assert outcome.busy_time > 0.0

        flexiq_conv_runtime.set_ratio(0.5)
        expected = flexiq_conv_runtime(Tensor(images)).data
        for i, response in enumerate(outcome.responses):
            np.testing.assert_array_equal(response.output, expected[i])

    def test_heterogeneous_ratio_batches_no_kernel_rebuild(self, flexiq_conv_runtime, tiny_dataset):
        runtime = flexiq_conv_runtime
        runtime.prepare(use_prepared=True)
        ratios = runtime.available_ratios
        # Warm every ratio once so lazily built boundary planes exist before
        # the instrumented serving run.
        for ratio in ratios:
            runtime.forward_batch(tiny_dataset.test_images[:1], ratio=ratio)

        executor = RuntimeExecutor(runtime, default_input=tiny_dataset.test_images[0])
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("conv", executor, policy=RoundRobinRatioPolicy(ratios))
        # Spread arrivals so the engine forms several small batches.
        trace = RequestTrace(arrival_times=np.linspace(0.0, 0.01, 12), duration=0.01)

        builds_before = PreparedKernel.build_count
        planes_before = PreparedKernel.plane_build_count
        outcome = engine.run(requests=requests_from_trace(trace, model="conv"))

        assert PreparedKernel.build_count == builds_before, (
            "serving must not rebuild prepared kernels"
        )
        assert PreparedKernel.plane_build_count == planes_before, (
            "serving must not re-lower boundary planes"
        )
        assert executor.ratio_switches > 0
        assert len(set(outcome.batch_ratios)) > 1
        assert outcome.latencies.size == 12
        assert np.all(outcome.latencies > 0)

    def test_mode_overrides_ratio(self, flexiq_runtime, mlp_dataset):
        executor = RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0])
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register("mlp", executor, policy=FixedRatioPolicy(0.5), mode="int4")
        trace = RequestTrace(arrival_times=np.zeros(4), duration=0.0)
        outcome = engine.run(requests=requests_from_trace(trace, model="mlp"))
        # "int4" pins the runtime to ratio 1.0 regardless of the policy, and
        # the batch records report the executed (pinned) ratio.
        assert flexiq_runtime.current_ratio == 1.0
        assert outcome.batch_ratios == [1.0]
        assert all(r.ratio == 1.0 for r in outcome.responses)
        # Simultaneous arrivals: the run spans the measured makespan, so
        # throughput is real requests/second rather than 0/0.
        assert outcome.duration > 0.0
        assert outcome.throughput > 0.0

    def test_forward_batch_resyncs_stale_layer_boundaries(self, flexiq_conv_runtime, tiny_dataset):
        runtime = flexiq_conv_runtime
        runtime.set_ratio(0.5)
        # Move one layer's boundary behind the model's back; current_ratio
        # still reads 0.5, but forward_batch must re-apply the ratio anyway.
        name, layer = next(
            (n, l) for n, l in runtime.flexiq_layers()
            if n in runtime.layout_plan.layouts
        )
        expected_boundary = layer.max_4bit_ch
        layer.set_boundary(layer.feature_channels)
        runtime.forward_batch(tiny_dataset.test_images[:1], ratio=0.5)
        assert layer.max_4bit_ch == expected_boundary

    def test_missing_payload_without_default_raises(self, flexiq_runtime):
        executor = RuntimeExecutor(flexiq_runtime)
        engine = ServingEngine()
        engine.register("mlp", executor)
        with pytest.raises(ValueError):
            engine.run(requests=[Request(0.0, model="mlp")])

    def test_multi_model_registry_real_execution(
        self, flexiq_runtime, flexiq_conv_runtime, mlp_dataset, tiny_dataset
    ):
        """Two prepared runtimes (own kernel caches) behind one engine."""
        engine = ServingEngine(BatchingConfig(max_batch=4))
        engine.register(
            "mlp",
            RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0]),
            policy=FixedRatioPolicy(0.25),
        )
        engine.register(
            "conv",
            RuntimeExecutor(flexiq_conv_runtime, default_input=tiny_dataset.test_images[0]),
            policy=FixedRatioPolicy(1.0),
        )
        requests = [
            Request(arrival_time=0.001 * i, model=("mlp" if i % 2 else "conv"))
            for i in range(16)
        ]
        outcome = engine.run(requests=requests)

        assert outcome.for_model("mlp").size == 8
        assert outcome.for_model("conv").size == 8
        for record in outcome.batch_records:
            expected_ratio = 0.25 if record.model == "mlp" else 1.0
            assert record.ratio == expected_ratio
        # Every response carries its model's classifier output.
        for response in outcome.responses:
            assert response.output.shape == (4,)

    def test_modeled_and_runtime_mixed_registry(self, service_model, flexiq_runtime, mlp_dataset):
        """Modeled and real executors are interchangeable under one engine."""
        engine = ServingEngine(BatchingConfig(max_batch=8))
        engine.register("modeled", ModeledExecutor(service_model), mode="int8")
        engine.register(
            "real",
            RuntimeExecutor(flexiq_runtime, default_input=mlp_dataset.test_images[0]),
        )
        requests = [
            Request(arrival_time=0.002 * i, model=("modeled" if i % 2 else "real"))
            for i in range(12)
        ]
        outcome = engine.run(requests=requests)
        assert outcome.for_model("modeled").size == 6
        assert outcome.for_model("real").size == 6
        assert outcome.dropped == 0

"""Tests for the cluster control plane (placement, telemetry, autoscaling).

Covers the four pieces of :mod:`repro.serving.cluster` and their engine
hooks:

* **Server profiles** — GPU/NPU-derived :class:`ServerSpec`\\ s with measured
  speeds and heterogeneous executors behind one engine.
* **Placement** — the :class:`Placer` protocol replacing the hard-coded
  argmin dispatch; free-clock stays bit-identical to the seed, the
  speed-aware placers strictly beat it on a mixed-speed cluster.
* **Telemetry** — windowed per-server series (queue depth, utilization,
  executed ratio, SLO attainment, drops) published by the engine, consumed
  by context-aware policies (per-server adaptive ratio control).
* **Autoscaling** — hysteresis decisions, scale events, and the acceptance
  scenario: on a spike trace the autoscaled cluster meets a p99 SLO a
  static minimal cluster misses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import PoissonTrace, RequestTrace, SpikeTrace, merge_traces
from repro.hardware.npu import NpuConfig, NpuLatencyModel, NpuServiceAdapter
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    FreeClockPlacer,
    LeastOutstandingWorkPlacer,
    ModelAffinityPlacer,
    ModeledExecutor,
    PerServerAdaptiveRatioPolicy,
    PlacementContext,
    QueueDepthAutoscaler,
    Request,
    ServingEngine,
    ServingSimulator,
    SloLatencyAutoscaler,
    TelemetryBus,
    WeightedSpeedPlacer,
    gpu_server,
    npu_server,
    requests_from_trace,
)
from repro.serving.simulator import ServiceTimeModel
from repro.serving.telemetry import CLUSTER, ScaleEvent


NPU_BIG = NpuConfig(array_rows=64, array_cols=64, clock_mhz=800.0)


@pytest.fixture(scope="module")
def mixed_specs():
    """One fast GPU + two slow (but not useless) NPUs, all ViT-Base."""
    return [
        gpu_server("gpu0", "vit_base", gpu="l40s"),
        npu_server("npu0", "vit_base", config=NPU_BIG),
        npu_server("npu1", "vit_base", config=NPU_BIG),
    ]


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))


# ----------------------------------------------------------------------
# Server profiles
# ----------------------------------------------------------------------
class TestServerSpec:
    def test_speeds_measured_from_hardware_models(self, mixed_specs):
        gpu, npu0, npu1 = mixed_specs
        assert gpu.speed > 5 * npu0.speed  # the cluster really is mixed-speed
        assert npu0.speed == npu1.speed
        # Speed is reference_batch / batch_latency(reference_batch).
        expected = 64 / gpu.service_model.batch_latency(64, "int8")
        assert gpu.speed == pytest.approx(expected)

    def test_gpu_ordering(self):
        l40s = gpu_server("a", "vit_base", gpu="l40s")
        a6000 = gpu_server("b", "vit_base", gpu="a6000")
        assert l40s.speed > a6000.speed

    def test_npu_adapter_mode_semantics(self):
        adapter = NpuServiceAdapter(NpuLatencyModel(NPU_BIG))
        service = ServiceTimeModel(
            "resnet18", anchor_batches=(1, 8, 32), latency_model=adapter
        )
        int8 = service.batch_latency(8, "int8")
        int4 = service.batch_latency(8, "int4")
        flexi = service.batch_latency(8, "flexiq", 0.5)
        assert int4 < flexi < int8
        # int8 mode is exactly ratio 0, int4 exactly ratio 1.
        assert int8 == service.batch_latency(8, "flexiq", 0.0)
        assert int4 == service.batch_latency(8, "flexiq", 1.0)
        with pytest.raises(ValueError):
            adapter.model_latency([], "fp16")

    def test_spec_validation(self, service_model):
        from repro.serving.cluster import ServerSpec

        with pytest.raises(ValueError):
            ServerSpec(name="bad-speed", speed=-1.0, service_model=service_model)
        with pytest.raises(ValueError):
            ServerSpec(name="no-backend", speed=1.0)
        spec = ServerSpec(name="ok", speed=2.0, service_model=service_model)
        assert isinstance(spec.build_executor(), ModeledExecutor)
        # Without a service model, estimates fall back to the speed scalar.
        executor_spec = ServerSpec(
            name="real", speed=10.0, executor=ModeledExecutor(service_model)
        )
        assert executor_spec.estimate_batch_seconds(5) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_free_clock_placer_bit_identical_to_default(self, service_model):
        trace = PoissonTrace(2600, duration=2.0, seed=23).generate()

        def run(placer):
            engine = ServingEngine(
                BatchingConfig(max_batch=64), num_servers=3, placer=placer
            )
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            return engine.run(trace=trace)

        default = run(None)
        explicit = run(FreeClockPlacer())
        np.testing.assert_array_equal(default.latencies, explicit.latencies)
        assert default.batch_sizes == explicit.batch_sizes
        assert [r.server for r in default.batch_records] == [
            r.server for r in explicit.batch_records
        ]

    def test_single_server_cluster_bit_identical_to_seed(self, service_model):
        """A 1-GPU ClusterEngine (no placer/autoscaler) == seed simulator."""
        trace = PoissonTrace(1800, duration=2.0, seed=17).generate()
        spec = gpu_server("g", "vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))
        cluster = ClusterEngine([spec], BatchingConfig(max_batch=128))
        cluster.register("m", mode="int8")
        outcome = cluster.run(trace=trace)
        seed = ServingSimulator(
            ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128)),
            BatchingConfig(max_batch=128),
        ).run(trace, "int8")
        np.testing.assert_array_equal(outcome.latencies, seed.latencies)

    def test_speed_aware_placers_beat_free_clock_on_mixed_cluster(self, mixed_specs):
        """The tentpole property: smarter-than-argmin placement wins on
        heterogeneous hardware (throughput by makespan AND tail latency)."""
        trace = PoissonTrace(3000, duration=2.0, seed=33).generate()
        requests = requests_from_trace(trace, model="m")

        def run(placer):
            cluster = ClusterEngine(
                mixed_specs, BatchingConfig(max_batch=64), placer=placer
            )
            cluster.register("m", mode="int8")
            return cluster.run(requests=requests, record_responses=False)

        free_clock = run(None)
        least_work = run("least_work")
        weighted = run("weighted")
        assert least_work.throughput > free_clock.throughput
        assert weighted.throughput > free_clock.throughput
        assert least_work.p99_latency < free_clock.p99_latency
        assert weighted.p99_latency < free_clock.p99_latency
        # Placement changes scheduling, never correctness: everyone serves
        # every request.
        for outcome in (free_clock, least_work, weighted):
            assert outcome.latencies.size == len(requests)

    def test_weighted_placer_prefers_fast_idle_server(self):
        context = PlacementContext(
            time=1.0,
            free_at=[0.0, 0.5, 0.9],
            active=[0, 1, 2],
            batch_hint=8,
        )
        # All idle by t=1.0: the fastest server must win despite having the
        # *latest* free clock (argmin-free-clock would pick server 0).
        placer = WeightedSpeedPlacer([10.0, 20.0, 200.0])
        assert placer.place(context) == 2
        assert FreeClockPlacer().place(context) == 0

    def test_least_work_charges_backlog(self):
        # Fast server backlogged 1s; slow idle server can finish 4 requests
        # in 0.4s < 1s + 4/100, so overflow goes to the slow one.
        context = PlacementContext(
            time=0.0, free_at=[1.0, 0.0], active=[0, 1], batch_hint=4
        )
        assert LeastOutstandingWorkPlacer([100.0, 10.0]).place(context) == 1
        # With a tiny backlog the fast server wins again.
        context = PlacementContext(
            time=0.0, free_at=[0.05, 0.0], active=[0, 1], batch_hint=4
        )
        assert LeastOutstandingWorkPlacer([100.0, 10.0]).place(context) == 0

    def test_placers_respect_active_set(self):
        context = PlacementContext(
            time=0.0, free_at=[0.0, 5.0], active=[1], batch_hint=1
        )
        assert FreeClockPlacer().place(context) == 1
        assert WeightedSpeedPlacer([100.0, 1.0]).place(context) == 1

    def test_invalid_speeds_rejected(self):
        with pytest.raises(ValueError):
            WeightedSpeedPlacer([])
        with pytest.raises(ValueError):
            LeastOutstandingWorkPlacer([1.0, 0.0])

    def test_engine_validates_placer_output(self, service_model):
        class Rogue:
            def place(self, context):
                return 7  # out of range

        engine = ServingEngine(num_servers=2, placer=Rogue())
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        with pytest.raises(ValueError):
            engine.run(requests=[Request(0.0, model="m")])

    def test_model_affinity_partitions_servers(self, service_model):
        fast = ServiceTimeModel("vit_base", gpu="l40s", anchor_batches=(1, 16, 64))
        placer = ModelAffinityPlacer({"a": [0, 1], "b": [2]})
        engine = ServingEngine(
            BatchingConfig(max_batch=16), num_servers=3, placer=placer
        )
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(fast), mode="int8")
        requests = [
            Request(arrival_time=0.0005 * i, model=("a" if i % 2 else "b"))
            for i in range(400)
        ]
        outcome = engine.run(requests=requests)
        servers_by_model = {"a": set(), "b": set()}
        for record in outcome.batch_records:
            servers_by_model[record.model].add(record.server)
        assert servers_by_model["a"] <= {0, 1}
        assert servers_by_model["b"] == {2}

    def test_affinity_holds_across_drop_boundary(self, service_model):
        """Regression: the placer used to be consulted before the drop_after
        filter, so a batch whose expired head belonged to another model
        could run outside its own model's partition."""
        from repro.serving import EdfScheduler

        placer = ModelAffinityPlacer({"a": [0], "b": [1]})
        engine = ServingEngine(
            BatchingConfig(max_batch=8, drop_after=0.02),
            num_servers=2,
            placer=placer,
            scheduler=EdfScheduler(),
        )
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(service_model), mode="int8")
        rng = np.random.default_rng(11)
        requests = [
            Request(
                arrival_time=0.0004 * i,
                model=("a" if i % 2 else "b"),
                deadline=0.0004 * i + float(rng.uniform(0.01, 0.5)),
            )
            for i in range(600)
        ]
        outcome = engine.run(requests=requests)
        assert outcome.dropped > 0  # the drop path really exercised
        for record in outcome.batch_records:
            assert record.server == (0 if record.model == "a" else 1)

    def test_fifo_affinity_holds_across_drop_boundary(self, service_model):
        placer = ModelAffinityPlacer({"a": [0], "b": [1]})
        engine = ServingEngine(
            BatchingConfig(max_batch=8, drop_after=0.02),
            num_servers=2,
            placer=placer,
        )
        engine.register("a", ModeledExecutor(service_model), mode="int8")
        engine.register("b", ModeledExecutor(service_model), mode="int8")
        requests = [
            Request(arrival_time=0.0004 * i, model=("a" if i % 2 else "b"))
            for i in range(600)
        ]
        outcome = engine.run(requests=requests)
        assert outcome.dropped > 0
        for record in outcome.batch_records:
            assert record.server == (0 if record.model == "a" else 1)

    def test_scheduled_drop_after_checked_against_placed_start(self, service_model):
        """Regression: expiry ran only against the earliest-free clock; a
        placer picking a later-free server then served requests that had
        waited beyond drop_after.  Both paths must honour the contract."""
        from repro.serving import EdfScheduler

        class PinToOne:
            def place(self, context):
                return 1

        def run(scheduler):
            engine = ServingEngine(
                BatchingConfig(max_batch=4, drop_after=1.0),
                num_servers=2,
                placer=PinToOne(),
                scheduler=scheduler,
            )
            engine.register("m", ModeledExecutor(service_model), mode="int8")
            engine.start(
                requests=[Request(arrival_time=0.1, model="m", request_id=0)]
            )
            # Server 1 is busy until t=5; server 0 is free (earliest clock).
            engine.set_active_servers([0, 1])
            engine._session.free_at[1] = 5.0
            return engine.finish()

        fifo = run(None)
        edf = run(EdfScheduler())
        # The request waits 4.9s > drop_after on the pinned server: dropped
        # on both paths, never served with a silently blown SLO.
        assert fifo.dropped == 1
        assert edf.dropped == 1
        assert edf.latencies.size == 0

    def test_affinity_waived_when_partition_inactive(self):
        placer = ModelAffinityPlacer({"a": [2]})
        context = PlacementContext(
            time=0.0, free_at=[0.0, 0.0, 0.0], active=[0, 1], model="a"
        )
        # Server 2 is parked: the restriction must not stall the queue.
        assert placer.place(context) in (0, 1)

    def test_scheduled_path_supports_placement(self, mixed_specs):
        """Placer + non-FIFO scheduler compose (EDF on a mixed cluster)."""
        from repro.serving import EdfScheduler

        trace = PoissonTrace(3000, duration=1.0, seed=7).generate()
        requests = requests_from_trace(trace, model="m", deadlines=[0.2, 1.0])

        def run(placer):
            cluster = ClusterEngine(
                mixed_specs,
                BatchingConfig(max_batch=64),
                scheduler=EdfScheduler(),
                placer=placer,
            )
            cluster.register("m", mode="int8")
            return cluster.run(requests=requests)

        free_clock = run(None)
        weighted = run("weighted")
        assert weighted.result.deadline_attainment() >= free_clock.result.deadline_attainment()
        assert weighted.latencies.size == len(requests)

    def test_unknown_named_placer_rejected(self, mixed_specs):
        with pytest.raises(ValueError):
            ClusterEngine(mixed_specs, placer="round_robin")


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_engine_publishes_per_server_windows(self, service_model):
        telemetry = TelemetryBus(window=0.5, num_servers=2)
        engine = ServingEngine(
            BatchingConfig(max_batch=32), num_servers=2, telemetry=telemetry
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        trace = PoissonTrace(3000, duration=2.0, seed=5).generate()
        outcome = engine.run(trace=trace)

        total = sum(
            stats.served
            for server in range(2)
            for stats in telemetry.server_series(server)
        )
        assert total == outcome.latencies.size
        # Both servers show utilization in the busy windows.
        for server in range(2):
            series = telemetry.server_series(server)
            assert any(stats.utilization > 0.5 for stats in series)
            assert sum(stats.busy_time for stats in series) == pytest.approx(
                outcome.server_busy_times[server]
            )

    def test_windowed_ratio_queue_depth_and_rate(self, service_model):
        from repro.serving import RoundRobinRatioPolicy

        telemetry = TelemetryBus(window=1.0, num_servers=1)
        engine = ServingEngine(
            BatchingConfig(max_batch=8), telemetry=telemetry
        )
        engine.register(
            "m",
            ModeledExecutor(service_model),
            policy=RoundRobinRatioPolicy([0.0, 1.0]),
            mode="flexiq",
        )
        trace = RequestTrace(arrival_times=np.zeros(16), duration=0.0)
        engine.run(trace=trace)
        stats = telemetry.server_window(0, 0)
        assert stats.served == 16
        assert stats.batches == 2
        assert stats.executed_ratio == pytest.approx(0.5)
        assert stats.mean_queue_depth == pytest.approx((16 + 8) / 2)
        assert stats.served_rate == pytest.approx(16.0)
        assert stats.latencies.size == 16
        # Quiet windows report zeros, not errors.
        idle = telemetry.server_window(0, 7)
        assert idle.served == 0 and idle.utilization == 0.0
        assert np.isnan(idle.executed_ratio)

    def test_slo_attainment_and_drops_per_window(self, service_model):
        telemetry = TelemetryBus(window=1.0, num_servers=1)
        engine = ServingEngine(
            BatchingConfig(max_batch=4, drop_after=0.05), telemetry=telemetry
        )
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        trace = PoissonTrace(3000, duration=1.0, seed=4).generate()
        requests = requests_from_trace(trace, model="m", deadlines=[0.05, 0.8])
        outcome = engine.run(requests=requests)
        assert outcome.dropped > 0
        series = telemetry.cluster_series()
        assert sum(stats.drops for stats in series) == outcome.dropped
        # Window attainment uses the engine's deadline bookkeeping: met /
        # total, drops (with deadlines) counted in the total as misses.
        first = telemetry.cluster_window(0)
        assert first.drops > 0
        assert 0.0 < first.slo_attainment < 1.0
        met = sum(
            1
            for response in outcome.responses
            if response.deadline is not None
            and not response.dropped
            and response.finish_time <= response.deadline
        )
        assert sum(stats.deadline_met for stats in series) == met

    def test_policy_context_carries_telemetry(self, service_model):
        seen = []

        class Spy:
            accepts_context = True

            def on_run_start(self, trace):
                pass

            def select(self, context):
                seen.append((context.telemetry, context.num_active))
                return 0.0

        telemetry = TelemetryBus(window=1.0, num_servers=1)
        engine = ServingEngine(telemetry=telemetry)
        engine.register("m", ModeledExecutor(service_model), policy=Spy())
        engine.run(requests=[Request(0.0, model="m")])
        assert seen == [(telemetry, 1)]

    def test_scale_events_recorded(self):
        bus = TelemetryBus(window=1.0, num_servers=2)
        bus.record_scale_event(ScaleEvent(1.0, "add", 1, 2, "test"))
        assert bus.scale_events[0].action == "add"
        bus.reset()
        assert bus.scale_events == []
        assert bus.last_window == -1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TelemetryBus(window=0.0)


# ----------------------------------------------------------------------
# Per-server adaptive ratio control
# ----------------------------------------------------------------------
class TestPerServerAdaptation:
    def _profile(self, service_model):
        simulator = ServingSimulator(service_model, BatchingConfig(max_batch=128))

        def latency_fn(ratio, rate):
            trace = PoissonTrace(max(rate, 1), duration=2.0, seed=11).generate()
            return simulator.run(trace, "flexiq", ratio=ratio).median_latency

        return build_profile_from_latency_fn(
            [200, 600, 1000, 1600, 2200, 2800], [0.0, 0.5, 1.0], latency_fn
        )

    def test_only_the_loaded_server_raises_its_ratio(self, service_model):
        """The ROADMAP item: per-server signals, not global window rates."""
        profile = self._profile(service_model)
        policy = PerServerAdaptiveRatioPolicy(
            lambda: AdaptiveRatioController(profile, latency_threshold=0.05),
            control_window=1.0,
        )
        # Pin the heavy model to server 0 and a trickle to server 1.
        placer = ModelAffinityPlacer({"hot": [0], "cold": [1]})
        telemetry = TelemetryBus(window=1.0, num_servers=2)
        engine = ServingEngine(
            BatchingConfig(max_batch=64),
            num_servers=2,
            placer=placer,
            telemetry=telemetry,
        )
        service2 = ServiceTimeModel(
            "vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128)
        )
        engine.register("hot", ModeledExecutor(service_model), policy=policy, mode="flexiq")
        engine.register("cold", ModeledExecutor(service2), policy=policy, mode="flexiq")
        hot = requests_from_trace(
            PoissonTrace(2600, duration=6.0, seed=2).generate(), model="hot"
        )
        cold = requests_from_trace(
            PoissonTrace(50, duration=6.0, seed=3).generate(), model="cold"
        )
        engine.run(requests=list(hot) + list(cold), record_responses=False)

        assert set(policy.controllers) == {0, 1}
        hot_ratios = [e["ratio"] for e in policy.timeline if e["server"] == 0]
        cold_ratios = [e["ratio"] for e in policy.timeline if e["server"] == 1]
        assert max(hot_ratios) > 0.0          # overloaded server sheds accuracy
        assert max(cold_ratios) == 0.0        # idle server stays full precision
        # The rates fed to the hot controller are per-server served rates.
        hot_rates = [e["rate"] for e in policy.timeline if e["server"] == 0]
        assert max(hot_rates) > 2000

    def test_fallback_without_telemetry_uses_queue_depth(self, service_model):
        profile = self._profile(service_model)
        policy = PerServerAdaptiveRatioPolicy(
            lambda: AdaptiveRatioController(profile, latency_threshold=0.05),
            control_window=1.0,
        )
        engine = ServingEngine(BatchingConfig(max_batch=64))
        engine.register("m", ModeledExecutor(service_model), policy=policy, mode="flexiq")
        trace = PoissonTrace(2600, duration=4.0, seed=9).generate()
        outcome = engine.run(trace=trace)
        assert outcome.latencies.size == len(trace)
        assert policy.timeline  # controller updated from queue-depth signal

    def test_state_reset_between_runs(self, service_model):
        profile = self._profile(service_model)
        policy = PerServerAdaptiveRatioPolicy(
            lambda: AdaptiveRatioController(profile, latency_threshold=0.05)
        )
        engine = ServingEngine(BatchingConfig(max_batch=64))
        engine.register("m", ModeledExecutor(service_model), policy=policy, mode="flexiq")
        trace = PoissonTrace(500, duration=1.0, seed=1).generate()
        engine.run(trace=trace)
        first = policy.controllers[0]
        engine.run(trace=trace)
        assert policy.controllers[0] is not first  # fresh controllers per run


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
def _stats(depth=0.0, latencies=(), window=0, drops=0):
    from repro.serving import ClusterWindowStats

    return ClusterWindowStats(
        server=CLUSTER,
        window=window,
        start=float(window),
        end=float(window + 1),
        mean_queue_depth=depth,
        drops=drops,
        latencies=np.asarray(latencies, dtype=np.float64),
    )


class TestAutoscalerPolicies:
    def test_queue_depth_hysteresis(self):
        scaler = QueueDepthAutoscaler(
            scale_up_depth=64, scale_down_depth=8, patience=2
        )
        assert scaler.decide(_stats(depth=100), 1) == 2       # hot -> up
        assert scaler.decide(_stats(depth=30), 2) == 2        # in band -> hold
        assert scaler.decide(_stats(depth=2), 2) == 2         # calm 1/2 -> hold
        assert scaler.decide(_stats(depth=2), 2) == 1         # calm 2/2 -> down
        assert scaler.decide(_stats(depth=2), 1) == 1         # calm streak restarts
        # A hot or in-band window resets the calm streak.
        assert scaler.decide(_stats(depth=100), 1) == 2       # hot: calm -> 0
        assert scaler.decide(_stats(depth=2), 2) == 2         # calm 1/2
        assert scaler.decide(_stats(depth=30), 2) == 2        # in band: calm -> 0
        assert scaler.decide(_stats(depth=2), 2) == 2         # calm 1/2 again
        assert scaler.decide(_stats(depth=2), 2) == 1         # calm 2/2 -> down

    def test_slo_latency_hysteresis(self):
        scaler = SloLatencyAutoscaler(
            slo_seconds=0.5, percentile=99, headroom=0.5, patience=2
        )
        assert scaler.decide(_stats(latencies=[0.9] * 10), 1) == 2   # breach
        assert scaler.decide(_stats(latencies=[0.4] * 10), 2) == 2   # met, no margin
        assert scaler.decide(_stats(latencies=[0.1] * 10), 2) == 2   # calm 1/2
        assert scaler.decide(_stats(latencies=[0.1] * 10), 2) == 1   # calm 2/2
        assert scaler.decide(_stats(), 1) == 1                       # empty window

    def test_slo_autoscaler_treats_drops_as_breach(self):
        """Regression: a mass-dropping cluster shows healthy *served*
        percentiles (the queue is being culled); drops must scale up and
        veto scale-down, never look calm."""
        scaler = SloLatencyAutoscaler(
            slo_seconds=0.5, percentile=99, headroom=0.5, patience=2
        )
        # Served latencies look great, but the window dropped traffic.
        assert scaler.decide(_stats(latencies=[0.1] * 10, drops=50), 1) == 2
        # Drops also reset the calm streak mid-countdown.
        assert scaler.decide(_stats(latencies=[0.1] * 10), 2) == 2   # calm 1/2
        assert scaler.decide(_stats(latencies=[0.1] * 10, drops=1), 2) == 3
        assert scaler.decide(_stats(latencies=[0.1] * 10), 3) == 3   # calm 1/2 again
        # An empty window with drops still scales up.
        assert scaler.decide(_stats(drops=10), 3) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(scale_up_depth=4, scale_down_depth=8)
        with pytest.raises(ValueError):
            SloLatencyAutoscaler(slo_seconds=0.0)
        with pytest.raises(ValueError):
            SloLatencyAutoscaler(slo_seconds=1.0, headroom=0.0)


class TestElasticCluster:
    SLO = 0.5

    def _spike_requests(self):
        trace = merge_traces(
            PoissonTrace(400, duration=20.0, seed=1).generate(),
            SpikeTrace(
                base_rate=1e-9, spike_rate=2400, spike_start=8.0,
                spike_duration=4.0, duration=20.0, seed=2,
            ).generate(),
        )
        return requests_from_trace(trace, model="m")

    def _cluster(self, k=4, autoscaler=None, **kwargs):
        specs = [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(k)]
        cluster = ClusterEngine(
            specs, BatchingConfig(max_batch=64), autoscaler=autoscaler, **kwargs
        )
        cluster.register("m", mode="int8")
        return cluster

    def test_autoscaled_meets_slo_static_minimal_misses(self):
        """The acceptance scenario (mirrors examples/autoscaling_cluster.py)."""
        requests = self._spike_requests()
        static = self._cluster(k=1).run(requests=requests, record_responses=False)
        auto = self._cluster(
            k=4,
            autoscaler=SloLatencyAutoscaler(
                slo_seconds=0.15, percentile=99, headroom=0.3, patience=3
            ),
            min_servers=1,
            window=0.5,
            startup_delay=0.25,
        ).run(requests=requests, record_responses=False)

        assert static.p99_latency > self.SLO          # the miss
        assert auto.p99_latency < self.SLO            # the save
        assert auto.slo_attainment(self.SLO) > 0.99
        assert static.slo_attainment(self.SLO) < 0.9
        # Elasticity really happened: grew through the spike, shrank after.
        actions = [event.action for event in auto.scale_events]
        assert "add" in actions and "remove" in actions
        assert auto.peak_active > 1
        assert auto.scale_events[-1].active_after < auto.peak_active
        # The active timeline tells the same story: starts at the minimal
        # size, peaks with the spike, in chronological order.
        timeline = auto.active_timeline()
        assert timeline[0] == {"time": 0.0, "active": 1.0}
        assert max(entry["active"] for entry in timeline) == auto.peak_active
        assert [entry["time"] for entry in timeline] == sorted(
            entry["time"] for entry in timeline
        )
        # And it cost far less than a peak-sized static fleet would idle at:
        # the autoscaled run bills busy servers only.
        static4 = self._cluster(k=4).run(requests=requests, record_responses=False)
        assert static4.p99_latency < self.SLO
        assert auto.server_seconds < 4 * 20.0 * 0.6   # << 80 server-seconds wall

    def test_scale_up_capacity_not_retroactive(self):
        """A server activated at t gets free_at >= t + startup_delay."""
        from repro.serving import BatchExecution

        class Slow:
            def execute(self, batch, mode, ratio):
                return BatchExecution(service_time=10.0)

        engine = ServingEngine(BatchingConfig(max_batch=1), num_servers=2)
        engine.register("m", Slow(), mode="int8")
        engine.start(
            requests=[Request(arrival_time=0.0, model="m", request_id=i) for i in range(4)]
        )
        engine.set_active_servers([0])
        assert engine.step().server == 0
        engine.set_active_servers([0, 1], available_from=5.0)
        records = []
        while True:
            record = engine.step()
            if record is None:
                break
            records.append(record)
        engine.finish()
        late = [r for r in records if r.server == 1]
        assert late  # the new server did serve
        assert all(r.start >= 5.0 for r in late)

    def test_active_server_validation(self, service_model):
        engine = ServingEngine(num_servers=2)
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        with pytest.raises(RuntimeError):
            engine.set_active_servers([0])  # no open session
        engine.start()
        with pytest.raises(ValueError):
            engine.set_active_servers([])
        with pytest.raises(ValueError):
            engine.set_active_servers([5])
        engine.set_active_servers([1])
        assert engine.active_servers == [1]
        engine.finish()

    def test_deactivated_server_receives_no_new_batches(self, service_model):
        trace = PoissonTrace(3000, duration=1.0, seed=6).generate()
        engine = ServingEngine(BatchingConfig(max_batch=32), num_servers=3)
        engine.register("m", ModeledExecutor(service_model), mode="int8")
        engine.start(trace=trace)
        engine.set_active_servers([0, 2])
        while engine.step() is not None:
            pass
        outcome = engine.finish()
        assert {record.server for record in outcome.batch_records} == {0, 2}

    def test_cluster_engine_parameter_validation(self, mixed_specs):
        with pytest.raises(ValueError):
            ClusterEngine([])
        cluster = ClusterEngine(mixed_specs)
        cluster.register("m", mode="int8")
        with pytest.raises(ValueError):
            cluster.run()  # same contract as ServingEngine.run
        with pytest.raises(ValueError):
            ClusterEngine(mixed_specs, min_servers=0)
        with pytest.raises(ValueError):
            ClusterEngine(mixed_specs, min_servers=2, initial_servers=1)
        with pytest.raises(ValueError):
            ClusterEngine(mixed_specs, startup_delay=-1.0)

    def test_repeated_runs_identical_with_stateful_autoscaler(self):
        """Regression: hysteresis state leaked across runs; a reused
        ClusterEngine must reproduce the same deterministic schedule."""
        requests = self._spike_requests()
        cluster = self._cluster(
            k=3,
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=64, scale_down_depth=8, patience=2
            ),
            min_servers=1,
            window=0.5,
        )
        first = cluster.run(requests=requests, record_responses=False)
        second = cluster.run(requests=requests, record_responses=False)
        assert [
            (event.time, event.action, event.server)
            for event in first.scale_events
        ] == [
            (event.time, event.action, event.server)
            for event in second.scale_events
        ]
        np.testing.assert_array_equal(first.latencies, second.latencies)

    def test_min_servers_floor_respected(self):
        requests = self._spike_requests()
        auto = self._cluster(
            k=3,
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=64, scale_down_depth=8, patience=1
            ),
            min_servers=2,
            window=0.5,
        ).run(requests=requests, record_responses=False)
        assert all(event.active_after >= 2 for event in auto.scale_events)

    def test_heterogeneous_scale_order_fastest_first(self, mixed_specs):
        """Scale-up wakes the fastest parked server (the GPU last parked)."""
        requests = self._spike_requests()
        cluster = ClusterEngine(
            mixed_specs,
            BatchingConfig(max_batch=64),
            placer="weighted",
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=32, scale_down_depth=4, patience=2
            ),
            min_servers=1,
            window=0.5,
        )
        cluster.register("m", mode="int8")
        outcome = cluster.run(requests=requests, record_responses=False)
        adds = [event for event in outcome.scale_events if event.action == "add"]
        removes = [event for event in outcome.scale_events if event.action == "remove"]
        assert adds, "the spike must trigger scale-up"
        # Server 0 is the fast GPU and starts active (fastest-first initial
        # set); the first added servers are the NPUs, slowest removed first
        # on the way down.
        if removes:
            slowest = min(
                range(len(mixed_specs)), key=lambda s: mixed_specs[s].speed
            )
            assert removes[0].server in (1, 2) and slowest in (1, 2)

"""Tests for repro.obs: tracing, exporters, metrics registry, SLO burn rates.

Also hosts the PR 9 satellite regressions: the telemetry timeline
dirty-flag audit (rewind paths must not stale the sorted cache) and the
``summarize_latencies``/``streaming_percentile`` digest/empty-input
canonicalization.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.traces import PoissonTrace
from repro.obs import (
    SPAN_CANCELLED,
    SPAN_DROPPED,
    SPAN_EXECUTE,
    SPAN_PREEMPTED,
    SPAN_QUEUED,
    SPAN_SERVED,
    BurnRateRule,
    MetricsRegistry,
    SloMonitor,
    SloObjective,
    SpanStore,
    Tracer,
    json_snapshot,
    prometheus_exposition,
    registry_from_cluster,
    registry_from_engine,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.serving.cluster import ClusterEngine, ServerSpec
from repro.serving.engine import (
    BatchingConfig,
    BatchRecord,
    ServingEngine,
    requests_from_trace,
)
from repro.serving.executors import ModeledExecutor
from repro.serving.metrics import streaming_percentile, summarize_latencies
from repro.serving.policies import FixedRatioPolicy
from repro.serving.resilience import (
    FaultEvent,
    FaultSchedule,
    RequeueAtHeadMigration,
)
from repro.serving.simulator import ServiceTimeModel, ServingSimulator
from repro.serving.telemetry import ScaleEvent, TelemetryBus
from repro.serving.core import P2Quantile, ReservoirSample


def _engine(tracer=None, columnar=True, num_servers=2, drop_after=None):
    engine = ServingEngine(
        BatchingConfig(max_batch=8, drop_after=drop_after),
        num_servers=num_servers,
        columnar=columnar,
        tracer=tracer,
    )
    engine.register(
        "m", ModeledExecutor(ServiceTimeModel()), policy=FixedRatioPolicy(0.5)
    )
    return engine


def _trace(rate=400, duration=2.0, seed=3):
    return PoissonTrace(rate, duration, seed=seed).generate()


# ----------------------------------------------------------------------
# Tracer: span recording, parity, sampling
# ----------------------------------------------------------------------
class TestTracer:
    def test_object_and_columnar_paths_emit_identical_spans(self):
        trace = _trace()
        t_obj, t_col = Tracer(), Tracer()
        r_obj = _engine(t_obj, columnar=False).run(trace, model="m")
        r_col = _engine(t_col, columnar=True).run(trace, model="m")
        np.testing.assert_array_equal(
            r_obj.request_latencies, r_col.request_latencies
        )
        assert t_obj.span_counts() == t_col.span_counts()
        obj, col = t_obj.spans(), t_col.spans()
        for key in ("kind", "request", "server"):
            order_o = np.lexsort((obj["start"], obj["request"], obj["kind"]))
            order_c = np.lexsort((col["start"], col["request"], col["kind"]))
            np.testing.assert_array_equal(obj[key][order_o], col[key][order_c])

    def test_drop_spans_cover_every_drop(self):
        trace = _trace(rate=3000, duration=1.0, seed=5)
        tracer = Tracer(sample_rate=0.05)  # drops force-sampled regardless
        result = _engine(
            tracer, num_servers=1, drop_after=0.05
        ).run(trace, model="m")
        assert result.dropped > 0
        counts = tracer.span_counts()
        assert counts["dropped"] == result.dropped
        terminals = tracer.terminal_requests()
        assert all(count == 1 for count in terminals.values())

    def test_sampling_is_deterministic_and_path_independent(self):
        trace = _trace()
        first, second = Tracer(sample_rate=0.1), Tracer(sample_rate=0.1)
        _engine(first, columnar=True).run(trace, model="m")
        _engine(second, columnar=False).run(trace, model="m")
        assert first.span_counts() == second.span_counts()
        served_first = first.spans()["request"][
            first.spans()["kind"] == SPAN_SERVED
        ]
        served_second = second.spans()["request"][
            second.spans()["kind"] == SPAN_SERVED
        ]
        np.testing.assert_array_equal(
            np.sort(served_first), np.sort(served_second)
        )

    def test_sample_rate_zero_keeps_batch_spans_only(self):
        tracer = Tracer(sample_rate=0.0, sample_drops=False)
        _engine(tracer).run(_trace(), model="m")
        counts = tracer.span_counts()
        assert counts["execute"] > 0
        assert counts["queued"] == counts["served"] == counts["dropped"] == 0

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_traced_run_matches_untraced_run(self):
        trace = _trace()
        plain = _engine(None).run(trace, model="m")
        traced = _engine(Tracer()).run(trace, model="m")
        np.testing.assert_array_equal(
            plain.request_latencies, traced.request_latencies
        )

    def test_engine_off_path_matches_seed_simulator(self):
        # K=1 FIFO with observability off stays bit-identical to the seed.
        trace = _trace()
        seed_result = ServingSimulator(
            ServiceTimeModel(), BatchingConfig(max_batch=8)
        ).run(trace, "flexiq", ratio=0.5)
        engine_result = _engine(None, num_servers=1).run(trace, model="m")
        np.testing.assert_array_equal(
            seed_result.latencies, engine_result.latencies
        )

    def test_preemption_rewrites_spans_and_retracts_terminals(self):
        tracer = Tracer()
        engine = _engine(tracer, columnar=False, num_servers=2)
        engine.start(trace=_trace(rate=300, duration=1.0), model="m")
        while True:
            record = engine.step()
            if record is None or record.start > 0.3:
                break
        report = engine.preempt_server(
            0, 0.3, policy=RequeueAtHeadMigration(delay=0.01)
        )
        engine.finish()
        counts = tracer.span_counts()
        if report.batches:
            assert counts["preempted"] == report.batches
            assert counts["migrate"] == report.migrated
            assert counts["cancelled"] > 0
        terminals = tracer.terminal_requests()
        assert all(count == 1 for count in terminals.values())

    def test_reset_clears_spans(self):
        tracer = Tracer()
        _engine(tracer).run(_trace(), model="m")
        assert len(tracer.store) > 0
        tracer.reset()
        assert len(tracer.store) == 0
        assert tracer.terminal_requests() == {}


class TestSpanStore:
    def test_point_and_bulk_appends_unify(self):
        store = SpanStore()
        store.append(SPAN_EXECUTE, -1, 0, 0.0, 1.0, 4.0)
        store.extend(
            SPAN_SERVED,
            np.asarray([1, 2]),
            np.asarray([0, 0]),
            np.asarray([1.0, 1.0]),
            np.asarray([1.0, 1.0]),
            np.asarray([0.5, 0.6]),
        )
        assert len(store) == 3
        columns = store.columns()
        np.testing.assert_array_equal(
            columns["kind"], [SPAN_EXECUTE, SPAN_SERVED, SPAN_SERVED]
        )
        # A point append after a bulk chunk folds the chunk (row identity).
        row = store.append(SPAN_QUEUED, 3, 1, 0.0, 2.0, 2.0)
        assert row == 3
        store.rewrite(1, SPAN_CANCELLED)
        assert store.columns()["kind"][1] == SPAN_CANCELLED


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def test_export_is_valid_and_json_serializable(self):
        tracer = Tracer()
        _engine(tracer).run(_trace(), model="m")
        trace = to_chrome_trace(tracer, server_names=["alpha", "beta"])
        validate_chrome_trace(trace)
        parsed = json.loads(json.dumps(trace))
        assert parsed["traceEvents"]
        names = {e["name"] for e in parsed["traceEvents"] if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names
        labels = [
            e["args"]["name"]
            for e in parsed["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "alpha" in labels and "beta" in labels

    def test_duration_events_live_on_server_lanes(self):
        tracer = Tracer()
        _engine(tracer).run(_trace(), model="m")
        trace = to_chrome_trace(tracer)
        executes = [
            e for e in trace["traceEvents"]
            if e["name"] == "execute" and e["ph"] == "X"
        ]
        assert executes
        assert all(e["pid"] == 0 for e in executes)
        queued = [
            e for e in trace["traceEvents"]
            if e["name"] == "queued" and e["ph"] == "X"
        ]
        assert queued
        assert all(e["pid"] == 1 for e in queued)

    def test_timeline_markers_render(self):
        tracer = Tracer()
        _engine(tracer).run(_trace(), model="m")
        timeline = [
            FaultEvent(time=0.5, server=0, kind="crash"),
            ScaleEvent(time=0.6, action="add", server=1, active_after=2),
        ]
        trace = to_chrome_trace(tracer, timeline=timeline)
        validate_chrome_trace(trace)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "fault:crash" in names and "scale:add" in names

    def test_cancelled_spans_are_not_exported(self):
        store = SpanStore()
        store.append(SPAN_SERVED, 0, 0, 1.0, 1.0, 1.0)
        store.rewrite(0, SPAN_CANCELLED)
        trace = to_chrome_trace(store)
        assert not [
            e for e in trace["traceEvents"] if e["name"] == "cancelled"
        ]

    def test_validator_rejects_malformed_traces(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0,
                     "ts": float("nan"), "dur": 1.0},
                ]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0},
                ]}
            )


# ----------------------------------------------------------------------
# Metrics registry + exporters
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "Requests.", ("model",))
        counter.labels(model="a").inc()
        counter.labels(model="a").inc(2)
        counter.labels(model="b").inc()
        assert dict(counter.samples()) == {("a",): 3.0, ("b",): 1.0}
        with pytest.raises(ValueError):
            counter.labels(model="a").inc(-1)
        gauge = registry.gauge("active", "Active servers.")
        gauge.set(4)
        gauge.set(2)
        assert dict(gauge.samples()) == {(): 2.0}
        hist = registry.histogram("lat", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        cells = dict(hist.samples())[()]
        assert cells[:3] == [1.0, 1.0, 1.0]  # per-bucket + overflow
        assert cells[-1] == pytest.approx(5.55)

    def test_get_or_create_checks_type_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("x", "a counter", ("k",))
        assert registry.counter("x", labelnames=("k",)) is not None
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("other",))
        with pytest.raises(ValueError):
            registry.counter("x").inc()  # labels required

    def test_prometheus_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "Help with spaces.", ("l",)).labels(
            l='with"quote'
        ).inc(3)
        registry.histogram("h", "Hist.", buckets=(0.1, 1.0)).observe(0.5)
        text = prometheus_exposition(registry)
        assert text.endswith("\n")
        metrics = _parse_exposition(text)
        assert metrics[("a_total", ('l="with\\"quote"',))] == 3.0
        # Histogram buckets are cumulative and capped by +Inf == count.
        assert metrics[("h_bucket", ('le="0.1"',))] == 0.0
        assert metrics[("h_bucket", ('le="1"',))] == 1.0
        assert metrics[("h_bucket", ('le="+Inf"',))] == 1.0
        assert metrics[("h_count", ())] == 1.0
        assert metrics[("h_sum", ())] == pytest.approx(0.5)

    def test_json_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", "C.", ("k",)).labels(k="v").inc()
        registry.histogram("h", "H.", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(json_snapshot(registry)))
        assert snapshot["c"]["samples"][0] == {
            "labels": {"k": "v"}, "value": 1.0
        }
        assert snapshot["h"]["samples"][0]["count"] == 1.0

    def test_registry_from_engine_and_result_to_json(self):
        result = _engine(None).run(_trace(), model="m")
        registry = registry_from_engine(result)
        text = prometheus_exposition(registry)
        metrics = _parse_exposition(text)
        assert metrics[("repro_requests_served_total", ())] == float(
            len(result.latencies)
        )
        assert metrics[
            ("repro_request_latency_seconds_count", ())
        ] == float(len(result.latencies))
        report = json.loads(json.dumps(result.to_json()))
        assert report["served"] == len(result.latencies)
        assert report["latency"]["count"] == float(len(result.latencies))


def _parse_exposition(text: str):
    """Minimal Prometheus text-format parser (asserts syntactic shape)."""
    metrics = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if line.startswith("#"):
                assert line.startswith("# HELP ") or line.startswith("# TYPE ")
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            name, rest = name_part.split("{", 1)
            assert rest.endswith("}")
            labels = tuple(rest[:-1].split(","))
        else:
            name, labels = name_part, ()
        metrics[(name, labels)] = float(value)
    return metrics


# ----------------------------------------------------------------------
# SLO burn-rate monitoring
# ----------------------------------------------------------------------
def _bus_with_window(window, *, served, met, drops=0, latencies=()):
    """Record one synthetic window of traffic onto a fresh-enough bus."""
    return _record_window(TelemetryBus(window=1.0), window, served=served,
                          met=met, drops=drops, latencies=latencies)


def _record_window(bus, window, *, served, met, drops=0, latencies=()):
    start = window * bus.window + 0.1
    record = BatchRecord(
        "m", start, start + 0.1, served, 0.5, "flexiq", 0, 0
    )
    bus.record_batch(
        record,
        latencies=np.asarray(latencies if len(latencies) else [0.01] * served),
        deadline_total=served,
        deadline_met=met,
    )
    if drops:
        bus.record_drops(start, drops, deadline_misses=drops)
    return bus


class TestSloMonitor:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloObjective("bad", target=1.0)
        with pytest.raises(ValueError):
            SloObjective("bad", target=0.99, kind="latency")
        with pytest.raises(ValueError):
            BurnRateRule(threshold=2.0, fast_windows=5, slow_windows=2)
        with pytest.raises(ValueError):
            SloMonitor(objectives=[])

    def test_attainment_burn_fires_and_is_edge_triggered(self):
        monitor = SloMonitor(
            objectives=[SloObjective("att", target=0.99)],
            rules=[BurnRateRule(threshold=5.0, fast_windows=1, slow_windows=2,
                                severity="page")],
        )
        bus = _bus_with_window(0, served=100, met=100)
        assert monitor.evaluate(bus, 0, [0]) == []
        # 20% misses = burn 20x >= 5 on fast AND slow panes.
        _record_window(bus, 1, served=100, met=80)
        fired = monitor.evaluate(bus, 1, [0])
        assert len(fired) == 1
        alert = fired[0]
        assert alert.objective == "att" and alert.severity == "page"
        assert alert.burn_fast == pytest.approx(20.0)
        assert alert.time == pytest.approx(2.0)  # window 1 boundary
        # Still burning: no re-fire while the alert is active.
        _record_window(bus, 2, served=100, met=80)
        assert monitor.evaluate(bus, 2, [0]) == []
        # Recovery clears the firing state...
        _record_window(bus, 3, served=100, met=100)
        assert monitor.evaluate(bus, 3, [0]) == []
        # ...so a fresh incident pages again.
        _record_window(bus, 4, served=100, met=70)
        assert len(monitor.evaluate(bus, 4, [0])) == 1
        assert len(monitor.alerts) == 2

    def test_latency_objective_counts_drops_as_violations(self):
        monitor = SloMonitor(
            objectives=[
                SloObjective("lat", target=0.9, kind="latency",
                             latency_slo_seconds=0.1),
            ],
            rules=[BurnRateRule(threshold=2.0, fast_windows=1, slow_windows=1,
                                severity="page")],
        )
        # 50 fast + 30 slow + 20 drops: error = 50/100 = 5x the 10% budget.
        bus = TelemetryBus(window=1.0)
        _record_window(
            bus, 0, served=80, met=80,
            latencies=[0.01] * 50 + [0.5] * 30, drops=20,
        )
        fired = monitor.evaluate(bus, 0, [0])
        assert len(fired) == 1
        assert fired[0].burn_fast == pytest.approx(5.0)

    def test_slow_pane_gates_single_window_spikes(self):
        monitor = SloMonitor(
            objectives=[SloObjective("att", target=0.99)],
            rules=[BurnRateRule(threshold=5.0, fast_windows=1, slow_windows=4,
                                severity="page")],
        )
        bus = TelemetryBus(window=1.0)
        # Three clean windows, then one bad one: fast pane burns 20x but
        # the slow pane dilutes to 5x-epsilon... make it clearly below.
        for window in range(3):
            _record_window(bus, window, served=100, met=100)
            monitor.evaluate(bus, window, [0])
        _record_window(bus, 3, served=100, met=99)  # 1% miss: burn 1x slow
        assert monitor.evaluate(bus, 3, [0]) == []

    def test_idle_windows_do_not_alert(self):
        monitor = SloMonitor(objectives=[SloObjective("att", target=0.99)])
        bus = TelemetryBus(window=1.0)
        assert monitor.evaluate(bus, 0, [0]) == []

    def test_cluster_run_places_alerts_on_timeline(self):
        specs = [
            ServerSpec(name=f"g{i}", speed=1000.0,
                       executor=ModeledExecutor(ServiceTimeModel()))
            for i in range(2)
        ]
        monitor = SloMonitor(
            objectives=[SloObjective("att", target=0.99)],
            rules=[BurnRateRule(threshold=2.0, fast_windows=1, slow_windows=2,
                                severity="page")],
        )
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            fault_schedule=FaultSchedule(
                [FaultEvent(time=0.8, server=0, kind="crash")]
            ),
            window=0.5,
            slo_monitor=monitor,
        )
        cluster.register("m", mode="int8")
        trace = _trace(rate=800, duration=3.0, seed=11)
        requests = requests_from_trace(trace, model="m", deadlines=[0.05])
        outcome = cluster.run(requests=requests)
        assert outcome.alert_events, "the crash must torch the 0.05s budget"
        timeline_alerts = [
            event for event in outcome.timeline()
            if hasattr(event, "objective")
        ]
        assert timeline_alerts == outcome.alert_events
        times = [event.time for event in outcome.timeline()]
        assert times == sorted(times)
        report = json.loads(json.dumps(outcome.to_json()))
        assert report["alert_events"]
        registry = registry_from_cluster(outcome)
        metrics = _parse_exposition(prometheus_exposition(registry))
        assert metrics[(
            "repro_slo_alerts_total",
            ('objective="att"', 'severity="page"'),
        )] >= 1.0

    def test_autoscaler_consumes_alert_signal(self):
        from repro.serving.cluster import PredictiveFaultAutoscaler

        scaler = PredictiveFaultAutoscaler(slo_seconds=1.0)
        monitor = SloMonitor(
            objectives=[SloObjective("att", target=0.99)],
            rules=[BurnRateRule(threshold=2.0, fast_windows=1, slow_windows=1,
                                severity="page")],
        )
        bus = _bus_with_window(0, served=100, met=50)
        alerts = monitor.evaluate(bus, 0, [0])
        assert alerts
        scaler.observe_alerts(alerts)
        stats = bus.cluster_window(0, [0])
        decided = scaler.decide(stats, active=2)
        assert decided == 3
        assert "burn-rate" in scaler.last_reason
        # The signal is consumed: the next window decides normally.
        assert scaler.decide(stats, active=2) != 3 or not scaler.last_reason


# ----------------------------------------------------------------------
# Satellite: telemetry timeline cache vs rewind paths
# ----------------------------------------------------------------------
class TestTimelineCacheInvalidation:
    def test_rewinds_never_stale_the_cached_timeline(self):
        bus = TelemetryBus(window=1.0, num_servers=2)
        record = BatchRecord("m", 0.5, 0.7, 4, 0.5, "flexiq", 0, 3)
        bus.record_batch(record, latencies=np.asarray([0.1] * 4))
        bus.record_tokens(0, 0.5, 16, ttfts=[0.05])
        bus.record_scale_event(
            ScaleEvent(time=1.0, action="add", server=1, active_after=2)
        )
        bus.record_fault_event(FaultEvent(time=0.4, server=0, kind="crash"))
        first = bus.timeline()  # build + cache the sorted view
        assert [e.time for e in first] == [0.4, 1.0]
        # Rewinds (the preemption paths) touch cells only; the cached
        # timeline must remain correct — and identical — afterwards.
        bus.unrecord_batch(record, latencies=np.asarray([0.1] * 4))
        bus.unrecord_tokens(0, 0.5, 16, ttfts=[0.05])
        assert bus.timeline() == first
        stats = bus.server_window(0, 0)
        assert stats.served == 0 and stats.tokens == 0

    def test_every_event_kind_invalidates_the_cache(self):
        from repro.obs import AlertEvent

        bus = TelemetryBus(window=1.0)
        bus.record_scale_event(
            ScaleEvent(time=2.0, action="add", server=0, active_after=1)
        )
        assert [e.time for e in bus.timeline()] == [2.0]
        # Each appender must drop the cache: earlier-timed events landing
        # after a cached sort must still come back first.
        bus.record_fault_event(FaultEvent(time=1.0, server=0, kind="crash"))
        assert [e.time for e in bus.timeline()] == [1.0, 2.0]
        bus.record_alert_event(
            AlertEvent(time=0.5, objective="att", severity="page",
                       burn_fast=10.0, burn_slow=10.0, threshold=2.0,
                       window=0)
        )
        assert [e.time for e in bus.timeline()] == [0.5, 1.0, 2.0]
        assert len(bus.alert_events) == 1
        bus.reset()
        assert bus.timeline() == [] and bus.alert_events == []

    def test_timeline_correct_after_engine_preemption(self):
        # End-to-end regression: preempt mid-run (rewinds fire), then
        # record another event; the merged timeline stays sorted and
        # complete.
        bus = TelemetryBus(window=0.25, num_servers=2)
        engine = ServingEngine(
            BatchingConfig(max_batch=8), num_servers=2, telemetry=bus,
            columnar=False,
        )
        engine.register(
            "m", ModeledExecutor(ServiceTimeModel()),
            policy=FixedRatioPolicy(0.5),
        )
        engine.start(trace=_trace(rate=300, duration=1.0), model="m")
        bus.record_fault_event(FaultEvent(time=0.3, server=0, kind="crash"))
        cached = bus.timeline()
        while True:
            record = engine.step()
            if record is None or record.start > 0.3:
                break
        engine.preempt_server(
            0, 0.3, policy=RequeueAtHeadMigration(delay=0.01)
        )
        assert bus.timeline() == cached
        bus.record_fault_event(FaultEvent(time=0.5, server=0, kind="recover"))
        engine.finish()
        times = [event.time for event in bus.timeline()]
        assert times == [0.3, 0.5]


# ----------------------------------------------------------------------
# Satellite: summarize_latencies / streaming_percentile canonical edges
# ----------------------------------------------------------------------
class TestMetricsEdgeCases:
    def test_empty_inputs_agree_across_representations(self):
        # Array, list and empty reservoir digest: nan percentiles, count 0.
        for empty in ([], np.zeros(0), ReservoirSample(8)):
            assert np.isnan(streaming_percentile(empty, 99))
            summary = summarize_latencies(empty)
            assert summary["count"] == 0.0
            for key in ("median", "p90", "p99", "mean", "max"):
                assert np.isnan(summary[key])
        # Empty P2 digest: nan from streaming_percentile too.
        assert np.isnan(streaming_percentile(P2Quantile(0.99), 99))

    def test_digest_summary_matches_exact_on_small_samples(self):
        values = [0.01, 0.02, 0.03, 0.04, 0.05]
        digest = ReservoirSample(64)
        digest.extend(np.asarray(values))
        exact = summarize_latencies(values)
        approx = summarize_latencies(digest)
        assert approx == pytest.approx(exact)

    def test_digest_count_reflects_observed_not_retained(self):
        digest = ReservoirSample(4, seed=1)
        digest.extend(np.linspace(0.0, 1.0, 100))
        summary = summarize_latencies(digest)
        assert summary["count"] == 100.0
        assert len(digest.values) == 4

    def test_p2_digest_summary_is_a_type_error(self):
        digest = P2Quantile(0.99)
        digest.add(0.5)
        with pytest.raises(TypeError):
            summarize_latencies(digest)
        # ...but streaming_percentile answers its tracked quantile,
        assert streaming_percentile(digest, 99) == pytest.approx(0.5)
        # and refuses any other.
        with pytest.raises(ValueError):
            streaming_percentile(digest, 50)

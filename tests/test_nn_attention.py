"""Tests for attention primitives and transformer blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import (
    MLP,
    MultiHeadAttention,
    SwinBlock,
    TransformerBlock,
    WindowAttention,
    _roll,
)
from repro.nn.llm import causal_mask
from repro.tensor import Tensor, no_grad


def tokens(batch=2, length=8, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(batch, length, dim)).astype(np.float32))


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        assert attn(tokens()).shape == (2, 8, 16)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_separate_qkv_projections(self):
        attn = MultiHeadAttention(16, 2, rng=np.random.default_rng(0))
        names = [name for name, _ in attn.named_modules()]
        assert {"q_proj", "k_proj", "v_proj", "out_proj"}.issubset(set(names))

    def test_causal_mask_blocks_future(self):
        """With a causal mask, output at position t must not depend on tokens > t."""
        attn = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = tokens(batch=1, length=6, dim=8, seed=1)
        mask = causal_mask(6)
        with no_grad():
            base = attn(x, mask=mask).data.copy()
            perturbed_tokens = x.data.copy()
            perturbed_tokens[0, 5] += 10.0  # change only the last token
            perturbed = attn(Tensor(perturbed_tokens), mask=mask).data
        np.testing.assert_allclose(base[0, :5], perturbed[0, :5], atol=1e-5)
        assert not np.allclose(base[0, 5], perturbed[0, 5])

    def test_gradients_flow(self):
        attn = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = tokens(dim=8)
        attn(x).sum().backward()
        assert attn.q_proj.weight.grad is not None


class TestBlocks:
    def test_mlp_shape(self):
        mlp = MLP(16, 32, rng=np.random.default_rng(0))
        assert mlp(tokens()).shape == (2, 8, 16)

    def test_transformer_block_residual(self):
        block = TransformerBlock(16, 4, rng=np.random.default_rng(0))
        block.eval()
        out = block(tokens())
        assert out.shape == (2, 8, 16)

    def test_swin_block_runs(self):
        block = SwinBlock(8, 2, window=2, shift=True, rng=np.random.default_rng(0))
        x = tokens(batch=1, length=16, dim=8)
        assert block(x, grid_size=4).shape == (1, 16, 8)


class TestWindowAttention:
    def test_requires_square_grid(self):
        attn = WindowAttention(8, 2, window=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            attn(tokens(length=10, dim=8), grid_size=3)

    def test_requires_divisible_window(self):
        attn = WindowAttention(8, 2, window=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            attn(tokens(length=16, dim=8), grid_size=4)

    def test_window_locality(self):
        """Without shift, a token is unaffected by changes outside its window."""
        attn = WindowAttention(8, 2, window=2, shift=0, rng=np.random.default_rng(0))
        x = tokens(batch=1, length=16, dim=8, seed=2)
        with no_grad():
            base = attn(x, grid_size=4).data.copy()
            perturbed = x.data.copy()
            perturbed[0, 15] += 5.0  # bottom-right corner, different window from token 0
            out = attn(Tensor(perturbed), grid_size=4).data
        np.testing.assert_allclose(base[0, 0], out[0, 0], atol=1e-5)

    def test_shifted_windows_mix_across_window_boundary(self):
        attn = WindowAttention(8, 2, window=2, shift=1, rng=np.random.default_rng(0))
        x = tokens(batch=1, length=16, dim=8, seed=3)
        with no_grad():
            base = attn(x, grid_size=4).data.copy()
            perturbed = x.data.copy()
            perturbed[0, 5] += 5.0
            out = attn(Tensor(perturbed), grid_size=4).data
        # Some token outside the unshifted window of (1,1) must change too.
        assert not np.allclose(base, out)

    def test_roll_grad_is_inverse_roll(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1), requires_grad=True)
        rolled = _roll(x, 1, 0)
        grad = np.zeros((1, 4, 4, 1), dtype=np.float32)
        grad[0, 0, 0, 0] = 1.0
        rolled.backward(grad)
        assert x.grad[0, 3, 0, 0] == 1.0
        assert x.grad.sum() == 1.0

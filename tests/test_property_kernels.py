"""Property-based tests tying the runtime layers, kernels and selection together."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bit_extraction import extraction_shift
from repro.core.layout import ChannelLayout, build_layout_plan
from repro.core.selection import SelectionConfig, greedy_selection, random_selection
from repro.hardware.kernels import (
    MixedPrecisionGemm,
    mixed_gemm_reference,
    uniform_gemm_reference,
)
from tests.test_core_selection import make_scores


def random_operands(seed, rows, out, channels):
    rng = np.random.default_rng(seed)
    channel_max = rng.integers(1, 128, size=channels)
    q_x = np.stack([rng.integers(-m, m + 1, size=rows) for m in channel_max], axis=1)
    q_w = np.stack([rng.integers(-m, m + 1, size=out) for m in channel_max], axis=1)
    return q_x, q_w, channel_max


class TestMixedGemmProperties:
    @given(
        seed=st.integers(0, 5000),
        rows=st.integers(1, 8),
        out=st.integers(1, 8),
        groups=st.integers(1, 6),
        boundary_groups=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_kernel_matches_reference(self, seed, rows, out, groups, boundary_groups):
        """For group-uniform shifts the grouped hardware kernel and the flat
        reference formulation agree exactly, for any boundary position."""
        group_size = 4
        channels = groups * group_size
        boundary = min(boundary_groups, groups) * group_size
        q_x, q_w, channel_max = random_operands(seed, rows, out, channels)
        shifts = extraction_shift(channel_max, 8, 4)
        group_shifts = shifts.reshape(-1, group_size).max(axis=1).repeat(group_size)

        kernel = MixedPrecisionGemm(group_size=group_size)
        acc = kernel(q_x, q_w, boundary, group_shifts, group_shifts)
        reference = mixed_gemm_reference(q_x, q_w, boundary, group_shifts, group_shifts)
        np.testing.assert_array_equal(acc, reference)

    @given(seed=st.integers(0, 5000), rows=st.integers(1, 6), out=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_boundary_zero_is_exact_int8(self, seed, rows, out):
        q_x, q_w, channel_max = random_operands(seed, rows, out, 16)
        shifts = extraction_shift(channel_max, 8, 4)
        acc = mixed_gemm_reference(q_x, q_w, 0, shifts, shifts)
        np.testing.assert_array_equal(acc, uniform_gemm_reference(q_x, q_w, 8))

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_mixed_error_bounded_by_extraction_step(self, seed):
        """The deviation of the mixed result from exact INT8 is bounded by the
        worst-case per-channel rounding error times the operand magnitudes."""
        rows, out, channels = 4, 4, 32
        q_x, q_w, channel_max = random_operands(seed, rows, out, channels)
        shifts = extraction_shift(channel_max, 8, 4)
        exact = uniform_gemm_reference(q_x, q_w, 8)
        mixed = mixed_gemm_reference(q_x, q_w, channels, shifts, shifts)
        # Each channel contributes at most (err_x*|w| + err_w*|x| + err_x*err_w)
        # where err <= 2**shift / 2 per operand.
        step = np.power(2.0, shifts) / 2.0
        bound = np.zeros((rows, out))
        for c in range(channels):
            bound += (
                step[c] * np.abs(q_w[:, c])[None, :]
                + step[c] * np.abs(q_x[:, c])[:, None]
                + step[c] ** 2
            )
        assert (np.abs(exact - mixed) <= bound + 1e-6).all()


class TestSelectionLayoutProperties:
    @given(seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_layout_prefix_property_for_random_nested_selections(self, seed):
        """For any nested chain of selections, the layout order puts exactly the
        ratio-r channels in the first boundary(r) positions."""
        scores = make_scores({"a": 16, "b": 24}, seed=seed)
        config = SelectionConfig(group_size=4)
        selections = {}
        base = None
        for ratio in (0.25, 0.5, 1.0):
            base = (
                greedy_selection(scores, ratio, config, base=base)
                if seed % 2
                else random_selection(scores, ratio, config, base=base, seed=seed)
            )
            selections[ratio] = base
        plan = build_layout_plan(selections)
        for name in ("a", "b"):
            layout = plan.layout_for(name)
            assert sorted(layout.order.tolist()) == list(range(layout.num_channels))
            for ratio, selection in selections.items():
                prefix = set(layout.order[: layout.boundaries[ratio]].tolist())
                assert prefix == set(np.nonzero(selection.channel_mask(name))[0].tolist())

    @given(seed=st.integers(0, 2000), ratio=st.sampled_from([0.25, 0.5, 0.75]))
    @settings(max_examples=25, deadline=None)
    def test_boundary_for_never_exceeds_configured(self, seed, ratio):
        scores = make_scores({"a": 16}, seed=seed)
        selection = greedy_selection(scores, ratio, SelectionConfig(group_size=4))
        plan = build_layout_plan({ratio: selection})
        layout = plan.layout_for("a")
        assert layout.boundary_for(ratio - 0.01) <= layout.boundaries[ratio]
        assert layout.boundary_for(1.0) == layout.boundaries[ratio]
        assert layout.boundary_for(0.0) == 0

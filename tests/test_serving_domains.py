"""Tests for the failure-domain layer (ISSUE 6).

Covers the pieces the zone-outage tentpole is built from:

* **Topology** — zone/rack identity on `ServerSpec`, the `ClusterTopology`
  domain map, domain-scoped `FaultEvent`s and `FaultSchedule.expand`.
* **Schedule validation** — duplicate / same-instant / recover-never-failed
  scripts fail loudly instead of silently mis-applying.
* **Spread placement** — `SpreadPlacer` steers batches toward the
  least-backlogged domain and honours `max_domain_share`.
* **Warm spares** — `WarmSparePool` promotion on crash (no provisioning
  lag), demotion on recovery, reserve protected from ordinary scale-up.
* **Domain-aware autoscaling** — `min_domains` floors on scale-down,
  under-represented domains preferred on scale-up.
* **Predictive fault-aware autoscaling** — `PredictiveFaultAutoscaler`
  scales on a served-per-busy-second collapse before the SLO breaks.
* **Checkpointing** — `StepCheckpoint` fractions, migrants resuming with
  residual demand, fresh riders paying the full batch.
* **Timeline edge cases** — deterministic merged ordering of scale and
  fault events, trailing faults in the final window,
  `summarize_migrations` on empty/None inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    BatchExecution,
    BatchingConfig,
    ClusterEngine,
    ClusterTopology,
    FaultEvent,
    FaultSchedule,
    FreeClockPlacer,
    PlacementContext,
    PredictiveFaultAutoscaler,
    QueueDepthAutoscaler,
    Request,
    RequeueAtHeadMigration,
    ScaleEvent,
    ServerSpec,
    ServingEngine,
    SloLatencyAutoscaler,
    SpreadPlacer,
    StepCheckpoint,
    TelemetryBus,
    WarmSparePool,
    gpu_server,
    requests_from_trace,
    summarize_migrations,
)
from repro.data.traces import PoissonTrace


class FixedExecutor:
    """Deterministic executor: every batch takes exactly ``seconds``."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)

    def execute(self, batch, mode, ratio):
        return BatchExecution(service_time=self.seconds)


def fixed_spec(name, speed=1000.0, seconds=0.01, zone="", rack=""):
    return ServerSpec(
        name=name,
        speed=speed,
        executor=FixedExecutor(seconds),
        zone=zone,
        rack=rack,
    )


def conserve(result, admitted: int) -> None:
    served = result.latencies.size
    assert served + result.dropped == admitted
    assert sum(record.size for record in result.batch_records) == served
    if result.responses is not None:
        assert len(result.responses) == admitted
        assert all(response is not None for response in result.responses)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
class TestClusterTopology:
    def test_from_specs_and_domain_precedence(self):
        specs = [
            fixed_spec("a0", zone="A", rack="r1"),
            fixed_spec("a1", zone="A", rack="r2"),
            fixed_spec("b0", rack="r3"),
            fixed_spec("c0"),
        ]
        topology = ClusterTopology.from_specs(specs)
        assert topology.num_servers == 4
        # Zone dominates rack dominates the server-is-its-own-island default.
        assert topology.domain_of(0) == "zone:A"
        assert topology.domain_of(2) == "rack:r3"
        assert topology.domain_of(3) == "server:3"
        assert topology.zones == {"A": [0, 1]}
        assert topology.racks == {"r1": [0], "r2": [1], "r3": [2]}
        assert topology.domains == {
            "zone:A": [0, 1],
            "rack:r3": [2],
            "server:3": [3],
        }
        assert topology.num_domains == 3
        assert topology.servers_in_zone("A") == [0, 1]
        assert topology.servers_in_rack("r3") == [2]
        assert topology.servers_in_zone("nope") == []

    def test_mismatched_maps_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology(zone_by_server=("a",), rack_by_server=())

    def test_gpu_server_carries_domain_identity(self):
        spec = gpu_server("g", "vit_base", gpu="a6000", zone="eu-1", rack="r7")
        assert (spec.zone, spec.rack) == ("eu-1", "r7")


# ----------------------------------------------------------------------
# Domain-scoped fault events + schedule validation (satellite)
# ----------------------------------------------------------------------
class TestDomainFaultEvents:
    def test_domain_event_validation(self):
        event = FaultEvent(time=1.0, kind="zone_outage", zone="A")
        assert event.server == -1
        with pytest.raises(ValueError):  # domain kind needs its domain name
            FaultEvent(time=1.0, kind="zone_outage")
        with pytest.raises(ValueError):  # wrong scope named
            FaultEvent(time=1.0, kind="zone_outage", rack="r1")
        with pytest.raises(ValueError):  # domain kinds never name a server
            FaultEvent(time=1.0, server=0, kind="zone_outage", zone="A")
        with pytest.raises(ValueError):  # server kinds never name a domain
            FaultEvent(time=1.0, server=0, kind="crash", zone="A")
        with pytest.raises(ValueError):  # slowdown factor applies to domains too
            FaultEvent(time=1.0, kind="rack_slowdown", rack="r1", factor=0.5)

    def test_expand_resolves_domains_and_tags(self):
        topology = ClusterTopology(
            zone_by_server=("A", "A", "B"), rack_by_server=("", "", "")
        )
        schedule = FaultSchedule.zone_outage("A", at=2.0, recover_at=4.0)
        assert schedule.has_domain_events
        assert schedule.servers == []
        expanded = schedule.expand(topology)
        assert not expanded.has_domain_events
        assert [(e.time, e.server, e.kind, e.domain) for e in expanded] == [
            (2.0, 0, "crash", "zone:A"),
            (2.0, 1, "crash", "zone:A"),
            (4.0, 0, "recover", "zone:A"),
            (4.0, 1, "recover", "zone:A"),
        ]

    def test_expand_rejects_unknown_domain(self):
        topology = ClusterTopology(
            zone_by_server=("A",), rack_by_server=("",)
        )
        with pytest.raises(ValueError, match="no server"):
            FaultSchedule.zone_outage("Z", at=1.0).expand(topology)

    def test_expand_recheck_catches_recover_without_outage(self):
        """The recover check is deferred for domain scripts — and enforced
        once expansion makes the per-server script explicit."""
        topology = ClusterTopology(
            zone_by_server=("A",), rack_by_server=("",)
        )
        schedule = FaultSchedule([FaultEvent(time=1.0, kind="zone_recover", zone="A")])
        with pytest.raises(ValueError, match="recover"):
            schedule.expand(topology)

    def test_rack_slowdown_classmethod(self):
        schedule = FaultSchedule.rack_slowdown("r1", at=1.0, factor=4.0, recover_at=2.0)
        assert [e.kind for e in schedule] == ["rack_slowdown", "rack_recover"]
        with pytest.raises(ValueError):
            FaultSchedule.rack_slowdown("r1", at=2.0, factor=4.0, recover_at=1.0)


class TestScheduleValidation:
    def test_duplicate_events_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultSchedule(
                [
                    FaultEvent(time=1.0, server=0, kind="crash"),
                    FaultEvent(time=1.0, server=0, kind="crash"),
                ]
            )

    def test_same_instant_events_on_one_server_rejected(self):
        with pytest.raises(ValueError, match="same-instant"):
            FaultSchedule(
                [
                    FaultEvent(time=1.0, server=0, kind="crash"),
                    FaultEvent(time=1.0, server=0, kind="recover"),
                ]
            )

    def test_recover_for_healthy_server_rejected(self):
        with pytest.raises(ValueError, match="typo"):
            FaultSchedule([FaultEvent(time=1.0, server=3, kind="recover")])
        # A recover after a slowdown (not just a crash) is legitimate.
        FaultSchedule(
            [
                FaultEvent(time=1.0, server=0, kind="slowdown", factor=2.0),
                FaultEvent(time=2.0, server=0, kind="recover"),
            ]
        )

    def test_unsorted_input_is_sorted_deterministically(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=2.0, server=1, kind="crash"),
                FaultEvent(time=1.0, server=1, kind="crash"),
                FaultEvent(time=1.0, server=0, kind="crash"),
                FaultEvent(time=3.0, server=0, kind="recover"),
                FaultEvent(time=3.0, server=1, kind="recover"),
            ]
        )
        assert [(e.time, e.server) for e in schedule] == [
            (1.0, 0),
            (1.0, 1),
            (2.0, 1),
            (3.0, 0),
            (3.0, 1),
        ]


# ----------------------------------------------------------------------
# Spread placement
# ----------------------------------------------------------------------
class TestSpreadPlacer:
    topology = ClusterTopology(
        zone_by_server=("A", "A", "B", "B"), rack_by_server=("", "", "", "")
    )

    def test_picks_least_backlogged_domain(self):
        placer = SpreadPlacer(self.topology)
        # Zone A backlogged 1.0s/server, zone B 0.1s/server.
        context = PlacementContext(
            time=0.0, free_at=[1.0, 1.0, 0.1, 0.2], active=[0, 1, 2, 3]
        )
        assert placer.place(context) == 2
        # Flip the pressure and the choice follows.
        context = PlacementContext(
            time=0.0, free_at=[0.0, 0.1, 2.0, 2.0], active=[0, 1, 2, 3]
        )
        assert placer.place(context) == 0

    def test_single_domain_delegates_to_within(self):
        placer = SpreadPlacer(self.topology, within=FreeClockPlacer())
        context = PlacementContext(time=0.0, free_at=[0.5, 0.2, 9.0, 9.0], active=[0, 1])
        assert placer.place(context) == 1

    def test_max_domain_share_excludes_concentrated_domain(self):
        placer = SpreadPlacer(self.topology, max_domain_share=0.6)
        # Zone B holds ~89% of total backlog; even though a B server is the
        # earliest-free (server 3 at 0.05), the bound forces zone A.
        context = PlacementContext(
            time=0.0, free_at=[0.5, 0.6, 8.0, 0.05], active=[0, 1, 2, 3]
        )
        assert placer.place(context) == 0
        # The bound is waived rather than stalling when nothing qualifies.
        tight = SpreadPlacer(self.topology, max_domain_share=0.05)
        assert tight.place(context) in (0, 1, 2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpreadPlacer(self.topology, max_domain_share=0.0)
        with pytest.raises(ValueError):
            SpreadPlacer(self.topology, max_domain_share=1.5)

    def test_named_spread_placer_resolves(self):
        specs = [fixed_spec(f"s{i}", zone="AB"[i % 2]) for i in range(4)]
        cluster = ClusterEngine(specs, placer="spread")
        assert isinstance(cluster.engine.placer, SpreadPlacer)
        helper = cluster.spread_placer(within="least_work", max_domain_share=0.9)
        assert isinstance(helper, SpreadPlacer)
        assert helper.max_domain_share == 0.9

    def test_spread_keeps_zones_balanced(self):
        """Under spread placement neither zone swallows the whole stream."""
        specs = [fixed_spec(f"s{i}", zone="AB"[i // 2]) for i in range(4)]
        cluster = ClusterEngine(specs, BatchingConfig(max_batch=8), placer="spread")
        cluster.register("m", mode="int8")
        trace = PoissonTrace(2000, duration=1.0, seed=3).generate()
        result = cluster.run(trace=trace)
        by_zone = {"A": 0, "B": 0}
        for record in result.result.batch_records:
            by_zone["AB"[record.server // 2]] += record.size
        total = sum(by_zone.values())
        assert total == result.latencies.size
        assert min(by_zone.values()) > 0.3 * total


# ----------------------------------------------------------------------
# Warm spares
# ----------------------------------------------------------------------
class TestWarmSpares:
    def test_pool_validation(self):
        with pytest.raises(ValueError):
            WarmSparePool([])
        with pytest.raises(ValueError):
            WarmSparePool([1, 1])
        with pytest.raises(ValueError):
            WarmSparePool([-1])
        with pytest.raises(ValueError):
            WarmSparePool([1], promotion_latency=-0.1)
        assert WarmSparePool([3, 1]).spares == (1, 3)

    def test_cluster_rejects_bad_pools(self):
        specs = [fixed_spec("a"), fixed_spec("b")]
        with pytest.raises(ValueError, match="names server"):
            ClusterEngine(specs, warm_spares=WarmSparePool([5]))
        with pytest.raises(ValueError, match="every server"):
            ClusterEngine(specs, warm_spares=WarmSparePool([0, 1]))

    def _run(self, promotion_latency=0.05, recover_at=None):
        specs = [
            fixed_spec("g0", zone="A"),
            fixed_spec("g1", zone="B"),
            fixed_spec("s2", zone="C"),
        ]
        schedule = FaultSchedule.single_crash(0, at=0.5, recover_at=recover_at)
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            warm_spares=WarmSparePool([2], promotion_latency=promotion_latency),
            fault_schedule=schedule,
            migration=RequeueAtHeadMigration(delay=0.001),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(1200, duration=2.0, seed=9).generate()
        return cluster.run(trace=trace)

    def test_crash_promotes_spare_without_provisioning_lag(self):
        outcome = self._run(promotion_latency=0.05)
        promotions = outcome.promotions
        assert len(promotions) == 1
        event = promotions[0]
        assert event.server == 2
        assert event.action == "promote"
        assert "zone:A" in event.reason
        # Promotion happens at the same boundary the crash is applied at:
        # the spare is serviceable promotion_latency later, not
        # startup_delay later.
        boundary = 0.75  # crash at 0.5, window 0.25
        assert event.time == pytest.approx(boundary)
        served_on_spare = [
            r for r in outcome.result.batch_records if r.server == 2
        ]
        assert served_on_spare
        assert min(r.start for r in served_on_spare) >= boundary + 0.05
        assert min(r.start for r in served_on_spare) < boundary + 0.25
        conserve(outcome.result, outcome.result.request_latencies.size)

    def test_recovery_demotes_the_spare(self):
        outcome = self._run(recover_at=1.0)
        actions = [e.action for e in outcome.scale_events]
        assert actions.count("promote") == 1
        assert actions.count("demote") == 1
        demote = [e for e in outcome.scale_events if e.action == "demote"][0]
        assert demote.server == 2
        conserve(outcome.result, outcome.result.request_latencies.size)

    def test_spares_start_parked_and_reserved_from_autoscaling(self):
        """Ordinary scale-up never eats the crash budget."""
        specs = [fixed_spec(f"g{i}", zone="AB"[i % 2]) for i in range(2)] + [
            fixed_spec("s2", zone="C")
        ]
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=4),
            autoscaler=QueueDepthAutoscaler(scale_up_depth=1.0, scale_down_depth=0.0),
            min_servers=1,
            initial_servers=1,
            warm_spares=WarmSparePool([2]),
            window=0.1,
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(3000, duration=1.0, seed=4).generate()
        outcome = cluster.run(trace=trace)
        added = [e.server for e in outcome.scale_events if e.action == "add"]
        assert added  # the overload really scaled the cluster up
        assert 2 not in added
        assert outcome.initial_active == 1

    def test_without_autoscaler_primaries_active_spares_parked(self):
        specs = [fixed_spec("g0"), fixed_spec("s1")]
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            warm_spares=WarmSparePool([1]),
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(500, duration=0.5, seed=2).generate()
        outcome = cluster.run(trace=trace)
        assert outcome.initial_active == 1
        assert all(r.server == 0 for r in outcome.result.batch_records)


# ----------------------------------------------------------------------
# Domain-aware autoscaling
# ----------------------------------------------------------------------
class TestDomainAwareAutoscaling:
    def _cluster(self, min_domains, specs, **kwargs):
        return ClusterEngine(
            specs,
            BatchingConfig(max_batch=4),
            autoscaler=kwargs.pop(
                "autoscaler",
                QueueDepthAutoscaler(scale_up_depth=1.0, scale_down_depth=0.0),
            ),
            min_domains=min_domains,
            window=0.1,
            **kwargs,
        )

    def test_min_domains_validation(self):
        with pytest.raises(ValueError):
            ClusterEngine([fixed_spec("a")], min_domains=0)

    def test_scale_up_prefers_under_represented_domain(self):
        # Parked: s1 (zone A, fast) and s2 (zone B, slow).  Speed order
        # says s1; domain diversity says s2.
        specs = [
            fixed_spec("a0", speed=100.0, zone="A"),
            fixed_spec("a1", speed=90.0, zone="A"),
            fixed_spec("b0", speed=10.0, zone="B"),
        ]
        trace = PoissonTrace(3000, duration=0.6, seed=4).generate()

        def first_added(min_domains):
            cluster = self._cluster(
                min_domains, specs, min_servers=1, initial_servers=1
            )
            cluster.register("m", mode="int8")
            outcome = cluster.run(trace=trace)
            added = [e.server for e in outcome.scale_events if e.action == "add"]
            assert added
            return added[0]

        assert first_added(None) == 1       # fastest-first, the old rule
        assert first_added(2) == 2          # diversity-first

    def test_scale_down_keeps_min_domains(self):
        # Idle load drives the autoscaler all the way down; min_domains=2
        # must stop it from concentrating into one zone.
        specs = [
            fixed_spec("a0", speed=100.0, zone="A"),
            fixed_spec("a1", speed=90.0, zone="A"),
            fixed_spec("b0", speed=10.0, zone="B"),
        ]
        cluster = self._cluster(
            2,
            specs,
            min_servers=1,
            initial_servers=3,
            autoscaler=QueueDepthAutoscaler(
                scale_up_depth=1e9, scale_down_depth=1e9, patience=1
            ),
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(200, duration=1.0, seed=1).generate()
        outcome = cluster.run(trace=trace)
        active = set(range(3))
        for event in outcome.scale_events:
            if event.action == "remove":
                active.discard(event.server)
            elif event.action in ("add", "promote"):
                active.add(event.server)
            domains = {cluster.topology.domain_of(s) for s in active}
            assert len(domains) >= 2
        assert len(active) == 2  # it still scaled down as far as allowed


# ----------------------------------------------------------------------
# Predictive fault-aware autoscaling
# ----------------------------------------------------------------------
class TestPredictiveFaultAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveFaultAutoscaler(slo_seconds=0.0)
        with pytest.raises(ValueError):
            PredictiveFaultAutoscaler(slo_seconds=1.0, collapse_ratio=1.0)
        with pytest.raises(ValueError):
            PredictiveFaultAutoscaler(slo_seconds=1.0, alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveFaultAutoscaler(slo_seconds=1.0, patience=0)

    def test_without_telemetry_behaves_reactively(self):
        scaler = PredictiveFaultAutoscaler(slo_seconds=1.0)
        bus = TelemetryBus(window=1.0, num_servers=1)
        stats = bus.cluster_window(0)
        assert scaler.decide(stats, 2) == 2  # no latencies, no drops: hold

    def test_scales_up_before_the_slo_breaks(self):
        """The tentpole property: a slowdown fault triggers the predictive
        scale-up at least one window before the reactive SLO autoscaler
        moves (served-per-busy-second collapses immediately; the p99 only
        breaches once the backlog has already built)."""
        specs = [fixed_spec(f"g{i}", seconds=0.004) for i in range(3)]
        trace = PoissonTrace(1500, duration=4.0, seed=11).generate()
        requests = requests_from_trace(trace, model="m", deadlines=[0.8])
        faults = FaultSchedule(
            [FaultEvent(time=1.0, server=0, kind="slowdown", factor=40.0)]
        )

        def first_add(autoscaler):
            cluster = ClusterEngine(
                [fixed_spec(f"g{i}", seconds=0.004, zone="Z") for i in range(3)]
                + [fixed_spec("spare", seconds=0.004)],
                BatchingConfig(max_batch=8),
                autoscaler=autoscaler,
                min_servers=3,
                initial_servers=3,
                fault_schedule=faults,
                window=0.25,
            )
            cluster.register("m", mode="int8")
            outcome = cluster.run(requests=requests)
            adds = [e for e in outcome.scale_events if e.action == "add"]
            return adds[0] if adds else None

        predictive = first_add(PredictiveFaultAutoscaler(slo_seconds=0.8))
        reactive = first_add(SloLatencyAutoscaler(slo_seconds=0.8))
        assert predictive is not None
        assert "predicted degradation" in predictive.reason
        if reactive is not None:
            assert predictive.time < reactive.time
        del specs  # noqa: F841 - documents the shared shape

    def test_reset_clears_forecasts(self):
        scaler = PredictiveFaultAutoscaler(slo_seconds=1.0)
        scaler._ewma[0] = 100.0
        scaler.last_reason = "x"
        scaler.reset()
        assert scaler._ewma == {}
        assert scaler.last_reason == ""


# ----------------------------------------------------------------------
# Partial-batch checkpointing
# ----------------------------------------------------------------------
class TestCheckpointing:
    def test_step_checkpoint_fractions(self):
        policy = StepCheckpoint(steps=4)

        class R:
            start, finish = 0.0, 1.0

        assert policy.completed_fraction(R, 0.1) == 0.0     # before first step
        assert policy.completed_fraction(R, 0.6) == 0.5     # crossed 2 of 4
        assert policy.completed_fraction(R, 5.0) == 0.75    # capped below 1
        assert policy.completed_fraction(R, -1.0) == 0.0
        assert StepCheckpoint(steps=1).completed_fraction(R, 0.9) == 0.0
        with pytest.raises(ValueError):
            StepCheckpoint(steps=0)

    def _preempt(self, checkpoint, kill_at=0.5):
        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i)
                for i in range(4)
            ]
        )
        engine.step()
        engine.preempt_server(
            0,
            kill_at,
            policy=RequeueAtHeadMigration(),
            kill_running=True,
            checkpoint=checkpoint,
        )
        engine.set_active_servers([1])
        return engine.finish()

    def test_migrants_resume_with_residual_demand(self):
        # Killed at 0.5 of a 1.0s batch with 4 steps: 2 checkpoints crossed,
        # the cohort resumes with 0.5 residual -> a 0.5s re-execution.
        fresh = self._preempt(None)
        resumed = self._preempt(StepCheckpoint(steps=4))
        conserve(fresh, 4)
        conserve(resumed, 4)
        assert fresh.latencies.max() == pytest.approx(1.5)   # 0.5 + full 1.0
        assert resumed.latencies.max() == pytest.approx(1.0)  # 0.5 + residual 0.5
        assert resumed.migrated == fresh.migrated == 4

    def test_checkpoint_before_any_step_changes_nothing(self):
        # Killed before the first checkpoint boundary: nothing survives.
        early = self._preempt(StepCheckpoint(steps=4), kill_at=0.2)
        plain = self._preempt(None, kill_at=0.2)
        np.testing.assert_allclose(early.latencies, plain.latencies)

    def test_fresh_rider_pays_the_full_batch(self):
        """A cohort's residual is its *largest* member demand: batching a
        checkpointed migrant with a fresh request costs the full batch."""
        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.register("n", FixedExecutor(1.0), mode="int8")
        # Server 1 is pinned busy with model "n" so the fresh "m" request
        # queues; the requeued migrant lands at the head right before it
        # and the two form one cohort when server 1 frees at t=1.0.
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=0),
                Request(arrival_time=0.0, model="n", request_id=1),
                Request(arrival_time=0.3, model="m", request_id=2),
            ]
        )
        engine.step()  # "m" alone on server 0, "n" alone on server 1
        engine.step()
        engine.preempt_server(
            0,
            0.5,
            policy=RequeueAtHeadMigration(),
            kill_running=True,
            checkpoint=StepCheckpoint(steps=4),
        )
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 3)
        # The rejoined batch holds the 0.5-residual migrant plus the fresh
        # rider: it pays the rider's full 1.0s, not the residual.
        rejoined = [
            r for r in result.batch_records if r.server == 1 and r.size == 2
        ]
        assert len(rejoined) == 1
        assert rejoined[0].finish - rejoined[0].start == pytest.approx(1.0)

    def test_dropped_migrant_checkpoint_state_is_discarded(self):
        class DropAll:
            def plan(self, migrants, time):
                return [None] * len(migrants)

        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i)
                for i in range(4)
            ]
        )
        engine.step()
        engine.preempt_server(
            0, 0.5, policy=DropAll(), kill_running=True,
            checkpoint=StepCheckpoint(steps=4),
        )
        assert engine._session.checkpoints == {}
        engine.set_active_servers([1])
        result = engine.finish()
        conserve(result, 4)
        assert result.dropped == 4

    def test_bad_checkpoint_fraction_rejected(self):
        class Overfull:
            def completed_fraction(self, record, time):
                return 1.0

        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[Request(arrival_time=0.0, model="m", request_id=0)]
        )
        engine.step()
        with pytest.raises(ValueError, match="completed_fraction"):
            engine.preempt_server(
                0, 0.5, policy=RequeueAtHeadMigration(),
                kill_running=True, checkpoint=Overfull(),
            )

    def test_estimator_residual_scaling(self):
        spec = gpu_server("g", "vit_base", gpu="a6000")
        full = spec.estimate_batch_seconds(32)
        assert spec.estimate_batch_seconds(32, residual=0.5) == pytest.approx(
            0.5 * full
        )
        with pytest.raises(ValueError):
            spec.estimate_batch_seconds(32, residual=0.0)
        with pytest.raises(ValueError):
            spec.estimate_batch_seconds(32, residual=1.5)


# ----------------------------------------------------------------------
# Timeline edge cases (satellite)
# ----------------------------------------------------------------------
class TestTimelineEdgeCases:
    def test_summarize_migrations_handles_empty_and_none(self):
        zeros = {
            "migrated_requests": 0.0,
            "moves": 0.0,
            "max_moves": 0.0,
            "served_after_migration": 0.0,
            "dropped_after_migration": 0.0,
        }
        assert summarize_migrations([]) == zeros
        assert summarize_migrations(None) == zeros
        assert summarize_migrations([None, None]) == zeros

    def test_timeline_merges_scale_and_fault_events_in_time_order(self):
        bus = TelemetryBus(window=1.0, num_servers=2)
        # Recorded out of time order, as the control plane does: the fault's
        # strike time (1.7) precedes the boundary (2.0) it was applied at.
        bus.record_scale_event(
            ScaleEvent(time=2.0, action="add", server=1, active_after=2)
        )
        bus.record_fault_event(FaultEvent(time=1.7, server=0, kind="crash"))
        bus.record_fault_event(FaultEvent(time=2.0, server=0, kind="recover"))
        timeline = bus.timeline()
        assert [type(e).__name__ for e in timeline] == [
            "FaultEvent",
            "ScaleEvent",
            "FaultEvent",
        ]
        assert [e.time for e in timeline] == [1.7, 2.0, 2.0]
        # Same-instant events keep application order -> deterministic.
        assert timeline[1].action == "add"
        bus.reset()
        assert bus.timeline() == []

    def test_crash_in_final_window_still_lands(self):
        """A fault striking after the last batch starts is still applied:
        its event is on the timeline and its migrants are re-served."""
        specs = [fixed_spec("g0"), fixed_spec("g1")]
        # All arrivals in [0, 0.2]; service drains quickly; the crash at
        # t=5.0 lands long after the engine would otherwise have finished.
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            fault_schedule=FaultSchedule.single_crash(0, at=5.0),
            migration=RequeueAtHeadMigration(),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(400, duration=0.2, seed=8).generate()
        outcome = cluster.run(trace=trace)
        assert [e.kind for e in outcome.fault_events] == ["crash"]
        assert cluster.specs[0].health == "failed"
        conserve(outcome.result, outcome.result.request_latencies.size)

    def test_crash_mid_drain_requeues_and_serves_migrants(self):
        """The trailing fault hits while the victim still has queued work:
        the step loop re-enters and the migrants finish on the survivor."""
        specs = [fixed_spec("g0", seconds=1.0), fixed_spec("g1", seconds=1.0)]
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=2),
            fault_schedule=FaultSchedule.single_crash(0, at=0.5),
            migration=RequeueAtHeadMigration(),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        requests = [
            Request(arrival_time=0.0, model="m", request_id=i) for i in range(4)
        ]
        outcome = cluster.run(requests=requests)
        conserve(outcome.result, 4)
        assert outcome.migrated > 0
        assert all(
            r.server == 1
            for r in outcome.result.responses
            if r.migrations > 0
        )

    def test_cluster_result_timeline_delegates(self):
        specs = [fixed_spec("g0"), fixed_spec("g1")]
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            fault_schedule=FaultSchedule.single_crash(0, at=0.1, recover_at=0.6),
            migration=RequeueAtHeadMigration(),
            window=0.25,
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(800, duration=1.0, seed=5).generate()
        outcome = cluster.run(trace=trace)
        timeline = outcome.timeline()
        assert len(timeline) == len(outcome.fault_events) + len(outcome.scale_events)
        times = [e.time for e in timeline]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# Topology-aware warm-spare promotion (PR 7 satellite)
# ----------------------------------------------------------------------
class TestTopologyAwarePromotion:
    def _promote(self, spare_specs, crash_server=0):
        specs = [
            fixed_spec("g0", zone="A"),
            fixed_spec("g1", zone="B"),
        ] + spare_specs
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=8),
            warm_spares=WarmSparePool([2, 3], promotion_latency=0.01),
            fault_schedule=FaultSchedule.single_crash(crash_server, at=0.3),
            migration=RequeueAtHeadMigration(delay=0.001),
            window=0.1,
        )
        cluster.register("m", mode="int8")
        trace = PoissonTrace(800, duration=1.0, seed=11).generate()
        outcome = cluster.run(trace=trace)
        assert len(outcome.promotions) == 1
        return outcome.promotions[0]

    def test_prefers_out_of_domain_spare_over_faster_in_domain(self):
        # The regression: the only *fast* spare shares the failed zone.
        # Promoting it would leave the cluster one zone event from losing
        # the replacement too — the slower out-of-domain spare must win.
        event = self._promote(
            [
                fixed_spec("s2", speed=2000.0, zone="A"),  # fast, failed zone
                fixed_spec("s3", speed=500.0, zone="C"),   # slow, safe zone
            ]
        )
        assert event.server == 3
        assert "[zone:A]" in event.reason

    def test_speed_breaks_ties_among_out_of_domain_spares(self):
        event = self._promote(
            [
                fixed_spec("s2", speed=500.0, zone="C"),
                fixed_spec("s3", speed=2000.0, zone="C"),
            ]
        )
        assert event.server == 3  # both safe: the faster spare wins

    def test_id_breaks_full_ties(self):
        event = self._promote(
            [
                fixed_spec("s2", speed=1000.0, zone="C"),
                fixed_spec("s3", speed=1000.0, zone="C"),
            ]
        )
        assert event.server == 2

    def test_undeclared_spares_count_as_out_of_domain(self):
        # Spares without zone/rack identity are their own single-server
        # islands; they must still beat a spare inside the failed zone.
        event = self._promote(
            [
                fixed_spec("s2", speed=2000.0, zone="A"),
                fixed_spec("s3", speed=100.0),  # no topology declared
            ]
        )
        assert event.server == 3


# ----------------------------------------------------------------------
# Checkpoint transfer pricing (PR 7 satellite)
# ----------------------------------------------------------------------
class TestCheckpointTransferCost:
    def test_restore_seconds_arithmetic(self):
        policy = StepCheckpoint(steps=4, transfer_cost=0.1, transfer_per_step=0.05)
        assert policy.restore_seconds(0.0) == 0.0
        assert policy.restore_seconds(-1.0) == 0.0
        assert policy.restore_seconds(0.5) == pytest.approx(0.1 + 2 * 0.05)
        assert policy.restore_seconds(0.75) == pytest.approx(0.1 + 3 * 0.05)
        # A free checkpoint (the default) prices every restore at zero.
        assert StepCheckpoint(steps=4).restore_seconds(0.5) == 0.0
        with pytest.raises(ValueError):
            StepCheckpoint(steps=4, transfer_cost=-0.1)
        with pytest.raises(ValueError):
            StepCheckpoint(steps=4, transfer_per_step=-0.1)

    def _preempt(self, checkpoint, kill_at=0.5):
        engine = ServingEngine(BatchingConfig(max_batch=4), num_servers=2)
        engine.register("m", FixedExecutor(1.0), mode="int8")
        engine.start(
            requests=[
                Request(arrival_time=0.0, model="m", request_id=i)
                for i in range(4)
            ]
        )
        engine.step()
        engine.preempt_server(
            0,
            kill_at,
            policy=RequeueAtHeadMigration(),
            kill_running=True,
            checkpoint=checkpoint,
        )
        engine.set_active_servers([1])
        return engine.finish()

    def test_migrant_cohort_pays_transfer_on_resume(self):
        # Killed at 0.5 of a 1.0s batch with 4 steps: 0.5 residual plus the
        # cohort's restore cost (parallel restore: one transfer for the
        # whole cohort, like the largest-residual convention).
        priced = self._preempt(StepCheckpoint(steps=4, transfer_cost=0.2))
        free = self._preempt(StepCheckpoint(steps=4))
        conserve(priced, 4)
        assert free.latencies.max() == pytest.approx(1.0)    # 0.5 + 0.5
        assert priced.latencies.max() == pytest.approx(1.2)  # ... + 0.2
        assert priced.migrated == free.migrated == 4

    def test_full_reexecution_pays_no_transfer(self):
        # Killed before any checkpoint step: nothing restores, so nothing
        # transfers — the run matches the checkpoint-free baseline exactly.
        priced = self._preempt(
            StepCheckpoint(steps=4, transfer_cost=0.2), kill_at=0.2
        )
        plain = self._preempt(None, kill_at=0.2)
        np.testing.assert_allclose(priced.latencies, plain.latencies)

    def test_estimate_batch_seconds_includes_transfer(self):
        spec = fixed_spec("a", speed=1000.0)
        base = spec.estimate_batch_seconds(8, residual=0.5)
        assert spec.estimate_batch_seconds(
            8, residual=0.5, transfer=0.2
        ) == pytest.approx(base + 0.2)
        with pytest.raises(ValueError):
            spec.estimate_batch_seconds(8, transfer=-0.1)

    def test_custom_checkpoint_without_pricing_still_works(self):
        # Duck-typed composition: a CheckpointPolicy that never heard of
        # restore_seconds keeps its seed behaviour (free restores).
        class HalfCheckpoint:
            def completed_fraction(self, record, time):
                return 0.5

        result = self._preempt(HalfCheckpoint())
        conserve(result, 4)
        assert result.latencies.max() == pytest.approx(1.0)

"""Tests for observers and quantizer primitives (including property tests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.observers import EmaMinMaxObserver, MinMaxObserver, TensorRange
from repro.quant.quantizers import (
    QuantParams,
    compute_qparams,
    dequantize,
    fake_quantize,
    int_range,
    lower_bitwidth_naive,
    quantization_error,
    quantize,
)
from repro.tensor import Tensor


class TestObservers:
    def test_minmax_per_tensor(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -3.0, 2.0]))
        obs.observe(np.array([0.5, 4.0]))
        r = obs.range()
        assert r.low[0] == -3.0 and r.high[0] == 4.0
        assert r.max_abs[0] == 4.0

    def test_minmax_per_channel(self):
        obs = MinMaxObserver(channel_axis=0)
        obs.observe(np.array([[1.0, -2.0], [3.0, 0.5]]))
        r = obs.range()
        np.testing.assert_allclose(r.low, [-2.0, 0.5])
        np.testing.assert_allclose(r.high, [1.0, 3.0])

    def test_minmax_uninitialised_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_ema_converges_to_stationary_range(self):
        obs = EmaMinMaxObserver(momentum=0.9)
        for _ in range(200):
            obs.observe(np.array([-1.0, 1.0]))
        r = obs.range()
        assert r.low[0] == pytest.approx(-1.0, abs=1e-3)
        assert r.high[0] == pytest.approx(1.0, abs=1e-3)

    def test_ema_smooths_outliers(self):
        obs = EmaMinMaxObserver(momentum=0.99)
        obs.observe(np.array([-1.0, 1.0]))
        obs.observe(np.array([-100.0, 100.0]))  # single outlier batch
        assert obs.range().high[0] < 3.0

    def test_ema_invalid_momentum(self):
        with pytest.raises(ValueError):
            EmaMinMaxObserver(momentum=1.5)

    def test_widened_range(self):
        r = TensorRange(low=np.array([-1.0]), high=np.array([2.0]))
        w = r.widened(2.0)
        assert w.low[0] == -2.0 and w.high[0] == 4.0


class TestQuantParams:
    def test_int_range(self):
        assert int_range(8) == (-128, 127)
        assert int_range(4) == (-8, 7)
        with pytest.raises(ValueError):
            int_range(1)
        with pytest.raises(ValueError):
            int_range(16)

    def test_compute_qparams_per_tensor(self):
        r = TensorRange(low=np.array([-2.0]), high=np.array([1.0]))
        params = compute_qparams(r, bits=8)
        assert params.scale[0] == pytest.approx(2.0 / 127)
        assert not params.per_channel

    def test_compute_qparams_per_channel_broadcast(self):
        r = TensorRange(low=np.array([-1.0, -2.0, -4.0]), high=np.array([1.0, 2.0, 4.0]))
        params = compute_qparams(r, bits=8, channel_axis=0)
        assert params.per_channel
        assert params.broadcast_scale(3).shape == (3, 1, 1)

    def test_zero_range_protected(self):
        r = TensorRange(low=np.array([0.0]), high=np.array([0.0]))
        params = compute_qparams(r, bits=8)
        assert params.scale[0] > 0

    def test_with_bits(self):
        r = TensorRange(low=np.array([-1.0]), high=np.array([1.0]))
        params = compute_qparams(r, bits=8)
        p4 = params.with_bits(4)
        assert p4.bits == 4 and p4.qmax == 7
        np.testing.assert_array_equal(p4.scale, params.scale)


class TestQuantizeDequantize:
    def test_values_in_integer_range(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 3, size=(64,)).astype(np.float32)
        params = compute_qparams(TensorRange(low=values.min(None, keepdims=True),
                                             high=values.max(None, keepdims=True)), 8)
        q = quantize(values, params)
        assert q.min() >= -128 and q.max() <= 127

    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-1, 1, size=200).astype(np.float32)
        params = compute_qparams(TensorRange(low=np.array([-1.0]), high=np.array([1.0])), 8)
        reconstructed = dequantize(quantize(values, params), params)
        assert np.abs(values - reconstructed).max() <= params.scale[0] / 2 + 1e-6

    def test_per_channel_uses_own_scale(self):
        values = np.array([[0.1, 0.1], [10.0, 10.0]], dtype=np.float32)
        params = compute_qparams(
            TensorRange(low=np.array([-0.1, -10.0]), high=np.array([0.1, 10.0])),
            8, channel_axis=0,
        )
        q = quantize(values, params)
        np.testing.assert_array_equal(q[0], q[1])  # both rows map to full scale

    def test_quantization_error_smaller_for_more_bits(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=500).astype(np.float32)
        r = TensorRange(low=np.array([values.min()]), high=np.array([values.max()]))
        err8 = quantization_error(values, compute_qparams(r, 8))
        err4 = quantization_error(values, compute_qparams(r, 4))
        assert err8 < err4

    def test_clipping_saturates(self):
        params = QuantParams(scale=np.array([1.0]), bits=4)
        q = quantize(np.array([100.0, -100.0]), params)
        np.testing.assert_array_equal(q, [7, -8])

    def test_naive_lowering(self):
        q8 = np.array([127, -128, 16, 7])
        q4 = lower_bitwidth_naive(q8, 8, 4)
        np.testing.assert_array_equal(q4, [7, -8, 1, 0])


class TestFakeQuantize:
    def test_forward_matches_integer_grid(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(8, 8)).astype(np.float32)
        params = compute_qparams(
            TensorRange(low=np.array([values.min()]), high=np.array([values.max()])), 8
        )
        fake = fake_quantize(Tensor(values), params).data
        exact = dequantize(quantize(values, params), params)
        np.testing.assert_allclose(fake, exact, atol=1e-6)

    def test_straight_through_gradient(self):
        params = QuantParams(scale=np.array([0.1]), bits=8)
        x = Tensor(np.array([0.33, -0.57], dtype=np.float32), requires_grad=True)
        fake_quantize(x, params).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_gradient_masked_outside_range(self):
        params = QuantParams(scale=np.array([0.01]), bits=4)  # range +-0.08
        x = Tensor(np.array([0.0, 5.0], dtype=np.float32), requires_grad=True)
        fake_quantize(x, params).sum().backward()
        assert x.grad[0] == 1.0
        assert x.grad[1] == 0.0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=32),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
)


class TestQuantizationProperties:
    @given(values=float_arrays, bits=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded(self, values, bits):
        max_abs = float(np.abs(values).max())
        if max_abs == 0:
            return
        params = compute_qparams(
            TensorRange(low=np.array([-max_abs]), high=np.array([max_abs])), bits
        )
        reconstructed = dequantize(quantize(values, params), params)
        assert np.abs(values - reconstructed).max() <= params.scale[0] * 0.5 + 1e-5

    @given(values=float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_quantize_idempotent_on_grid(self, values):
        max_abs = float(np.abs(values).max())
        if max_abs == 0:
            return
        params = compute_qparams(
            TensorRange(low=np.array([-max_abs]), high=np.array([max_abs])), 8
        )
        once = dequantize(quantize(values, params), params)
        twice = dequantize(quantize(once, params), params)
        np.testing.assert_allclose(once, twice, atol=1e-6)

    @given(values=float_arrays, bits=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_quantized_values_within_bit_range(self, values, bits):
        max_abs = max(float(np.abs(values).max()), 1e-3)
        params = compute_qparams(
            TensorRange(low=np.array([-max_abs]), high=np.array([max_abs])), bits
        )
        q = quantize(values, params)
        qmin, qmax = int_range(bits)
        assert q.min() >= qmin and q.max() <= qmax

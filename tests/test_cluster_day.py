"""Scaled-down ``cluster_day`` smoke for CI (PR 8).

The full benchmark (``benchmarks/perf_smoke.bench_cluster_day``) pushes a
>= 1M-request diurnal day through the columnar serving core under
wall-clock and peak-RSS budgets.  CI machines are shared and slow, so this
suite runs the same workload shape at ~1/20 scale (~50k requests) with a
deliberately loose wall-clock ceiling: it catches an accidentally
quadratic hot path or a broken fast-path dispatch, not a few-percent
regression.  Runs as its own CI matrix entry so a blowup here points
straight at the columnar core.
"""

import time

import numpy as np
import pytest

from repro.data.traces import DiurnalTrace, RequestTrace
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    FaultSchedule,
    FixedRatioPolicy,
    ModeledExecutor,
    ServerSpec,
    ServiceTimeModel,
    ServingEngine,
)

NIGHT_RATE = 150            # 1/20 of the benchmark's diurnal curve
PEAK_RATE = 650
DURATION = 130.0
SEED = 8
SERVERS = 8
MAX_BATCH = 16
DROP_AFTER = 0.1
MIN_REQUESTS = 50_000
WALL_CEILING_S = 20.0       # measured ~0.05 s; the ceiling flags blowups only

SERVICE_MODEL = ServiceTimeModel()


@pytest.fixture(scope="module")
def day_trace():
    return DiurnalTrace(
        night_rate=NIGHT_RATE,
        peak_rate=PEAK_RATE,
        duration=DURATION,
        period=DURATION,
        num_phases=int(DURATION),
        seed=SEED,
    ).generate()


def _engine(columnar=True, num_servers=SERVERS):
    engine = ServingEngine(
        BatchingConfig(max_batch=MAX_BATCH, drop_after=DROP_AFTER),
        num_servers=num_servers,
        columnar=columnar,
    )
    engine.register(
        "m", ModeledExecutor(SERVICE_MODEL), policy=FixedRatioPolicy(0.5)
    )
    return engine


def test_smoke_day_within_wall_ceiling(day_trace):
    assert len(day_trace) >= MIN_REQUESTS
    start = time.perf_counter()
    outcome = _engine().run(day_trace, model="m")
    wall = time.perf_counter() - start
    assert wall <= WALL_CEILING_S
    assert outcome.latencies.size + outcome.dropped == len(day_trace)
    assert outcome.latencies.size > 0
    # Every admitted-and-served request waited less than the drop horizon
    # plus one full batch's service time.
    assert float(np.nanmax(outcome.request_latencies)) < DROP_AFTER + 1.0


def test_smoke_slice_parity_with_object_loop(day_trace):
    arrivals = day_trace.sorted_arrivals()[:5000]
    slice_trace = RequestTrace(np.asarray(arrivals), duration=float(arrivals[-1]))
    fast = _engine(True).run(slice_trace, model="m")
    slow = _engine(False).run(slice_trace, model="m")
    assert np.array_equal(fast.request_latencies, slow.request_latencies, equal_nan=True)
    assert list(fast.batch_sizes) == list(slow.batch_sizes)
    assert fast.dropped == slow.dropped
    assert fast.server_busy_times == slow.server_busy_times


def test_smoke_faulted_cluster_day(day_trace):
    """The stepped control loop (windows + faults) also clears the day."""
    specs = [
        ServerSpec(name=f"s{index}", speed=1.0, service_model=SERVICE_MODEL)
        for index in range(SERVERS)
    ]
    schedule = FaultSchedule.single_crash(at=40.0, server=3, recover_at=90.0)
    cluster = ClusterEngine(
        specs,
        batching=BatchingConfig(max_batch=MAX_BATCH, drop_after=DROP_AFTER),
        fault_schedule=schedule,
        window=1.0,
    )
    cluster.register("m", policy=FixedRatioPolicy(0.5))
    start = time.perf_counter()
    outcome = cluster.run(day_trace, model="m")
    wall = time.perf_counter() - start
    assert wall <= WALL_CEILING_S
    assert outcome.result.latencies.size + outcome.result.dropped == len(day_trace)
    assert [event.kind for event in outcome.fault_events] == ["crash", "recover"]

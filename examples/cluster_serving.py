"""Multi-accelerator, SLO-aware serving on the unified engine (PR 3 tour).

Three scale-out stories on top of :class:`~repro.serving.ServingEngine`,
all with modeled ViT-Base/A6000 service times so the script runs in
seconds:

1. **Cluster scale-out** — one engine coordinating K identical servers,
   each with its own clock (and, for real execution, its own
   ``RuntimeExecutor`` and prepared-kernel cache).  Under a load that
   saturates a single accelerator, median latency collapses as K grows and
   throughput scales near-linearly.
2. **SLO-aware scheduling** — the same overloaded trace with per-request
   deadlines, served FIFO vs earliest-deadline-first.  EDF spends the
   scarce accelerator time on requests whose SLOs are still winnable and
   wins deadline attainment without touching throughput.
3. **Queue-aware ratio policy** — a context-aware policy
   (:class:`~repro.serving.QueueDepthRatioPolicy`) that raises the 4-bit
   ratio only while the queue is backed up: latency close to the all-4-bit
   deployment, accuracy close to the all-8-bit one.

Run with:  python examples/cluster_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.data.traces import PoissonTrace
from repro.serving import (
    BatchingConfig,
    EdfScheduler,
    FixedRatioPolicy,
    ModeledExecutor,
    QueueDepthRatioPolicy,
    ServiceTimeModel,
    ServingEngine,
    requests_from_trace,
)


def build_engine(service, num_servers=1, scheduler=None, policy=None, mode="int8"):
    engine = ServingEngine(
        BatchingConfig(max_batch=64), num_servers=num_servers, scheduler=scheduler
    )
    engine.register("vit", ModeledExecutor(service), policy=policy, mode=mode)
    return engine


def main() -> None:
    service = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))
    trace = PoissonTrace(6000, duration=3.0, seed=42).generate()
    requests = requests_from_trace(trace, model="vit")
    print(f"Trace: {len(requests)} requests over {trace.duration:.0f}s "
          f"(~{trace.average_rate:.0f} req/s, INT8 capacity ~1.7k req/s/server)")

    # ------------------------------------------------------------------
    # 1. Cluster scale-out
    # ------------------------------------------------------------------
    rows = []
    for k in (1, 2, 4, 8):
        outcome = build_engine(service, num_servers=k).run(
            requests=requests, record_responses=False
        )
        rows.append([
            f"K={k}",
            outcome.throughput,
            outcome.median_latency * 1e3,
            outcome.p90_latency * 1e3,
            min(outcome.server_busy_times) / max(outcome.server_busy_times),
        ])
    print(format_table(
        ["cluster", "req/s", "median (ms)", "p90 (ms)", "load balance"],
        rows, precision=2,
        title="\n1. Multi-server dispatch (modeled ViT-Base, INT8)",
    ))

    # ------------------------------------------------------------------
    # 2. FIFO vs earliest-deadline-first under overload
    # ------------------------------------------------------------------
    # Moderate overload for the scheduling stories: ~1.2x the 2-server INT8
    # capacity, so part of the SLOs stay winnable and the queue can drain.
    slo_trace = PoissonTrace(4200, duration=3.0, seed=43).generate()
    rng = np.random.default_rng(7)
    arrivals = np.sort(np.asarray(slo_trace.arrival_times))
    slo_requests = requests_from_trace(slo_trace, model="vit")
    for i, request in enumerate(slo_requests):
        tight = rng.random() < 0.5
        request.deadline = float(arrivals[i]) + (0.15 if tight else 1.5)

    rows = []
    for label, scheduler in (("FIFO", None), ("EDF (SLO-aware)", EdfScheduler())):
        engine = build_engine(service, num_servers=2, scheduler=scheduler)
        outcome = engine.run(requests=slo_requests)
        lateness = np.asarray([
            response.finish_time - response.deadline
            for response in outcome.responses if not response.dropped
        ])
        rows.append([
            label,
            outcome.deadline_attainment() * 100.0,
            float(np.percentile(lateness, 99)) * 1e3,
            outcome.throughput,
        ])
    print(format_table(
        ["scheduler", "SLOs met (%)", "p99 lateness (ms)", "req/s"],
        rows, precision=2,
        title="\n2. Deadline attainment on a 2-server cluster (mixed 150ms/1.5s SLOs)",
    ))

    # ------------------------------------------------------------------
    # 3. Queue-aware ratio policy (accuracy only when it is free)
    # ------------------------------------------------------------------
    accuracy = {0.0: 84.72, 0.5: 84.67, 1.0: 83.81}
    deployments = [
        ("INT8 fixed", FixedRatioPolicy(0.0)),
        ("INT4 fixed", FixedRatioPolicy(1.0)),
        ("queue-aware", QueueDepthRatioPolicy({32: 0.5, 128: 1.0}, base_ratio=0.0)),
    ]
    rows = []
    for label, policy in deployments:
        engine = build_engine(service, num_servers=2, policy=policy, mode="flexiq")
        outcome = engine.run(requests=slo_requests, record_responses=False)
        mean_ratio = outcome.mean_executed_ratio
        nearest = min(accuracy, key=lambda r: abs(r - mean_ratio))
        rows.append([
            label,
            outcome.median_latency * 1e3,
            outcome.p90_latency * 1e3,
            mean_ratio,
            accuracy[nearest],
        ])
    print(format_table(
        ["deployment", "median (ms)", "p90 (ms)", "mean 4-bit ratio", "~accuracy (%)"],
        rows, precision=2,
        title="\n3. Batch-size-aware ratio policy (2 servers, flexiq mode)",
    ))


if __name__ == "__main__":
    main()

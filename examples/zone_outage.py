"""Failure domains: a zone outage against spread placement + warm spares.

Six A6000-class servers in three zones — g0/g1 in zone A, g2/g3 in zone B,
s4/s5 reserve spares in zone C — serve a Poisson stream with per-request
deadlines.  At t=2s zone A fails *as a unit* (a correlated outage: one
``zone_outage`` schedule event expands to per-server crashes against the
cluster topology) and recovers at t=4s.  Four deployments face the same
schedule:

1. **no fault** — the 4-primary cluster undisturbed (the SLO is easy).
2. **flat (single-domain)** — the PR 5-style cluster: same 4 primaries,
   migration, but no domain awareness and no reserve.  Losing half the
   fleet for two seconds overloads the survivors and the deadline SLO is
   missed even though no request is lost.
3. **cold standby** — an SLO autoscaler may wake s4/s5, but only after a
   breach is *observed* and only with the cold ``startup_delay`` of
   provisioning; the backlog grows while capacity is in flight.
4. **spread + warm spares** — ``SpreadPlacer`` keeps load spread across
   zones, and a ``WarmSparePool`` promotes s4/s5 with only the (tiny)
   promotion latency the moment the crashes land: migrated victims find
   restored capacity immediately and the SLO holds.  Promotions and the
   later demotions (zone A recovers, spares return to reserve) are scale
   events on the telemetry timeline, tagged with the crashed server's
   failure domain.

Run with:  python examples/zone_outage.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.data.traces import PoissonTrace
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    FaultEvent,
    FaultSchedule,
    RequeueAtHeadMigration,
    ScaleEvent,
    SloLatencyAutoscaler,
    StepCheckpoint,
    WarmSparePool,
    gpu_server,
    requests_from_trace,
)

DEADLINE_SLO = 0.8          # per-request relative deadline (seconds)
ATTAINMENT_TARGET = 0.99    # the deadline-attainment SLO
RATE = 6000                 # req/s over four active A6000-class servers
DURATION = 6.0
OUTAGE_AT, RECOVER_AT = 2.0, 4.0
WINDOW = 0.25               # control/telemetry window (seconds)
MIGRATION_DELAY = 0.01      # state handoff cost per migration
PROMOTION_LATENCY = 0.05    # warm spare activation (state pre-replicated)
COLD_DELAY = 0.6            # cold standby provisioning lag

ZONES = ("A", "A", "B", "B", "C", "C")


def build_requests(duration: float = DURATION, rate: float = RATE, seed: int = 6):
    trace = PoissonTrace(rate, duration=duration, seed=seed).generate()
    return requests_from_trace(trace, model="m", deadlines=[DEADLINE_SLO])


def build_specs(count: int = 6):
    """A6000 ViT-Base servers with their failure-domain identity."""
    prefix = ["g", "g", "g", "g", "s", "s"]
    return [
        gpu_server(f"{prefix[i]}{i}", "vit_base", gpu="a6000", zone=ZONES[i])
        for i in range(count)
    ]


def outage_schedule() -> FaultSchedule:
    return FaultSchedule.zone_outage("A", at=OUTAGE_AT, recover_at=RECOVER_AT)


def run_no_fault(requests=None):
    cluster = ClusterEngine(
        build_specs(4), BatchingConfig(max_batch=64), window=WINDOW
    )
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def run_flat(requests=None):
    """The PR 5 single-domain deployment: migration, but no reserve."""
    cluster = ClusterEngine(
        build_specs(4),
        BatchingConfig(max_batch=64),
        fault_schedule=outage_schedule(),
        migration=RequeueAtHeadMigration(delay=MIGRATION_DELAY),
        checkpoint=StepCheckpoint(steps=4),
        window=WINDOW,
    )
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def run_cold(requests=None):
    """Standbys exist but wake reactively, with cold provisioning lag."""
    cluster = ClusterEngine(
        build_specs(6),
        BatchingConfig(max_batch=64),
        autoscaler=SloLatencyAutoscaler(slo_seconds=DEADLINE_SLO, patience=4),
        min_servers=4,
        initial_servers=4,
        startup_delay=COLD_DELAY,
        fault_schedule=outage_schedule(),
        migration=RequeueAtHeadMigration(delay=MIGRATION_DELAY),
        checkpoint=StepCheckpoint(steps=4),
        window=WINDOW,
    )
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def run_warm(requests=None):
    """Spread placement + warm spares: the failure-domain deployment."""
    cluster = ClusterEngine(
        build_specs(6),
        BatchingConfig(max_batch=64),
        placer="spread",
        warm_spares=WarmSparePool([4, 5], promotion_latency=PROMOTION_LATENCY),
        fault_schedule=outage_schedule(),
        migration=RequeueAtHeadMigration(delay=MIGRATION_DELAY),
        checkpoint=StepCheckpoint(steps=4),
        window=WINDOW,
    )
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def outage_scenario(requests=None):
    """All deployments under the same zone outage (reused by the tests)."""
    return {
        "no fault": run_no_fault(requests),
        "flat (single-domain)": run_flat(requests),
        "cold standby": run_cold(requests),
        "spread + warm spares": run_warm(requests),
    }


def main() -> None:
    requests = build_requests()
    print(
        f"Failure domains: zones A=(g0,g1) B=(g2,g3) C=(s4,s5 reserve), "
        f"{RATE} req/s Poisson for {DURATION:.0f}s "
        f"({len(requests)} requests, {DEADLINE_SLO:.1f}s deadlines)"
    )
    print(
        f"Zone A outage at t={OUTAGE_AT:.0f}s (both servers crash at once), "
        f"recovery at t={RECOVER_AT:.0f}s"
    )

    outcomes = outage_scenario(requests)
    rows = []
    for label, outcome in outcomes.items():
        result = outcome.result
        attainment = outcome.deadline_attainment()
        rows.append(
            [
                label,
                attainment * 100.0,
                "yes" if attainment >= ATTAINMENT_TARGET else "NO",
                result.dropped,
                result.migrated,
                outcome.p99_latency * 1e3,
            ]
        )
    print(
        format_table(
            [
                "deployment",
                "deadlines met (%)",
                f"SLO>={ATTAINMENT_TARGET:.0%}",
                "lost",
                "migrated",
                "p99 (ms)",
            ],
            rows,
            precision=2,
        )
    )

    warm, cold = outcomes["spread + warm spares"], outcomes["cold standby"]
    print(
        f"   Warm spares beat cold standby by "
        f"{(cold.p99_latency - warm.p99_latency) * 1e3:.0f}ms p99: promotion "
        f"({PROMOTION_LATENCY * 1e3:.0f}ms) vs provisioning "
        f"({COLD_DELAY * 1e3:.0f}ms) under a backlog growing at full load."
    )

    print("   Timeline of the warm-spare run (faults + scale events merged):")
    for event in warm.timeline():
        if isinstance(event, ScaleEvent):
            print(
                f"     t={event.time:5.2f}s  {event.action:>8s} server "
                f"{event.server}  ({event.reason})"
            )
        elif isinstance(event, FaultEvent):
            tag = f"  [{event.domain}]" if event.domain else ""
            print(
                f"     t={event.time:5.2f}s  {event.kind:>8s} server "
                f"{event.server}{tag}"
            )


if __name__ == "__main__":
    main()

"""Adaptive inference serving under a fluctuating request trace (Figure 9 scenario).

The script builds a latency profile for ViT-Base on the A6000 model (the
Figure 8 sweep), then replays a bursty request trace whose peak rate is three
times its minimum.  FlexiQ's controller watches the observed request rate and
raises the 4-bit channel ratio whenever the profiled latency exceeds the
target; the resulting latency and effective accuracy are compared against
fixed INT8 and INT4 deployments.

Everything below runs on the unified serving engine
(:mod:`repro.serving.engine`) through the ``ServingSimulator`` /
``AdaptiveServingSimulator`` compatibility wrappers: fixed deployments are a
``ModeledExecutor`` with a ``FixedRatioPolicy``, the adaptive deployment
wraps the controller in an ``AdaptiveRatioPolicy`` (``controller.as_policy``)
-- swap in a ``RuntimeExecutor`` to drive a prepared ``FlexiQModel`` with
real measured batch latencies under the same API.

Run with:  python examples/adaptive_serving.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import FluctuatingTrace, PoissonTrace
from repro.serving.adaptation import AdaptiveServingSimulator
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator

# Per-ratio accuracy of ViT-Base from the paper's Table 2 (finetuned row);
# used to report the effective accuracy of the adaptive deployment.
VIT_B_ACCURACY = {0.0: 84.72, 0.25: 84.63, 0.5: 84.67, 0.75: 84.42, 1.0: 83.81}


def main() -> None:
    service = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))
    simulator = ServingSimulator(service, BatchingConfig(max_batch=128))

    print("Profiling latency vs request rate for each 4-bit ratio (Figure 8 sweep)...")
    rates = [200, 600, 1000, 1400, 1800, 2200, 2600, 3000]

    def profiled_latency(ratio: float, rate: float) -> float:
        trace = PoissonTrace(max(rate, 1), duration=2.0, seed=3).generate()
        return simulator.run(trace, "flexiq", ratio=ratio).median_latency

    profile = build_profile_from_latency_fn(rates, [0.0, 0.25, 0.5, 0.75, 1.0], profiled_latency)

    print("Replaying a fluctuating trace (min 800 req/s, peak 3x) with adaptation...")
    trace = FluctuatingTrace(min_rate=800, peak_ratio=3.0, duration=30.0, seed=9).generate()
    controller = AdaptiveRatioController(profile, latency_threshold=0.040)
    adaptive = AdaptiveServingSimulator(service, controller, control_window=1.0)
    adaptive_result = adaptive.run(trace, accuracy_by_ratio=VIT_B_ACCURACY)

    int8 = simulator.run(trace, "int8")
    int4 = simulator.run(trace, "int4")

    rows = [
        ["FlexiQ adaptive", adaptive_result.median_latency * 1e3,
         adaptive_result.summary()["p90"] * 1e3, adaptive_result.effective_accuracy],
        ["INT8 fixed", int8.median_latency * 1e3, int8.p90_latency * 1e3,
         VIT_B_ACCURACY[0.0]],
        ["INT4 fixed", int4.median_latency * 1e3, int4.p90_latency * 1e3,
         VIT_B_ACCURACY[1.0]],
    ]
    print(format_table(
        ["deployment", "median (ms)", "p90 (ms)", "effective accuracy (%)"],
        rows, precision=2,
        title="\nFluctuating-load serving (ViT-Base, A6000 model)",
    ))

    print("\nRatio timeline (one line per control window):")
    for entry in adaptive_result.ratio_timeline[:12]:
        print(
            f"  t={entry['start']:5.1f}s  rate={entry['rate']:7.1f} req/s  "
            f"4-bit ratio={entry['ratio']:.2f}"
        )
    print(f"  ... average ratio over the trace: {adaptive_result.average_ratio:.2f}")


if __name__ == "__main__":
    main()

"""Serving through failures: fault injection, migration, predictive placement.

Two scenarios on a three-GPU cluster under steady Poisson load:

1. **Crash + migration** — server 0 crashes mid-run (and later recovers).
   Without migration its in-flight and pinned batches are lost work: the
   dropped requests count as deadline misses and the cluster falls below a
   p99 deadline-attainment SLO (>= 99% of requests meet their deadline).
   With a :class:`~repro.serving.RequeueAtHeadMigration` policy the
   preempted requests are requeued through the scheduler, re-placed on the
   surviving servers (migration latency charged explicitly) and the SLO
   holds; redistribute and deadline-aware policies show the same save.
2. **Slowdown + predictive placement** — server 0 silently degrades to an
   8x service time.  Placers scoring with *nominal* speeds keep trusting
   it; the :class:`~repro.serving.PredictivePlacer` reads the windowed
   telemetry trends (served-per-busy-second EWMA), notices the degradation
   and routes around it, cutting tail latency several-fold at the same
   throughput.

Run with:  python examples/resilient_cluster.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.data.traces import PoissonTrace
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    DropExpiredMigration,
    FaultEvent,
    FaultSchedule,
    RedistributeMigration,
    RequeueAtHeadMigration,
    gpu_server,
    requests_from_trace,
    summarize_migrations,
)

DEADLINE_SLO = 0.8          # per-request relative deadline (seconds)
ATTAINMENT_TARGET = 0.99    # the p99 deadline-attainment SLO
RATE = 3000                 # req/s over three A6000-class servers
DURATION = 6.0
CRASH_AT, RECOVER_AT = 2.0, 4.0
WINDOW = 0.25               # control/telemetry window (seconds)


def build_requests(duration: float = DURATION, rate: float = RATE, seed: int = 5):
    trace = PoissonTrace(rate, duration=duration, seed=seed).generate()
    return requests_from_trace(trace, model="m", deadlines=[DEADLINE_SLO])


def build_specs(count: int = 3):
    return [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(count)]


def run_crash(migration, requests=None):
    """One cluster run with a mid-run crash (and recovery) of server 0."""
    cluster = ClusterEngine(
        build_specs(),
        BatchingConfig(max_batch=64),
        fault_schedule=FaultSchedule.single_crash(
            0, at=CRASH_AT, recover_at=RECOVER_AT
        ),
        migration=migration,
        window=WINDOW,
    )
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def run_no_fault(requests=None):
    cluster = ClusterEngine(build_specs(), BatchingConfig(max_batch=64), window=WINDOW)
    cluster.register("m", mode="int8")
    return cluster.run(requests=requests if requests is not None else build_requests())


def crash_scenario(requests=None):
    """All crash-demo deployments, keyed by label (reused by the tests)."""
    return {
        "no fault": run_no_fault(requests),
        "crash, no migration": run_crash(None, requests),
        "crash + requeue-at-head": run_crash(
            RequeueAtHeadMigration(delay=0.01), requests
        ),
        "crash + redistribute": run_crash(
            RedistributeMigration(delay=0.01, chunk=16, stagger=0.01), requests
        ),
        "crash + drop-expired": run_crash(DropExpiredMigration(delay=0.01), requests),
    }


def slowdown_scenario(seed: int = 7):
    """Placer comparison under a silent 8x slowdown of server 0."""
    trace = PoissonTrace(3500, duration=8.0, seed=seed).generate()
    requests = requests_from_trace(trace, model="m")
    faults = FaultSchedule(
        [FaultEvent(time=2.0, server=0, kind="slowdown", factor=8.0)]
    )
    outcomes = {}
    for placer in ("weighted", "predictive"):
        cluster = ClusterEngine(
            build_specs(),
            BatchingConfig(max_batch=64),
            placer=placer,
            fault_schedule=faults,
            window=WINDOW,
        )
        cluster.register("m", mode="int8")
        outcomes[placer] = cluster.run(requests=requests, record_responses=False)
    return outcomes


def main() -> None:
    requests = build_requests()
    print(
        f"Cluster: 3x A6000 ViT-Base, {RATE} req/s Poisson for {DURATION:.0f}s "
        f"({len(requests)} requests, {DEADLINE_SLO:.1f}s deadlines)"
    )

    # ------------------------------------------------------------------
    # 1. Mid-run crash: lost work vs preemption & migration
    # ------------------------------------------------------------------
    print(
        f"\n1. Fault plane: server g0 crashes at t={CRASH_AT:.0f}s, "
        f"recovers at t={RECOVER_AT:.0f}s"
    )
    outcomes = crash_scenario(requests)
    rows = []
    for label, outcome in outcomes.items():
        result = outcome.result
        attainment = outcome.deadline_attainment()
        rows.append(
            [
                label,
                attainment * 100.0,
                "yes" if attainment >= ATTAINMENT_TARGET else "NO",
                result.dropped,
                result.migrated,
                outcome.p99_latency * 1e3,
            ]
        )
    print(
        format_table(
            [
                "deployment",
                "deadlines met (%)",
                f"SLO>={ATTAINMENT_TARGET:.0%}",
                "lost",
                "migrated",
                "p99 (ms)",
            ],
            rows,
            precision=2,
        )
    )
    migrating = outcomes["crash + requeue-at-head"]
    summary = summarize_migrations(migrating.result.responses)
    print(
        f"   Migration rescued {summary['served_after_migration']:.0f} requests "
        f"({summary['moves']:.0f} moves) the non-migrating cluster dropped."
    )
    print("   Fault timeline (applied at window boundaries):")
    for event in migrating.fault_events:
        print(
            f"     t={event.time:5.2f}s  {event.kind:>8s} server {event.server}"
            + (f"  x{event.factor:g}" if event.kind == "slowdown" else "")
        )

    # ------------------------------------------------------------------
    # 2. Silent slowdown: nominal-speed vs predictive placement
    # ------------------------------------------------------------------
    print("\n2. Predictive placement: server g0 silently degrades to 8x service time")
    slow = slowdown_scenario()
    rows = [
        [
            {"weighted": "weighted by (stale) nominal speed",
             "predictive": "predictive (telemetry EWMA)"}[name],
            outcome.throughput,
            outcome.latency_percentile(50) * 1e3,
            outcome.p99_latency * 1e3,
        ]
        for name, outcome in slow.items()
    ]
    print(format_table(["placement", "req/s", "p50 (ms)", "p99 (ms)"], rows, precision=2))
    ratio = slow["weighted"].p99_latency / slow["predictive"].p99_latency
    print(
        f"   The predictive placer routes around the degraded server: "
        f"{ratio:.1f}x lower p99 at matched throughput."
    )


if __name__ == "__main__":
    main()

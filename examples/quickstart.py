"""Quickstart: quantize a vision model with FlexiQ and switch ratios at runtime.

This walks through the core FlexiQ workflow end to end:

1. obtain a pre-trained model and a calibration set,
2. run the FlexiQ pipeline (8-bit base quantization, channel scoring,
   evolutionary selection for nested 4-bit ratios, layout optimization),
3. evaluate accuracy at every 4-bit ratio,
4. switch the deployed ratio at runtime and look at the per-layer effect.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.pipeline import evaluate_ratio_sweep
from repro.core.selection import SelectionConfig
from repro.data import CalibrationSampler
from repro.baselines.uniform import uniform_accuracy_sweep
from repro.train.loop import evaluate_accuracy
from repro.train.pretrain import get_dataset_for, get_pretrained


def main() -> None:
    model_name = "resnet18"
    print(f"Loading pre-trained {model_name} (trains once, then cached)...")
    model = get_pretrained(model_name)
    dataset = get_dataset_for(model_name)
    calibration = CalibrationSampler(dataset.train_images, size=64, batch_size=32)

    print("Running the FlexiQ pipeline (scoring + evolutionary selection)...")
    config = FlexiQConfig(
        ratios=(0.25, 0.5, 0.75, 1.0),
        group_size=4,
        selection="evolutionary",
        selection_config=SelectionConfig(group_size=4, population_size=8, generations=5),
    )
    pipeline = FlexiQPipeline(model, calibration.all(), config)
    runtime = pipeline.run()

    print("Evaluating accuracy across 4-bit ratios...")
    fp_accuracy = evaluate_accuracy(model, dataset)
    uniform = uniform_accuracy_sweep(model, dataset, calibration.all(), bit_widths=(4, 8))
    sweep = evaluate_ratio_sweep(runtime, dataset)

    rows = [["full precision", fp_accuracy],
            ["uniform INT8", uniform[8]],
            ["uniform INT4", uniform[4]]]
    rows += [[f"FlexiQ {int(ratio * 100)}% 4-bit", accuracy]
             for ratio, accuracy in sorted(sweep.items())]
    print(format_table(["configuration", "accuracy (%)"], rows, precision=1,
                       title=f"\n{model_name}: accuracy vs precision"))

    # Runtime ratio switching is a single pointer update per layer.
    runtime.set_ratio(0.5)
    fractions = runtime.per_layer_4bit_fraction()
    print("\nPer-layer 4-bit fraction at the 50% operating point:")
    for layer, fraction in list(fractions.items())[:8]:
        print(f"  {layer:<40s} {fraction * 100:5.1f}%")
    print(f"  ... ({len(fractions)} layers total, "
          f"average weight bits = {runtime.average_weight_bits():.2f})")


if __name__ == "__main__":
    main()

"""Observability triad over the zone-outage scenario: traces, metrics, SLOs.

Re-runs the warm-spare deployment from ``zone_outage.py`` — six servers in
three zones, zone A failing as a unit at t=2s — with the ``repro.obs``
subsystem attached:

1. **Request-lifecycle tracing** — a sampled :class:`~repro.obs.Tracer`
   records queued/execute/served spans plus the outage's preemption,
   migration and retry hops, and the run exports to Chrome trace-event
   JSON: load the written file at https://ui.perfetto.dev (or
   ``chrome://tracing``) and the outage renders as per-server swimlanes
   with fault, promotion and alert markers.
2. **SLO burn-rate monitoring** — a :class:`~repro.obs.SloMonitor`
   watches a deadline-attainment objective and a tight latency objective
   at every control window; the outage torches the latency error budget
   and the multi-window burn-rate rules page (fast+slow panes both over
   threshold), landing :class:`~repro.obs.AlertEvent` markers on the
   merged timeline next to the faults that caused them.
3. **Metrics export** — the finished run populates a
   :class:`~repro.obs.MetricsRegistry` and serializes to Prometheus text
   exposition (scrapeable ``/metrics`` payload) and a JSON snapshot.

Run with:  python examples/observability_demo.py [output_trace.json]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import zone_outage as zo  # noqa: E402  (scenario constants + builders)

from repro.obs import (  # noqa: E402
    BurnRateRule,
    SloMonitor,
    SloObjective,
    Tracer,
    prometheus_exposition,
    registry_from_cluster,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.serving import (  # noqa: E402
    BatchingConfig,
    ClusterEngine,
    RequeueAtHeadMigration,
    StepCheckpoint,
    WarmSparePool,
)

#: Tight latency objective the outage actually violates (the 0.8s deadline
#: SLO survives thanks to the warm spares; the p99-style 150ms objective
#: does not — exactly the gap burn-rate alerting is for).
LATENCY_OBJECTIVE_SECONDS = 0.15
SAMPLE_RATE = 0.05


def build_observed_cluster(tracer: Tracer, monitor: SloMonitor) -> ClusterEngine:
    """The zone_outage warm-spare deployment, with observability attached."""
    cluster = ClusterEngine(
        zo.build_specs(),
        BatchingConfig(max_batch=64),
        placer="spread",
        warm_spares=WarmSparePool(
            [4, 5], promotion_latency=zo.PROMOTION_LATENCY
        ),
        fault_schedule=zo.outage_schedule(),
        migration=RequeueAtHeadMigration(delay=zo.MIGRATION_DELAY),
        checkpoint=StepCheckpoint(steps=4),
        window=zo.WINDOW,
        tracer=tracer,
        slo_monitor=monitor,
    )
    cluster.register("m", mode="int8")
    return cluster


def main() -> None:
    out_path = Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else Path(tempfile.gettempdir()) / "observability_trace.json"
    )
    requests = zo.build_requests()
    tracer = Tracer(sample_rate=SAMPLE_RATE)
    monitor = SloMonitor(
        objectives=[
            SloObjective("deadline_attainment", target=zo.ATTAINMENT_TARGET),
            SloObjective(
                "latency_150ms",
                target=0.99,
                kind="latency",
                latency_slo_seconds=LATENCY_OBJECTIVE_SECONDS,
            ),
        ],
        # The default rule pair assumes a long horizon; this run is 6s of
        # 0.25s windows, so the panes scale down (page: 1-window incident
        # confirmed over 4; ticket: slower burn confirmed over 12).
        rules=[
            BurnRateRule(
                threshold=14.4, fast_windows=1, slow_windows=4,
                severity="page",
            ),
            BurnRateRule(
                threshold=3.0, fast_windows=6, slow_windows=12,
                severity="ticket",
            ),
        ],
    )
    print(
        f"Observability demo: zone-outage warm-spare run, "
        f"{len(requests)} requests, tracer sample_rate={SAMPLE_RATE}, "
        f"zone A down t={zo.OUTAGE_AT:.0f}s..{zo.RECOVER_AT:.0f}s"
    )
    outcome = build_observed_cluster(tracer, monitor).run(requests=requests)

    counts = tracer.span_counts()
    print(
        f"   Traced spans: {len(tracer.store)} total — "
        f"{counts['execute']} execute, {counts['queued']} queued, "
        f"{counts['served']} served, {counts['preempted']} preempted, "
        f"{counts['migrate']} migrate, {counts['retry']} retry"
    )
    terminals = tracer.terminal_requests()
    conserved = all(count == 1 for count in terminals.values())
    print(
        f"   Trace conservation: {len(terminals)} traced requests, "
        f"one terminal each: {'yes' if conserved else 'NO'}"
    )

    print("   SLO burn-rate alerts (on the merged timeline):")
    for alert in outcome.alert_events:
        print(
            f"     t={alert.time:5.2f}s  [{alert.severity:>6s}] "
            f"{alert.objective}: burning {alert.burn_fast:.0f}x budget "
            f"(fast) / {alert.burn_slow:.0f}x (slow), "
            f"threshold {alert.threshold:g}x"
        )
    attainment = outcome.deadline_attainment()
    print(
        f"   Run outcome: deadline attainment {attainment * 100:.2f}% "
        f"(target {zo.ATTAINMENT_TARGET:.0%}), p99 "
        f"{outcome.p99_latency * 1e3:.0f}ms, {outcome.migrated} migrated"
    )

    trace = to_chrome_trace(
        tracer,
        timeline=outcome.timeline(),
        server_names=[spec.name for spec in outcome.specs],
    )
    validate_chrome_trace(trace)
    out_path.write_text(json.dumps(trace))
    print(
        f"   Perfetto trace written: {out_path} "
        f"({len(trace['traceEvents'])} events; open at ui.perfetto.dev)"
    )

    registry = registry_from_cluster(outcome)
    exposition = prometheus_exposition(registry)
    print("   Prometheus exposition (head):")
    for line in exposition.splitlines()[:8]:
        print(f"     {line}")
    print(f"     ... ({len(exposition.splitlines())} lines total)")


if __name__ == "__main__":
    main()

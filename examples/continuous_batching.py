"""Continuous batching vs run-to-completion on a mixed generation trace.

A single A6000-class server serves an autoregressive trace with *mixed*
prompt lengths and generation lengths (short chatty requests interleaved
with long-prompt, long-output ones) — the workload shape that breaks
static batching.  Four deployments see the identical Poisson trace:

1. **run-to-completion** — classic static batching: a FIFO batch is
   admitted once, every member prefills, then the batch decodes at full
   width until the *longest* member finishes.  Early finishers pad their
   slots (wasted decode width), and a prompt that arrives mid-batch waits
   for the whole batch before its first token (head-of-line TTFT).
2. **continuous (FCFS)** — the :class:`~repro.serving.generation.
   IterationScheduler`: finished sequences retire and queued prompts join
   at every decode-iteration boundary.  Same FIFO fairness, no padding,
   no batch-granular head-of-line blocking.
3. **continuous (prefill-priority)** — admission prefers the shortest
   waiting prompt, bounding the prefill stall each boundary inserts.
4. **continuous + decode-pressure ratio** — a
   :class:`~repro.serving.policies.DecodePressureRatioPolicy` watches the
   per-iteration generation context (tokens in flight + queued prefill
   work) and switches the running batch to the 4-bit plane *mid-sequence*
   when pressure is high — an O(1) prepared-kernel ratio flip, no rebuild.

The comparison is the headline claim of iteration-level scheduling:
continuous batching beats run-to-completion on **both** TTFT p99 (admission
happens at iteration boundaries, not batch boundaries) **and** tokens/sec
(no padded decode steps), on the same trace and the same cost model.

Run with:  python examples/continuous_batching.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.data.traces import PoissonTrace
from repro.serving import (
    DecodePressureRatioPolicy,
    FcfsAdmission,
    IterationScheduler,
    ModeledGenerationBackend,
    PrefillPriorityAdmission,
    ServiceTimeModel,
    requests_from_trace,
    run_to_completion,
)

RATE = 120                   # generation requests per second (Poisson)
DURATION = 2.0               # trace horizon (seconds)
MAX_BATCH = 8                # batch width cap (both deployments)
SEED = 7
PROMPT_TOKENS = (32, 512, 96, 256)    # mixed prompt lengths (round-robin)
NEW_TOKENS = (96, 8, 160, 16)         # mixed generation lengths
DECODE_FRACTION = 0.05       # decode-step cost vs one-shot forward
PRESSURE_THRESHOLD = 900     # tokens in flight before the int4 switch


def build_requests(duration: float = DURATION, rate: float = RATE, seed: int = SEED):
    trace = PoissonTrace(rate, duration=duration, seed=seed).generate()
    return requests_from_trace(
        trace,
        model="m",
        prefill_tokens=list(PROMPT_TOKENS),
        max_new_tokens=list(NEW_TOKENS),
    )


def build_backend():
    return ModeledGenerationBackend(
        ServiceTimeModel(
            "vit_base", gpu="a6000", decode_token_fraction=DECODE_FRACTION
        )
    )


def run_static(requests=None):
    return run_to_completion(
        requests if requests is not None else build_requests(),
        build_backend(),
        max_batch=MAX_BATCH,
    )


def run_continuous(requests=None, admission=None, policy=None):
    scheduler = IterationScheduler(
        build_backend(),
        max_batch=MAX_BATCH,
        admission=admission,
        policy=policy,
    )
    return scheduler.run(requests if requests is not None else build_requests())


def ratio_switches(result):
    """Mid-run precision switches: ratio changes between iterations."""
    ratios = [record.ratio for record in result.iterations]
    return sum(1 for a, b in zip(ratios, ratios[1:]) if a != b)


def generation_scenario(requests=None):
    """All deployments on the same trace (reused by tests and benchmarks)."""
    if requests is None:
        requests = build_requests()
    return {
        "run-to-completion": run_static(requests),
        "continuous (fcfs)": run_continuous(requests, admission=FcfsAdmission()),
        "continuous (prefill-priority)": run_continuous(
            requests, admission=PrefillPriorityAdmission()
        ),
        "continuous (decode-pressure int4)": run_continuous(
            requests,
            admission=PrefillPriorityAdmission(),
            policy=DecodePressureRatioPolicy(
                pressure_threshold=PRESSURE_THRESHOLD, waiting_weight=64.0
            ),
        ),
    }


def main() -> None:
    requests = build_requests()
    total_new = sum(r.max_new_tokens for r in requests)
    print(
        f"Continuous batching: {len(requests)} generation requests "
        f"({RATE}/s Poisson over {DURATION:.0f}s), prompts "
        f"{min(PROMPT_TOKENS)}-{max(PROMPT_TOKENS)} tokens, "
        f"{min(NEW_TOKENS)}-{max(NEW_TOKENS)} new tokens "
        f"({total_new} tokens total), one A6000-class server, "
        f"max_batch={MAX_BATCH}"
    )

    outcomes = generation_scenario(requests)
    rows = []
    for label, result in outcomes.items():
        stream = result.streaming((50, 99))
        rows.append(
            [
                label,
                stream["ttft_p50"] * 1e3,
                stream["ttft_p99"] * 1e3,
                stream["inter_token_p99"] * 1e3,
                stream["tokens_per_sec"],
                result.duration,
            ]
        )
    print(
        format_table(
            [
                "deployment",
                "ttft p50 (ms)",
                "ttft p99 (ms)",
                "inter-tok p99 (ms)",
                "tokens/sec",
                "makespan (s)",
            ],
            rows,
            precision=2,
        )
    )

    static = outcomes["run-to-completion"].streaming((99,))
    continuous = outcomes["continuous (fcfs)"].streaming((99,))
    print(
        f"   Continuous batching beats run-to-completion on both axes: "
        f"TTFT p99 {continuous['ttft_p99'] * 1e3:.0f}ms vs "
        f"{static['ttft_p99'] * 1e3:.0f}ms, throughput "
        f"{continuous['tokens_per_sec']:.0f} vs "
        f"{static['tokens_per_sec']:.0f} tokens/sec."
    )
    switches = ratio_switches(outcomes["continuous (decode-pressure int4)"])
    print(
        f"   Decode-pressure policy made {switches} mid-sequence precision "
        f"switches (>= {PRESSURE_THRESHOLD} tokens in flight -> 4-bit plane), "
        f"each an O(1) prepared-kernel ratio flip."
    )


if __name__ == "__main__":
    main()

"""Tour of the hardware latency models: GPU fleet, NPU and kernel internals.

Reproduces the latency side of the paper's evaluation on synthetic hardware:

* per-GPU latency of ViT-Base across FlexiQ ratios (Table 4),
* the framework comparison (Table 3),
* the NPU cycle model for ResNet-18 (Figure 7 right), and
* the functional mixed-precision GEMM kernel, verifying that its integer
  arithmetic matches the reference formulation while counting MMA and
  shift-accumulate operations.

Run with:  python examples/hardware_latency_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.core.bit_extraction import extraction_shift
from repro.hardware.devices import GPU_CATALOG
from repro.hardware.frameworks import framework_comparison
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.kernels import MixedPrecisionGemm, mixed_gemm_reference
from repro.hardware.npu import NpuLatencyModel
from repro.hardware.workloads import model_ops

RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)


def gpu_fleet_table() -> None:
    ops = model_ops("vit_base", 16)
    rows = []
    for gpu in GPU_CATALOG:
        model = GpuLatencyModel(gpu)
        row = [gpu, model.model_latency(ops, "int8") * 1e3]
        row += [model.model_latency(ops, "flexiq", four_bit_ratio=r) * 1e3 for r in RATIOS[1:]]
        row.append(model.model_latency(ops, "int4") * 1e3)
        rows.append(row)
    headers = ["GPU", "INT8"] + [f"FlexiQ {int(r*100)}%" for r in RATIOS[1:]] + ["INT4"]
    print(format_table(headers, rows, precision=2,
                       title="ViT-Base, batch 16: latency (ms) across GPUs (Table 4)"))


def framework_table() -> None:
    model = GpuLatencyModel("a6000")
    comparison = framework_comparison(model, model_ops("vit_base", 16))
    rows = [[name, value * 1e3] for name, value in comparison.items()]
    print(format_table(["framework", "latency (ms)"], rows, precision=2,
                       title="\nViT-Base, batch 16, A6000: framework comparison (Table 3)"))


def npu_table() -> None:
    npu = NpuLatencyModel()
    ops = model_ops("resnet18", 1)
    rows = [
        [f"{int(r * 100)}%", npu.model_latency(ops, four_bit_ratio=r) * 1e3]
        for r in RATIOS
    ]
    print(format_table(["4-bit ratio", "latency (ms)"], rows, precision=2,
                       title="\nResNet-18 on the 32x32 systolic-array NPU (Figure 7)"))


def kernel_demo() -> None:
    rng = np.random.default_rng(0)
    channels, rows_, out = 64, 8, 16
    channel_max = rng.integers(8, 128, size=channels)
    q_x = np.stack([rng.integers(-m, m + 1, size=rows_) for m in channel_max], axis=1)
    q_w = np.stack([rng.integers(-m, m + 1, size=out) for m in channel_max], axis=1)
    shifts = extraction_shift(channel_max, 8, 4)
    group_shifts = shifts.reshape(-1, 8).max(axis=1).repeat(8)

    kernel = MixedPrecisionGemm(group_size=8)
    boundary = 32
    acc = kernel(q_x, q_w, boundary, group_shifts, group_shifts)
    reference = mixed_gemm_reference(q_x, q_w, boundary, group_shifts, group_shifts)
    assert np.array_equal(acc, reference)

    stats = kernel.stats
    rows = [
        ["INT4 MMA multiply-accumulates", stats.mma_int4],
        ["INT8 MMA multiply-accumulates", stats.mma_int8],
        ["shift-accumulate operations", stats.shift_accumulates],
        ["weight bytes read", stats.weight_bytes],
        ["activation bytes read", stats.activation_bytes],
    ]
    print(format_table(["kernel statistic", "count"], rows, precision=0,
                       title="\nFunctional mixed GEMM (64 channels, 50% 4-bit prefix)"))


def main() -> None:
    gpu_fleet_table()
    framework_table()
    npu_table()
    kernel_demo()


if __name__ == "__main__":
    main()

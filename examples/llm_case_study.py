"""Section 8.10 case study: applying FlexiQ to a small language model.

Trains (or loads) the tiny decoder-only LM on the synthetic character corpus,
quantizes it with FlexiQ, and reports perplexity for full precision, INT8,
FlexiQ at 25-100% 4-bit ratios, and uniform INT4 -- reproducing the ordering
the paper observes for OPT-350m on WikiText2.

Run with:  python examples/llm_case_study.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.selection import SelectionConfig
from repro.data.text import build_text_corpus
from repro.train.pretrain import get_pretrained


def main() -> None:
    print("Loading the pre-trained tiny decoder LM (trains once, then cached)...")
    model = get_pretrained("tiny_lm")
    corpus = build_text_corpus()
    test_sequences = corpus.test_sequences()[:64]
    calibration = corpus.train_sequences()[:64]
    forward_fn = lambda m, batch: m(batch)

    print("Quantizing with FlexiQ...")
    config = FlexiQConfig(
        ratios=(0.25, 0.5, 0.75, 1.0), group_size=4, selection="greedy",
        selection_config=SelectionConfig(group_size=4),
    )
    runtime = FlexiQPipeline(model, calibration, config, forward_fn=forward_fn).run()

    rows = [["full precision", model.perplexity(test_sequences)]]
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        runtime.set_ratio(ratio)
        label = "INT8 (FlexiQ 0%)" if ratio == 0.0 else f"FlexiQ {int(ratio * 100)}%"
        rows.append([label, runtime.model.perplexity(test_sequences)])

    # The LLM takes raw token ids, so pass a custom forward_fn for calibration.
    from repro.quant.qmodel import quantize_model

    int4 = quantize_model(
        model, weight_bits=4,
        calibration_batches=[calibration[i : i + 16] for i in range(0, len(calibration), 16)],
        forward_fn=forward_fn,
    )
    rows.append(["uniform INT4", int4.perplexity(test_sequences)])

    print(format_table(["configuration", "perplexity"], rows, precision=2,
                       title="\nLLM case study (tiny decoder LM, synthetic corpus)"))
    print(
        "\nExpected shape (mirroring the paper's OPT-350m results): perplexity rises\n"
        "gently from INT8 through the FlexiQ ratios and collapses for uniform INT4."
    )


if __name__ == "__main__":
    main()

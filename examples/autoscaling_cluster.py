"""Elastic heterogeneous serving: the cluster control plane in one scenario.

A day of traffic in twenty simulated seconds: a diurnal cycle (night floor,
midday peak) with a flash-crowd spike superimposed on the ramp, served by a
heterogeneous cluster — two datacenter GPUs plus two scaled-up NPUs — under
:class:`~repro.serving.ClusterEngine`:

1. **Heterogeneous placement** — the same trace dispatched argmin-free-clock
   (the seed rule) vs least-outstanding-work vs weighted-by-speed.  The
   speed-aware placers stop feeding head-of-line batches to idle slow NPUs,
   winning throughput *and* tail latency on the mixed cluster.
2. **Elastic autoscaling** — a static minimal deployment (one GPU) misses a
   p99 SLO the spike tramples; the autoscaled cluster (windowed p99
   telemetry, hysteresis, provisioning lag) scales 1 -> 4 servers through
   the spike, meets the SLO, then shrinks back — paying far fewer
   server-seconds than a static fleet sized for the peak.
3. **Per-server adaptation** — the paper's ratio controller, finally fed
   per-server telemetry: each server raises its own 4-bit ratio only while
   *it* is the loaded one.

Run with:  python examples/autoscaling_cluster.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import DiurnalTrace, SpikeTrace, merge_traces
from repro.hardware.npu import NpuConfig
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    PerServerAdaptiveRatioPolicy,
    SloLatencyAutoscaler,
    gpu_server,
    npu_server,
    requests_from_trace,
)

SLO_SECONDS = 0.5  # p99 response-time target


def build_trace():
    """Diurnal cycle + flash crowd: the autoscaler's canonical workload."""
    diurnal = DiurnalTrace(
        night_rate=250, peak_rate=1400, duration=20.0, period=20.0, seed=3
    ).generate()
    spike = SpikeTrace(
        base_rate=1e-9, spike_rate=2000, spike_start=7.0, spike_duration=4.0,
        duration=20.0, seed=4,
    ).generate()
    return merge_traces(diurnal, spike)


def build_specs():
    """Two fast GPUs + two merely-slow NPUs (scaled-up 64x64 arrays)."""
    npu_config = NpuConfig(array_rows=64, array_cols=64, clock_mhz=800.0)
    return [
        gpu_server("gpu0", "vit_base", gpu="a6000"),
        gpu_server("gpu1", "vit_base", gpu="a6000"),
        npu_server("npu0", "vit_base", config=npu_config),
        npu_server("npu1", "vit_base", config=npu_config),
    ]


def main() -> None:
    trace = build_trace()
    requests = requests_from_trace(trace, model="vit")
    specs = build_specs()
    print(
        f"Trace: {len(requests)} requests over {trace.duration:.0f}s "
        f"({trace.description})"
    )
    print(
        "Cluster: "
        + ", ".join(f"{s.name}[{s.device}] ~{s.speed:.0f} req/s" for s in specs)
    )

    # ------------------------------------------------------------------
    # 1. Placement on the heterogeneous cluster
    # ------------------------------------------------------------------
    rows = []
    for label, placer in (
        ("argmin free clock (seed)", None),
        ("least outstanding work", "least_work"),
        ("weighted by speed", "weighted"),
    ):
        cluster = ClusterEngine(specs, BatchingConfig(max_batch=64), placer=placer)
        cluster.register("vit", mode="int8")
        outcome = cluster.run(requests=requests, record_responses=False)
        rows.append(
            [
                label,
                outcome.throughput,
                outcome.latency_percentile(50) * 1e3,
                outcome.p99_latency * 1e3,
                outcome.slo_attainment(SLO_SECONDS) * 100.0,
            ]
        )
    print(
        format_table(
            ["placement", "req/s", "p50 (ms)", "p99 (ms)", f"SLO<{SLO_SECONDS}s (%)"],
            rows,
            precision=2,
            title="\n1. Heterogeneous placement (2x GPU + 2x NPU, all active)",
        )
    )

    # ------------------------------------------------------------------
    # 2. Static minimal vs autoscaled vs static peak
    # ------------------------------------------------------------------
    def autoscaled():
        return ClusterEngine(
            [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(4)],
            BatchingConfig(max_batch=64),
            autoscaler=SloLatencyAutoscaler(
                slo_seconds=0.15, percentile=99, headroom=0.3, patience=3
            ),
            min_servers=1,
            window=0.5,
            startup_delay=0.25,
        )

    def static(k):
        return ClusterEngine(
            [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(k)],
            BatchingConfig(max_batch=64),
        )

    rows = []
    scale_story = None
    for label, cluster in (
        ("static x1 (minimal)", static(1)),
        ("autoscaled 1..4", autoscaled()),
        ("static x4 (peak-sized)", static(4)),
    ):
        cluster.register("vit", mode="int8")
        outcome = cluster.run(requests=requests, record_responses=False)
        if outcome.scale_events:
            scale_story = outcome
        rows.append(
            [
                label,
                outcome.p99_latency * 1e3,
                outcome.slo_attainment(SLO_SECONDS) * 100.0,
                outcome.server_seconds,
                outcome.peak_active,
            ]
        )
    print(
        format_table(
            ["deployment", "p99 (ms)", f"SLO<{SLO_SECONDS}s (%)", "server-s", "peak K"],
            rows,
            precision=2,
            title="\n2. Elastic autoscaling through the spike (homogeneous GPUs)",
        )
    )
    print("\n   Scale events (SLO-driven, 0.5s windows, 0.25s provisioning lag):")
    if scale_story is None:
        print("     (none — the SLO was never threatened at this load)")
    else:
        for event in scale_story.scale_events:
            print(
                f"     t={event.time:5.2f}s  {event.action:>6s} server {event.server}"
                f"  -> {event.active_after} active   ({event.reason})"
            )

    # ------------------------------------------------------------------
    # 3. Per-server ratio adaptation from telemetry
    # ------------------------------------------------------------------
    service = specs[0].service_model

    def latency_fn(ratio, rate):
        from repro.data.traces import PoissonTrace
        from repro.serving import ServingSimulator

        probe = PoissonTrace(max(rate, 1), duration=2.0, seed=11).generate()
        return ServingSimulator(service).run(probe, "flexiq", ratio=ratio).median_latency

    profile = build_profile_from_latency_fn(
        [200, 600, 1000, 1600, 2200, 2800], [0.0, 0.25, 0.5, 0.75, 1.0], latency_fn
    )
    policy = PerServerAdaptiveRatioPolicy(
        lambda: AdaptiveRatioController(profile, latency_threshold=0.05),
        control_window=1.0,
    )
    # One GPU + two NPUs: the spike overloads the GPU *specifically*, so only
    # its controller should spend accuracy — the NPUs' stay at full precision.
    small = [specs[0], specs[2], specs[3]]
    cluster = ClusterEngine(small, BatchingConfig(max_batch=64), placer="weighted")
    cluster.register("vit", policy=policy, mode="flexiq")
    outcome = cluster.run(requests=requests, record_responses=False)
    rows = []
    for server, spec in enumerate(small):
        updates = [e for e in policy.timeline if e["server"] == server]
        series = outcome.telemetry.server_series(server)
        rows.append(
            [
                f"{spec.name}[{spec.device}]",
                sum(s.served for s in series),
                max((e["rate"] for e in updates), default=0.0),
                max((e["ratio"] for e in updates), default=0.0),
                sum(s.busy_time for s in series),
            ]
        )
    print(
        format_table(
            ["server", "served", "peak rate seen", "peak 4-bit ratio", "busy (s)"],
            rows,
            precision=2,
            title="\n3. Per-server adaptive ratios (1 GPU + 2 NPUs, telemetry-fed)",
        )
    )
    print(
        f"\n   Cluster p99 {outcome.p99_latency * 1e3:.1f} ms at batch-weighted "
        f"executed ratio {outcome.result.mean_executed_ratio:.2f} "
        "(accuracy spent only where the load landed)."
    )


if __name__ == "__main__":
    main()

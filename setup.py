"""Setuptools entry point.

The offline evaluation environment has no ``wheel`` package, so PEP 660
editable installs are unavailable; this classic ``setup.py`` keeps
``pip install -e .`` working via the legacy develop path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "FlexiQ: adaptive mixed-precision quantization for latency/accuracy "
        "trade-offs (EuroSys '26 reproduction)"
    ),
    author="FlexiQ reproduction authors",
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
)

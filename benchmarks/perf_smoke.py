"""Standalone perf smoke test for the prepared-kernel cache.

Measures repeated quantized inference (the serving steady state: every
forward after ``freeze()`` + ``configure()``) on ResNet-18 and ViT-small,
comparing the prepared-kernel fast path against the uncached reference
implementation (the seed behaviour, which re-derives all weight-side state
from the float weights on every call).  Two granularities are reported:

* ``quantized`` -- the microbenchmark proper: repeated forwards through the
  model's quantized (FlexiQ) layers on captured activations, isolating the
  path the prepared-kernel subsystem optimizes;
* ``end_to_end`` -- full model forwards, which additionally include the
  float glue (batch norm, activations, attention softmax, residuals);
* ``serving`` -- sustained requests/second through the serving engine's
  ``RuntimeExecutor`` at batch 8 with a heterogeneous-ratio batch stream
  (round-robin over the runtime's available ratios), the serving hot path
  the unified ``ServingEngine`` API optimizes.  The measurement also counts
  prepared-kernel rebuilds, which must stay at zero: per-batch ratio
  switching is an O(1) variable update.

A top-level ``cluster_scaling`` section exercises the PR 3 multi-server
dispatch layer: one ``ServingEngine`` coordinating K modeled accelerators
under a saturating Poisson trace.  Throughput (served requests per second
of simulated makespan) must scale near-linearly in K while every server
stays busy; the recorded efficiency is throughput(K) / (K * throughput(1)).

A ``heterogeneous_placement`` section exercises the PR 4 cluster control
plane: a mixed-speed cluster (one fast GPU, two slow NPUs) serves the same
near-capacity trace under the seed argmin-free-clock dispatch and under the
speed-aware placers (least-outstanding-work, weighted-by-speed).  The smart
placers must win throughput *and* p99 strictly — free-clock keeps handing
head-of-line batches to idle slow servers, stretching the makespan.  The
workload is a deterministic simulation, so the gate is exact, not a timing
threshold.

A ``fault_tolerance`` section exercises the PR 5 resilience subsystem: a
three-GPU cluster with per-request deadlines loses one server mid-run.
Without migration the crashed server's in-flight and pinned batches are
lost work (drops = deadline misses) and the run falls below a 99%
deadline-attainment SLO; with preemption & migration every victim is
requeued, re-placed and served — 100% conservation, SLO met.  Also exact:
the schedules are deterministic.

A ``failure_domains`` section exercises the PR 6 failure-domain layer on
the exact ``examples/zone_outage.py`` scenario (imported, so the demo and
the gate cannot drift): a whole zone — two of four active servers — fails
as a unit.  The flat single-domain cluster misses the deadline-attainment
SLO; reactive cold standby meets it but pays the provisioning lag; spread
placement + warm spares meet it with the lowest p99 (promotion latency
only).  Deterministic, so the gates are exact.

A ``continuous_batching`` section exercises the PR 7 generation subsystem
on the exact ``examples/continuous_batching.py`` scenario (imported, same
no-drift rule): a mixed prompt-/generation-length trace served by static
run-to-completion batching and by the iteration-level scheduler.
Continuous batching must beat static on both TTFT p99 and tokens/sec, and
the decode-pressure ratio policy must switch precision mid-sequence.
Modeled costs with a fixed trace seed, so these gates are exact too.

Run it directly (finishes well under 60 s with a warm pretrain cache)::

    PYTHONPATH=src python benchmarks/perf_smoke.py

It prints a summary table, verifies that prepared and uncached outputs are
bit-exact, and writes ``benchmarks/results/BENCH_prepared_kernels.json`` so
the perf trajectory is tracked from this PR onward.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # allow `python benchmarks/perf_smoke.py`
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.prepared import PreparedKernel
from repro.core.runtime import FlexiQConv2d, FlexiQLinear, FlexiQModel
from repro.core.selection import SelectionConfig
from repro.data import CalibrationSampler
from repro.nn.registry import get_spec
from repro.hardware.npu import NpuConfig
from repro.serving import (
    BatchingConfig,
    ClusterEngine,
    FaultSchedule,
    FixedRatioPolicy,
    ModeledExecutor,
    Request,
    RequeueAtHeadMigration,
    RoundRobinRatioPolicy,
    RuntimeExecutor,
    ServiceTimeModel,
    ServingEngine,
    ServingSimulator,
    gpu_server,
    npu_server,
    requests_from_trace,
)
from repro.tensor import Tensor
from repro.train.pretrain import get_dataset_for, get_pretrained

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_prepared_kernels.json"

MODELS = ("resnet18", "vit_small")
BENCH_RATIO = 0.5
BATCH = 1
SERVING_BATCH = 8
SERVING_REQUESTS = 64
SERVING_ROUNDS = 3
CLUSTER_SIZES = (1, 2, 4)
CLUSTER_RATE = 12000        # req/s: saturates even the largest cluster
CLUSTER_DURATION = 2.0
HETERO_RATE = 3000          # req/s: ~90% of the mixed cluster's capacity
HETERO_DURATION = 2.0
HETERO_PLACERS = ("free_clock", "least_work", "weighted")
FAULT_RATE = 3000           # req/s over the 3-GPU fault-tolerance cluster
FAULT_DURATION = 6.0
FAULT_CRASH_AT, FAULT_RECOVER_AT = 2.0, 4.0
FAULT_DEADLINE = 0.8        # relative per-request deadline (seconds)
FAULT_SLO = 0.99            # deadline-attainment target

# PR 8 cluster_day workload: a compressed diurnal "day" of >= 1M requests
# over an 8-server cluster, swept through the columnar event-driven core.
DAY_NIGHT_RATE = 3000       # req/s trough of the diurnal curve
DAY_PEAK_RATE = 13000       # req/s midday peak
DAY_DURATION = 130.0        # seconds of simulated time (~1.04M requests)
DAY_SEED = 8
DAY_SERVERS = 8
DAY_MAX_BATCH = 16
DAY_DROP_AFTER = 0.1        # overload sheds instead of queueing unboundedly
DAY_SLICE = 100_000         # head slice used for the vs-seed-loop speedup
DAY_MIN_REQUESTS = 1_000_000
DAY_WALL_BUDGET_S = 30.0    # generous ceiling; measured ~0.3-0.4 s
DAY_PEAK_TRACED_MB = 512.0  # tracemalloc peak budget for the full-day run
DAY_SPEEDUP_TARGET = 10.0   # columnar core vs object loop on the 100k slice

# PR 9 observability overheads on the cluster_day workload: attaching the
# tracing hooks but leaving them disabled must be free (the `tracer is
# None` guards), and sampled tracing must stay cheap enough to leave on.
OBS_SAMPLE_RATE = 0.01      # head-based sampling rate for the traced run
OBS_OFF_OVERHEAD_PCT = 2.0  # tracer=None day vs the cluster_day baseline
OBS_ON_OVERHEAD_PCT = 15.0  # sampled-tracer day vs the tracer=None day


def build_runtime(name: str) -> tuple:
    """FlexiQ runtime (greedy selection: fast, deterministic) plus its data."""
    model = get_pretrained(name)
    dataset = get_dataset_for(name)
    spec = get_spec(name)
    calibration = CalibrationSampler(
        dataset.train_images, size=spec.calibration_size, batch_size=32, seed=0
    )
    config = FlexiQConfig(
        ratios=(0.25, 0.5, 1.0),
        group_size=4,
        selection="greedy",
        selection_config=SelectionConfig(group_size=4),
    )
    runtime = FlexiQPipeline(model, calibration.all(), config).run()
    return runtime, dataset


def capture_layer_inputs(runtime: FlexiQModel, x: Tensor) -> list:
    """(layer, input) pairs for every FlexiQ layer, captured in one forward."""
    layers = [
        (name, module)
        for name, module in runtime.model.named_modules()
        if isinstance(module, (FlexiQConv2d, FlexiQLinear))
    ]
    captured = {}
    originals = {}
    for name, module in layers:
        def wrap(t, _name=name, _forward=module.forward):
            captured[_name] = t
            return _forward(t)

        originals[name] = module.forward
        module.forward = wrap
    try:
        runtime(x)
    finally:
        for name, module in layers:
            module.forward = originals[name]
    return [(module, captured[name]) for name, module in layers if name in captured]


def best_of(fn, reps: int, rounds: int = 5) -> float:
    """Best mean over ``rounds`` timing rounds (robust to machine noise)."""
    fn()
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def check_bit_exact(runtime: FlexiQModel, x: Tensor) -> None:
    for ratio in runtime.available_ratios:
        runtime.set_ratio(ratio)
        runtime.prepare(use_prepared=True)
        fast = runtime(x).data.copy()
        runtime.prepare(use_prepared=False)
        slow = runtime(x).data.copy()
        if not np.array_equal(fast, slow):
            raise AssertionError(
                f"prepared path is not bit-exact at ratio {ratio}"
            )
    runtime.prepare(use_prepared=True)


def bench_serving(runtime: FlexiQModel, dataset) -> dict:
    """Requests/s through the serving engine's RuntimeExecutor at batch 8.

    All requests arrive at once so every batch is full; the ratio policy
    round-robins over the runtime's available ratios, making consecutive
    batches heterogeneous (each one switches the prepared runtime's ratio).
    Throughput is served requests per second of measured accelerator busy
    time, best of ``SERVING_ROUNDS`` engine runs.
    """
    runtime.prepare(use_prepared=True)
    ratios = runtime.available_ratios
    images = dataset.train_images
    for ratio in ratios:  # warm every boundary plane before instrumenting
        runtime.forward_batch(images[:1], ratio=ratio)
    requests = [
        Request(arrival_time=0.0, model="m", payload=images[i % len(images)])
        for i in range(SERVING_REQUESTS)
    ]
    executor = RuntimeExecutor(runtime)
    engine = ServingEngine(BatchingConfig(max_batch=SERVING_BATCH))
    engine.register("m", executor, policy=RoundRobinRatioPolicy(ratios))

    builds_before = PreparedKernel.build_count
    planes_before = PreparedKernel.plane_build_count
    best, best_switches = None, 0
    for _ in range(SERVING_ROUNDS):
        switches_before = executor.ratio_switches
        outcome = engine.run(requests=requests, record_responses=False)
        round_switches = executor.ratio_switches - switches_before
        if best is None or outcome.requests_per_busy_second > best.requests_per_busy_second:
            best, best_switches = outcome, round_switches

    return {
        "batch": SERVING_BATCH,
        "requests": SERVING_REQUESTS,
        "batches": len(best.batch_records),
        "requests_per_s": round(best.requests_per_busy_second, 2),
        "distinct_ratios": len(set(best.batch_ratios)),
        "ratio_switches": best_switches,
        "kernel_builds": PreparedKernel.build_count - builds_before,
        "plane_builds": PreparedKernel.plane_build_count - planes_before,
    }


def bench_cluster_scaling() -> dict:
    """Throughput scaling of the multi-server dispatch layer (PR 3).

    One modeled ViT-Base/A6000 endpoint behind a ``ServingEngine`` with K
    servers, driven by a Poisson trace heavy enough to keep every server
    saturated (INT8 capacity is ~1.7k req/s per server at batch 64).  The
    run uses explicit requests with no fixed duration, so throughput is
    served requests per second of simulated makespan -- which halves every
    time K doubles as long as dispatch keeps all servers busy.  Also timed:
    the real wall-clock cost of the discrete-event loop per served request
    (the engine overhead the fast FIFO array path keeps small).
    """
    from repro.data.traces import PoissonTrace

    service = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))
    trace = PoissonTrace(CLUSTER_RATE, duration=CLUSTER_DURATION, seed=21).generate()
    requests = requests_from_trace(trace, model="m")

    servers = {}
    base_rps = None
    for k in CLUSTER_SIZES:
        engine = ServingEngine(BatchingConfig(max_batch=64), num_servers=k)
        engine.register("m", ModeledExecutor(service), mode="int8")
        wall_start = time.perf_counter()
        outcome = engine.run(requests=requests, record_responses=False)
        wall = time.perf_counter() - wall_start
        rps = outcome.throughput
        if base_rps is None:
            base_rps = rps
        servers[str(k)] = {
            "requests_per_s": round(rps, 1),
            "scaling_efficiency": round(rps / (k * base_rps), 3),
            "batches": len(outcome.batch_records),
            "dispatch_us_per_request": round(wall / len(requests) * 1e6, 2),
        }
    return {
        "model": "vit_base",
        "mode": "int8",
        "rate": CLUSTER_RATE,
        "requests": len(requests),
        "max_batch": 64,
        "servers": servers,
    }


def bench_heterogeneous_placement() -> dict:
    """Placement rules on a mixed-speed cluster (PR 4 control plane).

    One fast GPU (L40S) plus two scaled-up NPUs (64x64 array at 800 MHz:
    slow but not useless) serve a Poisson trace at ~90% of combined
    capacity.  Throughput is served requests per second of simulated
    makespan; under argmin-free-clock an *idle* slow server always has the
    earliest clock and keeps stealing head-of-line batches, so the run
    drags a slow-server tail.  The speed-aware placers route those batches
    to the fast GPU unless a slow server would genuinely finish first, and
    must therefore beat free-clock on throughput and p99 alike.
    """
    from repro.data.traces import PoissonTrace

    npu_config = NpuConfig(array_rows=64, array_cols=64, clock_mhz=800.0)
    specs = [
        gpu_server("gpu0", "vit_base", gpu="l40s"),
        npu_server("npu0", "vit_base", config=npu_config),
        npu_server("npu1", "vit_base", config=npu_config),
    ]
    trace = PoissonTrace(HETERO_RATE, duration=HETERO_DURATION, seed=33).generate()
    requests = requests_from_trace(trace, model="m")

    placers = {}
    for name in HETERO_PLACERS:
        cluster = ClusterEngine(
            specs,
            BatchingConfig(max_batch=64),
            placer=None if name == "free_clock" else name,
        )
        cluster.register("m", mode="int8")
        outcome = cluster.run(requests=requests, record_responses=False)
        placers[name] = {
            "requests_per_s": round(outcome.throughput, 1),
            "p50_ms": round(outcome.latency_percentile(50) * 1e3, 2),
            "p99_ms": round(outcome.p99_latency * 1e3, 2),
            "served": int(outcome.latencies.size),
            "busy_seconds": round(outcome.server_seconds, 3),
        }
    base = placers["free_clock"]["requests_per_s"]
    return {
        "model": "vit_base",
        "mode": "int8",
        "rate": HETERO_RATE,
        "requests": len(requests),
        "max_batch": 64,
        "servers": [
            {"name": s.name, "device": s.device, "speed_rps": round(s.speed, 1)}
            for s in specs
        ],
        "placers": placers,
        "weighted_speedup_vs_free_clock": round(
            placers["weighted"]["requests_per_s"] / base, 3
        ),
        "least_work_speedup_vs_free_clock": round(
            placers["least_work"]["requests_per_s"] / base, 3
        ),
    }


def bench_fault_tolerance() -> dict:
    """Crash survival on a deadline-SLO cluster (PR 5 resilience subsystem).

    Three modeled A6000 ViT-Base servers serve a Poisson trace whose every
    request carries a relative deadline; server 0 crashes mid-run and later
    recovers.  The non-migrating run loses the crashed server's unfinished
    batches (dropped requests = deadline misses) and falls below the
    deadline-attainment SLO; with a requeue-at-head migration policy the
    victims restart on the surviving servers (migration latency charged
    explicitly) and the SLO holds with zero lost requests.
    """
    from repro.data.traces import PoissonTrace

    trace = PoissonTrace(FAULT_RATE, duration=FAULT_DURATION, seed=5).generate()
    requests = requests_from_trace(trace, model="m", deadlines=[FAULT_DEADLINE])

    def run(migration):
        cluster = ClusterEngine(
            [gpu_server(f"g{i}", "vit_base", gpu="a6000") for i in range(3)],
            BatchingConfig(max_batch=64),
            fault_schedule=FaultSchedule.single_crash(
                0, at=FAULT_CRASH_AT, recover_at=FAULT_RECOVER_AT
            ),
            migration=migration,
            window=0.25,
        )
        cluster.register("m", mode="int8")
        outcome = cluster.run(requests=requests)
        return {
            "deadline_attainment": round(outcome.deadline_attainment(), 5),
            "slo_met": bool(outcome.deadline_attainment() >= FAULT_SLO),
            "served": int(outcome.latencies.size),
            "lost": int(outcome.result.dropped),
            "migrated": int(outcome.migrated),
            "p99_ms": round(outcome.p99_latency * 1e3, 2),
        }

    return {
        "model": "vit_base",
        "mode": "int8",
        "rate": FAULT_RATE,
        "requests": len(requests),
        "deadline_s": FAULT_DEADLINE,
        "slo_attainment_target": FAULT_SLO,
        "crash_at_s": FAULT_CRASH_AT,
        "recover_at_s": FAULT_RECOVER_AT,
        "no_migration": run(None),
        "migration": run(RequeueAtHeadMigration(delay=0.01)),
    }


def bench_failure_domains() -> dict:
    """Zone outage vs spread placement + warm spares (PR 6 failure domains).

    Runs the ``examples/zone_outage.py`` scenario verbatim: zones A and B
    hold two A6000 ViT-Base servers each, zone C holds two reserve spares;
    zone A fails as a unit mid-run and recovers later.  Four deployments
    face the same schedule — no fault, the flat PR 5-style cluster
    (migration only), reactive cold standby (SLO autoscaler + provisioning
    lag) and spread placement + warm spares (promotion latency only).
    """
    import importlib.util

    path = ROOT / "examples" / "zone_outage.py"
    spec = importlib.util.spec_from_file_location("zone_outage_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    outcomes = module.outage_scenario()

    def row(outcome):
        promotions = [e for e in outcome.scale_events if e.action == "promote"]
        demotions = [e for e in outcome.scale_events if e.action == "demote"]
        return {
            "deadline_attainment": round(outcome.deadline_attainment(), 5),
            "slo_met": bool(
                outcome.deadline_attainment() >= module.ATTAINMENT_TARGET
            ),
            "served": int(outcome.latencies.size),
            "lost": int(outcome.result.dropped),
            "migrated": int(outcome.migrated),
            "promotions": len(promotions),
            "demotions": len(demotions),
            "p99_ms": round(outcome.p99_latency * 1e3, 2),
        }

    warm = outcomes["spread + warm spares"]
    cold = outcomes["cold standby"]
    return {
        "model": "vit_base",
        "mode": "int8",
        "rate": module.RATE,
        "zones": list(module.ZONES),
        "deadline_s": module.DEADLINE_SLO,
        "slo_attainment_target": module.ATTAINMENT_TARGET,
        "outage_at_s": module.OUTAGE_AT,
        "recover_at_s": module.RECOVER_AT,
        "promotion_latency_s": module.PROMOTION_LATENCY,
        "cold_provision_s": module.COLD_DELAY,
        "no_fault": row(outcomes["no fault"]),
        "flat": row(outcomes["flat (single-domain)"]),
        "cold_standby": row(cold),
        "warm_spares": row(warm),
        "warm_p99_advantage_ms": round(
            (cold.p99_latency - warm.p99_latency) * 1e3, 2
        ),
    }


def bench_continuous_batching() -> dict:
    """Iteration-level scheduling vs run-to-completion (PR 7 generation).

    Runs the ``examples/continuous_batching.py`` scenario verbatim: a mixed
    prompt-/generation-length Poisson trace on one modeled A6000 server,
    served by static admit-once batching and by the continuous
    ``IterationScheduler`` (FCFS, prefill-priority, and prefill-priority
    with the decode-pressure mid-sequence precision policy).  The gate is
    the headline claim: continuous beats static on **both** TTFT p99 and
    tokens/sec on the identical trace.
    """
    import importlib.util

    path = ROOT / "examples" / "continuous_batching.py"
    spec = importlib.util.spec_from_file_location("continuous_batching_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    outcomes = module.generation_scenario()

    def row(result):
        stream = result.streaming((50, 99))
        return {
            "requests": len(result.responses),
            "tokens": int(result.tokens),
            "tokens_per_sec": round(stream["tokens_per_sec"], 2),
            "ttft_p50_ms": round(stream["ttft_p50"] * 1e3, 3),
            "ttft_p99_ms": round(stream["ttft_p99"] * 1e3, 3),
            "inter_token_p99_ms": round(stream["inter_token_p99"] * 1e3, 3),
            "makespan_s": round(result.duration, 4),
            "iterations": len(result.iterations),
        }

    static = outcomes["run-to-completion"]
    continuous = outcomes["continuous (fcfs)"]
    adaptive = outcomes["continuous (decode-pressure int4)"]
    static_stream = static.streaming((99,))
    continuous_stream = continuous.streaming((99,))
    return {
        "model": "vit_base",
        "rate": module.RATE,
        "max_batch": module.MAX_BATCH,
        "prompt_tokens": list(module.PROMPT_TOKENS),
        "new_tokens": list(module.NEW_TOKENS),
        "static": row(static),
        "continuous": row(continuous),
        "prefill_priority": row(outcomes["continuous (prefill-priority)"]),
        "decode_pressure": row(adaptive),
        "ratio_switches": int(module.ratio_switches(adaptive)),
        "ttft_p99_speedup": round(
            static_stream["ttft_p99"] / continuous_stream["ttft_p99"], 3
        ),
        "throughput_speedup": round(
            continuous_stream["tokens_per_sec"] / static_stream["tokens_per_sec"],
            3,
        ),
    }


def _day_engine(
    columnar: bool = True, num_servers: int = DAY_SERVERS, tracer=None
) -> ServingEngine:
    engine = ServingEngine(
        BatchingConfig(max_batch=DAY_MAX_BATCH, drop_after=DAY_DROP_AFTER),
        num_servers=num_servers,
        columnar=columnar,
        tracer=tracer,
    )
    engine.register(
        "m", ModeledExecutor(ServiceTimeModel()), policy=FixedRatioPolicy(0.5)
    )
    return engine


def bench_cluster_day() -> dict:
    """A million-request diurnal day through the columnar core (PR 8).

    A compressed diurnal trace (~1.04M requests: 3k req/s trough, 13k req/s
    peak) drains through an 8-server engine via the vectorized FIFO sweep.
    Reported and gated:

    * full-day wall clock (min of 2 runs) against ``DAY_WALL_BUDGET_S`` and
      tracemalloc peak (a separate, instrumented run — tracing taxes the
      timing) against ``DAY_PEAK_TRACED_MB``;
    * speedup of the columnar core over the pre-refactor object loop on the
      first ``DAY_SLICE`` requests (min-of-2 each; target >= 10x);
    * ``fifo_bit_identical`` — the unbreakable invariant: a K=1 FIFO run of
      the slice through the columnar core reproduces the seed simulator's
      latencies, batch sizes and drop count bit-for-bit.
    """
    import resource
    import tracemalloc

    from repro.data.traces import DiurnalTrace, RequestTrace

    trace = DiurnalTrace(
        night_rate=DAY_NIGHT_RATE,
        peak_rate=DAY_PEAK_RATE,
        duration=DAY_DURATION,
        period=DAY_DURATION,
        num_phases=int(DAY_DURATION),
        seed=DAY_SEED,
    ).generate()
    num_requests = len(trace)

    day_wall = float("inf")
    day_outcome = None
    for _ in range(2):
        engine = _day_engine()
        start = time.perf_counter()
        outcome = engine.run(trace, model="m")
        elapsed = time.perf_counter() - start
        if elapsed < day_wall:
            day_wall, day_outcome = elapsed, outcome

    tracemalloc.start()
    _day_engine().run(trace, model="m")
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    ru_maxrss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    arrivals = trace.sorted_arrivals()[:DAY_SLICE]
    slice_trace = RequestTrace(np.asarray(arrivals), duration=float(arrivals[-1]))
    timings = {}
    for label, columnar in (("columnar", True), ("legacy", False)):
        best = float("inf")
        for _ in range(2):
            engine = _day_engine(columnar=columnar)
            start = time.perf_counter()
            engine.run(slice_trace, model="m")
            best = min(best, time.perf_counter() - start)
        timings[label] = best

    seed_result = ServingSimulator(
        ServiceTimeModel(),
        BatchingConfig(max_batch=DAY_MAX_BATCH, drop_after=DAY_DROP_AFTER),
    ).run(slice_trace, "flexiq", ratio=0.5)
    k1_result = _day_engine(num_servers=1).run(slice_trace, model="m")
    fifo_bit_identical = bool(
        np.array_equal(seed_result.latencies, k1_result.latencies)
        and list(seed_result.batch_sizes) == list(k1_result.batch_sizes)
        and seed_result.dropped == k1_result.dropped
    )

    return {
        "night_rate": DAY_NIGHT_RATE,
        "peak_rate": DAY_PEAK_RATE,
        "duration_s": DAY_DURATION,
        "servers": DAY_SERVERS,
        "max_batch": DAY_MAX_BATCH,
        "drop_after_s": DAY_DROP_AFTER,
        "requests": num_requests,
        "served": int(day_outcome.latencies.size),
        "dropped": int(day_outcome.dropped),
        "batches": len(day_outcome.batch_records),
        "wall_seconds": round(day_wall, 4),
        "wall_budget_s": DAY_WALL_BUDGET_S,
        "requests_per_wall_second": round(num_requests / day_wall, 1),
        "peak_traced_mb": round(traced_peak / (1024.0 * 1024.0), 2),
        "peak_traced_budget_mb": DAY_PEAK_TRACED_MB,
        "ru_maxrss_mb": round(ru_maxrss_mb, 1),
        "slice_requests": DAY_SLICE,
        "slice_columnar_ms": round(timings["columnar"] * 1e3, 2),
        "slice_legacy_ms": round(timings["legacy"] * 1e3, 2),
        "slice_speedup": round(timings["legacy"] / timings["columnar"], 2),
        "speedup_target": DAY_SPEEDUP_TARGET,
        "fifo_bit_identical": fifo_bit_identical,
    }


def bench_observability(day: dict) -> dict:
    """Tracing overhead on the cluster_day workload (PR 9).

    Re-runs the full diurnal day twice through the columnar core: once with
    ``tracer=None`` (the disabled path — every hook is behind a ``tracer is
    None`` guard, so this must match the ``cluster_day`` baseline to within
    noise, gated at ``OBS_OFF_OVERHEAD_PCT``) and once with a sampled
    :class:`~repro.obs.Tracer` at ``OBS_SAMPLE_RATE`` (batch spans always
    recorded, per-request spans head-sampled; gated at
    ``OBS_ON_OVERHEAD_PCT`` over the disabled run).  The traced run's spans
    are exported to Chrome trace-event JSON and schema-validated, and the
    run's metrics registry is serialized to Prometheus text exposition and
    shape-checked — a malformed exporter fails the bench, not just a unit
    test.
    """
    from repro.data.traces import DiurnalTrace
    from repro.obs import (
        Tracer,
        prometheus_exposition,
        registry_from_engine,
        to_chrome_trace,
        validate_chrome_trace,
    )

    trace = DiurnalTrace(
        night_rate=DAY_NIGHT_RATE,
        peak_rate=DAY_PEAK_RATE,
        duration=DAY_DURATION,
        period=DAY_DURATION,
        num_phases=int(DAY_DURATION),
        seed=DAY_SEED,
    ).generate()

    off_wall = float("inf")
    for _ in range(3):
        engine = _day_engine(tracer=None)
        start = time.perf_counter()
        engine.run(trace, model="m")
        off_wall = min(off_wall, time.perf_counter() - start)

    on_wall = float("inf")
    tracer = None
    traced_result = None
    for _ in range(3):
        candidate = Tracer(sample_rate=OBS_SAMPLE_RATE)
        engine = _day_engine(tracer=candidate)
        start = time.perf_counter()
        result = engine.run(trace, model="m")
        elapsed = time.perf_counter() - start
        if elapsed < on_wall:
            on_wall, tracer, traced_result = elapsed, candidate, result

    baseline = float(day["wall_seconds"])
    off_overhead_pct = (off_wall - baseline) / baseline * 100.0
    on_overhead_pct = (on_wall - off_wall) / off_wall * 100.0

    chrome = to_chrome_trace(tracer)
    try:
        validate_chrome_trace(chrome)
        trace_valid = True
    except ValueError:
        trace_valid = False

    exposition = prometheus_exposition(registry_from_engine(traced_result))
    prometheus_valid = exposition.endswith("\n") and all(
        line.startswith(("# HELP ", "# TYPE "))
        or (len(line.rsplit(" ", 1)) == 2 and _parses_float(line.rsplit(" ", 1)[1]))
        for line in exposition.splitlines()
        if line
    )

    counts = tracer.span_counts()
    return {
        "sample_rate": OBS_SAMPLE_RATE,
        "requests": len(trace),
        "day_baseline_s": baseline,
        "tracer_off_wall_s": round(off_wall, 4),
        "tracer_on_wall_s": round(on_wall, 4),
        "off_overhead_pct": round(off_overhead_pct, 2),
        "off_overhead_budget_pct": OBS_OFF_OVERHEAD_PCT,
        "on_overhead_pct": round(on_overhead_pct, 2),
        "on_overhead_budget_pct": OBS_ON_OVERHEAD_PCT,
        "spans": len(tracer.store),
        "execute_spans": counts["execute"],
        "sampled_requests": counts["served"] + counts["dropped"],
        "trace_events": len(chrome["traceEvents"]),
        "trace_valid": trace_valid,
        "prometheus_lines": len(exposition.splitlines()),
        "prometheus_valid": bool(prometheus_valid),
    }


def _parses_float(token: str) -> bool:
    try:
        float(token)
        return True
    except ValueError:
        return False


def bench_model(name: str, reps: int = 20) -> dict:
    runtime, dataset = build_runtime(name)
    x = Tensor(dataset.train_images[:BATCH])
    check_bit_exact(runtime, Tensor(dataset.train_images[:8]))
    runtime.set_ratio(BENCH_RATIO)

    pairs = capture_layer_inputs(runtime, x)

    def run_layers():
        for module, t in pairs:
            module(t)

    result = {"batch": BATCH, "ratio": BENCH_RATIO, "bit_exact": True}
    for key, fn in (("quantized", run_layers), ("end_to_end", lambda: runtime(x))):
        runtime.prepare(use_prepared=False)
        uncached = best_of(fn, reps)
        runtime.prepare(use_prepared=True)
        prepared = best_of(fn, reps)
        result[key] = {
            "uncached_ms": round(uncached * 1e3, 4),
            "prepared_ms": round(prepared * 1e3, 4),
            "speedup": round(uncached / prepared, 3),
        }
    result["serving"] = bench_serving(runtime, dataset)
    return result


SUMMARY_SECTIONS = (
    "meta",
    "cluster_scaling",
    "heterogeneous_placement",
    "fault_tolerance",
    "failure_domains",
    "continuous_batching",
    "cluster_day",
    "observability",
)


def render(results: dict) -> str:
    lines = [
        "Prepared-kernel cache -- repeated quantized inference "
        f"(batch {BATCH}, ratio {BENCH_RATIO})",
        f"{'model':>10} | {'scope':>10} | {'uncached':>10} | {'prepared':>10} | speedup",
        "-" * 62,
    ]
    for name, result in results.items():
        if name in SUMMARY_SECTIONS:
            continue
        for scope in ("quantized", "end_to_end"):
            row = result[scope]
            lines.append(
                f"{name:>10} | {scope:>10} | {row['uncached_ms']:>8.2f}ms "
                f"| {row['prepared_ms']:>8.2f}ms | {row['speedup']:.2f}x"
            )
    lines.append("")
    lines.append(
        f"Serving engine -- RuntimeExecutor, batch {SERVING_BATCH}, "
        "round-robin heterogeneous ratios"
    )
    for name, result in results.items():
        if name in SUMMARY_SECTIONS:
            continue
        row = result["serving"]
        lines.append(
            f"{name:>10} | {row['requests_per_s']:>8.1f} req/s | "
            f"{row['batches']} batches | {row['distinct_ratios']} ratios | "
            f"{row['kernel_builds']} kernel rebuilds"
        )
    cluster = results.get("cluster_scaling")
    if cluster:
        lines.append("")
        lines.append(
            f"Cluster scale-out -- modeled {cluster['model']} ({cluster['mode']}), "
            f"{cluster['rate']} req/s Poisson, max_batch {cluster['max_batch']}"
        )
        for k, row in cluster["servers"].items():
            lines.append(
                f"{'K=' + k:>10} | {row['requests_per_s']:>8.1f} req/s | "
                f"efficiency {row['scaling_efficiency']:.2f} | "
                f"{row['dispatch_us_per_request']:.1f} us dispatch/req"
            )
    hetero = results.get("heterogeneous_placement")
    if hetero:
        lines.append("")
        servers = ", ".join(
            f"{s['name']}~{s['speed_rps']:.0f}rps" for s in hetero["servers"]
        )
        lines.append(
            f"Heterogeneous placement -- {servers}; "
            f"{hetero['rate']} req/s Poisson"
        )
        for name, row in hetero["placers"].items():
            lines.append(
                f"{name:>12} | {row['requests_per_s']:>8.1f} req/s | "
                f"p50 {row['p50_ms']:>7.2f} ms | p99 {row['p99_ms']:>7.2f} ms"
            )
        lines.append(
            f"{'':>12} | weighted {hetero['weighted_speedup_vs_free_clock']:.3f}x, "
            f"least-work {hetero['least_work_speedup_vs_free_clock']:.3f}x "
            "vs argmin-free-clock"
        )
    fault = results.get("fault_tolerance")
    if fault:
        lines.append("")
        lines.append(
            f"Fault tolerance -- 3x GPU, server 0 crashes at "
            f"t={fault['crash_at_s']:g}s; {fault['deadline_s']:g}s deadlines, "
            f"SLO >= {fault['slo_attainment_target']:.0%} attainment"
        )
        for name in ("no_migration", "migration"):
            row = fault[name]
            lines.append(
                f"{name:>12} | attainment {row['deadline_attainment']:.4f} "
                f"({'met' if row['slo_met'] else 'MISSED'}) | "
                f"lost {row['lost']} | migrated {row['migrated']} | "
                f"p99 {row['p99_ms']:.1f} ms"
            )
    domains = results.get("failure_domains")
    if domains:
        lines.append("")
        lines.append(
            f"Failure domains -- zone A (2 of 4 active servers) fails at "
            f"t={domains['outage_at_s']:g}s; {domains['deadline_s']:g}s "
            f"deadlines, SLO >= {domains['slo_attainment_target']:.0%} attainment"
        )
        for name in ("no_fault", "flat", "cold_standby", "warm_spares"):
            row = domains[name]
            lines.append(
                f"{name:>12} | attainment {row['deadline_attainment']:.4f} "
                f"({'met' if row['slo_met'] else 'MISSED'}) | "
                f"lost {row['lost']} | migrated {row['migrated']} | "
                f"p99 {row['p99_ms']:.1f} ms"
            )
        lines.append(
            f"{'':>12} | warm promotion beats cold provisioning by "
            f"{domains['warm_p99_advantage_ms']:.0f} ms p99"
        )
    generation = results.get("continuous_batching")
    if generation:
        lines.append("")
        lines.append(
            f"Continuous batching -- {generation['rate']} gen req/s, prompts "
            f"{min(generation['prompt_tokens'])}-{max(generation['prompt_tokens'])} "
            f"tokens, max_batch {generation['max_batch']}"
        )
        for name in ("static", "continuous", "prefill_priority", "decode_pressure"):
            row = generation[name]
            lines.append(
                f"{name:>16} | {row['tokens_per_sec']:>8.1f} tok/s | "
                f"ttft p99 {row['ttft_p99_ms']:>8.2f} ms | "
                f"inter-tok p99 {row['inter_token_p99_ms']:>6.2f} ms | "
                f"makespan {row['makespan_s']:.2f} s"
            )
        lines.append(
            f"{'':>16} | continuous beats static {generation['ttft_p99_speedup']:.2f}x "
            f"ttft p99, {generation['throughput_speedup']:.2f}x tokens/sec; "
            f"{generation['ratio_switches']} mid-sequence ratio switches"
        )
    day = results.get("cluster_day")
    if day:
        lines.append("")
        lines.append(
            f"Cluster day -- {day['requests']:,} requests "
            f"({day['night_rate']}-{day['peak_rate']} req/s diurnal), "
            f"{day['servers']} servers, columnar event-driven core"
        )
        lines.append(
            f"{'full day':>12} | {day['wall_seconds']:.3f} s wall "
            f"(budget {day['wall_budget_s']:g} s) | "
            f"{day['requests_per_wall_second']:,.0f} req/s of wall | "
            f"peak {day['peak_traced_mb']:.0f} MB traced "
            f"(budget {day['peak_traced_budget_mb']:g} MB)"
        )
        lines.append(
            f"{'100k slice':>12} | columnar {day['slice_columnar_ms']:.1f} ms "
            f"vs object loop {day['slice_legacy_ms']:.1f} ms | "
            f"{day['slice_speedup']:.1f}x (target {day['speedup_target']:g}x) | "
            f"K=1 FIFO bit-identical: {day['fifo_bit_identical']}"
        )
    obs = results.get("observability")
    if obs:
        lines.append("")
        lines.append(
            f"Observability -- cluster day re-run, tracer sampling "
            f"{obs['sample_rate']:g}"
        )
        lines.append(
            f"{'overhead':>12} | off {obs['off_overhead_pct']:+.1f}% "
            f"(budget {obs['off_overhead_budget_pct']:g}%) | "
            f"on {obs['on_overhead_pct']:+.1f}% "
            f"(budget {obs['on_overhead_budget_pct']:g}%)"
        )
        lines.append(
            f"{'exports':>12} | {obs['spans']:,} spans -> "
            f"{obs['trace_events']:,} trace events "
            f"(valid: {obs['trace_valid']}) | "
            f"{obs['prometheus_lines']} exposition lines "
            f"(valid: {obs['prometheus_valid']})"
        )
    return "\n".join(lines)


def main() -> dict:
    start = time.perf_counter()
    results = {name: bench_model(name) for name in MODELS}
    results["cluster_scaling"] = bench_cluster_scaling()
    results["heterogeneous_placement"] = bench_heterogeneous_placement()
    results["fault_tolerance"] = bench_fault_tolerance()
    results["failure_domains"] = bench_failure_domains()
    results["continuous_batching"] = bench_continuous_batching()
    results["cluster_day"] = bench_cluster_day()
    results["observability"] = bench_observability(results["cluster_day"])
    results["meta"] = {
        "benchmark": "prepared_kernels",
        "models": list(MODELS),
        "batch": BATCH,
        "ratio": BENCH_RATIO,
        "wall_seconds": round(time.perf_counter() - start, 2),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(render(results))
    print(f"\nwrote {RESULTS_PATH}")
    return results


if __name__ == "__main__":
    main()

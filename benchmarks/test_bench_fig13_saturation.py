"""Figure 13: saturated channels under statically chosen extraction positions.

Static extraction windows are derived from the calibration data; evaluating
on held-out data, some channels exceed their calibrated range and saturate.
The paper observes that transformers saturate rarely while CNNs saturate a
little (usually by one bit), and that FlexiQ de-prioritises saturated
channels during selection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import saturation_profiles
from repro.analysis.reports import format_table


@pytest.mark.parametrize("model_name", ["vit_small", "resnet50"])
def test_fig13_saturation_under_static_extraction(
    benchmark, bundles, flexiq_runtimes, results_writer, model_name
):
    runtime = flexiq_runtimes[(model_name, "greedy", False)]
    dataset = bundles[model_name].dataset
    evaluation = dataset.test_images[:128]

    profiles = benchmark.pedantic(
        lambda: saturation_profiles(runtime.model, evaluation),
        rounds=1, iterations=1,
    )

    rows = []
    for name, profile in profiles.items():
        depth = profile.saturation_depth()
        rows.append([
            name,
            profile.fraction_saturated_channels() * 100,
            float(np.mean(depth >= 1)) * 100,
            float(np.mean(depth >= 2)) * 100,
        ])
    text = format_table(
        ["layer", "saturated ch (%)", "short by >=1 bit (%)", "short by >=2 bits (%)"],
        rows, precision=1,
        title=f"Figure 13 -- channels saturating static extraction windows ({model_name})",
    )
    results_writer(f"fig13_saturation_{model_name}", text)

    saturated = np.asarray([p.fraction_saturated_channels() for p in profiles.values()])
    depths = np.concatenate([p.saturation_depth() for p in profiles.values()])
    # Saturation exists but affects a minority of channels...
    assert saturated.mean() < 0.6
    # ...and when a channel saturates it is typically short by a single bit.
    if (depths >= 1).any():
        assert np.mean(depths[depths >= 1] == 1) > 0.5

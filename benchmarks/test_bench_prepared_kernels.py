"""Prepared-kernel cache microbenchmark (repeated quantized inference).

The serving steady state of the FlexiQ runtime is: freeze + configure once,
then serve many requests, switching only the 4-bit ratio between them.  The
seed implementation re-derived all weight-side state (weight quantization,
channel permutation, 4-bit plane lowering, ``2**shift`` factor tables) from
the float weights on every forward call; the prepared-kernel cache
(:mod:`repro.core.prepared`) computes it once at prepare time.

This bench drives ResNet-18 and ViT-small runtimes through repeated
quantized forwards with the cache on and off, verifies the outputs are
bit-exact, asserts the ResNet-18 quantized-inference speedup target (>= 3x)
and records the trajectory in ``benchmarks/results/BENCH_prepared_kernels
.json`` via the standalone :mod:`perf_smoke` runner.

It also gates the serving hot path: the unified ``ServingEngine`` serves a
prepared ResNet-18 runtime through ``RuntimeExecutor`` at batch 8 with
heterogeneous per-batch ratios, and must (a) never rebuild a prepared kernel
(the O(1) ratio-switch claim), and (b) sustain a clearly higher throughput
than batch-1 inference implies — a regression in the engine's batching or
dispatch overhead fails the suite.

PR 3 adds the cluster gate: multi-server dispatch over K modeled
accelerators must scale throughput near-linearly (efficiency >= 0.9 at
K=4 under a saturating trace — the workload is deterministic, so this is a
property of the dispatch layer, not of machine noise).

PR 4 adds the heterogeneous-placement gate: on a mixed-speed cluster (one
fast GPU, two slow NPUs) the speed-aware placers (least-outstanding-work,
weighted-by-speed) must achieve strictly higher makespan throughput — and
lower p99 — than the seed argmin-free-clock dispatch.  Also deterministic:
the comparison is between simulated schedules, not wall clocks.

PR 5 adds the fault-tolerance gate: a 3-GPU deadline-SLO cluster loses one
server mid-run.  Without migration the crashed server's unfinished batches
are lost (drops = deadline misses) and the run must fall below the 99%
deadline-attainment SLO; with preemption & migration every victim re-serves
(zero lost requests, full conservation) and the SLO must hold.  Exact, the
schedules are deterministic.

PR 6 adds the failure-domain gate on the ``examples/zone_outage.py``
scenario: a zone outage (two of four active servers at once) must cost the
flat single-domain cluster the deadline-attainment SLO, while spread
placement + warm spares meet it — and beat reactive cold standby on p99
(promotion latency vs provisioning lag).  Exact and deterministic.

PR 7 adds the continuous-batching gate on the
``examples/continuous_batching.py`` scenario: on a mixed prompt-/generation-
length trace, iteration-level scheduling must beat static run-to-completion
batching on **both** TTFT p99 and tokens/sec, and the decode-pressure
policy must actually switch precision mid-sequence.  Exact and
deterministic (modeled costs, fixed trace seed).

PR 8 adds the ``cluster_day`` gate on the columnar event-driven serving
core: a >= 1M-request compressed diurnal day over 8 servers must clear
within the wall-clock and tracemalloc-peak budgets, the columnar core must
beat the pre-refactor object loop by >= 10x on a 100k-request slice, and —
the unbreakable invariant — a K=1 FIFO run must stay bit-identical to the
seed simulator.

PR 9 adds the ``observability`` gate on the same workload: attaching the
``repro.obs`` tracing hooks with the tracer disabled must not regress the
cluster day by more than 2% (the opt-in promise — every hook sits behind a
``tracer is None`` guard), sampled tracing at 1% must cost under 15% over
the disabled run, and both exporters must produce valid output (the Chrome
trace-event JSON schema-checks, the Prometheus exposition parses).  The
overhead clauses are timing measurements and share the one-retry policy.
"""

from __future__ import annotations

import json

import perf_smoke


def _serving_floor(result: dict) -> float:
    """Minimum acceptable batch-8 serving throughput for one model.

    Batch-1 end-to-end prepared latency implies a per-request rate; batched
    serving amortizes per-call overhead, so batch 8 must beat it with margin
    (typical measurements sit at 2-3x the batch-1 rate).
    """
    batch1_rps = 1000.0 / result["end_to_end"]["prepared_ms"]
    return 1.2 * batch1_rps


def test_prepared_kernel_speedup(benchmark, results_writer):
    results = benchmark.pedantic(perf_smoke.main, rounds=1, iterations=1)
    if (
        results["resnet18"]["quantized"]["speedup"] < 3.0
        or results["resnet18"]["serving"]["requests_per_s"] < _serving_floor(results["resnet18"])
    ):
        # Timing benchmark on a shared box: one retry before declaring a
        # perf regression (typical measurements sit at 3.4-4.5x).
        results = perf_smoke.main()

    for name in perf_smoke.MODELS:
        assert results[name]["bit_exact"] is True

    # The tentpole target: repeated quantized inference on the ResNet-18
    # microbenchmark at least 3x faster than the seed (uncached) kernels.
    assert results["resnet18"]["quantized"]["speedup"] >= 3.0
    # ViT-small is linear-layer bound at these tiny shapes (GEMM + per-call
    # overhead dominate), so its bound is looser; it must still clearly win.
    assert results["vit_small"]["quantized"]["speedup"] >= 1.5
    # End-to-end forwards include the float glue (norms, attention,
    # residuals) but must still show a solid improvement.
    assert results["resnet18"]["end_to_end"]["speedup"] >= 1.5
    assert results["vit_small"]["end_to_end"]["speedup"] >= 1.2

    # Serving engine hot path: heterogeneous-ratio batches through
    # RuntimeExecutor must never rebuild a prepared kernel (per-batch
    # set_ratio is an O(1) variable update -- the PR 1 instrumentation).
    for name in perf_smoke.MODELS:
        serving = results[name]["serving"]
        assert serving["kernel_builds"] == 0
        assert serving["plane_builds"] == 0
        assert serving["distinct_ratios"] >= 2
        assert serving["ratio_switches"] > 0
        assert serving["batch"] == 8
    # Throughput gate: batch-8 serving clearly beats the batch-1 rate.
    assert (
        results["resnet18"]["serving"]["requests_per_s"]
        >= _serving_floor(results["resnet18"])
    )

    # Cluster scale-out: K modeled servers under a saturating trace serve
    # near-K-times the single-server rate (simulated makespan throughput).
    cluster = results["cluster_scaling"]["servers"]
    assert set(cluster) == {str(k) for k in perf_smoke.CLUSTER_SIZES}
    assert cluster["1"]["scaling_efficiency"] == 1.0
    for k in perf_smoke.CLUSTER_SIZES[1:]:
        assert cluster[str(k)]["scaling_efficiency"] >= 0.9
    assert (
        cluster["4"]["requests_per_s"]
        > cluster["2"]["requests_per_s"]
        > cluster["1"]["requests_per_s"]
    )

    # Heterogeneous placement: on a mixed-speed cluster the speed-aware
    # placers strictly beat argmin-free-clock on throughput and p99 (the
    # PR 4 control-plane gate; exact, the schedules are deterministic).
    hetero = results["heterogeneous_placement"]
    speeds = [server["speed_rps"] for server in hetero["servers"]]
    assert max(speeds) > 5 * min(speeds)  # the cluster really is mixed-speed
    placers = hetero["placers"]
    free_clock = placers["free_clock"]
    for smart in ("least_work", "weighted"):
        assert placers[smart]["requests_per_s"] > free_clock["requests_per_s"]
        assert placers[smart]["p99_ms"] < free_clock["p99_ms"]
        assert placers[smart]["served"] == free_clock["served"]  # same work
    assert hetero["weighted_speedup_vs_free_clock"] > 1.0
    assert hetero["least_work_speedup_vs_free_clock"] > 1.0

    # Fault tolerance: a mid-run server crash must cost the SLO without
    # migration and be fully absorbed with it (the PR 5 resilience gate).
    fault = results["fault_tolerance"]
    admitted = fault["requests"]
    lost_run, saved_run = fault["no_migration"], fault["migration"]
    assert lost_run["deadline_attainment"] < fault["slo_attainment_target"]
    assert not lost_run["slo_met"]
    assert lost_run["lost"] > 0
    assert saved_run["deadline_attainment"] >= fault["slo_attainment_target"]
    assert saved_run["slo_met"]
    # Conservation: nothing lost, nothing served twice, every victim moved.
    assert saved_run["lost"] == 0
    assert saved_run["served"] == admitted
    assert lost_run["served"] + lost_run["lost"] == admitted
    assert saved_run["migrated"] == lost_run["lost"] > 0

    # Failure domains: the zone outage must sink the flat cluster's SLO,
    # warm spares must absorb it and beat cold standby on p99 (the PR 6
    # failure-domain gate; exact, the scenario is deterministic).
    domains = results["failure_domains"]
    target = domains["slo_attainment_target"]
    assert domains["no_fault"]["deadline_attainment"] == 1.0
    assert domains["flat"]["deadline_attainment"] < target
    assert not domains["flat"]["slo_met"]
    assert domains["cold_standby"]["slo_met"]
    assert domains["warm_spares"]["slo_met"]
    assert (
        domains["warm_spares"]["p99_ms"] < domains["cold_standby"]["p99_ms"]
    )
    assert domains["warm_p99_advantage_ms"] > 0
    # Both zone-A servers were covered by promoted spares, later demoted.
    assert domains["warm_spares"]["promotions"] == 2
    assert domains["warm_spares"]["demotions"] == 2
    assert domains["cold_standby"]["promotions"] == 0
    # Conservation under the outage: the SLO misses are latency, not loss.
    for name in ("no_fault", "flat", "cold_standby", "warm_spares"):
        assert domains[name]["lost"] == 0
    assert domains["warm_spares"]["migrated"] > 0

    # Continuous batching: iteration-level scheduling must beat static
    # run-to-completion on BOTH streaming axes on the identical trace (the
    # PR 7 generation gate; exact, modeled costs + fixed trace seed).
    generation = results["continuous_batching"]
    static, continuous = generation["static"], generation["continuous"]
    assert continuous["ttft_p99_ms"] < static["ttft_p99_ms"]
    assert continuous["tokens_per_sec"] > static["tokens_per_sec"]
    assert generation["ttft_p99_speedup"] > 1.0
    assert generation["throughput_speedup"] > 1.0
    # Conservation: both schedules generate every requested token.
    assert continuous["tokens"] == static["tokens"] > 0
    assert continuous["requests"] == static["requests"] > 0
    # Continuous batching runs many small iterations, not a few big batches.
    assert continuous["iterations"] > static["iterations"]
    # The decode-pressure policy really switches precision mid-sequence.
    assert generation["ratio_switches"] > 0

    # Cluster day: the PR 8 columnar-core gate.  Correctness clauses
    # (request count, bit identity) are exact; the wall-clock and speedup
    # clauses are timing measurements, so they get the same one-retry
    # policy as the kernel speedup above before declaring a regression.
    day = results["cluster_day"]
    if (
        day["wall_seconds"] > day["wall_budget_s"]
        or day["slice_speedup"] < day["speedup_target"]
    ):
        day = perf_smoke.bench_cluster_day()
        results["cluster_day"] = day
    assert day["requests"] >= perf_smoke.DAY_MIN_REQUESTS
    assert day["served"] + day["dropped"] == day["requests"]
    assert day["wall_seconds"] <= day["wall_budget_s"]
    assert day["peak_traced_mb"] <= day["peak_traced_budget_mb"]
    assert day["slice_speedup"] >= day["speedup_target"]
    assert day["fifo_bit_identical"] is True

    # Observability: the PR 9 overhead + exporter-validity gate.  Exporter
    # clauses are exact; the overhead clauses are timing deltas between
    # back-to-back day runs, so they too get one retry (re-benching the
    # day first so the baseline and the overhead runs share conditions).
    obs = results["observability"]
    if (
        obs["off_overhead_pct"] > obs["off_overhead_budget_pct"]
        or obs["on_overhead_pct"] > obs["on_overhead_budget_pct"]
    ):
        results["cluster_day"] = perf_smoke.bench_cluster_day()
        obs = perf_smoke.bench_observability(results["cluster_day"])
        results["observability"] = obs
    assert obs["off_overhead_pct"] <= obs["off_overhead_budget_pct"]
    assert obs["on_overhead_pct"] <= obs["on_overhead_budget_pct"]
    assert obs["trace_valid"] is True
    assert obs["prometheus_valid"] is True
    assert obs["spans"] > 0 and obs["sampled_requests"] > 0
    assert obs["trace_events"] >= obs["spans"]

    # The JSON artifact tracks the perf trajectory from this PR onward.
    stored = json.loads(perf_smoke.RESULTS_PATH.read_text())
    assert stored["meta"]["benchmark"] == "prepared_kernels"
    assert "heterogeneous_placement" in stored
    assert "fault_tolerance" in stored
    assert "failure_domains" in stored
    assert "continuous_batching" in stored
    assert "cluster_day" in stored
    assert "observability" in stored
    results_writer("prepared_kernels", perf_smoke.render(results))

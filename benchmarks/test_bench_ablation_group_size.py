"""Design-choice ablation: hardware channel-group granularity.

The paper selects channels in hardware-friendly groups (32 on GPUs, 64 on the
NPU) and notes that grouping too many channels hurts accuracy (the 2-bit
discussion in Section 7).  This ablation sweeps the group size on the scaled
models: finer groups give the selection more freedom (accuracy should not
decrease as groups shrink) while coarser groups reflect stricter hardware
constraints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.selection import SelectionConfig
from repro.train.loop import evaluate_accuracy

GROUP_SIZES = (1, 4, 8)
TARGET_RATIO = 0.5


def test_ablation_channel_group_size(benchmark, bundles, results_writer):
    model_name = "vit_small"
    bundle = bundles[model_name]
    dataset = bundle.dataset

    def sweep():
        accuracies = {}
        for group_size in GROUP_SIZES:
            config = FlexiQConfig(
                ratios=(TARGET_RATIO, 1.0), group_size=group_size, selection="greedy",
                selection_config=SelectionConfig(group_size=group_size),
            )
            runtime = FlexiQPipeline(bundle.model, bundle.calibration.all(), config).run()
            runtime.set_ratio(TARGET_RATIO)
            accuracies[group_size] = evaluate_accuracy(runtime.model, dataset)
        return accuracies

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[size, accuracies[size]] for size in GROUP_SIZES]
    text = format_table(
        ["channel group size", "accuracy (%) at 50% 4-bit"], rows, precision=1,
        title=f"Ablation -- channel-group granularity ({bundle.spec.abbreviation})",
    )
    results_writer("ablation_group_size", text)

    # Coarser groups never help: accuracy with per-channel freedom (group 1)
    # is at least that of the coarsest grouping, within noise.
    assert accuracies[1] >= accuracies[max(GROUP_SIZES)] - 2.0
    # All settings stay far above chance and well above uniform INT4 territory.
    assert min(accuracies.values()) > 40.0

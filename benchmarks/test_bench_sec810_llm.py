"""Section 8.10 case study: applying FlexiQ to a language model.

The paper quantizes OPT-350m / Qwen2.5-0.5B and measures WikiText2 perplexity
under INT8, FlexiQ 25-100% and uniform INT4.  The offline substitute is the
tiny decoder LM trained on the synthetic corpus; the quantity to reproduce is
the perplexity ordering:

    FP <= INT8 <= FlexiQ 25% <= 50% <= 75% <= 100%  <<  uniform INT4
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.selection import SelectionConfig
from repro.data.text import build_text_corpus
from repro.quant.qmodel import quantize_model
from repro.train.pretrain import get_pretrained

RATIOS = (0.25, 0.5, 0.75, 1.0)


def test_sec810_llm_perplexity(benchmark, results_writer):
    model = get_pretrained("tiny_lm")
    corpus = build_text_corpus()
    test_sequences = corpus.test_sequences()[:64]
    calibration = corpus.train_sequences()[:64]

    forward_fn = lambda m, batch: m(batch)
    fp_ppl = model.perplexity(test_sequences)

    def build_runtime():
        config = FlexiQConfig(
            ratios=RATIOS, group_size=4, selection="greedy",
            selection_config=SelectionConfig(group_size=4),
        )
        pipeline = FlexiQPipeline(model, calibration, config, forward_fn=forward_fn)
        return pipeline.run()

    runtime = benchmark.pedantic(build_runtime, rounds=1, iterations=1)

    perplexities = {}
    for ratio in (0.0,) + RATIOS:
        runtime.set_ratio(ratio)
        perplexities[ratio] = runtime.model.perplexity(test_sequences)

    int4 = quantize_model(
        model, weight_bits=4,
        calibration_batches=[calibration[i : i + 16] for i in range(0, 64, 16)],
        forward_fn=forward_fn,
    )
    int4_ppl = int4.perplexity(test_sequences)

    rows = (
        [["full precision", fp_ppl], ["INT8 (FlexiQ 0%)", perplexities[0.0]]]
        + [[f"FlexiQ {int(r * 100)}%", perplexities[r]] for r in RATIOS]
        + [["uniform INT4", int4_ppl]]
    )
    text = format_table(
        ["configuration", "perplexity"], rows, precision=2,
        title="Section 8.10 -- LLM case study perplexity (tiny decoder LM, synthetic corpus)",
    )
    results_writer("sec810_llm_perplexity", text)

    vocab = model.vocab_size
    # The trained model is far better than a uniform predictor.
    assert fp_ppl < vocab * 0.8
    # INT8 perplexity is close to full precision.
    assert perplexities[0.0] <= fp_ppl * 1.2
    # Perplexity degrades gradually (and monotonically within noise) with the
    # 4-bit ratio ...
    series = [perplexities[r] for r in (0.0,) + RATIOS]
    assert all(b >= a - 0.5 for a, b in zip(series, series[1:]))
    # ... and FlexiQ's 100% 4-bit model stays well below the uniform INT4
    # collapse (the paper's 39.6 vs 10938 contrast).
    assert perplexities[1.0] <= int4_ppl
    assert int4_ppl > perplexities[0.0]

"""Section 8.6: overhead and accuracy gain of dynamic extraction positions.

Dynamic extraction re-derives each channel group's extraction position from
the runtime batch (a bitwise-OR reduction in hardware).  The paper measures
its overhead at 2-5% of the convolution/linear cost and reports accuracy
gains of 0.1-2.1 points at high 4-bit ratios.  This bench measures both: the
modelled kernel overhead (operation counts + GPU latency model) and the
accuracy difference on a vision model at 100% 4-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.kernels import MixedPrecisionGemm
from repro.hardware.workloads import model_ops
from repro.train.loop import evaluate_accuracy


def test_sec86_dynamic_extraction_overhead_and_gain(
    benchmark, bundles, flexiq_runtimes, results_writer
):
    model_name = "vit_small"
    bundle = bundles[model_name]
    runtime = flexiq_runtimes[(model_name, "evolutionary", False)]
    runtime.set_ratio(1.0)

    # Accuracy with static vs dynamic extraction at the full 4-bit ratio.
    runtime.set_dynamic_extraction(False)
    static_accuracy = evaluate_accuracy(runtime.model, bundle.dataset)

    def dynamic_eval():
        runtime.set_dynamic_extraction(True)
        accuracy = evaluate_accuracy(runtime.model, bundle.dataset)
        runtime.set_dynamic_extraction(False)
        return accuracy

    dynamic_accuracy = benchmark.pedantic(dynamic_eval, rounds=1, iterations=1)
    runtime.set_ratio(0.0)

    # Modelled kernel-level overhead of the dynamic OR-reduction.
    gpu = GpuLatencyModel("a6000")
    ops = model_ops("vit_base", 16)
    static_latency = gpu.model_latency(ops, "flexiq", four_bit_ratio=1.0)
    dynamic_latency = gpu.model_latency(
        ops, "flexiq", four_bit_ratio=1.0, dynamic_extraction=True
    )
    overhead = dynamic_latency / static_latency - 1.0

    # Functional kernel: count the extra OR-reduction work.
    kernel = MixedPrecisionGemm(group_size=8)
    rng = np.random.default_rng(0)
    q_x = rng.integers(-100, 101, size=(64, 64))
    q_w = rng.integers(-100, 101, size=(32, 64))
    shifts = np.full(64, 3)
    kernel(q_x, q_w, 64, shifts, shifts, dynamic_extraction=True)
    or_reductions = kernel.stats.dynamic_or_reductions

    rows = [
        ["accuracy, static extraction (%)", static_accuracy],
        ["accuracy, dynamic extraction (%)", dynamic_accuracy],
        ["accuracy gain (pp)", dynamic_accuracy - static_accuracy],
        ["modelled latency overhead (%)", overhead * 100],
        ["OR-reduction operations (per 64x64x32 GEMM)", or_reductions],
    ]
    text = format_table(
        ["quantity", "value"], rows, precision=2,
        title="Section 8.6 -- dynamic extraction position: overhead and accuracy gain",
    )
    results_writer("sec86_dynamic_extract", text)

    # Overhead sits in the paper's 2-5% band.
    assert 0.01 <= overhead <= 0.06
    # Dynamic extraction never hurts accuracy materially and the OR pass
    # touches every activation element exactly once.
    assert dynamic_accuracy >= static_accuracy - 1.0
    assert or_reductions == q_x.size

"""Figure 8: median and p90 end-to-end latency vs Poisson request rate.

FlexiQ at 25-100% 4-bit ratios is compared against uniform INT4 and INT8
deployments of ViT-Base and Swin-Small on the A6000 model, with requests
arriving open-loop at 100-3000 requests/second.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.data.traces import PoissonTrace
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator

RATES = (100, 500, 1000, 1500, 2000, 2500, 3000)
CONFIGS = [
    ("int8", 0.0),
    ("flexiq", 0.25),
    ("flexiq", 0.5),
    ("flexiq", 0.75),
    ("flexiq", 1.0),
    ("int4", 0.0),
]


def _label(mode, ratio):
    return f"FlexiQ {int(ratio * 100)}%" if mode == "flexiq" else mode.upper()


@pytest.mark.parametrize("model_name", ["vit_base", "swin_small"])
def test_fig8_latency_vs_request_rate(benchmark, results_writer, model_name):
    service = ServiceTimeModel(model_name, gpu="a6000", anchor_batches=(1, 16, 64, 128))
    simulator = ServingSimulator(service, BatchingConfig(max_batch=128))
    duration = 4.0

    def run_sweep():
        table = {}
        for mode, ratio in CONFIGS:
            medians, p90s = [], []
            for rate in RATES:
                trace = PoissonTrace(rate, duration, seed=17).generate()
                result = simulator.run(trace, mode, ratio=ratio)
                medians.append(result.median_latency * 1e3)
                p90s.append(result.p90_latency * 1e3)
            table[_label(mode, ratio)] = (medians, p90s)
        return table

    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for label, (medians, p90s) in table.items():
        rows.append([label + " (median)"] + medians)
        rows.append([label + " (p90)"] + p90s)
    text = format_table(
        ["configuration"] + [f"{r} rps" for r in RATES], rows, precision=1,
        title=f"Figure 8 -- serving latency (ms) vs Poisson request rate ({model_name}, A6000)",
    )
    results_writer(f"fig8_poisson_{model_name}", text)

    int8_median = np.asarray(table["INT8"][0])
    int4_median = np.asarray(table["INT4"][0])
    flexiq_full = np.asarray(table["FlexiQ 100%"][0])
    flexiq_half = np.asarray(table["FlexiQ 50%"][0])
    # At the highest rate INT8 has saturated while INT4 still serves quickly.
    assert int8_median[-1] > 3 * int4_median[-1]
    # FlexiQ 100% tracks INT4 closely across the sweep.
    assert flexiq_full[-1] < int8_median[-1]
    assert flexiq_full[-1] <= int4_median[-1] * 2.5
    # Intermediate ratios interpolate between the two extremes at high load.
    assert int4_median[-2] <= flexiq_full[-2] <= flexiq_half[-2] <= int8_median[-2] * 1.05

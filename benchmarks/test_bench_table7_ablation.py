"""Table 7: ablation of FlexiQ's techniques at 75% 4-bit / 25% 8-bit.

The optimizations are enabled cumulatively:

1. ``Random``             -- random channels, naive top-bit lowering
2. ``+Static Selection``  -- random channels, range-based bit extraction
3. ``+Greedy Selection``  -- channels ranked by error score
4. ``+Evolutionary``      -- Algorithm 1 channel selection
5. ``+Dynamic Extract``   -- runtime extraction-position adjustment
6. ``+Finetuning``        -- specialized dual-bitwidth loss finetuning
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.finetune import FinetuneConfig
from repro.train.loop import evaluate_accuracy

from conftest import BENCH_SELECTION, full_eval

MODELS = ["resnet18", "vit_small"] if not full_eval() else [
    "resnet18", "resnet50", "vit_small", "swin_small",
]
TARGET_RATIO = 0.75

STEPS = [
    "Random",
    "+Static Selection",
    "+Greedy Selection",
    "+Evolutionary Selection",
    "+Dynamic Extract",
    "+Finetuning",
]


def _config_for(step: str, finetune_dataset):
    base = dict(
        ratios=(TARGET_RATIO,), group_size=4,
        selection_config=BENCH_SELECTION,
    )
    if step == "Random":
        return FlexiQConfig(selection="random", naive_lowering=True, **base)
    if step == "+Static Selection":
        return FlexiQConfig(selection="random", **base)
    if step == "+Greedy Selection":
        return FlexiQConfig(selection="greedy", **base)
    if step == "+Evolutionary Selection":
        return FlexiQConfig(selection="evolutionary", **base)
    if step == "+Dynamic Extract":
        return FlexiQConfig(selection="evolutionary", dynamic_extraction=True, **base)
    if step == "+Finetuning":
        return FlexiQConfig(
            selection="evolutionary", dynamic_extraction=True, finetune=True,
            finetune_config=FinetuneConfig(epochs=1, learning_rate=5e-3), **base
        )
    raise ValueError(step)


@pytest.mark.parametrize("model_name", MODELS)
def test_table7_ablation(benchmark, bundles, results_writer, model_name):
    bundle = bundles[model_name]
    dataset = bundle.dataset

    def run_ablation():
        accuracies = {}
        for step in STEPS:
            config = _config_for(step, dataset)
            pipeline = FlexiQPipeline(
                bundle.model, bundle.calibration.all(), config,
                finetune_dataset=dataset if config.finetune else None,
            )
            runtime = pipeline.run()
            runtime.set_ratio(TARGET_RATIO)
            accuracies[step] = evaluate_accuracy(runtime.model, dataset)
        return accuracies

    accuracies = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [[step, accuracies[step]] for step in STEPS]
    text = format_table(
        ["optimization", "accuracy (%)"], rows, precision=1,
        title=(
            f"Table 7 -- ablation at {int(TARGET_RATIO * 100)}% 4-bit "
            f"({bundle.spec.abbreviation})"
        ),
    )
    results_writer(f"table7_ablation_{model_name}", text)

    # The full stack must clearly beat the naive random baseline ...
    assert accuracies["+Dynamic Extract"] >= accuracies["Random"] - 1.0
    assert max(accuracies.values()) > accuracies["Random"]
    # ... with the bit extraction (static selection step) providing a gain
    # over naive lowering, as in the paper's first ablation row.
    assert accuracies["+Static Selection"] >= accuracies["Random"] - 1.0
    # Informed selection is not worse than random selection.
    assert accuracies["+Greedy Selection"] >= accuracies["+Static Selection"] - 2.0
    assert accuracies["+Evolutionary Selection"] >= accuracies["+Static Selection"] - 1.0

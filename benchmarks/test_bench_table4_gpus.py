"""Table 4: ViT-Base latency across GPU generations for FlexiQ ratios.

Reproduces the per-device sweep (RTX 3090, A6000, A100, L40S) at batch sizes
16 and 128, including the A100 anomaly: because FlexiQ's shift-and-accumulate
stage runs on CUDA cores, the A100's relatively low CUDA-core throughput
limits its FlexiQ speedup.
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import format_table
from repro.hardware.devices import GPU_CATALOG
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.workloads import model_ops

GPUS = ("rtx3090", "a6000", "a100", "l40s")
RATIOS = (0.25, 0.5, 0.75, 1.0)
BATCHES = (16, 128)


def test_table4_gpu_sweep(benchmark, results_writer):
    def sweep():
        table = {}
        for batch in BATCHES:
            ops = model_ops("vit_base", batch)
            for gpu in GPUS:
                model = GpuLatencyModel(gpu)
                entry = {"int8": model.model_latency(ops, "int8"),
                         "int4": model.model_latency(ops, "int4")}
                for ratio in RATIOS:
                    entry[f"flexiq_{ratio}"] = model.model_latency(
                        ops, "flexiq", four_bit_ratio=ratio
                    )
                table[(batch, gpu)] = entry
        return table

    table = benchmark(sweep)

    rows = []
    methods = ["int8"] + [f"flexiq_{r}" for r in RATIOS] + ["int4"]
    labels = ["INT8"] + [f"FlexiQ {int(r * 100)}%" for r in RATIOS] + ["INT4"]
    for method, label in zip(methods, labels):
        row = [label]
        for batch in BATCHES:
            for gpu in GPUS:
                row.append(table[(batch, gpu)][method] * 1e3)
        rows.append(row)
    headers = ["method"] + [f"b{batch}:{gpu}" for batch in BATCHES for gpu in GPUS]
    text = format_table(
        headers, rows, precision=2,
        title="Table 4 -- ViT-Base latency (ms) across GPUs (batch 16 and 128)",
    )
    results_writer("table4_gpus", text)

    for batch in BATCHES:
        for gpu in GPUS:
            entry = table[(batch, gpu)]
            # Monotone speedup with the 4-bit ratio on every device.
            series = [entry["int8"]] + [entry[f"flexiq_{r}"] for r in RATIOS]
            assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
            assert entry["int4"] <= entry["flexiq_1.0"] * 1.01
    # The A100 anomaly: its low CUDA-core throughput makes FlexiQ's shift-and-
    # accumulate stage the bottleneck, so its FlexiQ-vs-INT4 gap is the widest
    # (clearly visible at the large batch size, where compute dominates).
    gaps_128 = {
        gpu: table[(128, gpu)]["flexiq_1.0"] / table[(128, gpu)]["int4"] for gpu in GPUS
    }
    assert max(gaps_128, key=gaps_128.get) == "a100"
    gaps_16 = {
        gpu: table[(16, gpu)]["flexiq_1.0"] / table[(16, gpu)]["int4"] for gpu in GPUS
    }
    assert gaps_16["a100"] >= gaps_16["a6000"] - 1e-3
    # Datacenter GPUs are faster than commodity GPUs at the same setting.
    assert table[(16, "l40s")]["int8"] < table[(16, "a6000")]["int8"]

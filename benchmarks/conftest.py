"""Shared fixtures for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper: it prints the
paper-style rows, writes them to ``benchmarks/results/`` and uses
pytest-benchmark to time the operation that the experiment is really about
(pipeline construction, a latency sweep, a serving simulation, ...).

Accuracy experiments run on a representative subset of the model zoo by
default so the full suite finishes in minutes on a CPU; set
``REPRO_FULL_EVAL=1`` to run every model of Table 1.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core import FlexiQConfig, FlexiQPipeline
from repro.core.finetune import FinetuneConfig
from repro.core.runtime import FlexiQModel
from repro.core.selection import SelectionConfig
from repro.data import CalibrationSampler
from repro.train.pretrain import get_dataset_for, get_pretrained

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Models exercised by the accuracy benchmarks when REPRO_FULL_EVAL is unset.
DEFAULT_ACCURACY_MODELS = ["resnet18", "resnet50", "vit_small", "swin_small"]

# Scaled-down GA settings used by the benchmarks (paper: population 50 / 50
# generations; see EXPERIMENTS.md for the scaling rationale).
BENCH_SELECTION = SelectionConfig(group_size=4, population_size=8, generations=5, seed=0)


def full_eval() -> bool:
    return os.environ.get("REPRO_FULL_EVAL", "0") not in ("", "0", "false")


def accuracy_models() -> List[str]:
    if full_eval():
        return [
            "resnet20", "resnet18", "resnet34", "resnet50", "mobilenet_v2",
            "vit_small", "vit_base", "deit_small", "deit_base",
            "swin_small", "swin_base",
        ]
    return list(DEFAULT_ACCURACY_MODELS)


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print("\n" + text)
    return path


@pytest.fixture(scope="session")
def results_writer():
    return write_result


class ModelBundle:
    """Pre-trained model + dataset + calibration sampler for one zoo entry."""

    def __init__(self, name: str):
        self.name = name
        self.model = get_pretrained(name)
        self.dataset = get_dataset_for(name)
        from repro.nn.registry import get_spec

        spec = get_spec(name)
        self.spec = spec
        self.calibration = CalibrationSampler(
            self.dataset.train_images, size=spec.calibration_size, batch_size=32, seed=0
        )


@pytest.fixture(scope="session")
def bundles() -> Dict[str, ModelBundle]:
    """Lazily constructed model bundles, shared across all benchmarks."""
    cache: Dict[str, ModelBundle] = {}

    class _Bundles(dict):
        def __missing__(self, name: str) -> ModelBundle:
            bundle = ModelBundle(name)
            self[name] = bundle
            return bundle

    return _Bundles(cache)


@pytest.fixture(scope="session")
def flexiq_runtimes(bundles) -> Dict[Tuple[str, str, bool], FlexiQModel]:
    """Cache of FlexiQ runtimes keyed by (model, selection strategy, finetuned)."""

    class _Runtimes(dict):
        def __missing__(self, key: Tuple[str, str, bool]) -> FlexiQModel:
            name, selection, finetuned = key
            bundle = bundles[name]
            config = FlexiQConfig(
                ratios=(0.25, 0.5, 0.75, 1.0),
                group_size=4,
                selection=selection,
                selection_config=BENCH_SELECTION,
                finetune=finetuned,
                finetune_config=FinetuneConfig(epochs=1, learning_rate=5e-3),
            )
            pipeline = FlexiQPipeline(
                bundle.model,
                bundle.calibration.all(),
                config,
                finetune_dataset=bundle.dataset if finetuned else None,
            )
            runtime = pipeline.run()
            runtime.pipeline = pipeline  # keep selections/scores reachable
            self[key] = runtime
            return runtime

    return _Runtimes()

"""Section 8.5: cost of the evolutionary search and of runtime ratio switching.

The paper reports that (a) error-score estimation plus seeding takes seconds,
(b) the GA itself stays within typical PTQ processing time, and (c) switching
the deployed 4-bit ratio costs microseconds because it only updates one
variable per layer.  This bench measures all three on the reproduction and
additionally reports the modelled switch cost on the GPU and NPU.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core.scoring import estimate_channel_scores
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.npu import NpuLatencyModel


def test_sec85_selection_and_switch_cost(
    benchmark, bundles, flexiq_runtimes, results_writer
):
    model_name = "vit_small"
    runtime = flexiq_runtimes[(model_name, "evolutionary", False)]

    # (a) score estimation cost.
    start = time.perf_counter()
    estimate_channel_scores(
        runtime.model, layer_names=list(runtime.layout_plan.layouts)
    )
    scoring_seconds = time.perf_counter() - start

    # (c) ratio switching: benchmark the actual runtime operation.
    ratios = runtime.available_ratios

    def switch_all():
        for ratio in ratios:
            runtime.set_ratio(ratio)

    benchmark(switch_all)
    runtime.set_ratio(0.0)
    switch_seconds = benchmark.stats.stats.mean / len(ratios)

    pipeline = runtime.pipeline
    history = pipeline.selection_histories
    rows = [
        ["score estimation (s)", scoring_seconds],
        ["GA generations per ratio", len(next(iter(history.values()))) - 1],
        ["ratio switch, this runtime (us)", switch_seconds * 1e6],
        ["ratio switch, GPU model (us)", GpuLatencyModel("a6000").ratio_switch_latency() * 1e6],
        ["ratio switch, NPU model (us)", NpuLatencyModel().ratio_switch_latency() * 1e6],
    ]
    text = format_table(
        ["quantity", "value"], rows, precision=4,
        title="Section 8.5 -- selection cost and runtime ratio-switch overhead (ViT-S family)",
    )
    results_writer("sec85_selection_cost", text)

    # Score estimation is a matter of seconds (paper: 2-10 s at full scale).
    assert scoring_seconds < 10.0
    # GA fitness improved (or at worst stayed flat) over the generations.
    for ratio, losses in history.items():
        assert losses[-1] <= losses[0] + 1e-6
    # Switching ratios is orders of magnitude cheaper than one inference.
    assert switch_seconds < 5e-3
    # The modelled hardware switch costs match the paper's bounds.
    assert GpuLatencyModel("a6000").ratio_switch_latency() < 10e-6
    assert NpuLatencyModel().ratio_switch_latency() <= 0.3e-6 + 1e-12

"""Figure 12: per-layer percentages of feature channels with 0-4 unused bits.

For ViT-Small and ResNet-50, the fraction of weight and activation channels
with 0, 1, 2, 3 and >=4 unused magnitude bits is reported per layer, measured
from the calibrated 8-bit quantization statistics (the paper uses 1024
samples; the scaled-down calibration sets play that role here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import model_unused_bit_profiles
from repro.analysis.reports import format_table


@pytest.mark.parametrize("model_name", ["vit_small", "resnet50"])
def test_fig12_unused_bit_profiles(
    benchmark, flexiq_runtimes, results_writer, model_name
):
    runtime = flexiq_runtimes[(model_name, "greedy", False)]

    profiles = benchmark.pedantic(
        lambda: model_unused_bit_profiles(runtime.model), rounds=1, iterations=1
    )

    rows = []
    for name, profile in profiles.items():
        weight_hist = profile.histogram("weight")
        act_hist = profile.histogram("act")
        rows.append(
            [name]
            + [weight_hist[b] * 100 for b in range(5)]
            + [act_hist[b] * 100 for b in range(5)]
        )
    headers = (
        ["layer"]
        + [f"w:{b}b" for b in range(5)]
        + [f"a:{b}b" for b in range(5)]
    )
    text = format_table(
        headers, rows, precision=0,
        title=f"Figure 12 -- %% of channels with 0-4+ unused bits ({model_name})",
    )
    results_writer(f"fig12_unused_bits_{model_name}", text)

    # Aggregate check: a meaningful fraction of channels (the paper reports
    # 10-40% for weights) has at least one unused bit, with variation across
    # layers; activations show at least as much slack as weights.
    weight_fracs = np.asarray([p.fraction_with_unused() for p in profiles.values()])
    act_fracs = np.asarray([np.mean(p.act_unused >= 1) for p in profiles.values()])
    assert 0.05 < weight_fracs.mean() < 0.8
    assert weight_fracs.std() > 0.0
    assert act_fracs.mean() >= weight_fracs.mean() * 0.5

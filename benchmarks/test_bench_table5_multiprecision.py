"""Table 5: comparison against multi-precision adaptive quantization schemes.

FlexiQ is compared against reimplementations of PTMQ (layer-wise multi-bit,
post-training), HAWQ-v3-style layer-wise mixed precision, RobustQuant-style
and AnyPrecision-style multi-bitwidth training.  As in the paper, accuracy is
reported *relative to the full-precision model* at average bitwidths of
roughly 4, 6 and 8 bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.baselines.anyprecision import AnyPrecisionConfig, anyprecision_finetune
from repro.baselines.hawq import hawq_layerwise_quantize
from repro.baselines.ptmq import ptmq_average_bit_assignment, ptmq_quantize
from repro.baselines.robustquant import (
    RobustQuantConfig,
    evaluate_at_bits,
    robustquant_finetune,
)
from repro.core.pipeline import evaluate_ratio_sweep
from repro.train.loop import evaluate_accuracy

from conftest import full_eval

MODELS = ["resnet18", "vit_small"] if not full_eval() else [
    "resnet18", "resnet50", "vit_base", "deit_small", "deit_base",
]

# FlexiQ ratios whose average bitwidth corresponds to ~4 / ~6 / ~8 bits.
FLEXIQ_RATIO_FOR_BITS = {4: 1.0, 6: 0.5, 8: 0.0}


def _relative(accuracy, full_precision):
    return accuracy - full_precision


@pytest.mark.parametrize("model_name", MODELS)
def test_table5_multiprecision_comparison(
    benchmark, bundles, flexiq_runtimes, results_writer, model_name
):
    bundle = bundles[model_name]
    dataset = bundle.dataset
    calibration = bundle.calibration.all()
    fp_accuracy = evaluate_accuracy(bundle.model, dataset)

    def run_all():
        results = {}

        # FlexiQ (ours): accuracy at the ratios matching 4/6/8 average bits,
        # once post-training-only (compared against PTMQ) and once finetuned
        # (compared against the trained schemes), mirroring the paper's rows.
        runtime = flexiq_runtimes[(model_name, "evolutionary", False)]
        sweep = evaluate_ratio_sweep(runtime, dataset)
        results["FlexiQ (ours, PTQ)"] = {
            bits: _relative(sweep[ratio], fp_accuracy)
            for bits, ratio in FLEXIQ_RATIO_FOR_BITS.items()
        }
        finetuned_runtime = flexiq_runtimes[(model_name, "evolutionary", True)]
        finetuned_sweep = evaluate_ratio_sweep(finetuned_runtime, dataset)
        results["FlexiQ (ours, finetuned)"] = {
            bits: _relative(finetuned_sweep[ratio], fp_accuracy)
            for bits, ratio in FLEXIQ_RATIO_FOR_BITS.items()
        }

        # PTMQ: layer-wise multi-bit scale sets, no retraining.
        ptmq = ptmq_quantize(bundle.model, calibration, bit_choices=(4, 6, 8))
        ptmq_row = {}
        for bits in (4, 6, 8):
            ptmq.set_layer_bits(ptmq_average_bit_assignment(ptmq, float(bits)))
            ptmq_row[bits] = _relative(ptmq.accuracy(dataset), fp_accuracy)
        results["PTMQ"] = ptmq_row

        # HAWQ-v3-style layer-wise mixed precision (static, per target).
        hawq_row = {}
        for bits in (4, 6, 8):
            hawq = hawq_layerwise_quantize(
                bundle.model, calibration, target_average_bits=float(bits)
            )
            hawq_row[bits] = _relative(evaluate_accuracy(hawq.model, dataset), fp_accuracy)
        results["HAWQv3"] = hawq_row

        # RobustQuant: one bitwidth-robust model evaluated at each precision.
        robust = robustquant_finetune(
            bundle.model, dataset, calibration,
            RobustQuantConfig(epochs=1, bit_choices=(4, 6, 8), learning_rate=5e-3),
        )
        results["RobustQuant"] = {
            bits: _relative(evaluate_at_bits(robust, dataset, bits, calibration), fp_accuracy)
            for bits in (4, 6, 8)
        }

        # AnyPrecision: jointly trained multi-bitwidth model.
        any_precision = anyprecision_finetune(
            bundle.model, dataset, calibration,
            AnyPrecisionConfig(epochs=1, bit_choices=(4, 6, 8), learning_rate=5e-3),
        )
        results["AnyPrecision"] = {
            bits: _relative(
                evaluate_at_bits(any_precision, dataset, bits, calibration), fp_accuracy
            )
            for bits in (4, 6, 8)
        }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [method, row[4], row[6], row[8]]
        for method, row in results.items()
    ]
    text = format_table(
        ["method", "4-bit", "6-bit", "8-bit"], rows, precision=2,
        title=(
            f"Table 5 -- relative accuracy (pp vs full precision {fp_accuracy:.1f}%) "
            f"for multi-precision schemes ({bundle.spec.abbreviation})"
        ),
    )
    results_writer(f"table5_multiprecision_{model_name}", text)

    ptq_row = results["FlexiQ (ours, PTQ)"]
    finetuned_row = results["FlexiQ (ours, finetuned)"]
    # FlexiQ's 8-bit setting matches full precision closely.
    assert ptq_row[8] >= -3.0
    # Accuracy improves with more bits for FlexiQ.
    assert ptq_row[4] <= ptq_row[6] + 1.0 <= ptq_row[8] + 2.0
    # Like-for-like comparisons (the paper's Table 5 structure): the PTQ
    # FlexiQ row competes with PTMQ, and the finetuned FlexiQ row competes
    # with the schemes that retrain the model.
    assert ptq_row[4] >= results["PTMQ"][4] - 1.5
    trained_best_at_4 = max(
        results[method][4] for method in ("HAWQv3", "RobustQuant", "AnyPrecision")
    )
    best_flexiq_at_4 = max(ptq_row[4], finetuned_row[4])
    assert best_flexiq_at_4 >= trained_best_at_4 - 4.0

"""Section 7 ("Resource Consumption"): memory footprint and weight traffic.

FlexiQ keeps 8-bit weights resident so the 4-bit ratio can change at run
time; its footprint therefore matches the INT8 model.  Restricting the
supported ratio range shrinks the footprint, and caching the extracted 4-bit
weights trades memory for bandwidth.  This bench reports the ViT-Base
numbers for every deployment option and checks the orderings the paper
states.
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import format_table
from repro.hardware.memory import resource_report
from repro.hardware.workloads import model_ops


def test_sec7_memory_footprint_and_traffic(benchmark, results_writer):
    ops = model_ops("vit_base", 16)
    report = benchmark(lambda: resource_report(ops))

    rows = [
        [
            name,
            entry.weight_bytes / 1e6,
            entry.cache_bytes / 1e6,
            entry.total_bytes / 1e6,
            entry.weight_traffic_bytes / 1e6,
        ]
        for name, entry in report.items()
    ]
    text = format_table(
        ["deployment", "weights (MB)", "cache (MB)", "total (MB)", "traffic/inference (MB)"],
        rows, precision=1,
        title="Section 7 -- ViT-Base parameter footprint and weight traffic",
    )
    results_writer("sec7_resources", text)

    # FlexiQ's footprint equals the 8-bit model's (Section 7).
    assert report["flexiq_full_range"].weight_bytes == pytest.approx(
        report["uniform_int8"].weight_bytes
    )
    # Restricting the ratio range to 50-100% reduces the footprint, but not
    # below the pure INT4 model.
    assert (
        report["uniform_int4"].weight_bytes
        < report["flexiq_50_100_range"].weight_bytes
        < report["flexiq_full_range"].weight_bytes
    )
    # Runtime extraction doubles weight traffic relative to uniform INT4;
    # caching removes the overhead at the cost of extra memory.
    assert report["flexiq_full_range"].weight_traffic_bytes == pytest.approx(
        2 * report["uniform_int4"].weight_traffic_bytes
    )
    assert report["flexiq_full_range_cached"].weight_traffic_bytes == pytest.approx(
        report["uniform_int4"].weight_traffic_bytes
    )
    assert (
        report["flexiq_full_range_cached"].total_bytes
        > report["flexiq_full_range"].total_bytes
    )

"""Table 6 / Section 8.8: layer-wise errors of the selection algorithms.

Average error (relative to 8-bit-only inference) of selected Q/K/V projection
layers of the ViT-family model under evolutionary, greedy and random channel
selection at 25/50/75% 4-bit ratios.  Because the whole model runs at the
mixed precision, inter-layer error amplification is included, which is the
effect the evolutionary selection targets; the expected trends are (a) errors
grow with depth and with the ratio and (b) evolutionary <= greedy <= random
on average.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import selection_layer_errors
from repro.analysis.reports import format_table

RATIOS = (0.25, 0.5, 0.75)
ALGORITHMS = ("evolutionary", "greedy", "random")


def test_table6_layerwise_selection_errors(
    benchmark, bundles, flexiq_runtimes, results_writer
):
    model_name = "vit_small"
    bundle = bundles[model_name]
    batch = bundle.dataset.test_images[:32]
    runtimes = {
        algorithm: flexiq_runtimes[(model_name, algorithm, False)]
        for algorithm in ALGORITHMS
    }
    # Q/K/V projection layers, as in the paper's Table 6.
    qkv_layers = [
        name
        for name, _ in runtimes["evolutionary"].flexiq_layers()
        if name in runtimes["evolutionary"].layout_plan.layouts
        and any(tag in name for tag in ("q_proj", "k_proj", "v_proj"))
    ]
    assert qkv_layers, "ViT model must expose Q/K/V projections"

    table = benchmark.pedantic(
        lambda: selection_layer_errors(
            runtimes, batch, ratios=RATIOS, layer_names=qkv_layers, norm="l1"
        ),
        rounds=1, iterations=1,
    )

    rows = []
    for layer in qkv_layers:
        row = [layer]
        for ratio in RATIOS:
            for algorithm in ALGORITHMS:
                row.append(table[layer][algorithm][ratio])
        rows.append(row)
    headers = ["layer"] + [
        f"{int(ratio * 100)}%:{algorithm[:4]}"
        for ratio in RATIOS for algorithm in ALGORITHMS
    ]
    text = format_table(
        headers, rows, precision=3,
        title="Table 6 -- relative L1 error of Q/K/V outputs vs 8-bit inference (ViT-S family)",
    )
    results_writer("table6_layer_errors", text)

    def mean_error(algorithm, ratio):
        return float(np.mean([table[layer][algorithm][ratio] for layer in qkv_layers]))

    for algorithm in ALGORITHMS:
        # Errors grow with the 4-bit ratio.
        series = [mean_error(algorithm, ratio) for ratio in RATIOS]
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))
    # Informed selection keeps layer errors at or below random selection, and
    # the evolutionary search is at least as good as greedy on average.
    for ratio in RATIOS:
        assert mean_error("greedy", ratio) <= mean_error("random", ratio) * 1.25
        assert mean_error("evolutionary", ratio) <= mean_error("greedy", ratio) * 1.15

"""Table 2: accuracy of FlexiQ's 4/8-bit mixed-precision models.

For every evaluated model the bench reports full-precision accuracy, uniform
channel-wise INT8/INT4 accuracy, and FlexiQ accuracy at 25/50/75/100% 4-bit
channel ratios, with and without finetuning.  The quantities to reproduce are
the orderings (INT8 ~ FP, FlexiQ degrades gracefully with the ratio, FlexiQ
100% far above uniform INT4) rather than the absolute percentages.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.baselines.uniform import uniform_accuracy_sweep
from repro.core.pipeline import evaluate_ratio_sweep
from repro.train.loop import evaluate_accuracy

from conftest import accuracy_models, full_eval

RATIOS = (0.25, 0.5, 0.75, 1.0)


def _row(name, bundle, runtime):
    dataset = bundle.dataset
    fp_acc = evaluate_accuracy(bundle.model, dataset)
    uniform = uniform_accuracy_sweep(
        bundle.model, dataset, bundle.calibration.all(), bit_widths=(4, 8)
    )
    sweep = evaluate_ratio_sweep(runtime, dataset)
    return {
        "model": bundle.spec.abbreviation,
        "fp": fp_acc,
        "int8": uniform[8],
        "int4": uniform[4],
        "flexiq": {ratio: sweep[ratio] for ratio in RATIOS},
        "flexiq_int8": sweep[0.0],
    }


@pytest.mark.parametrize("finetuned", [False, True])
def test_table2_accuracy(benchmark, bundles, flexiq_runtimes, results_writer, finetuned):
    models = accuracy_models()
    if finetuned and not full_eval():
        # Finetuning every model is the expensive half of Table 2; by default
        # exercise it on two representative models (one CNN, one transformer).
        models = ["resnet18", "vit_small"]

    rows = []

    def build_all():
        results = []
        for name in models:
            runtime = flexiq_runtimes[(name, "evolutionary", finetuned)]
            results.append(_row(name, bundles[name], runtime))
        return results

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)

    header = ["Model", "UniformINT4", "100%", "75%", "50%", "25%", "UniformINT8", "Full-Prec."]
    table_rows = [
        [
            row["model"], row["int4"],
            row["flexiq"][1.0], row["flexiq"][0.75], row["flexiq"][0.5], row["flexiq"][0.25],
            row["int8"], row["fp"],
        ]
        for row in rows
    ]
    suffix = "finetuned" if finetuned else "ptq"
    table = format_table(
        header, table_rows, precision=1,
        title=f"Table 2 -- accuracy (%) of FlexiQ mixed-precision models ({suffix})",
    )
    results_writer(f"table2_accuracy_{suffix}", table)

    for row in rows:
        # INT8 tracks full precision closely.
        assert row["int8"] >= row["fp"] - 3.0
        # FlexiQ at 0% equals the INT8 configuration.
        assert row["flexiq_int8"] == pytest.approx(row["int8"], abs=3.0)
        # Graceful degradation: 25% 4-bit stays close to INT8 and each row
        # degrades monotonically (within noise) as the ratio grows.
        assert row["flexiq"][0.25] >= row["int8"] - 8.0
        series = [row["int8"]] + [row["flexiq"][r] for r in RATIOS]
        assert all(b <= a + 3.0 for a, b in zip(series, series[1:]))
        # FlexiQ's full 4-bit model beats uniform INT4 (the headline claim).
        assert row["flexiq"][1.0] >= row["int4"] - 1.0
    # The scaled-down models are more quantization-sensitive than the paper's
    # ImageNet checkpoints, so the 0.6%-at-50% figure is not expected to hold
    # in absolute terms; the 50% operating point must still retain most of the
    # INT8 accuracy on average.
    mean_drop_at_half = np.mean([row["int8"] - row["flexiq"][0.5] for row in rows])
    assert mean_drop_at_half < 12.0
    # On average the 100% 4-bit FlexiQ model improves clearly over uniform INT4.
    mean_gain = np.mean([row["flexiq"][1.0] - row["int4"] for row in rows])
    assert mean_gain > 0.0

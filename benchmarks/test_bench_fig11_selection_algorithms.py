"""Figure 11: comparison of channel selection algorithms.

Accuracy of models produced by random, greedy and evolutionary channel
selection at 0-100% 4-bit ratios.  The expected ordering (greedy and
evolutionary above random, evolutionary >= greedy) is the paper's Figure 11
result; FlexiQ's static bit-lowering is applied in all cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core.pipeline import evaluate_ratio_sweep

from conftest import full_eval

MODELS = ["resnet18", "vit_small"] if not full_eval() else [
    "resnet18", "resnet50", "vit_small", "swin_small",
]
ALGORITHMS = ("random", "greedy", "evolutionary")


@pytest.mark.parametrize("model_name", MODELS)
def test_fig11_selection_algorithm_comparison(
    benchmark, bundles, flexiq_runtimes, results_writer, model_name
):
    dataset = bundles[model_name].dataset

    def run_all():
        sweeps = {}
        for algorithm in ALGORITHMS:
            runtime = flexiq_runtimes[(model_name, algorithm, False)]
            sweeps[algorithm] = evaluate_ratio_sweep(runtime, dataset)
        return sweeps

    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ratios = sorted(sweeps["random"])
    rows = [
        [algorithm] + [sweeps[algorithm][ratio] for ratio in ratios]
        for algorithm in ALGORITHMS
    ]
    text = format_table(
        ["selection"] + [f"{int(r * 100)}%" for r in ratios], rows, precision=1,
        title=f"Figure 11 -- accuracy (%) by selection algorithm ({model_name})",
    )
    results_writer(f"fig11_selection_algorithms_{model_name}", text)

    # At 0% every algorithm runs the same 8-bit model.
    assert sweeps["greedy"][0.0] == pytest.approx(sweeps["random"][0.0], abs=1.0)
    # Averaged over the intermediate ratios (25-75%), informed selection beats
    # random, and evolutionary is at least as good as greedy.
    mid = [0.25, 0.5, 0.75]
    mean_random = np.mean([sweeps["random"][r] for r in mid])
    mean_greedy = np.mean([sweeps["greedy"][r] for r in mid])
    mean_evolutionary = np.mean([sweeps["evolutionary"][r] for r in mid])
    assert mean_greedy >= mean_random - 0.5
    assert mean_evolutionary >= mean_random - 0.5
    assert mean_evolutionary >= mean_greedy - 1.5

"""Figure 14 / Section 8.7: per-layer L2 distance of quantized outputs.

For a set of layers of a ResNet-family model, the L2 distance (normalised by
the 8-bit output norm) between the 8-bit output and (a) the uniform INT4
output and (b) FlexiQ outputs at 25-100% mixed 4/8-bit is measured with the
layer inputs captured from 8-bit inference.  The paper's observation: uniform
INT4 distances are large (>= 12.5%) while FlexiQ at 25-50% stays within a few
percent, explaining why feature-level mixing preserves accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import layer_output_errors
from repro.analysis.reports import format_table

RATIOS = (0.25, 0.5, 0.75, 1.0)


def test_fig14_layer_l2_distances(benchmark, bundles, flexiq_runtimes, results_writer):
    model_name = "resnet18"
    runtime = flexiq_runtimes[(model_name, "greedy", False)]
    dataset = bundles[model_name].dataset
    batch = dataset.test_images[:32]

    errors = benchmark.pedantic(
        lambda: layer_output_errors(runtime, batch, ratios=RATIOS),
        rounds=1, iterations=1,
    )

    rows = []
    for layer, entry in errors.items():
        rows.append(
            [layer, entry["int4"]]
            + [entry[f"flexiq_{int(r * 100)}"] for r in RATIOS]
        )
    text = format_table(
        ["layer", "uniform INT4"] + [f"FlexiQ {int(r * 100)}%" for r in RATIOS],
        rows, precision=3,
        title="Figure 14 -- normalised L2 distance to the 8-bit layer output (ResNet-18 family)",
    )
    results_writer("fig14_layer_l2", text)

    int4 = np.asarray([entry["int4"] for entry in errors.values()])
    flexi25 = np.asarray([entry["flexiq_25"] for entry in errors.values()])
    flexi50 = np.asarray([entry["flexiq_50"] for entry in errors.values()])
    flexi100 = np.asarray([entry["flexiq_100"] for entry in errors.values()])
    # Uniform INT4 distances are substantial for every layer.
    assert int4.min() > 0.01
    # FlexiQ 25% stays well below the uniform INT4 distance on average ...
    assert flexi25.mean() < 0.5 * int4.mean()
    # ... and grows monotonically with the ratio.
    assert flexi25.mean() <= flexi50.mean() + 1e-6 <= flexi100.mean() + 1e-6
    # Even the 100% 4-bit FlexiQ distance does not exceed uniform INT4 (the
    # effective-bit extraction helps).
    assert flexi100.mean() <= int4.mean() * 1.05

"""Figure 10: per-layer percentage of 4-bit channels chosen by the GA.

For ViT-Small and ResNet-50 the evolutionary selection is run at 25-100%
global 4-bit ratios; the figure shows how the per-layer share of 4-bit
channels varies across layers while the global budget is met, and that the
per-layer shares only grow as the global ratio grows (nested selections).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table

RATIOS = (0.25, 0.5, 0.75, 1.0)


@pytest.mark.parametrize("model_name", ["vit_small", "resnet50"])
def test_fig10_per_layer_selection_profile(
    benchmark, bundles, flexiq_runtimes, results_writer, model_name
):
    runtime = benchmark.pedantic(
        lambda: flexiq_runtimes[(model_name, "evolutionary", False)],
        rounds=1, iterations=1,
    )
    selections = runtime.selections
    layer_names = list(selections[RATIOS[0]].layers.keys())

    rows = []
    for layer in layer_names:
        rows.append(
            [layer] + [selections[ratio].layer_ratio(layer) * 100 for ratio in RATIOS]
        )
    text = format_table(
        ["layer"] + [f"{int(r * 100)}%" for r in RATIOS], rows, precision=0,
        title=f"Figure 10 -- per-layer 4-bit channel percentage ({model_name})",
    )
    results_writer(f"fig10_selection_profile_{model_name}", text)

    for ratio in RATIOS:
        per_layer = np.asarray([selections[ratio].layer_ratio(name) for name in layer_names])
        # Global budget met while per-layer shares vary (except at 100%).
        assert selections[ratio].achieved_ratio() == pytest.approx(ratio, abs=0.12)
        if ratio < 1.0:
            assert per_layer.std() > 0.0
        # Per-layer shares never exceed 100%.
        assert per_layer.max() <= 1.0 + 1e-9
    # Nestedness: per-layer share never decreases as the global ratio grows.
    for layer in layer_names:
        shares = [selections[ratio].layer_ratio(layer) for ratio in RATIOS]
        assert all(b >= a - 1e-9 for a, b in zip(shares, shares[1:]))

"""Figure 7: GeMM/convolution latency and model latency vs the 4-bit ratio.

Left: ViT-Base on the GPU model (A6000); right: ResNet-18 on the NPU model.
Top rows report the latency of the quantizable GEMM/convolution operations
only, bottom rows the whole-model latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.npu import NpuLatencyModel
from repro.hardware.workloads import model_ops

RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig7_latency_vs_ratio(benchmark, results_writer):
    gpu = GpuLatencyModel("a6000")
    npu = NpuLatencyModel()
    vit = model_ops("vit_base", 16)
    resnet = model_ops("resnet18", 1)
    vit_gemms = [op for op in vit if op.kind == "gemm" and op.quantizable]
    resnet_convs = [op for op in resnet if op.kind == "gemm" and op.quantizable]

    def sweep():
        rows = []
        for ratio in RATIOS:
            gpu_gemm = sum(
                gpu.gemm_latency(op, "flexiq", four_bit_ratio=ratio) for op in vit_gemms
            )
            gpu_model = gpu.model_latency(vit, "flexiq", four_bit_ratio=ratio)
            npu_conv = sum(npu.op_latency(op, four_bit_ratio=ratio) for op in resnet_convs)
            npu_model = npu.model_latency(resnet, four_bit_ratio=ratio)
            rows.append([
                f"{int(ratio * 100)}%",
                gpu_gemm * 1e3, gpu_model * 1e3, npu_conv * 1e3, npu_model * 1e3,
            ])
        return rows

    rows = benchmark(sweep)

    int8_gpu = gpu.model_latency(vit, "int8") * 1e3
    int4_gpu = gpu.model_latency(vit, "int4") * 1e3
    table = format_table(
        ["4-bit ratio", "GPU GeMM (ms)", "GPU model (ms)", "NPU conv (ms)", "NPU model (ms)"],
        rows, precision=2,
        title=(
            "Figure 7 -- latency vs 4-bit ratio (ViT-Base on A6000, ResNet-18 on NPU)\n"
            f"reference: uniform INT8 {int8_gpu:.2f} ms, uniform INT4 {int4_gpu:.2f} ms (GPU model)"
        ),
    )
    results_writer("fig7_latency_sweep", table)

    gpu_models = [row[2] for row in rows]
    npu_models = [row[4] for row in rows]
    # Latency decreases monotonically with the 4-bit ratio on both platforms.
    assert all(b <= a + 1e-9 for a, b in zip(gpu_models, gpu_models[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(npu_models, npu_models[1:]))
    # 100% 4-bit latency approaches the uniform INT4 latency (within ~10%).
    assert gpu_models[-1] <= int4_gpu * 1.10
    # 0% ratio matches the INT8 baseline.
    assert gpu_models[0] == pytest.approx(int8_gpu, rel=0.02)

"""Table 3: end-to-end ViT-Base latency under different deployment frameworks.

Compares the paper's custom uniform INT8/INT4 kernels and the FlexiQ kernel
against CUTLASS and TensorRT cost models across batch sizes 16-128 on the
A6000 model.
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import format_table
from repro.hardware.frameworks import framework_comparison
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.workloads import model_ops

BATCHES = (16, 32, 64, 128)
FRAMEWORK_LABELS = {
    "cutlass_int8": "CUTLASS INT8",
    "tensorrt_int8": "TensorRT INT8",
    "custom_int8": "Uniform INT8 (ours)",
    "flexiq": "FlexiQ 100%",
    "custom_int4": "Uniform INT4 (ours)",
    "cutlass_int4": "CUTLASS INT4",
    "tensorrt_int4_weight_only": "TensorRT INT4 (weight-only)",
}


def test_table3_framework_comparison(benchmark, results_writer):
    model = GpuLatencyModel("a6000")

    def sweep():
        per_batch = {}
        for batch in BATCHES:
            per_batch[batch] = framework_comparison(model, model_ops("vit_base", batch))
        return per_batch

    per_batch = benchmark(sweep)

    rows = []
    for key, label in FRAMEWORK_LABELS.items():
        rows.append([label] + [per_batch[batch][key] * 1e3 for batch in BATCHES])
    text = format_table(
        ["method"] + [f"batch {b}" for b in BATCHES], rows, precision=2,
        title="Table 3 -- end-to-end latency (ms) of ViT-Base under deployment frameworks (A6000)",
    )
    results_writer("table3_frameworks", text)

    for batch in BATCHES:
        results = per_batch[batch]
        # Our INT8 kernel beats both framework INT8 baselines.
        assert results["custom_int8"] < results["cutlass_int8"]
        assert results["custom_int8"] < results["tensorrt_int8"]
        # FlexiQ 100% sits within a few percent of the uniform INT4 kernel.
        assert results["custom_int4"] <= results["flexiq"] <= results["custom_int4"] * 1.1
        # CUTLASS INT4 gains nothing over CUTLASS INT8 (layout transform).
        assert results["cutlass_int4"] == pytest.approx(results["cutlass_int8"], rel=0.05)
        # TensorRT weight-only INT4 is the slowest configuration.
        assert results["tensorrt_int4_weight_only"] == max(results.values())
        # Latency scales roughly linearly with batch size.
    assert per_batch[128]["custom_int8"] > 4 * per_batch[16]["custom_int8"]

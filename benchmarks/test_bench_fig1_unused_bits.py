"""Figure 1: unused bits in weight channels and the benefit of bit extraction.

Left plot of the paper: the number of unused bits across the weight
parameters of one layer (grouped by feature channel) under 8-bit
quantization.  Right plot: the quantization error of lowering 50% of the
channels to 4-bit with and without exploiting those unused bits.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import bit_extraction_error_comparison, model_unused_bit_profiles
from repro.analysis.reports import format_table
from repro.quant.qmodel import iter_quantized_layers


def test_fig1_unused_bits_and_extraction_error(benchmark, bundles, flexiq_runtimes,
                                               results_writer):
    runtime = flexiq_runtimes[("resnet50", "greedy", False)]
    model = runtime.model
    # The paper picks an illustrative layer ("layer 51") with clearly visible
    # unused bits; mirror that by choosing the layer whose weight channels
    # have the largest fraction of unused bits.
    profiles = model_unused_bit_profiles(model)
    target = max(profiles, key=lambda name: profiles[name].fraction_with_unused())
    layer = model.get_submodule(target)
    profile = profiles[target]

    errors = benchmark.pedantic(
        lambda: bit_extraction_error_comparison(layer, low_ratio=0.5),
        rounds=1, iterations=1,
    )

    hist = profile.histogram("weight")
    rows = [[f"{bits} unused bits", fraction * 100.0] for bits, fraction in hist.items()]
    rows += [
        ["error (uniform lowering)", errors["uniform"]],
        ["error (FlexiQ extraction)", errors["flexiq"]],
    ]
    table = format_table(
        ["quantity", "value"], rows, precision=4,
        title=f"Figure 1 -- unused bits and 50% 4-bit error ({target}, ResNet-50 family)",
    )
    results_writer("fig1_unused_bits", table)

    # Shape checks: the illustrated layer has channels with unused bits, and
    # FlexiQ's extraction strictly reduces the error of naive lowering there.
    assert sum(hist.values()) > 0.99
    assert profile.fraction_with_unused() > 0.0
    assert errors["flexiq"] <= errors["uniform"] + 1e-9
    assert errors["flexiq"] < errors["uniform"]

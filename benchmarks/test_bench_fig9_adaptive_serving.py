"""Figure 9: median latency under fluctuating request traces with adaptation.

A fluctuating request trace (peak rate = 3x the minimum, following the Azure
trace statistics cited by the paper) drives a ViT-Base deployment.  FlexiQ
monitors the observed request rate and adjusts the 4-bit ratio whenever the
profiled latency exceeds a threshold; the resulting median latency is
compared against fixed INT8 and INT4 deployments, and the effective accuracy
is the time-average of the per-ratio accuracies (Table 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.core.controller import AdaptiveRatioController, build_profile_from_latency_fn
from repro.data.traces import FluctuatingTrace, PoissonTrace
from repro.serving.adaptation import AdaptiveServingSimulator
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator

# Accuracy of ViT-Base at each ratio, as reported in the paper's Table 2
# (finetuned row); used to compute the effective accuracy of adaptation.
PAPER_VIT_B_ACCURACY = {0.0: 84.72, 0.25: 84.63, 0.5: 84.67, 0.75: 84.42, 1.0: 83.81}


def test_fig9_adaptive_ratio_under_fluctuating_load(benchmark, results_writer):
    service = ServiceTimeModel("vit_base", gpu="a6000", anchor_batches=(1, 16, 64, 128))
    simulator = ServingSimulator(service, BatchingConfig(max_batch=128))

    profile_rates = [200, 600, 1000, 1400, 1800, 2200, 2600, 3000]

    def profiled_latency(ratio, rate):
        trace = PoissonTrace(max(rate, 1), duration=2.0, seed=3).generate()
        return simulator.run(trace, "flexiq", ratio=ratio).median_latency

    profile = build_profile_from_latency_fn(
        profile_rates, [0.0, 0.25, 0.5, 0.75, 1.0], profiled_latency
    )
    trace = FluctuatingTrace(min_rate=800, peak_ratio=3.0, duration=30.0, seed=9).generate()

    def run_adaptive():
        controller = AdaptiveRatioController(profile, latency_threshold=0.040)
        adaptive = AdaptiveServingSimulator(service, controller, control_window=1.0)
        return adaptive.run(trace, accuracy_by_ratio=PAPER_VIT_B_ACCURACY)

    adaptive_result = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    int8_result = simulator.run(trace, "int8")
    int4_result = simulator.run(trace, "int4")

    rows = [
        ["FlexiQ adaptive", adaptive_result.median_latency * 1e3,
         adaptive_result.effective_accuracy],
        ["INT8 fixed", int8_result.median_latency * 1e3, PAPER_VIT_B_ACCURACY[0.0]],
        ["INT4 fixed", int4_result.median_latency * 1e3, PAPER_VIT_B_ACCURACY[1.0]],
    ]
    text = format_table(
        ["deployment", "median latency (ms)", "effective accuracy (%)"], rows, precision=2,
        title=(
            "Figure 9 -- fluctuating trace (min 800 rps, peak 3x), ViT-Base on A6000\n"
            f"average 4-bit ratio under adaptation: {adaptive_result.average_ratio:.2f}"
        ),
    )
    results_writer("fig9_adaptive_serving", text)

    # The controller actually adapted (used more than one ratio).
    assert len({entry["ratio"] for entry in adaptive_result.ratio_timeline}) > 1
    # Adaptive FlexiQ keeps latency well below the fixed INT8 deployment...
    assert adaptive_result.median_latency < 0.5 * int8_result.median_latency
    # ...while staying within reach of the INT4 deployment.
    assert adaptive_result.median_latency <= int4_result.median_latency * 3.0
    # Effective accuracy stays close to the INT8 accuracy (within ~0.5%).
    assert adaptive_result.effective_accuracy >= PAPER_VIT_B_ACCURACY[1.0]
    assert adaptive_result.effective_accuracy >= PAPER_VIT_B_ACCURACY[0.0] - 0.5

"""Quantized linear and convolution layers (uniform INT4/INT8 baselines).

Each quantized layer goes through three phases:

1. ``calibrating`` -- the layer runs in float and its observers record the
   input-activation ranges (per tensor for the scale, per feature channel for
   FlexiQ's later analysis).
2. ``freeze()`` -- quantization parameters are computed from the observers
   and the integer weights are cached (int8) so inference never re-quantizes
   them; ``reset_calibration()`` and weight updates invalidate the cache.
3. quantized inference -- activations are mapped to integers per batch, the
   cached integer weights are reused, and the matrix multiplication is
   carried out on integer values (stored in float64 so NumPy uses BLAS; the
   arithmetic is exact because all operands are small integers), then
   rescaled back to float.

The FlexiQ mixed-precision layers in :mod:`repro.core.runtime` subclass these
and override only the integer kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module, Parameter
from repro.quant.observers import EmaMinMaxObserver, MinMaxObserver, TensorRange
from repro.quant.quantizers import QuantParams, compute_qparams, fake_quantize, quantize
from repro.tensor import Tensor
from repro.tensor.functional import col2im, im2col_cast


class QuantizedLayer(Module):
    """Common machinery shared by :class:`QuantLinear` and :class:`QuantConv2d`."""

    def __init__(self, weight_bits: int, act_bits: int, act_momentum: float = 0.99) -> None:
        super().__init__()
        self.weight_bits = int(weight_bits)
        self.act_bits = int(act_bits)
        self.calibrating = True
        # Per-tensor activation scale (EMA, like the paper) plus per-feature-
        # channel ranges used by FlexiQ's scoring and bit extraction.
        self.act_observer = EmaMinMaxObserver(momentum=act_momentum)
        self.act_channel_observer = MinMaxObserver(channel_axis=0)
        self.weight_qparams: Optional[QuantParams] = None
        self.act_qparams: Optional[QuantParams] = None
        # When set to a bitwidth, forward() runs the differentiable
        # fake-quantized path at that precision (used for QAT finetuning).
        self.qat_bits: Optional[int] = None
        # Cached integer weights (int8) plus the GEMM-ready float64 transpose,
        # computed once at freeze() instead of on every forward pass.
        # ``_q_weight_src`` holds references to the exact weight array and
        # QuantParams object the cache was built from; rebinding either
        # (optimizer steps, load_state_dict, analysis code swapping qparams)
        # is detected by identity, in-place mutation needs an explicit
        # invalidate_weight_cache().
        self._q_weight_cache: Optional[np.ndarray] = None
        self._q_weight_src: Optional[tuple] = None
        self._w_gemm_cache: Optional[np.ndarray] = None

    # -- implemented by subclasses ------------------------------------
    @property
    def feature_channels(self) -> int:
        raise NotImplementedError

    def _weight_matrix(self) -> np.ndarray:
        """Weights reshaped to (out_channels, feature_channels * k) form."""
        raise NotImplementedError

    def _float_forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def _observe_input(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def _quantized_forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    # -- calibration ----------------------------------------------------
    def freeze(self) -> None:
        """Finish calibration: compute weight and activation quant params."""
        weight = self._weight_reference().data
        weight_range = TensorRange(
            low=weight.reshape(weight.shape[0], -1).min(axis=1),
            high=weight.reshape(weight.shape[0], -1).max(axis=1),
        )
        self.weight_qparams = compute_qparams(
            weight_range, self.weight_bits, channel_axis=0
        )
        self.act_qparams = compute_qparams(self.act_observer.range(), self.act_bits)
        self.calibrating = False
        # Quant params changed: rebuild the cached integer weights eagerly so
        # the first quantized forward is already on the fast path.
        self.invalidate_weight_cache()
        self.quantized_weight()

    def _weight_reference(self) -> Parameter:
        raise NotImplementedError

    # -- prepared weight cache ------------------------------------------
    def quantized_weight(self) -> np.ndarray:
        """Integer weights (int8 storage), cached between forward passes.

        The cache is rebuilt whenever the layer's weight array has been
        rebound since the last call (identity check), and dropped explicitly
        by :meth:`freeze`, :meth:`reset_calibration` and
        :meth:`invalidate_weight_cache`.
        """
        if self.weight_qparams is None:
            raise RuntimeError("freeze() must be called before quantized_weight")
        weight = self._weight_reference().data
        src = self._q_weight_src
        if (
            self._q_weight_cache is None
            or src[0] is not weight
            or src[1] is not self.weight_qparams
        ):
            self._q_weight_cache = quantize(weight, self.weight_qparams).astype(
                np.int8
            )
            self._q_weight_src = (weight, self.weight_qparams)
            self._w_gemm_cache = None
            self._on_weight_cache_invalidated()
        return self._q_weight_cache

    def _gemm_weight_t(self) -> np.ndarray:
        """Quantized weights as a GEMM-ready (features * taps, out) float64."""
        q_w = self.quantized_weight()
        if self._w_gemm_cache is None:
            self._w_gemm_cache = np.ascontiguousarray(
                q_w.reshape(q_w.shape[0], -1).T.astype(np.float64)
            )
        return self._w_gemm_cache

    def invalidate_weight_cache(self) -> None:
        """Drop all cached weight-side state (int8 weights, GEMM operands)."""
        self._q_weight_cache = None
        self._q_weight_src = None
        self._w_gemm_cache = None
        self._on_weight_cache_invalidated()

    def _on_weight_cache_invalidated(self) -> None:
        """Hook for subclasses holding derived state (prepared kernels)."""

    # -- inference ------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            self._observe_input(x.data)
            return self._float_forward(x)
        if self.weight_qparams is None or self.act_qparams is None:
            raise RuntimeError("freeze() must be called before quantized inference")
        if self.qat_bits is not None:
            return self.qat_forward(x, weight_bits=self.qat_bits, act_bits=self.qat_bits)
        return self._quantized_forward(x)

    def reset_calibration(self) -> None:
        """Discard observer state and re-enter calibration mode.

        Used after finetuning, when the weight values (and hence activation
        distributions) have moved and the quantization grids must be
        re-estimated.
        """
        momentum = self.act_observer.momentum
        self.act_observer = EmaMinMaxObserver(momentum=momentum)
        self.act_channel_observer = MinMaxObserver(channel_axis=0)
        self.weight_qparams = None
        self.act_qparams = None
        self.calibrating = True
        self.invalidate_weight_cache()

    def qat_forward(self, x: Tensor, weight_bits: Optional[int] = None,
                    act_bits: Optional[int] = None) -> Tensor:
        """Differentiable fake-quantized forward pass (for finetuning)."""
        if self.weight_qparams is None or self.act_qparams is None:
            raise RuntimeError("freeze() must be called before QAT forward")
        w_params = self.weight_qparams
        a_params = self.act_qparams
        if weight_bits is not None and weight_bits != w_params.bits:
            w_params = compute_qparams(
                TensorRange(
                    low=-w_params.scale * (2 ** (w_params.bits - 1)),
                    high=w_params.scale * (2 ** (w_params.bits - 1) - 1),
                ),
                weight_bits,
                channel_axis=0,
            )
        if act_bits is not None and act_bits != a_params.bits:
            a_params = compute_qparams(
                TensorRange(
                    low=-a_params.scale * (2 ** (a_params.bits - 1)),
                    high=a_params.scale * (2 ** (a_params.bits - 1) - 1),
                ),
                act_bits,
            )
        fake_w = fake_quantize(self._weight_reference(), w_params)
        fake_x = fake_quantize(x, a_params)
        return self._apply(fake_x, fake_w)

    def _apply(self, x: Tensor, weight: Tensor) -> Tensor:
        """Apply the layer's linear operation with explicit weights."""
        raise NotImplementedError

    # -- introspection ----------------------------------------------------
    def input_channel_range(self) -> TensorRange:
        """Observed per-feature-channel activation ranges (from calibration)."""
        return self.act_channel_observer.range()

    def weight_channel_max_abs(self) -> np.ndarray:
        """Per-feature-channel max |w| across all output channels and taps."""
        weight = self._weight_matrix()  # (out, features, taps)
        return np.abs(weight).max(axis=(0, 2))


class QuantLinear(QuantizedLayer):
    """Uniform symmetric quantized fully connected layer."""

    def __init__(self, source: Linear, weight_bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(weight_bits, act_bits)
        self.in_features = source.in_features
        self.out_features = source.out_features
        self.weight = Parameter(source.weight.data.copy())
        self.bias = Parameter(source.bias.data.copy()) if source.bias is not None else None

    @property
    def feature_channels(self) -> int:
        return self.in_features

    def _weight_reference(self) -> Parameter:
        return self.weight

    def _weight_matrix(self) -> np.ndarray:
        return self.weight.data.reshape(self.out_features, self.in_features, 1)

    def _observe_input(self, x: np.ndarray) -> None:
        flat = x.reshape(-1, self.in_features)
        self.act_observer.observe(flat)
        self.act_channel_observer.observe(flat.T)

    def _float_forward(self, x: Tensor) -> Tensor:
        out = x.matmul(Tensor(self.weight.data.T))
        if self.bias is not None:
            out = out + Tensor(self.bias.data)
        return out

    def _apply(self, x: Tensor, weight: Tensor) -> Tensor:
        out = x.matmul(weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def _quantized_forward(self, x: Tensor) -> Tensor:
        q_x = quantize(x.data, self.act_qparams).astype(np.float64)
        acc = q_x @ self._gemm_weight_t()
        scale = self.act_qparams.scale * self.weight_qparams.scale  # (out,)
        out = acc * scale.reshape((1,) * (acc.ndim - 1) + (-1,))
        if self.bias is not None:
            out = out + self.bias.data
        return Tensor(out.astype(np.float32))

    def __repr__(self) -> str:
        return (
            f"QuantLinear(in={self.in_features}, out={self.out_features}, "
            f"w{self.weight_bits}a{self.act_bits})"
        )


class QuantConv2d(QuantizedLayer):
    """Uniform symmetric quantized 2D convolution (via im2col GEMM)."""

    def __init__(self, source: Conv2d, weight_bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(weight_bits, act_bits)
        self.in_channels = source.in_channels
        self.out_channels = source.out_channels
        self.kernel_size = source.kernel_size
        self.stride = source.stride
        self.padding = source.padding
        self.groups = source.groups
        self.weight = Parameter(source.weight.data.copy())
        self.bias = Parameter(source.bias.data.copy()) if source.bias is not None else None

    @property
    def feature_channels(self) -> int:
        return self.in_channels

    def _weight_reference(self) -> Parameter:
        return self.weight

    def _weight_matrix(self) -> np.ndarray:
        k = self.kernel_size
        if self.groups == 1:
            return self.weight.data.reshape(
                self.out_channels, self.in_channels, k * k
            )
        # For grouped convolutions, expand to a dense (out, in, taps) view so
        # per-feature-channel statistics have a uniform shape; weights outside
        # a channel's group are structurally zero.
        dense = np.zeros(
            (self.out_channels, self.in_channels, k * k), dtype=np.float32
        )
        in_per_group = self.in_channels // self.groups
        out_per_group = self.out_channels // self.groups
        for group in range(self.groups):
            rows = slice(group * out_per_group, (group + 1) * out_per_group)
            cols = slice(group * in_per_group, (group + 1) * in_per_group)
            dense[rows, cols] = self.weight.data[rows].reshape(
                out_per_group, in_per_group, k * k
            )
        return dense

    def _observe_input(self, x: np.ndarray) -> None:
        self.act_observer.observe(x)
        # Per-feature-channel statistics: collapse batch and spatial dims.
        per_channel = x.transpose(1, 0, 2, 3).reshape(x.shape[1], -1)
        self.act_channel_observer.observe(per_channel)

    def _float_forward(self, x: Tensor) -> Tensor:
        from repro.tensor import functional as F

        weight = Tensor(self.weight.data)
        bias = Tensor(self.bias.data) if self.bias is not None else None
        return F.conv2d(
            x, weight, bias, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def _apply(self, x: Tensor, weight: Tensor) -> Tensor:
        from repro.tensor import functional as F

        return F.conv2d(
            x, weight, self.bias, stride=self.stride, padding=self.padding,
            groups=self.groups,
        )

    def _quantized_forward(self, x: Tensor) -> Tensor:
        if self.groups != 1:
            return self._simulated_quantized_forward(x)
        n = x.shape[0]
        k = self.kernel_size
        # Quantize the image before unfolding (k*k times less data than
        # quantizing the columns); zero padding maps to quantized zero, so
        # this commutes with im2col.  The gather doubles as the cast to the
        # float64 GEMM dtype.
        q_img = quantize(x.data, self.act_qparams)
        q_cols, (out_h, out_w) = im2col_cast(q_img, (k, k), self.stride, self.padding)
        acc = q_cols @ self._gemm_weight_t()  # (N, P, out)
        scale = self.act_qparams.scale * self.weight_qparams.scale
        out = acc * scale.reshape(1, 1, -1)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, 1, -1)
        out = out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)
        return Tensor(out.astype(np.float32))

    def _simulated_quantized_forward(self, x: Tensor) -> Tensor:
        """Quantize-dequantize both operands and convolve in float.

        For symmetric quantization this is numerically equivalent to the
        integer kernel followed by rescaling (``S_x q_x * S_w q_w =
        S_x S_w (q_x q_w)``); it is used for grouped/depthwise convolutions
        where the im2col integer path would be needlessly slow.
        """
        from repro.quant.quantizers import dequantize
        from repro.tensor import functional as F

        dq_x = dequantize(quantize(x.data, self.act_qparams), self.act_qparams)
        dq_w = dequantize(self.quantized_weight(), self.weight_qparams)
        bias = Tensor(self.bias.data) if self.bias is not None else None
        return F.conv2d(
            Tensor(dq_x), Tensor(dq_w), bias,
            stride=self.stride, padding=self.padding, groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"QuantConv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, w{self.weight_bits}a{self.act_bits})"
        )

"""Uniform quantization framework (observers, quantizers, quantized layers).

This package provides the INT8/INT4 channel-wise quantization baselines the
paper compares against, and the building blocks FlexiQ's mixed-precision
runtime (:mod:`repro.core`) extends.
"""

from repro.quant.observers import EmaMinMaxObserver, MinMaxObserver, TensorRange
from repro.quant.quantizers import (
    QuantParams,
    compute_qparams,
    dequantize,
    fake_quantize,
    quantize,
    quantization_error,
)
from repro.quant.qmodules import QuantConv2d, QuantLinear, QuantizedLayer
from repro.quant.qmodel import (
    calibrate_model,
    iter_quantizable_layers,
    quantize_model,
)

__all__ = [
    "EmaMinMaxObserver",
    "MinMaxObserver",
    "QuantConv2d",
    "QuantLinear",
    "QuantParams",
    "QuantizedLayer",
    "TensorRange",
    "calibrate_model",
    "compute_qparams",
    "dequantize",
    "fake_quantize",
    "iter_quantizable_layers",
    "quantization_error",
    "quantize",
    "quantize_model",
]

"""Range observers for activations and weights.

Two observers are provided, mirroring the paper's setup (Section 8.1):

* :class:`MinMaxObserver` -- plain running min/max, used for weights.
* :class:`EmaMinMaxObserver` -- exponential moving average of per-batch
  min/max with momentum 0.99, used for activations.

Both can track statistics per tensor or per channel along a chosen axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class TensorRange:
    """Observed value range, possibly per channel."""

    low: np.ndarray
    high: np.ndarray

    @property
    def max_abs(self) -> np.ndarray:
        """Symmetric range radius max(|low|, |high|)."""
        return np.maximum(np.abs(self.low), np.abs(self.high))

    def widened(self, factor: float) -> "TensorRange":
        """Return a range widened symmetrically by ``factor``."""
        return TensorRange(low=self.low * factor, high=self.high * factor)


def _reduce_axes(shape_len: int, channel_axis: Optional[int]) -> Optional[Tuple[int, ...]]:
    if channel_axis is None:
        return None
    return tuple(axis for axis in range(shape_len) if axis != channel_axis)


class MinMaxObserver:
    """Track running minimum/maximum, per tensor or per channel."""

    def __init__(self, channel_axis: Optional[int] = None) -> None:
        self.channel_axis = channel_axis
        self._low: Optional[np.ndarray] = None
        self._high: Optional[np.ndarray] = None

    @property
    def initialized(self) -> bool:
        return self._low is not None

    def observe(self, values: np.ndarray) -> None:
        """Update the running range with a new batch of values."""
        values = np.asarray(values)
        axes = _reduce_axes(values.ndim, self.channel_axis)
        if axes is None:
            batch_low = np.asarray(values.min(), dtype=np.float32).reshape(1)
            batch_high = np.asarray(values.max(), dtype=np.float32).reshape(1)
        else:
            batch_low = values.min(axis=axes).astype(np.float32)
            batch_high = values.max(axis=axes).astype(np.float32)
        if self._low is None:
            self._low, self._high = batch_low.copy(), batch_high.copy()
        else:
            np.minimum(self._low, batch_low, out=self._low)
            np.maximum(self._high, batch_high, out=self._high)

    def range(self) -> TensorRange:
        if self._low is None:
            raise RuntimeError("observer has not seen any data")
        return TensorRange(low=self._low.copy(), high=self._high.copy())


class EmaMinMaxObserver:
    """Exponential-moving-average min/max observer (momentum 0.99 by default)."""

    def __init__(self, channel_axis: Optional[int] = None, momentum: float = 0.99) -> None:
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must lie in (0, 1)")
        self.channel_axis = channel_axis
        self.momentum = float(momentum)
        self._low: Optional[np.ndarray] = None
        self._high: Optional[np.ndarray] = None

    @property
    def initialized(self) -> bool:
        return self._low is not None

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        axes = _reduce_axes(values.ndim, self.channel_axis)
        if axes is None:
            batch_low = np.asarray(values.min(), dtype=np.float32).reshape(1)
            batch_high = np.asarray(values.max(), dtype=np.float32).reshape(1)
        else:
            batch_low = values.min(axis=axes).astype(np.float32)
            batch_high = values.max(axis=axes).astype(np.float32)
        if self._low is None:
            self._low, self._high = batch_low.copy(), batch_high.copy()
        else:
            m = self.momentum
            self._low = m * self._low + (1.0 - m) * batch_low
            self._high = m * self._high + (1.0 - m) * batch_high

    def range(self) -> TensorRange:
        if self._low is None:
            raise RuntimeError("observer has not seen any data")
        return TensorRange(low=self._low.copy(), high=self._high.copy())

"""Uniform symmetric quantization primitives.

All quantization in the reproduction is symmetric (zero point 0), matching
Equation (1) of the paper: ``x_q = clip(round(x / S), Q_n, Q_p)``.  Scales may
be per tensor or per channel; the helpers below keep the broadcasting rules
in one place so the quantized layers and the FlexiQ kernels agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.quant.observers import TensorRange
from repro.tensor import Tensor


def int_range(bits: int) -> Tuple[int, int]:
    """Signed integer range [Q_n, Q_p] for a bitwidth."""
    if bits < 2 or bits > 8:
        raise ValueError("supported bitwidths are 2..8")
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


@dataclass
class QuantParams:
    """Scale/bitwidth bundle describing a symmetric uniform quantizer."""

    scale: np.ndarray
    bits: int
    channel_axis: Optional[int] = None

    def __post_init__(self) -> None:
        self.scale = np.asarray(self.scale, dtype=np.float32).reshape(-1)
        self.qmin, self.qmax = int_range(self.bits)

    @property
    def per_channel(self) -> bool:
        return self.channel_axis is not None

    def broadcast_scale(self, ndim: int) -> np.ndarray:
        """Return the scale shaped for broadcasting against an ndim-array."""
        if not self.per_channel:
            return self.scale.reshape(())
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return self.scale.reshape(shape)

    def with_bits(self, bits: int) -> "QuantParams":
        """Same scale grid, different target bitwidth."""
        return QuantParams(self.scale.copy(), bits, self.channel_axis)


def compute_qparams(
    value_range: TensorRange,
    bits: int,
    channel_axis: Optional[int] = None,
    eps: float = 1e-8,
) -> QuantParams:
    """Derive symmetric quantization parameters from an observed range."""
    _, qmax = int_range(bits)
    scale = value_range.max_abs.astype(np.float32) / qmax
    scale = np.maximum(scale, eps)
    return QuantParams(scale=scale, bits=bits, channel_axis=channel_axis)


def quantize(values: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Quantize float values to integers (int32 storage, int``bits`` range)."""
    values = np.asarray(values, dtype=np.float32)
    scale = qparams.broadcast_scale(values.ndim)
    q = np.round(values / scale)
    return np.clip(q, qparams.qmin, qparams.qmax).astype(np.int32)


def quantize_cast(
    values: np.ndarray, qparams: QuantParams, dtype=np.float64
) -> np.ndarray:
    """:func:`quantize` fused with the cast to the GEMM dtype.

    Skips the int32 detour of ``quantize(values, qparams).astype(dtype)``
    while remaining bit-exact with it: the division and rounding happen in
    float32 exactly as in :func:`quantize`, and the rounded, clipped values
    are small integers representable exactly in every float dtype.  Used by
    the prepared-kernel hot path, which quantizes activations on every
    forward but must never pay avoidable extra passes.
    """
    values = np.asarray(values, dtype=np.float32)
    scale = qparams.broadcast_scale(values.ndim)
    q = values / scale
    np.round(q, out=q)
    np.clip(q, qparams.qmin, qparams.qmax, out=q)
    if dtype == np.float32:
        return q
    return q.astype(dtype)


def dequantize(q: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Map integer values back to floats."""
    q = np.asarray(q)
    scale = qparams.broadcast_scale(q.ndim)
    return (q.astype(np.float32) * scale).astype(np.float32)


def quantization_error(values: np.ndarray, qparams: QuantParams) -> float:
    """Mean absolute error introduced by quantize/dequantize round trip."""
    values = np.asarray(values, dtype=np.float32)
    reconstructed = dequantize(quantize(values, qparams), qparams)
    return float(np.mean(np.abs(values - reconstructed)))


def _ste_round(x: Tensor) -> Tensor:
    """Round with a straight-through gradient (identity in the backward pass)."""
    data = np.round(x.data)

    def backward(grad: np.ndarray):
        return (grad,)

    return Tensor._make(data, (x,), backward)


def fake_quantize(x: Tensor, qparams: QuantParams) -> Tensor:
    """Differentiable quantize-dequantize used for quantization-aware training.

    The forward pass reproduces the integer grid exactly; the backward pass
    uses the straight-through estimator with clipping-range masking, the
    standard recipe for QAT finetuning.
    """
    scale = Tensor(qparams.broadcast_scale(x.ndim))
    scaled = x / scale
    clipped = scaled.clip(float(qparams.qmin), float(qparams.qmax))
    rounded = _ste_round(clipped)
    return rounded * scale


def lower_bitwidth_naive(q_high: np.ndarray, high_bits: int, low_bits: int) -> np.ndarray:
    """Uniform (non-FlexiQ) bit lowering: keep the top ``low_bits`` bits.

    Equivalent to re-quantizing onto a grid that is ``2**(high_bits-low_bits)``
    times coarser.  Used as the baseline in Figure 1 and the ablation study.
    """
    shift = high_bits - low_bits
    qmin, qmax = int_range(low_bits)
    q_low = np.round(np.asarray(q_high, dtype=np.float64) / (1 << shift))
    return np.clip(q_low, qmin, qmax).astype(np.int32)

"""Model-level quantization pass.

:func:`quantize_model` walks a float model, replaces every ``Linear`` /
``Conv2d`` with its quantized counterpart (keeping the first and last layers
at 8 bits, the usual convention the paper also follows), calibrates the
activation observers on sample data, and freezes the quantization parameters.

A ``layer_factory`` hook lets :mod:`repro.core` substitute FlexiQ's
mixed-precision layers while reusing the same traversal and calibration
machinery.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.qmodules import QuantConv2d, QuantLinear, QuantizedLayer
from repro.tensor import Tensor, no_grad

LayerFactory = Callable[[Module, int, int], QuantizedLayer]


def iter_quantizable_layers(model: Module) -> List[Tuple[str, Module]]:
    """Return (dotted name, layer) for every Linear/Conv2d in traversal order.

    Registration order matches execution order for all models in the
    registry, so the first/last entries correspond to the network's first and
    last compute layers.
    """
    layers: List[Tuple[str, Module]] = []
    for name, module in model.named_modules():
        if isinstance(module, (Linear, Conv2d)) and not isinstance(module, QuantizedLayer):
            layers.append((name, module))
    return layers


def iter_quantized_layers(model: Module) -> List[Tuple[str, QuantizedLayer]]:
    """Return (dotted name, layer) for every quantized layer in the model."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, QuantizedLayer)
    ]


def _default_factory(layer: Module, weight_bits: int, act_bits: int) -> QuantizedLayer:
    if isinstance(layer, Linear):
        return QuantLinear(layer, weight_bits=weight_bits, act_bits=act_bits)
    if isinstance(layer, Conv2d):
        return QuantConv2d(layer, weight_bits=weight_bits, act_bits=act_bits)
    raise TypeError(f"cannot quantize layer of type {type(layer).__name__}")


def quantize_model(
    model: Module,
    weight_bits: int = 8,
    act_bits: Optional[int] = None,
    calibration_batches: Optional[Iterable[np.ndarray]] = None,
    first_last_bits: int = 8,
    layer_factory: Optional[LayerFactory] = None,
    forward_fn: Optional[Callable[[Module, np.ndarray], Tensor]] = None,
    inplace: bool = False,
) -> Module:
    """Quantize all Linear/Conv2d layers of ``model``.

    Parameters
    ----------
    weight_bits, act_bits:
        Target bitwidths for weights and activations.  ``act_bits`` defaults
        to ``weight_bits``.
    calibration_batches:
        Iterable of input batches used to calibrate activation ranges.  When
        omitted the caller must run :func:`calibrate_model` manually.
    first_last_bits:
        Bitwidth for the first and last quantizable layers (the paper keeps
        them at 8 bits).
    layer_factory:
        Optional ``(layer, weight_bits, act_bits) -> QuantizedLayer`` hook.
    forward_fn:
        How to feed a raw input batch to the model.  Defaults to wrapping the
        batch in a :class:`Tensor` (vision models); the LLM case study passes
        token ids straight through.
    inplace:
        Mutate ``model`` instead of deep-copying it first.
    """
    act_bits = act_bits if act_bits is not None else weight_bits
    factory = layer_factory or _default_factory
    target = model if inplace else copy.deepcopy(model)

    layers = iter_quantizable_layers(target)
    if not layers:
        raise ValueError("model contains no quantizable layers")
    last_index = len(layers) - 1
    for index, (name, layer) in enumerate(layers):
        if index == 0 or index == last_index:
            w_bits, a_bits = first_last_bits, first_last_bits
        else:
            w_bits, a_bits = weight_bits, act_bits
        target.set_submodule(name, factory(layer, w_bits, a_bits))

    if calibration_batches is not None:
        calibrate_model(target, calibration_batches, forward_fn=forward_fn)
    return target


def calibrate_model(
    model: Module,
    calibration_batches: Iterable[np.ndarray],
    forward_fn: Optional[Callable[[Module, np.ndarray], Tensor]] = None,
) -> Module:
    """Run calibration batches through the model and freeze quantizers."""
    forward_fn = forward_fn or (lambda m, batch: m(Tensor(batch)))
    model.eval()
    ran_any = False
    with no_grad():
        for batch in calibration_batches:
            forward_fn(model, batch)
            ran_any = True
    if not ran_any:
        raise ValueError("calibration requires at least one batch")
    for _, layer in iter_quantized_layers(model):
        if layer.calibrating:
            layer.freeze()
    return model


def model_average_bits(model: Module) -> float:
    """Parameter-weighted average weight bitwidth of a quantized model.

    Used to report the "average bitwidth" columns of Tables 2 and 5.
    """
    total_params = 0
    weighted_bits = 0.0
    for _, layer in iter_quantized_layers(model):
        count = layer._weight_reference().size
        bits = getattr(layer, "effective_weight_bits", None)
        if bits is None:
            bits = float(layer.weight_bits)
        else:
            bits = float(bits() if callable(bits) else bits)
        total_params += count
        weighted_bits += bits * count
    if total_params == 0:
        return 0.0
    return weighted_bits / total_params

"""PTMQ-style post-training multi-bit quantization.

PTMQ (Xu et al., AAAI 2024) supports several inference bitwidths from one
model *without* retraining by keeping a separate set of quantization scale
factors per bitwidth and choosing the bitwidth per layer at run time.  The
reproduction keeps the same two defining properties:

* the model stores per-bitwidth quantization parameters, calibrated once
  post-training, and
* the runtime bitwidth is selected layer-wise (whole layers switch, unlike
  FlexiQ's feature-channel granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.quant.observers import TensorRange
from repro.quant.qmodel import calibrate_model, iter_quantized_layers, quantize_model
from repro.quant.quantizers import QuantParams, compute_qparams
from repro.tensor import Tensor
from repro.train.loop import evaluate_accuracy


@dataclass
class PTMQModel:
    """A quantized model carrying per-bitwidth scale sets."""

    model: Module
    bit_choices: List[int]
    scale_sets: Dict[int, Dict[str, Dict[str, QuantParams]]]
    layer_bits: Dict[str, int]

    def set_global_bits(self, bits: int) -> None:
        """Run every layer at ``bits`` (must be one of the calibrated choices)."""
        self.set_layer_bits({name: bits for name in self.layer_bits})

    def set_layer_bits(self, assignment: Dict[str, int]) -> None:
        """Apply a per-layer bitwidth assignment from the calibrated sets."""
        for name, layer in iter_quantized_layers(self.model):
            bits = assignment.get(name)
            if bits is None:
                continue
            if bits not in self.scale_sets:
                raise ValueError(f"bitwidth {bits} was not calibrated")
            params = self.scale_sets[bits][name]
            layer.weight_bits = bits
            layer.act_bits = bits
            layer.weight_qparams = params["weight"]
            layer.act_qparams = params["act"]
            self.layer_bits[name] = bits

    def average_bits(self) -> float:
        """Parameter-weighted average weight bitwidth of the current assignment."""
        total = 0
        weighted = 0.0
        for name, layer in iter_quantized_layers(self.model):
            count = layer._weight_reference().size
            weighted += self.layer_bits[name] * count
            total += count
        return weighted / max(total, 1)

    def accuracy(self, dataset: SyntheticImageDataset) -> float:
        return evaluate_accuracy(self.model, dataset)


def ptmq_quantize(
    model: Module,
    calibration: np.ndarray,
    bit_choices: Sequence[int] = (4, 6, 8),
    calibration_batch_size: int = 32,
    first_last_bits: int = 8,
) -> PTMQModel:
    """Calibrate one model with scale sets for every bitwidth in ``bit_choices``."""
    batches = [
        calibration[start : start + calibration_batch_size]
        for start in range(0, len(calibration), calibration_batch_size)
    ]
    quantized = quantize_model(
        model, weight_bits=max(bit_choices), act_bits=max(bit_choices),
        calibration_batches=batches, first_last_bits=first_last_bits,
    )

    scale_sets: Dict[int, Dict[str, Dict[str, QuantParams]]] = {}
    for bits in sorted(bit_choices):
        per_layer: Dict[str, Dict[str, QuantParams]] = {}
        for name, layer in iter_quantized_layers(quantized):
            weight = layer._weight_reference().data
            weight_range = TensorRange(
                low=weight.reshape(weight.shape[0], -1).min(axis=1),
                high=weight.reshape(weight.shape[0], -1).max(axis=1),
            )
            per_layer[name] = {
                "weight": compute_qparams(weight_range, bits, channel_axis=0),
                "act": compute_qparams(layer.act_observer.range(), bits),
            }
        scale_sets[bits] = per_layer

    layer_bits = {name: max(bit_choices) for name, _ in iter_quantized_layers(quantized)}
    ptmq = PTMQModel(
        model=quantized,
        bit_choices=sorted(bit_choices),
        scale_sets=scale_sets,
        layer_bits=layer_bits,
    )
    ptmq.set_global_bits(max(bit_choices))
    return ptmq


def ptmq_average_bit_assignment(
    ptmq: PTMQModel,
    target_average_bits: float,
    sensitivities: Optional[Dict[str, float]] = None,
) -> Dict[str, int]:
    """Greedy layer-wise assignment hitting a target average bitwidth.

    Layers are flipped from the highest to the lowest calibrated bitwidth in
    ascending order of ``sensitivities`` (defaulting to parameter count,
    i.e. large layers first, which maximises the bitwidth reduction per flip).
    """
    layers = list(iter_quantized_layers(ptmq.model))
    sizes = {name: layer._weight_reference().size for name, layer in layers}
    total = sum(sizes.values())
    assignment = {name: max(ptmq.bit_choices) for name, _ in layers}
    low = min(ptmq.bit_choices)

    if sensitivities is None:
        order = sorted(sizes, key=lambda name: -sizes[name])
    else:
        order = sorted(sensitivities, key=lambda name: sensitivities[name])
    # First/last layers stay at the highest precision.
    names = [name for name, _ in layers]
    protected = {names[0], names[-1]} if len(names) > 2 else set()

    def average() -> float:
        return sum(assignment[name] * sizes[name] for name in assignment) / total

    for name in order:
        if name in protected or name not in assignment:
            continue
        if average() <= target_average_bits:
            break
        assignment[name] = low
    return assignment

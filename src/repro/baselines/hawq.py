"""HAWQ-v3-style layer-wise mixed-precision quantization.

HAWQ assigns a bitwidth to every *layer* based on a Hessian-derived
sensitivity metric: layers whose loss surface is flat with respect to their
weights tolerate 4-bit quantization, sensitive layers stay at 8-bit.

The second-order information is approximated here (as in several follow-up
works) by an empirical sensitivity proxy: the increase in output distortion
when only that layer is quantized to the low bitwidth, normalised by the
layer's parameter count.  This preserves HAWQ's defining characteristics --
whole layers flip precision, the assignment is static, and the knob is the
average bitwidth -- which is what the Table 5 comparison exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.quant.qmodel import (
    calibrate_model,
    iter_quantized_layers,
    quantize_model,
)
from repro.tensor import Tensor, no_grad

ForwardFn = Callable[[Module, np.ndarray], Tensor]


@dataclass
class HawqResult:
    """Outcome of a layer-wise mixed-precision assignment."""

    model: Module
    layer_bits: Dict[str, int]
    sensitivities: Dict[str, float]

    def average_bits(self) -> float:
        """Parameter-weighted average weight bitwidth."""
        total = 0
        weighted = 0.0
        for name, layer in iter_quantized_layers(self.model):
            count = layer._weight_reference().size
            weighted += self.layer_bits.get(name, layer.weight_bits) * count
            total += count
        return weighted / max(total, 1)


def layer_sensitivities(
    model: Module,
    calibration: np.ndarray,
    low_bits: int = 4,
    high_bits: int = 8,
    forward_fn: Optional[ForwardFn] = None,
    batch_size: int = 32,
) -> Dict[str, float]:
    """Per-layer sensitivity: output distortion when only that layer is 4-bit."""
    forward_fn = forward_fn or (lambda m, batch: m(Tensor(batch)))
    batches = [
        calibration[start : start + batch_size]
        for start in range(0, len(calibration), batch_size)
    ]
    reference_model = quantize_model(
        model, weight_bits=high_bits, act_bits=high_bits, calibration_batches=batches,
        forward_fn=forward_fn,
    )
    samples = calibration[:batch_size]
    with no_grad():
        reference = forward_fn(reference_model, samples).data.copy()

    sensitivities: Dict[str, float] = {}
    layer_names = [name for name, _ in iter_quantized_layers(reference_model)]
    for name in layer_names:
        probe = quantize_model(
            model, weight_bits=high_bits, act_bits=high_bits, calibration_batches=batches,
            forward_fn=forward_fn,
        )
        layer = probe.get_submodule(name)
        layer.weight_bits = low_bits
        layer.act_bits = low_bits
        layer.reset_calibration()
        calibrate_model(probe, batches, forward_fn=forward_fn)
        with no_grad():
            perturbed = forward_fn(probe, samples).data
        distortion = float(np.linalg.norm(perturbed - reference))
        size = layer._weight_reference().size
        sensitivities[name] = distortion / max(size, 1)
    return sensitivities


def hawq_layerwise_quantize(
    model: Module,
    calibration: np.ndarray,
    target_average_bits: float = 6.0,
    low_bits: int = 4,
    high_bits: int = 8,
    forward_fn: Optional[ForwardFn] = None,
    batch_size: int = 32,
    first_last_bits: int = 8,
) -> HawqResult:
    """Assign per-layer bitwidths to hit a target average bitwidth.

    Layers are sorted by ascending sensitivity and flipped to ``low_bits``
    until the parameter-weighted average bitwidth reaches the target, the
    HAWQ-v3 integer-programming objective solved greedily.
    """
    forward_fn = forward_fn or (lambda m, batch: m(Tensor(batch)))
    sensitivities = layer_sensitivities(
        model, calibration, low_bits=low_bits, high_bits=high_bits,
        forward_fn=forward_fn, batch_size=batch_size,
    )
    batches = [
        calibration[start : start + batch_size]
        for start in range(0, len(calibration), batch_size)
    ]
    quantized = quantize_model(
        model, weight_bits=high_bits, act_bits=high_bits, calibration_batches=batches,
        first_last_bits=first_last_bits, forward_fn=forward_fn,
    )

    layers = list(iter_quantized_layers(quantized))
    sizes = {name: layer._weight_reference().size for name, layer in layers}
    total_params = sum(sizes.values())
    layer_bits = {name: high_bits for name, _ in layers}

    # Do not flip the first/last layers (kept at first_last_bits).
    flippable = [name for name, _ in layers][1:-1] if len(layers) > 2 else []
    order = sorted(flippable, key=lambda name: sensitivities.get(name, np.inf))

    def average() -> float:
        return sum(layer_bits[name] * sizes[name] for name in layer_bits) / total_params

    for name in order:
        if average() <= target_average_bits:
            break
        layer_bits[name] = low_bits

    # Apply the assignment and re-calibrate the flipped layers.
    for name, layer in layers:
        bits = layer_bits[name]
        if bits != layer.weight_bits:
            layer.weight_bits = bits
            layer.act_bits = bits
            layer.reset_calibration()
    calibrate_model(quantized, batches, forward_fn=forward_fn)
    return HawqResult(model=quantized, layer_bits=layer_bits, sensitivities=sensitivities)

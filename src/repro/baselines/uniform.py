"""Uniform channel-wise quantization baselines (Uniform INT4 / INT8)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.quant.qmodel import quantize_model
from repro.train.loop import evaluate_accuracy


def quantize_uniform(
    model: Module,
    bits: int,
    calibration_batches: Iterable[np.ndarray],
    first_last_bits: int = 8,
) -> Module:
    """Quantize every layer uniformly to ``bits`` (channel-wise weights).

    The first and last layers stay at ``first_last_bits`` following the
    convention used throughout the paper's evaluation.
    """
    return quantize_model(
        model,
        weight_bits=bits,
        act_bits=bits,
        calibration_batches=calibration_batches,
        first_last_bits=first_last_bits,
    )


def uniform_accuracy_sweep(
    model: Module,
    dataset: SyntheticImageDataset,
    calibration: np.ndarray,
    bit_widths: Sequence[int] = (4, 8),
    batch_size: int = 32,
) -> Dict[int, float]:
    """Accuracy (%) of the model quantized uniformly at each bitwidth."""
    results: Dict[int, float] = {}
    batches = [
        calibration[start : start + batch_size]
        for start in range(0, len(calibration), batch_size)
    ]
    for bits in bit_widths:
        quantized = quantize_uniform(model, bits, batches)
        results[int(bits)] = evaluate_accuracy(quantized, dataset)
    return results

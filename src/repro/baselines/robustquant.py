"""RobustQuant-style finetuning: one model robust to many bitwidths.

RobustQuant (Chmiel et al., NeurIPS 2020) finetunes a network so that its
accuracy degrades gracefully under *any* uniform quantization bitwidth,
rather than optimising for a single precision.  The mechanism reproduced
here is bitwidth-randomised quantization-aware training: every step the
model runs a fake-quantized forward pass at a bitwidth sampled from the
supported set, so the weights settle in regions that are flat with respect
to quantization perturbations of different magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.finetune import set_qat_bits
from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.quant.qmodel import quantize_model
from repro.tensor import Tensor, functional as F
from repro.train.optim import SGD


@dataclass
class RobustQuantConfig:
    """Hyper-parameters for bitwidth-randomised QAT."""

    bit_choices: Sequence[int] = (4, 6, 8)
    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    seed: int = 0


def robustquant_finetune(
    model: Module,
    dataset: SyntheticImageDataset,
    calibration: np.ndarray,
    config: RobustQuantConfig = RobustQuantConfig(),
    calibration_batch_size: int = 32,
) -> Module:
    """Finetune ``model`` to be robust across the configured bitwidths.

    Returns a calibrated quantized model whose ``qat_bits``/``weight_bits``
    can then be set to any of the supported precisions at run time.
    """
    batches = [
        calibration[start : start + calibration_batch_size]
        for start in range(0, len(calibration), calibration_batch_size)
    ]
    quantized = quantize_model(
        model, weight_bits=8, act_bits=8, calibration_batches=batches
    )

    optimizer = SGD(
        quantized.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    rng = np.random.default_rng(config.seed)
    quantized.train()
    for _ in range(config.epochs):
        for images, labels in dataset.train_batches(config.batch_size, rng=rng):
            bits = int(rng.choice(config.bit_choices))
            set_qat_bits(quantized, bits)
            optimizer.zero_grad()
            logits = quantized(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
    set_qat_bits(quantized, None)
    quantized.eval()

    # Re-calibrate after training moved the weights.
    from repro.core.finetune import refresh_quantization

    refresh_quantization(quantized, batches)
    return quantized


def evaluate_at_bits(
    quantized: Module,
    dataset: SyntheticImageDataset,
    bits: int,
    calibration: np.ndarray,
    calibration_batch_size: int = 32,
) -> float:
    """Accuracy (%) of a RobustQuant/AnyPrecision model evaluated at ``bits``.

    Evaluation re-uses the model's weights but re-derives the quantization
    grid for the requested bitwidth (the schemes store a single model and
    dynamically quantize it, as described in Section 2.2 of the paper).
    """
    from repro.quant.qmodel import iter_quantized_layers
    from repro.train.loop import evaluate_accuracy

    original_bits = {}
    for name, layer in iter_quantized_layers(quantized):
        original_bits[name] = (layer.weight_bits, layer.act_bits)
        layer.weight_bits = bits
        layer.act_bits = bits
        layer.reset_calibration()
    batches = [
        calibration[start : start + calibration_batch_size]
        for start in range(0, len(calibration), calibration_batch_size)
    ]
    from repro.quant.qmodel import calibrate_model

    calibrate_model(quantized, batches)
    accuracy = evaluate_accuracy(quantized, dataset)
    for name, layer in iter_quantized_layers(quantized):
        layer.weight_bits, layer.act_bits = original_bits[name]
    return accuracy

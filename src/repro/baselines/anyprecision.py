"""AnyPrecision-style multi-bitwidth training.

AnyPrecision DNNs (Yu et al., AAAI 2021) train one set of weights that can be
executed at several precisions by accumulating, for every batch, the losses
of fake-quantized forward passes at *all* supported bitwidths (knowledge is
optionally distilled from the highest precision to the lower ones).  This is
the mechanism reproduced here; evaluation at a particular bitwidth then uses
the same dynamic-quantization path as RobustQuant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.finetune import set_qat_bits
from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.quant.qmodel import quantize_model
from repro.tensor import Tensor, functional as F, no_grad
from repro.train.optim import SGD


@dataclass
class AnyPrecisionConfig:
    """Hyper-parameters for multi-bitwidth joint training."""

    bit_choices: Sequence[int] = (4, 6, 8)
    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    distill_from_highest: bool = True
    seed: int = 0


def anyprecision_finetune(
    model: Module,
    dataset: SyntheticImageDataset,
    calibration: np.ndarray,
    config: AnyPrecisionConfig = AnyPrecisionConfig(),
    calibration_batch_size: int = 32,
) -> Module:
    """Jointly train one quantized model for all configured bitwidths."""
    batches = [
        calibration[start : start + calibration_batch_size]
        for start in range(0, len(calibration), calibration_batch_size)
    ]
    quantized = quantize_model(
        model, weight_bits=8, act_bits=8, calibration_batches=batches
    )
    optimizer = SGD(
        quantized.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    rng = np.random.default_rng(config.seed)
    bit_choices = sorted(config.bit_choices, reverse=True)

    quantized.train()
    for _ in range(config.epochs):
        for images, labels in dataset.train_batches(config.batch_size, rng=rng):
            optimizer.zero_grad()
            soft_labels = None
            total_loss = None
            for bits in bit_choices:
                set_qat_bits(quantized, bits)
                logits = quantized(Tensor(images))
                loss = F.cross_entropy(logits, labels)
                if config.distill_from_highest:
                    if soft_labels is None:
                        # Highest precision defines the distillation target.
                        soft_labels = _softmax_np(logits.data)
                    else:
                        loss = loss + F.soft_cross_entropy(logits, soft_labels)
                total_loss = loss if total_loss is None else total_loss + loss
            total_loss.backward()
            optimizer.step()
    set_qat_bits(quantized, None)
    quantized.eval()

    from repro.core.finetune import refresh_quantization

    refresh_quantization(quantized, batches)
    return quantized


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)

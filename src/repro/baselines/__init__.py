"""Baseline quantization schemes the paper compares against.

* :mod:`repro.baselines.uniform` -- channel-wise uniform INT4/INT8 (the
  Table 2 baselines).
* :mod:`repro.baselines.hawq` -- HAWQ-v3-style layer-wise mixed precision
  driven by a sensitivity proxy.
* :mod:`repro.baselines.robustquant` -- RobustQuant-style finetuning for
  robustness across bitwidths.
* :mod:`repro.baselines.anyprecision` -- AnyPrecision-style multi-bitwidth
  training from a single model.
* :mod:`repro.baselines.ptmq` -- PTMQ-style post-training multi-bit
  quantization with per-bitwidth scale sets.

These are faithful-in-spirit reimplementations at the scale of the synthetic
model zoo: each reproduces the mechanism that defines the scheme (what is
quantized, at which granularity, and how multi-precision support is obtained)
rather than the exact original training recipes.
"""

from repro.baselines.uniform import quantize_uniform, uniform_accuracy_sweep
from repro.baselines.hawq import HawqResult, hawq_layerwise_quantize
from repro.baselines.robustquant import robustquant_finetune
from repro.baselines.anyprecision import anyprecision_finetune
from repro.baselines.ptmq import PTMQModel, ptmq_quantize

__all__ = [
    "HawqResult",
    "PTMQModel",
    "anyprecision_finetune",
    "hawq_layerwise_quantize",
    "ptmq_quantize",
    "quantize_uniform",
    "robustquant_finetune",
    "uniform_accuracy_sweep",
]

"""Capture per-layer inputs/outputs without modifying the model code.

The layer-error analyses (Figure 14, Table 6) need the input that each
quantized layer sees under 8-bit inference so that alternative precision
settings can be replayed layer-locally.  :func:`capture_layer_io` wraps the
requested layers with a transparent recording proxy; :func:`release_capture`
restores the original modules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


class CapturingLayer(Module):
    """Transparent wrapper that records the wrapped layer's last input/output."""

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.inner = inner
        self.last_input: Optional[np.ndarray] = None
        self.last_output: Optional[np.ndarray] = None

    def forward(self, x: Tensor) -> Tensor:
        self.last_input = np.array(x.data, copy=True)
        out = self.inner(x)
        self.last_output = np.array(out.data, copy=True)
        return out

    def __getattr__(self, name: str):
        # Delegate attribute access (e.g. ``feature_channels``) to the inner
        # layer so wrapped models keep working with code that inspects layers.
        inner = self.__dict__.get("inner")
        if inner is not None and hasattr(inner, name):
            return getattr(inner, name)
        raise AttributeError(name)


def capture_layer_io(model: Module, layer_names: Iterable[str]) -> Dict[str, CapturingLayer]:
    """Wrap the named submodules of ``model`` with recording proxies."""
    wrappers: Dict[str, CapturingLayer] = {}
    for name in layer_names:
        inner = model.get_submodule(name)
        wrapper = CapturingLayer(inner)
        model.set_submodule(name, wrapper)
        wrappers[name] = wrapper
    return wrappers


def release_capture(model: Module, wrappers: Dict[str, CapturingLayer]) -> None:
    """Undo :func:`capture_layer_io`, restoring the original layers."""
    for name, wrapper in wrappers.items():
        model.set_submodule(name, wrapper.inner)

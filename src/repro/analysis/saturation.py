"""Saturated-channel analysis under static bit extraction (Figure 13).

A channel *saturates* when, on fresh inputs, its values exceed the range the
statically chosen extraction window can represent (the calibration data
under-estimated the channel's range).  The paper observes that vision
transformers rarely saturate while CNNs saturate a little (usually by one
bit), and that saturated channels end up de-prioritised by the selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.capture import capture_layer_io, release_capture
from repro.core.bit_extraction import extraction_shift, saturation_fraction
from repro.nn.module import Module
from repro.quant.qmodel import iter_quantized_layers
from repro.quant.quantizers import quantize
from repro.tensor import Tensor, no_grad


@dataclass
class SaturationProfile:
    """Per-channel saturation statistics for one layer."""

    layer_name: str
    static_shift: np.ndarray        # calibration-time extraction shift per channel
    optimal_shift: np.ndarray       # shift that the evaluation data actually needs
    saturated_fraction: np.ndarray  # fraction of values saturating per channel

    @property
    def num_channels(self) -> int:
        return len(self.static_shift)

    def fraction_saturated_channels(self, threshold: float = 0.0) -> float:
        """Fraction of channels with any saturation above ``threshold``."""
        return float(np.mean(self.saturated_fraction > threshold))

    def saturation_depth(self) -> np.ndarray:
        """How many bits short the static window is, per channel (>= 0)."""
        return np.maximum(self.optimal_shift - self.static_shift, 0)


def saturation_profiles(
    model: Module,
    evaluation_batch: np.ndarray,
    layer_names: Optional[List[str]] = None,
    low_bits: int = 4,
) -> Dict[str, SaturationProfile]:
    """Measure activation saturation of static extraction windows.

    The model must be a calibrated quantized model; ``evaluation_batch`` is a
    set of inputs *not* used for calibration (the paper uses 1024 samples).
    """
    targets = [
        name
        for name, layer in iter_quantized_layers(model)
        if (layer_names is None or name in layer_names) and layer.weight_qparams is not None
    ]
    wrappers = capture_layer_io(model, targets)
    try:
        with no_grad():
            model.eval()
            model(Tensor(evaluation_batch))
        profiles: Dict[str, SaturationProfile] = {}
        for name in targets:
            wrapper = wrappers[name]
            layer = wrapper.inner
            captured = wrapper.last_input
            if captured is None:
                continue
            channels = layer.feature_channels
            if captured.ndim == 4:
                per_channel = np.abs(captured).transpose(1, 0, 2, 3).reshape(channels, -1)
            else:
                per_channel = np.abs(captured.reshape(-1, channels)).T
            # Static window from calibration statistics.
            act_range = layer.input_channel_range()
            act_max_q = np.clip(
                np.round(act_range.max_abs / layer.act_qparams.scale),
                0,
                layer.act_qparams.qmax,
            )
            static_shift = extraction_shift(
                act_max_q, high_bits=layer.act_qparams.bits, low_bits=low_bits
            )
            # What the evaluation data actually needs.
            observed_q = np.clip(
                np.round(per_channel.max(axis=1) / layer.act_qparams.scale),
                0,
                layer.act_qparams.qmax,
            )
            optimal_shift = extraction_shift(
                observed_q, high_bits=layer.act_qparams.bits, low_bits=low_bits
            )
            # Per-channel saturation fraction of the quantized activations.
            q_act = quantize(captured, layer.act_qparams)
            if q_act.ndim == 4:
                q_per_channel = q_act.transpose(1, 0, 2, 3).reshape(channels, -1)
            else:
                q_per_channel = q_act.reshape(-1, channels).T
            saturated = np.asarray(
                [
                    saturation_fraction(q_per_channel[c], static_shift[c], low_bits)
                    for c in range(channels)
                ]
            )
            profiles[name] = SaturationProfile(
                layer_name=name,
                static_shift=static_shift,
                optimal_shift=optimal_shift,
                saturated_fraction=saturated,
            )
        return profiles
    finally:
        release_capture(model, wrappers)

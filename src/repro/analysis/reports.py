"""Plain-text table formatting used by the benchmark harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render a fixed-width text table (paper-style rows for the benches)."""
    formatted_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))

    def render_row(cells: Sequence[str]) -> str:
        padded = [
            str(cells[i]).rjust(widths[i]) if i < len(cells) else " " * widths[i]
            for i in range(columns)
        ]
        return " | ".join(padded)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)

"""Analysis tooling behind Figures 1, 12, 13, 14 and Table 6."""

from repro.analysis.capture import CapturingLayer, capture_layer_io, release_capture
from repro.analysis.unused_bits import (
    UnusedBitProfile,
    layer_unused_bit_profile,
    model_unused_bit_profiles,
    bit_extraction_error_comparison,
)
from repro.analysis.saturation import SaturationProfile, saturation_profiles
from repro.analysis.layer_error import (
    layer_output_errors,
    selection_layer_errors,
)
from repro.analysis.reports import format_table

__all__ = [
    "CapturingLayer",
    "SaturationProfile",
    "UnusedBitProfile",
    "bit_extraction_error_comparison",
    "capture_layer_io",
    "format_table",
    "layer_output_errors",
    "layer_unused_bit_profile",
    "model_unused_bit_profiles",
    "release_capture",
    "saturation_profiles",
    "selection_layer_errors",
]

"""Layer-wise output error analyses (Figure 14, Table 6, Section 8.7/8.8).

Both analyses replay alternative precision settings layer-locally: the input
each layer sees under 8-bit inference is captured once, then fed to the same
layer configured as uniform INT4 or as FlexiQ at various 4-bit ratios, and
the distance between the resulting outputs and the 8-bit outputs is reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.capture import capture_layer_io, release_capture
from repro.core.runtime import FlexiQConv2d, FlexiQLinear, FlexiQModel
from repro.nn.module import Module
from repro.quant.qmodel import iter_quantized_layers
from repro.quant.quantizers import compute_qparams
from repro.quant.observers import TensorRange
from repro.tensor import Tensor, no_grad


def _capture_inputs(
    model: Module, layer_names: Sequence[str], batch: np.ndarray,
    forward_fn=None,
) -> Dict[str, np.ndarray]:
    """Run the model at its current (8-bit) setting and capture layer inputs."""
    forward_fn = forward_fn or (lambda m, data: m(Tensor(data)))
    wrappers = capture_layer_io(model, layer_names)
    try:
        with no_grad():
            forward_fn(model, batch)
        return {
            name: wrapper.last_input
            for name, wrapper in wrappers.items()
            if wrapper.last_input is not None
        }
    finally:
        release_capture(model, wrappers)


def _layer_output(layer, captured_input: np.ndarray) -> np.ndarray:
    with no_grad():
        return layer(Tensor(captured_input)).data


def layer_output_errors(
    runtime: FlexiQModel,
    batch: np.ndarray,
    ratios: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    layer_names: Optional[Sequence[str]] = None,
    norm: str = "l2",
    include_uniform_int4: bool = True,
    forward_fn=None,
) -> Dict[str, Dict[str, float]]:
    """Figure 14: normalised per-layer output distance to the 8-bit output.

    Returns ``{layer: {"int4": d, "flexiq_25": d, ...}}`` where each distance
    is normalised by the norm of the layer's 8-bit output.
    """
    model = runtime.model
    names = list(layer_names) if layer_names is not None else [
        name for name, _ in runtime.flexiq_layers()
        if name in runtime.layout_plan.layouts
    ]
    runtime.set_ratio(0.0)
    inputs = _capture_inputs(model, names, batch, forward_fn=forward_fn)

    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        if name not in inputs:
            continue
        layer = model.get_submodule(name)
        reference = _layer_output(layer, inputs[name])
        ref_norm = _norm(reference, norm)
        entry: Dict[str, float] = {}

        if include_uniform_int4:
            entry["int4"] = _distance(
                _uniform_int4_output(layer, inputs[name]), reference, norm
            ) / ref_norm

        for ratio in ratios:
            layer.set_ratio(ratio)
            entry[f"flexiq_{int(round(ratio * 100))}"] = _distance(
                _layer_output(layer, inputs[name]), reference, norm
            ) / ref_norm
        layer.set_boundary(0)
        results[name] = entry
    runtime.set_ratio(runtime.current_ratio)
    return results


def selection_layer_errors(
    runtimes: Dict[str, FlexiQModel],
    batch: np.ndarray,
    ratios: Sequence[float] = (0.25, 0.5, 0.75),
    layer_names: Optional[Sequence[str]] = None,
    norm: str = "l1",
    forward_fn=None,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Table 6: per-layer errors of different selection algorithms.

    ``runtimes`` maps a selection-algorithm name (e.g. ``"evolutionary"``,
    ``"greedy"``, ``"random"``) to the FlexiQ runtime produced with that
    algorithm.  Unlike :func:`layer_output_errors`, the error here is
    measured on the *whole-model* activations: each runtime runs end-to-end
    at the requested ratio and the captured layer outputs are compared with
    the same runtime's 8-bit outputs, so inter-layer error amplification is
    included (the effect the evolutionary selection optimises for).

    Returns ``{layer: {algorithm: {ratio: normalised error}}}``.
    """
    results: Dict[str, Dict[str, Dict[float, float]]] = {}
    forward_fn = forward_fn or (lambda m, data: m(Tensor(data)))
    for algorithm, runtime in runtimes.items():
        model = runtime.model
        names = list(layer_names) if layer_names is not None else [
            name for name, _ in runtime.flexiq_layers()
            if name in runtime.layout_plan.layouts
        ]
        # Reference: 8-bit outputs of every target layer.
        runtime.set_ratio(0.0)
        wrappers = capture_layer_io(model, names)
        try:
            with no_grad():
                forward_fn(model, batch)
            reference = {
                name: wrapper.last_output.copy() for name, wrapper in wrappers.items()
            }
            for ratio in ratios:
                runtime.set_ratio(ratio)
                with no_grad():
                    forward_fn(model, batch)
                for name, wrapper in wrappers.items():
                    ref = reference[name]
                    error = _distance(wrapper.last_output, ref, norm) / _norm(ref, norm)
                    results.setdefault(name, {}).setdefault(algorithm, {})[ratio] = error
        finally:
            release_capture(model, wrappers)
        runtime.set_ratio(0.0)
    return results


def _uniform_int4_output(layer, captured_input: np.ndarray) -> np.ndarray:
    """Output of the layer re-quantized uniformly to 4-bit (weights + acts)."""
    original = (layer.weight_qparams, layer.act_qparams, layer.weight_bits, layer.act_bits)
    try:
        weight = layer._weight_reference().data
        weight_range = TensorRange(
            low=weight.reshape(weight.shape[0], -1).min(axis=1),
            high=weight.reshape(weight.shape[0], -1).max(axis=1),
        )
        layer.weight_qparams = compute_qparams(weight_range, 4, channel_axis=0)
        layer.act_qparams = compute_qparams(layer.act_observer.range(), 4)
        layer.weight_bits = 4
        layer.act_bits = 4
        boundary = getattr(layer, "max_4bit_ch", 0)
        if isinstance(layer, (FlexiQLinear, FlexiQConv2d)):
            layer.set_boundary(0) if layer.layout is not None else None
        output = _layer_output(layer, captured_input)
        if isinstance(layer, (FlexiQLinear, FlexiQConv2d)) and layer.layout is not None:
            layer.set_boundary(boundary)
        return output
    finally:
        layer.weight_qparams, layer.act_qparams, layer.weight_bits, layer.act_bits = original


def _distance(a: np.ndarray, b: np.ndarray, norm: str) -> float:
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    if norm == "l1":
        return float(np.abs(diff).mean())
    return float(np.linalg.norm(diff))


def _norm(a: np.ndarray, norm: str) -> float:
    a = np.asarray(a, dtype=np.float64)
    if norm == "l1":
        return float(np.abs(a).mean()) + 1e-12
    return float(np.linalg.norm(a)) + 1e-12

"""Unused-bit statistics (Figures 1 and 12).

Given a calibrated 8-bit model, these helpers report how many of the top
magnitude bits are unused in each feature channel's weights and activations,
and quantify the quantization error saved by FlexiQ's bit extraction when a
fraction of channels is lowered to 4-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.bit_extraction import (
    BitExtractionPlan,
    extraction_shift,
    lower_bits,
    lowering_error,
    raise_bits,
    unused_bits,
)
from repro.nn.module import Module
from repro.quant.qmodel import iter_quantized_layers
from repro.quant.qmodules import QuantizedLayer
from repro.quant.quantizers import lower_bitwidth_naive, quantize


@dataclass
class UnusedBitProfile:
    """Distribution of unused bits across one layer's feature channels."""

    layer_name: str
    weight_unused: np.ndarray  # per-channel unused magnitude bits (weights)
    act_unused: np.ndarray     # per-channel unused magnitude bits (activations)

    def histogram(self, which: str = "weight", max_bits: int = 4) -> Dict[int, float]:
        """Fraction of channels with 0, 1, ..., >=max_bits unused bits."""
        values = self.weight_unused if which == "weight" else self.act_unused
        total = max(len(values), 1)
        hist = {}
        for bits in range(max_bits):
            hist[bits] = float(np.count_nonzero(values == bits)) / total
        hist[max_bits] = float(np.count_nonzero(values >= max_bits)) / total
        return hist

    def fraction_with_unused(self) -> float:
        """Fraction of channels with at least one unused bit (weights)."""
        return float(np.mean(self.weight_unused >= 1))


def layer_unused_bit_profile(name: str, layer: QuantizedLayer) -> UnusedBitProfile:
    """Unused-bit counts for one calibrated quantized layer."""
    q_weight = quantize(layer._weight_reference().data, layer.weight_qparams)
    weight_matrix = np.abs(q_weight.reshape(q_weight.shape[0], layer.feature_channels, -1))
    weight_max = weight_matrix.max(axis=(0, 2))
    act_range = layer.input_channel_range()
    act_max_q = np.clip(
        np.round(act_range.max_abs / layer.act_qparams.scale), 0, layer.act_qparams.qmax
    )
    return UnusedBitProfile(
        layer_name=name,
        weight_unused=unused_bits(weight_max, bits=layer.weight_qparams.bits),
        act_unused=unused_bits(act_max_q, bits=layer.act_qparams.bits),
    )


def model_unused_bit_profiles(
    model: Module, layer_names: Optional[List[str]] = None
) -> Dict[str, UnusedBitProfile]:
    """Unused-bit profiles for every (or the selected) quantized layer."""
    profiles: Dict[str, UnusedBitProfile] = {}
    for name, layer in iter_quantized_layers(model):
        if layer_names is not None and name not in layer_names:
            continue
        if layer.weight_qparams is None:
            continue
        profiles[name] = layer_unused_bit_profile(name, layer)
    return profiles


def bit_extraction_error_comparison(
    layer: QuantizedLayer,
    low_ratio: float = 0.5,
    low_bits: int = 4,
) -> Dict[str, float]:
    """Figure 1 (right): weight quantization error with vs without extraction.

    Lowers the ``low_ratio`` fraction of feature channels with the smallest
    value ranges to ``low_bits`` and reports the mean absolute reconstruction
    error (relative to the float weights) for

    * ``"uniform"`` -- naive lowering that always keeps the top bits, and
    * ``"flexiq"`` -- FlexiQ's extraction that skips unused bits.
    """
    weight = layer._weight_reference().data
    q_weight = quantize(weight, layer.weight_qparams)
    out_ch = q_weight.shape[0]
    features = layer.feature_channels
    per_channel = np.abs(q_weight.reshape(out_ch, features, -1))
    channel_max = per_channel.max(axis=(0, 2))

    num_low = int(round(features * low_ratio))
    selected = np.argsort(channel_max, kind="stable")[:num_low]
    scale = layer.weight_qparams.broadcast_scale(2).reshape(-1, 1)

    q_matrix = q_weight.reshape(out_ch, features, -1)
    errors = {"uniform": 0.0, "flexiq": 0.0}
    count = 0
    high_bits = layer.weight_qparams.bits
    shifts = extraction_shift(channel_max, high_bits=high_bits, low_bits=low_bits)
    for channel in selected:
        q_channel = q_matrix[:, channel, :]
        naive = lower_bitwidth_naive(q_channel, high_bits, low_bits)
        naive_reconstructed = naive.astype(np.float64) * (1 << (high_bits - low_bits))
        flexi = raise_bits(
            lower_bits(q_channel, shifts[channel], low_bits), shifts[channel]
        )
        errors["uniform"] += float(np.abs(q_channel - naive_reconstructed).mean())
        errors["flexiq"] += float(np.abs(q_channel - flexi).mean())
        count += 1
    if count:
        errors = {key: value / count for key, value in errors.items()}
    # Express in the float domain using the mean per-output-channel scale.
    mean_scale = float(np.mean(scale))
    return {key: value * mean_scale for key, value in errors.items()}

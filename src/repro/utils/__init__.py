"""Shared utilities: seeding, configuration containers and logging."""

from repro.utils.seeding import SeedSequenceFactory, set_global_seed, temp_seed
from repro.utils.config import FrozenConfig

__all__ = [
    "FrozenConfig",
    "SeedSequenceFactory",
    "set_global_seed",
    "temp_seed",
]

"""Deterministic random-number management.

Every stochastic component in the reproduction (dataset synthesis, model
initialisation, the evolutionary search, serving arrival processes) draws its
randomness from an explicit :class:`numpy.random.Generator` so experiments are
reproducible bit-for-bit.  The helpers below make it easy to derive
independent generators from a single experiment seed.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator

import numpy as np

_GLOBAL_SEED = 0


def set_global_seed(seed: int) -> None:
    """Seed Python's and NumPy's legacy global generators.

    Library code never relies on the global generators, but examples and
    benchmarks call this once so any incidental use is still deterministic.
    """
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def get_global_seed() -> int:
    """Return the seed last passed to :func:`set_global_seed`."""
    return _GLOBAL_SEED


@contextlib.contextmanager
def temp_seed(seed: int) -> Iterator[None]:
    """Temporarily seed the legacy NumPy global generator.

    Useful in tests that need a deterministic block without disturbing the
    surrounding state.
    """
    state = np.random.get_state()
    np.random.seed(seed % (2**32 - 1))
    try:
        yield
    finally:
        np.random.set_state(state)


class SeedSequenceFactory:
    """Derive named, independent generators from one root seed.

    Example
    -------
    >>> factory = SeedSequenceFactory(1234)
    >>> rng_a = factory.generator("dataset")
    >>> rng_b = factory.generator("model-init")

    The same (root seed, name) pair always yields the same stream, and
    different names yield statistically independent streams.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, name: str) -> int:
        """Return a 63-bit integer seed derived from ``name``."""
        mixed = np.random.SeedSequence(
            [self.root_seed, abs(hash(name)) % (2**32)]
        )
        return int(mixed.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh :class:`numpy.random.Generator` for ``name``."""
        return np.random.default_rng(self.seed_for(name))

"""Small immutable configuration container used across subsystems."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping


class FrozenConfig(Mapping[str, Any]):
    """An immutable, attribute-accessible mapping of configuration values.

    The hardware models and the serving simulator take many scalar parameters
    (clock rates, bandwidths, thresholds).  ``FrozenConfig`` keeps them
    readable at call sites (``cfg.tensor_core_tops``) while guaranteeing a
    configuration cannot be mutated after construction, which keeps cached
    derived quantities valid.
    """

    def __init__(self, **values: Any) -> None:
        object.__setattr__(self, "_values", dict(values))

    def __getattr__(self, name: str) -> Any:
        values: Dict[str, Any] = object.__getattribute__(self, "_values")
        try:
            return values[name]
        except KeyError as exc:
            raise AttributeError(name) from exc

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("FrozenConfig is immutable")

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def replace(self, **overrides: Any) -> "FrozenConfig":
        """Return a copy with ``overrides`` applied."""
        merged = dict(self._values)
        merged.update(overrides)
        return FrozenConfig(**merged)

    def as_dict(self) -> Dict[str, Any]:
        """Return a plain mutable copy of the underlying values."""
        return dict(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"FrozenConfig({inner})"

"""Telemetry bus: windowed per-server time-series for the cluster control plane.

The engine's :class:`~repro.serving.engine.EngineResult` summarizes a whole
run; control-plane components (autoscalers, per-server ratio policies,
operators reading a timeline) instead need *windowed, per-server* signals
while the run is still in flight.  A :class:`TelemetryBus` attached to a
:class:`~repro.serving.engine.ServingEngine` receives one event per executed
batch and per drop, aggregates them into fixed control windows, and answers
queries per server, per window, or cluster-wide:

* **queue depth** — mean depth observed when batches formed in the window;
* **utilization** — accumulated busy seconds (attributed to the window the
  batch *started* in) over the window length;
* **executed ratio** — batch-size-weighted 4-bit ratio that actually ran;
* **SLO attainment** — deadline-carrying requests finishing in time (drops
  with deadlines count as misses), via :func:`repro.serving.metrics.
  slo_attainment` semantics;
* **drops** — requests expired by ``drop_after``;
* **latencies** — raw response times of the window, for percentile queries
  built on :func:`repro.serving.metrics.latency_percentiles`.

Scale events (:class:`ScaleEvent`) are appended to the same timeline so a
run's elasticity decisions are auditable next to the signals that caused
them; applied fault injections
(:class:`~repro.serving.resilience.FaultEvent`) land in ``fault_events``
the same way, so a crash/slowdown/recovery is auditable next to the windows
it disturbed.  A preempted (migrated) batch is *un*-recorded exactly
(:meth:`TelemetryBus.unrecord_batch`), so windowed series never count work
a failed server did not actually complete.  Ratio policies reach the bus through
:attr:`repro.serving.policies.PolicyContext.telemetry`, which is how the
per-server :class:`~repro.serving.policies.PerServerAdaptiveRatioPolicy`
finally observes per-server rates instead of global window rates.

The bus is opt-in: an engine without one skips every hook, keeping the
seed-identical fast path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.serving.metrics import latency_percentile, summarize_latencies

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.engine import BatchRecord
    from repro.serving.resilience import FaultEvent

# Server id used for events not attributable to one server (queue-side drops).
CLUSTER = -1


@dataclass
class ScaleEvent:
    """One elasticity decision applied at a window boundary."""

    time: float
    action: str              # "add" | "remove" | "promote" | "demote"
    server: int              # server id activated / deactivated
    active_after: int        # cluster size after the event
    reason: str = ""


@dataclass
class _WindowCell:
    """Mutable per-(server, window) accumulator."""

    served: int = 0
    batches: int = 0
    busy: float = 0.0
    ratio_weight: float = 0.0
    queue_depth_sum: int = 0
    drops: int = 0
    deadline_total: int = 0
    deadline_met: int = 0
    latencies: List[float] = field(default_factory=list)
    # Bulk-ingested latency chunks (one array per ingest, batch order
    # preserved): the columnar fast path groups a whole run's latencies
    # per cell in one vectorized pass instead of extending a float list
    # per batch.  Queries concatenate list + chunks.
    latency_chunks: List[np.ndarray] = field(default_factory=list)
    # Streaming digest (ReservoirSample) replacing raw latencies when the
    # bus runs with latency_digest="reservoir"; None in exact mode.
    digest: Optional[object] = None
    # Streaming-generation signals (zero for one-shot workloads): generated
    # tokens emitted in the window and the TTFT samples of sequences whose
    # first token landed in it (see record_tokens).
    tokens: int = 0
    ttft: List[float] = field(default_factory=list)


@dataclass
class ServerWindowStats:
    """Read-only snapshot of one server over one control window."""

    server: int
    window: int
    start: float
    end: float
    served: int = 0
    batches: int = 0
    busy_time: float = 0.0
    utilization: float = 0.0
    mean_queue_depth: float = 0.0
    executed_ratio: float = float("nan")
    drops: int = 0
    deadline_total: int = 0
    deadline_met: int = 0
    latencies: np.ndarray = field(default_factory=lambda: np.zeros(0))
    tokens: int = 0
    ttft: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # Streaming digest backing percentile queries when the bus runs in
    # latency_digest mode (raw latencies stay empty then).
    digest: Optional[object] = None

    @property
    def served_rate(self) -> float:
        """Requests served per second of window time."""
        span = self.end - self.start
        return self.served / span if span > 0 else 0.0

    @property
    def tokens_per_sec(self) -> float:
        """Generated tokens per second of window time (0.0 for one-shot)."""
        span = self.end - self.start
        return self.tokens / span if span > 0 else 0.0

    def ttft_percentile(self, percentile: float) -> float:
        """TTFT percentile of sequences whose first token landed here."""
        return latency_percentile(self.ttft, percentile)

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-carrying requests served in time (nan if none)."""
        if self.deadline_total == 0:
            return float("nan")
        return self.deadline_met / self.deadline_total

    def latency_percentile(self, percentile: float) -> float:
        if self.latencies.size == 0 and self.digest is not None:
            return self.digest.percentile(percentile)
        return latency_percentile(self.latencies, percentile)

    def summary(self) -> Dict[str, float]:
        if (
            self.latencies.size == 0
            and self.digest is not None
            and len(self.digest) > 0
        ):
            stats = summarize_latencies(self.digest.values)
            stats["count"] = float(len(self.digest))
            return stats
        return summarize_latencies(self.latencies)


@dataclass
class ClusterWindowStats(ServerWindowStats):
    """One window aggregated across the whole cluster (server == CLUSTER)."""

    active_servers: int = 0


class TelemetryBus:
    """Windowed per-server aggregation of serving events.

    ``window`` is the control-window length in simulation seconds.  Events
    are attributed to the window their timestamp falls in (batches by their
    *start* time, so a long batch's busy seconds land where the dispatch
    decision was made).
    """

    def __init__(
        self,
        window: float = 1.0,
        num_servers: int = 1,
        latency_digest: Optional[str] = None,
        digest_capacity: int = 1024,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive (seconds)")
        if latency_digest not in (None, "reservoir"):
            raise ValueError(
                "latency_digest must be None (exact) or 'reservoir' (streaming)"
            )
        self.window = float(window)
        self.num_servers = int(num_servers)
        # Exact mode (default) buffers per-window latencies for exact
        # percentiles; "reservoir" keeps an O(digest_capacity) streaming
        # sample per cell instead (bounded memory at million-request scale,
        # approximate percentiles, deterministic per cell seed).
        self.latency_digest = latency_digest
        self.digest_capacity = int(digest_capacity)
        self._cells: Dict[Tuple[int, int], _WindowCell] = {}
        self.scale_events: List[ScaleEvent] = []
        self.fault_events: List["FaultEvent"] = []
        self.alert_events: List[object] = []
        # Unified event timeline: (time, seq, event) for every scale *and*
        # fault event, in application order (seq).  timeline() sorts by
        # (time, seq), so interleaved events come back in deterministic
        # time order even when a fault's strike time precedes the boundary
        # a scale decision was stamped with.
        self._timeline: List[Tuple[float, int, object]] = []
        # Sorted-timeline cache with dirty-flag invalidation: appends mark
        # it stale, timeline() re-sorts at most once per batch of appends.
        self._timeline_sorted: Optional[List[object]] = None
        self.last_window = -1

    # ------------------------------------------------------------------
    # Recording (called by the engine / control plane)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._cells.clear()
        self.scale_events.clear()
        self.fault_events.clear()
        self.alert_events.clear()
        self._timeline.clear()
        self._timeline_sorted = None
        self.last_window = -1

    def window_index(self, time: float) -> int:
        return int(time / self.window)

    def _cell(self, server: int, window: int) -> _WindowCell:
        key = (int(server), int(window))
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _WindowCell()
        if window > self.last_window:
            self.last_window = int(window)
        return cell

    def record_batch(
        self,
        record: "BatchRecord",
        queue_depth: int = 0,
        latencies: Optional[np.ndarray] = None,
        deadline_total: int = 0,
        deadline_met: int = 0,
    ) -> None:
        """Account one executed batch (engine hook)."""
        cell = self._cell(record.server, self.window_index(record.start))
        cell.served += record.size
        cell.batches += 1
        cell.busy += record.finish - record.start
        cell.ratio_weight += record.ratio * record.size
        cell.queue_depth_sum += int(queue_depth)
        cell.deadline_total += int(deadline_total)
        cell.deadline_met += int(deadline_met)
        if latencies is not None:
            if self.latency_digest is not None:
                self._digest_of(cell, record.server, self.window_index(record.start)).extend(
                    np.asarray(latencies, dtype=np.float64)
                )
            else:
                cell.latencies.extend(float(value) for value in latencies)

    def unrecord_batch(
        self,
        record: "BatchRecord",
        latencies: Optional[np.ndarray] = None,
        deadline_total: int = 0,
        deadline_met: int = 0,
        kill_time: Optional[float] = None,
    ) -> None:
        """Reverse one :meth:`record_batch` (the batch was preempted).

        A crashed server's unfinished batch was already accounted when it
        was (optimistically) executed; migration rewinds the engine state,
        and this hook rewinds the telemetry cell with the exact inverse
        arithmetic — the queue depth comes from the record itself
        (``BatchRecord.queue_depth``), latencies are removed by value.
        ``kill_time`` is the preemption instant: busy seconds the server
        really spent before it ([start, kill_time), wasted work) stay
        accounted, matching the engine's busy-time bill.
        """
        cell = self._cell(record.server, self.window_index(record.start))
        cell.served -= record.size
        cell.batches -= 1
        killed_from = (
            record.start if kill_time is None else max(record.start, kill_time)
        )
        cell.busy -= record.finish - killed_from
        cell.ratio_weight -= record.ratio * record.size
        cell.queue_depth_sum -= int(record.queue_depth)
        cell.deadline_total -= int(deadline_total)
        cell.deadline_met -= int(deadline_met)
        if latencies is not None and self.latency_digest is None:
            # Remove-by-value needs the raw list: fold bulk-ingested chunks
            # back in first (rare path — preemption after a columnar run).
            if cell.latency_chunks:
                for chunk in cell.latency_chunks:
                    cell.latencies.extend(chunk.tolist())
                cell.latency_chunks.clear()
            for value in latencies:
                try:
                    cell.latencies.remove(float(value))
                except ValueError:
                    pass  # never recorded (bus attached mid-run)
        # Digest mode cannot remove by value (a reservoir forgets what it
        # replaced); counters above still rewind exactly, percentiles stay
        # approximate — exact mode is the right setting for preemption-
        # accurate percentile audits.

    def record_tokens(
        self,
        server: int,
        time: float,
        tokens: int,
        ttfts: Sequence[float] = (),
    ) -> None:
        """Account generated tokens (iteration-scheduler hook).

        ``time`` is the iteration start (the same attribution rule as
        batches); ``tokens`` the tokens it emitted (prefill first tokens +
        decode tokens); ``ttfts`` the TTFT samples of sequences whose first
        token it produced.  One-shot engines never call this, so the
        signals stay zero unless a generation loop is running.
        """
        cell = self._cell(server, self.window_index(time))
        cell.tokens += int(tokens)
        cell.ttft.extend(float(value) for value in ttfts)

    def unrecord_tokens(
        self,
        server: int,
        time: float,
        tokens: int,
        ttfts: Sequence[float] = (),
    ) -> None:
        """Reverse one :meth:`record_tokens` (the iteration was preempted)."""
        cell = self._cell(server, self.window_index(time))
        cell.tokens -= int(tokens)
        for value in ttfts:
            try:
                cell.ttft.remove(float(value))
            except ValueError:
                pass  # never recorded (bus attached mid-run)

    def token_rate(self, server: int, window: int) -> float:
        """Generated tokens/second one server sustained during a window.

        The decode-pressure signal for ratio policies and autoscalers; 0.0
        for windows without token traffic (one-shot workloads included).
        Cheap like :meth:`measured_rate` — no arrays are materialized.
        """
        if window < 0:
            return 0.0
        cell = self._cells.get((int(server), int(window)))
        if cell is None or cell.tokens <= 0:
            return 0.0
        return cell.tokens / self.window

    def record_drops(
        self, time: float, count: int, deadline_misses: int = 0
    ) -> None:
        """Account expired requests (queue-side, not owned by any server)."""
        cell = self._cell(CLUSTER, self.window_index(time))
        cell.drops += int(count)
        cell.deadline_total += int(deadline_misses)

    def record_scale_event(self, event: ScaleEvent) -> None:
        self.scale_events.append(event)
        self._timeline.append((float(event.time), len(self._timeline), event))
        self._timeline_sorted = None

    def record_fault_event(self, event: "FaultEvent") -> None:
        """Append one applied fault injection to the run timeline."""
        self.fault_events.append(event)
        self._timeline.append((float(event.time), len(self._timeline), event))
        self._timeline_sorted = None

    def record_alert_event(self, event: object) -> None:
        """Append one SLO burn-rate alert to the run timeline.

        ``event`` is an :class:`repro.obs.slo.AlertEvent` (duck-typed here
        so the serving layer stays import-free of ``repro.obs``); it lands
        next to scale/fault events in :meth:`timeline`.
        """
        self.alert_events.append(event)
        self._timeline.append((float(event.time), len(self._timeline), event))
        self._timeline_sorted = None

    def timeline(self) -> List[object]:
        """Every scale, fault *and* alert event, in deterministic time order.

        Sorted by ``(time, application order)``: a fault whose strike time
        precedes a window boundary sorts before the scale decision stamped
        at the boundary, and same-instant events keep the order the control
        plane applied them in — so two runs of the same deterministic
        workload return the identical interleaving.  The sorted view is
        cached and invalidated on append, so per-window polling loops pay
        O(events) per call instead of O(events log events).

        Cache-invalidation audit (PR 8 cache vs PR 5/7 rewind paths): the
        only mutators of ``_timeline`` are the three ``record_*_event``
        appends above, each of which clears ``_timeline_sorted``.  The
        preemption rewind paths — :meth:`unrecord_batch` and
        :meth:`unrecord_tokens` — mutate per-(server, window) cells only
        and never touch the timeline, so a cached sorted view stays valid
        across any number of rewinds by construction; events themselves
        are immutable records that are never retracted.  Pinned by
        regression tests in ``tests/test_observability.py``.
        """
        if self._timeline_sorted is None:
            self._timeline_sorted = [
                event for _, _, event in sorted(self._timeline, key=lambda e: e[:2])
            ]
        return list(self._timeline_sorted)

    # ------------------------------------------------------------------
    # Bulk ingestion (columnar fast path)
    # ------------------------------------------------------------------
    def _digest_of(self, cell: _WindowCell, server: int, window: int):
        """The cell's streaming digest, created on first use (deterministic seed)."""
        if cell.digest is None:
            from repro.serving.core import ReservoirSample

            seed = (int(window) * 131071 + int(server) + 7) & 0x7FFFFFFF
            cell.digest = ReservoirSample(self.digest_capacity, seed=seed)
        return cell.digest

    def ingest_columnar(
        self,
        *,
        ratio: float,
        starts: np.ndarray,
        finishes: np.ndarray,
        sizes: np.ndarray,
        servers: np.ndarray,
        queue_depths: np.ndarray,
        latencies: Optional[np.ndarray] = None,
        deadline_flags: Optional[np.ndarray] = None,
        deadline_met: Optional[np.ndarray] = None,
        drop_times: Optional[np.ndarray] = None,
        drop_counts: Optional[np.ndarray] = None,
        drop_misses: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-ingest a columnar run into the same cells the hooks fill.

        Equivalent to :meth:`record_batch` once per batch in chronological
        order followed by :meth:`record_drops` per drop cohort: integer
        counters sum exactly; float accumulators (busy seconds, ratio
        weight) accumulate in the identical left-to-right order
        (``np.bincount`` sums its input sequentially), so the per-cell
        float sums are bit-identical to the per-event hooks; per-request
        ``latencies`` (aligned with ``repeat(batch, sizes)``) group into
        per-cell chunks preserving batch order.  ``deadline_flags`` /
        ``deadline_met`` are per-request booleans (deadline-carrying, met).
        """
        starts = np.asarray(starts, dtype=np.float64)
        nbatches = starts.size
        if nbatches:
            sizes = np.asarray(sizes, dtype=np.int64)
            finishes = np.asarray(finishes, dtype=np.float64)
            servers_col = np.asarray(servers, dtype=np.int64)
            depths = np.asarray(queue_depths, dtype=np.int64)
            windows = (starts / self.window).astype(np.int64)
            codes = (servers_col << 32) | windows
            uniq, inverse = np.unique(codes, return_inverse=True)
            nbins = len(uniq)
            served = np.bincount(inverse, weights=sizes, minlength=nbins)
            batch_counts = np.bincount(inverse, minlength=nbins)
            busy = np.bincount(inverse, weights=finishes - starts, minlength=nbins)
            ratio_weight = np.bincount(
                inverse, weights=float(ratio) * sizes.astype(np.float64),
                minlength=nbins,
            )
            depth_sums = np.bincount(inverse, weights=depths, minlength=nbins)
            req_cell = None
            if latencies is not None or deadline_flags is not None:
                req_cell = np.repeat(inverse, sizes)
            if deadline_flags is not None:
                dtotals = np.bincount(
                    req_cell, weights=deadline_flags, minlength=nbins
                )
                dmets = np.bincount(req_cell, weights=deadline_met, minlength=nbins)
            chunks: List[Optional[np.ndarray]] = [None] * nbins
            if latencies is not None:
                lat = np.asarray(latencies, dtype=np.float64)
                order = np.argsort(req_cell, kind="stable")
                sorted_lat = lat[order]
                counts = np.bincount(req_cell, minlength=nbins)
                offsets = np.zeros(nbins + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                for b in range(nbins):
                    chunks[b] = sorted_lat[offsets[b]:offsets[b + 1]]
            for b, code in enumerate(uniq.tolist()):
                server = code >> 32
                window = code & 0xFFFFFFFF
                cell = self._cell(server, window)
                cell.served += int(served[b])
                cell.batches += int(batch_counts[b])
                cell.busy += float(busy[b])
                cell.ratio_weight += float(ratio_weight[b])
                cell.queue_depth_sum += int(depth_sums[b])
                if deadline_flags is not None:
                    cell.deadline_total += int(dtotals[b])
                    cell.deadline_met += int(dmets[b])
                chunk = chunks[b]
                if chunk is not None and chunk.size:
                    if self.latency_digest is not None:
                        self._digest_of(cell, server, window).extend(chunk)
                    else:
                        cell.latency_chunks.append(chunk)
        if drop_times is not None and len(drop_times):
            drop_windows = (
                np.asarray(drop_times, dtype=np.float64) / self.window
            ).astype(np.int64)
            uniq_d, inverse_d = np.unique(drop_windows, return_inverse=True)
            counts_d = np.bincount(
                inverse_d, weights=np.asarray(drop_counts, dtype=np.float64),
                minlength=len(uniq_d),
            )
            if drop_misses is not None:
                misses_d = np.bincount(
                    inverse_d, weights=np.asarray(drop_misses, dtype=np.float64),
                    minlength=len(uniq_d),
                )
            for b, window in enumerate(uniq_d.tolist()):
                cell = self._cell(CLUSTER, window)
                cell.drops += int(counts_d[b])
                if drop_misses is not None:
                    cell.deadline_total += int(misses_d[b])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _stats_from(
        self, cell: _WindowCell, server: int, window: int
    ) -> ServerWindowStats:
        ratio = (
            cell.ratio_weight / cell.served if cell.served > 0 else float("nan")
        )
        depth = (
            cell.queue_depth_sum / cell.batches if cell.batches > 0 else 0.0
        )
        if cell.latency_chunks:
            parts: List[np.ndarray] = []
            if cell.latencies:
                parts.append(np.asarray(cell.latencies, dtype=np.float64))
            parts.extend(cell.latency_chunks)
            latencies = parts[0] if len(parts) == 1 else np.concatenate(parts)
        else:
            latencies = np.asarray(cell.latencies, dtype=np.float64)
        return ServerWindowStats(
            server=server,
            window=window,
            start=window * self.window,
            end=(window + 1) * self.window,
            served=cell.served,
            batches=cell.batches,
            busy_time=cell.busy,
            utilization=cell.busy / self.window,
            mean_queue_depth=depth,
            executed_ratio=ratio,
            drops=cell.drops,
            deadline_total=cell.deadline_total,
            deadline_met=cell.deadline_met,
            latencies=latencies,
            tokens=cell.tokens,
            ttft=np.asarray(cell.ttft, dtype=np.float64),
            digest=cell.digest,
        )

    def server_window(self, server: int, window: int) -> ServerWindowStats:
        """Stats of one server over one window (zeros when nothing happened)."""
        cell = self._cells.get((int(server), int(window)), _WindowCell())
        return self._stats_from(cell, int(server), int(window))

    def server_series(self, server: int) -> List[ServerWindowStats]:
        """Per-window time-series of one server, windows 0..last seen."""
        return [
            self.server_window(server, window)
            for window in range(self.last_window + 1)
        ]

    def measured_rate(self, server: int, window: int) -> float:
        """Requests per *busy* second one server sustained during a window.

        The server's demonstrated service capacity, robust to idleness
        (an idle fast server serves 0 req/s of window time but its busy
        seconds still reveal its speed).  ``nan`` when the server ran no
        batch in the window.  A cheap cell read — no latency arrays are
        materialized — so placers may call it per batch
        (:class:`~repro.serving.placement.PredictivePlacer` does).
        """
        cell = self._cells.get((int(server), int(window)))
        if cell is None or cell.busy <= 0:
            return float("nan")
        return cell.served / cell.busy

    def mean_depth(self, server: int, window: int) -> float:
        """Mean queue depth observed at one server's batch formations.

        0.0 for windows without batches (no congestion signal is no
        congestion).  Cheap like :meth:`measured_rate`.
        """
        cell = self._cells.get((int(server), int(window)))
        if cell is None or cell.batches <= 0:
            return 0.0
        return cell.queue_depth_sum / cell.batches

    def served_rate(self, server: int, window: int) -> float:
        """Requests/second one server actually served during a window.

        The per-server load signal the cluster control plane feeds to
        per-server adaptive ratio controllers (the global-rate signal the
        seed controller consumed cannot distinguish a hot server from an
        idle one).
        """
        if window < 0:
            return 0.0
        return self.server_window(server, window).served_rate

    def cluster_window(
        self, window: int, active_servers: Optional[Sequence[int]] = None
    ) -> ClusterWindowStats:
        """One window aggregated across servers (plus queue-side drops).

        ``active_servers`` scopes utilization to the servers that were
        actually available (idle *inactive* servers should not dilute it);
        when omitted, all ``num_servers`` are assumed active.
        """
        window = int(window)
        active = (
            list(range(self.num_servers))
            if active_servers is None
            else [int(s) for s in active_servers]
        )
        merged = _WindowCell()
        for server in list(range(self.num_servers)) + [CLUSTER]:
            cell = self._cells.get((server, window))
            if cell is None:
                continue
            merged.served += cell.served
            merged.batches += cell.batches
            merged.ratio_weight += cell.ratio_weight
            merged.queue_depth_sum += cell.queue_depth_sum
            merged.drops += cell.drops
            merged.deadline_total += cell.deadline_total
            merged.deadline_met += cell.deadline_met
            merged.latencies.extend(cell.latencies)
            merged.latency_chunks.extend(cell.latency_chunks)
            if cell.digest is not None:
                # Digest mode: fold each server's reservoir sample into the
                # cluster view (approximate, like the digests themselves).
                merged.latency_chunks.append(cell.digest.values)
            merged.tokens += cell.tokens
            merged.ttft.extend(cell.ttft)
            if server in active:
                merged.busy += cell.busy
        stats = self._stats_from(merged, CLUSTER, window)
        busy_capacity = max(len(active), 1) * self.window
        return ClusterWindowStats(
            server=CLUSTER,
            window=window,
            start=stats.start,
            end=stats.end,
            served=stats.served,
            batches=stats.batches,
            busy_time=stats.busy_time,
            utilization=merged.busy / busy_capacity,
            mean_queue_depth=stats.mean_queue_depth,
            executed_ratio=stats.executed_ratio,
            drops=stats.drops,
            deadline_total=stats.deadline_total,
            deadline_met=stats.deadline_met,
            latencies=stats.latencies,
            tokens=stats.tokens,
            ttft=stats.ttft,
            active_servers=len(active),
        )

    def cluster_series(self) -> List[ClusterWindowStats]:
        return [
            self.cluster_window(window) for window in range(self.last_window + 1)
        ]

"""Schedulers: pluggable queue disciplines for the serving engine.

The seed engine hard-coded FIFO head-of-line batching.  A
:class:`Scheduler` generalizes the *order in which queued requests are
eligible for the next batch* while the engine keeps its invariants
(batches never mix models, a batch only contains requests that have
already arrived when service starts, and at most ``max_batch`` ride
together).

A scheduler is a pure ordering: :meth:`Scheduler.key` maps a queued
:class:`~repro.serving.engine.Request` to a sortable key; the engine
appends ``(arrival_time, admission index)`` as the final tie-breakers, so
requests with equal keys always serve FIFO by arrival (regardless of the
order they were pushed through streaming ``submit()``).  Three
disciplines ship with the engine:

* :class:`FifoScheduler` — arrival order; the seed behaviour.  A
  ``ServingEngine`` built with ``scheduler=None`` (or an explicit
  ``FifoScheduler``) takes the fast array path, which is bit-identical to
  the seed simulator at ``num_servers=1``.
* :class:`PriorityScheduler` — higher :attr:`Request.priority` first,
  FIFO within a priority class.
* :class:`EdfScheduler` — earliest :attr:`Request.deadline` first
  (earliest-deadline-first, the classic SLO-aware discipline); requests
  without a deadline sort last, FIFO among themselves.  Under overload
  EDF spends the scarce accelerator time on the requests whose SLOs are
  still winnable, which improves deadline attainment over FIFO (see
  ``tests/test_serving_engine.py::TestSchedulers``).

Every scheduler other than FIFO requires explicit
:class:`~repro.serving.engine.Request` lists: the trace-only fast path
carries arrival times and nothing else, and the engine's scheduled loop
reads the queued ``Request`` objects to form same-model batches.

Scheduling is orthogonal to *placement*: a scheduler orders **which
request** serves next, a :class:`~repro.serving.placement.Placer` picks
**which server** runs the batch.  The two compose freely — e.g. EDF
ordering with weighted-by-speed placement on a heterogeneous cluster (see
``tests/test_serving_cluster.py``).

Schedulers also order **migrated** work: when the resilience plane
(:mod:`repro.serving.resilience`) preempts a failing server's batches, the
requeued requests re-enter admission gated by their migration-ready time
and are then re-ranked by exactly the same :meth:`Scheduler.key` as fresh
requests — an EDF queue re-sorts migrants by their (unchanged) deadlines,
a priority queue by their priorities, with the original arrival time still
the tie-breaker.  No scheduler needs migration-specific code.

The same key also orders **admission to a running generation batch**: the
iteration-level :class:`~repro.serving.generation.IterationScheduler` ranks
its waiting sequences with :func:`admission_key` — discipline key first,
arrival and admission slot as tie-breakers, exactly the engine's queue
ordering — so EDF/priority semantics carry over to continuous batching
without generation-specific scheduler code.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple, TYPE_CHECKING, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.core import RequestStore
    from repro.serving.engine import Request


def admission_key(
    scheduler: "Scheduler", request: "Request", arrival: float, slot: int
) -> Tuple:
    """Full queue-ordering key: discipline key + the engine's tie-breakers.

    The one place the ``(scheduler.key, arrival, admission slot)`` ordering
    is spelled out for callers outside the engine's own loops (the
    generation scheduler's admission ranking) — keeping every queue in the
    system sorted by the same rule.
    """
    return (scheduler.key(request), float(arrival), int(slot))


@runtime_checkable
class Scheduler(Protocol):
    """Queue discipline: lower :meth:`key` serves first."""

    def key(self, request: "Request") -> Tuple:
        """Discipline sort key for one queued request.

        Return only the discipline's own criteria (priority, deadline,
        ...); the engine appends ``(arrival_time, admission index)``
        behind it, so equal keys tie-break FIFO by arrival.
        """
        ...


def store_keys(
    scheduler: "Scheduler", store: "RequestStore", slots: np.ndarray
) -> List[Tuple]:
    """Discipline keys for ``slots`` of a columnar store, vectorized.

    Dispatches to the scheduler's ``keys(store, slots)`` when it defines
    one (the built-in disciplines do — key extraction runs over the
    store's columns, no ``Request`` objects); custom schedulers without a
    vectorized form fall back to materializing each request view through
    :meth:`~repro.serving.core.RequestStore.request`, which yields exactly
    the same keys as the object path.
    """
    vectorized = getattr(scheduler, "keys", None)
    if vectorized is not None:
        return vectorized(store, slots)
    return [scheduler.key(store.request(slot)) for slot in slots]


class FifoScheduler:
    """First-in-first-out: the seed discipline (and the default)."""

    def key(self, request: "Request") -> Tuple:
        return ()  # the engine's arrival tie-breaker IS the discipline

    def keys(self, store: "RequestStore", slots: np.ndarray) -> List[Tuple]:
        return [()] * len(slots)


class PriorityScheduler:
    """Strict priority: higher ``Request.priority`` first, FIFO within."""

    def key(self, request: "Request") -> Tuple:
        return (-request.priority,)

    def keys(self, store: "RequestStore", slots: np.ndarray) -> List[Tuple]:
        if store.priorities is None:
            return [(0,)] * len(slots)
        # tolist() yields Python ints: identical key values (and types) to
        # the per-object ``-request.priority``.
        return [(p,) for p in (-store.priorities[slots]).tolist()]


class EdfScheduler:
    """Earliest-deadline-first (SLO-aware).

    Requests carrying a ``deadline`` (absolute simulation time by which
    the response should finish) are served soonest-deadline first;
    deadline-less requests sort after every deadline, FIFO among
    themselves.
    """

    def key(self, request: "Request") -> Tuple:
        deadline = request.deadline
        return (deadline if deadline is not None else float("inf"),)

    def keys(self, store: "RequestStore", slots: np.ndarray) -> List[Tuple]:
        if store.deadlines is None:
            return [(float("inf"),)] * len(slots)
        # nan is the store's "no deadline" sentinel; the key space uses inf
        # (sorts last), exactly like the object path.
        column = store.deadlines[slots]
        return [
            (d,) for d in np.where(np.isnan(column), np.inf, column).tolist()
        ]

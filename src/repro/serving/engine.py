"""Unified serving engine: one request/response surface for modeled and real execution.

The engine consolidates the serving story of Figures 8 and 9 behind a single
API.  A :class:`ServingEngine` owns admission, FIFO batching on one (shared,
simulated) accelerator, per-batch 4-bit-ratio selection and metrics; *what*
executes a batch and *which* ratio it runs at are pluggable:

* :class:`Executor` — turns one :class:`Batch` into a service time (and
  optionally per-request outputs).  :class:`~repro.serving.executors.
  ModeledExecutor` wraps the analytic :class:`~repro.serving.simulator.
  ServiceTimeModel` (the paper's Figure 8/9 setup, bit-identical to the seed
  simulator); :class:`~repro.serving.executors.RuntimeExecutor` wraps a
  prepared :class:`~repro.core.runtime.FlexiQModel` and measures real
  wall-clock batch latencies.
* :class:`RatioPolicy` — picks the 4-bit ratio for each batch.  Fixed-ratio,
  ratio-schedule and :class:`~repro.core.controller.AdaptiveRatioController`
  deployments are interchangeable policies (see
  :mod:`repro.serving.policies`).

Several models can be registered on one engine (multi-model serving on a
shared accelerator): each request names its model, batches are formed from
head-of-line runs of same-model requests, and every model keeps its own
executor and policy — with a :class:`~repro.serving.executors.
RuntimeExecutor` per model that means one prepared-kernel cache each, and a
per-batch ``set_ratio()`` that stays an O(1) variable update.

The discrete-event loop reproduces the seed ``ServingSimulator`` semantics
exactly (same admission, batch-cap, drop and float arithmetic), so the
compatibility wrappers in :mod:`repro.serving.simulator` and
:mod:`repro.serving.adaptation` return bit-identical latencies for the
Figure 8/9 reproductions.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.data.traces import RequestTrace
from repro.serving.metrics import latency_percentiles, summarize_latencies


@dataclass
class BatchingConfig:
    """Batching policy of the serving system."""

    max_batch: int = 64
    # A request admitted while the server is busy waits in an unbounded FIFO
    # queue; ``drop_after`` (seconds) optionally drops requests that waited
    # longer than this (disabled by default, as in the paper).
    drop_after: Optional[float] = None


@dataclass
class Request:
    """One inference request entering the engine.

    ``payload`` carries the actual model input for real execution (a single
    sample, e.g. a ``(C, H, W)`` image); modeled execution needs only the
    arrival time.  ``request_id`` defaults to the admission index.
    """

    arrival_time: float
    model: str = "default"
    request_id: int = -1
    payload: Optional[np.ndarray] = None


@dataclass
class Response:
    """Outcome of one request: timing, the batch it rode in, and its output."""

    request_id: int
    model: str
    arrival_time: float
    start_time: float
    finish_time: float
    batch_size: int
    ratio: float
    mode: str
    dropped: bool = False
    output: Any = None

    @property
    def latency(self) -> float:
        """Response time: queueing delay plus batch service time (seconds)."""
        return self.finish_time - self.arrival_time


@dataclass
class Batch:
    """One FIFO batch handed to an :class:`Executor`.

    ``requests`` is populated when the engine was given explicit
    :class:`Request` objects (so executors can read payloads); trace-driven
    runs pass only the size, which is all modeled execution needs.
    """

    model: str
    start_time: float
    size: int
    indices: np.ndarray
    requests: Optional[Sequence[Request]] = None


@dataclass
class BatchExecution:
    """What an executor reports back for one batch.

    ``service_time`` is the batch duration in seconds — analytic for modeled
    execution, measured wall-clock for real execution.  ``outputs`` optionally
    holds one entry per request of the batch, in batch order.  ``ratio``
    reports the ratio the batch *actually* executed at when the executor
    overrides the policy-selected one (e.g. ``RuntimeExecutor`` pinning
    ``"int8"``/``"int4"`` modes); ``None`` means the selected ratio ran.
    """

    service_time: float
    outputs: Optional[Sequence[Any]] = None
    ratio: Optional[float] = None


class Executor(Protocol):
    """Executes one batch for one model; see :mod:`repro.serving.executors`."""

    def execute(self, batch: Batch, mode: str, ratio: float) -> BatchExecution:
        ...


class RatioPolicy(Protocol):
    """Selects the 4-bit ratio for each batch; see :mod:`repro.serving.policies`."""

    def on_run_start(self, trace: RequestTrace) -> None:
        """Observe the admitted trace for this model before serving starts."""
        ...

    def select(self, time: float) -> float:
        """Ratio for a batch whose service starts at ``time``."""
        ...


@dataclass
class BatchRecord:
    """Per-batch accounting: what ran, when, at which ratio."""

    model: str
    start: float
    finish: float
    size: int
    ratio: float
    mode: str


@dataclass
class _Endpoint:
    """One registered model: executor + policy + execution mode."""

    name: str
    executor: Executor
    policy: RatioPolicy
    mode: str


@dataclass
class EngineResult:
    """Outcome of one engine run.

    ``latencies`` holds the served requests' response times in arrival order
    (dropped requests excluded); ``request_latencies`` keeps one slot per
    admitted request with ``nan`` marking drops, aligned with
    ``request_models`` for per-model breakdowns.
    """

    latencies: np.ndarray
    request_latencies: np.ndarray
    request_models: Optional[List[str]]
    batch_records: List[BatchRecord]
    dropped: int
    duration: float
    busy_time: float
    responses: Optional[List[Response]] = None
    _single_model: Optional[str] = None

    # ------------------------------------------------------------------
    # Batch-level views
    # ------------------------------------------------------------------
    @property
    def batch_sizes(self) -> List[int]:
        return [record.size for record in self.batch_records]

    @property
    def batch_ratios(self) -> List[float]:
        return [record.ratio for record in self.batch_records]

    # ------------------------------------------------------------------
    # Latency statistics
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return latency_percentiles(self.latencies, (50,))["p50"]

    @property
    def p90_latency(self) -> float:
        return latency_percentiles(self.latencies, (90,))["p90"]

    @property
    def throughput(self) -> float:
        """Served requests per second of trace time."""
        if self.duration <= 0:
            return 0.0
        return len(self.latencies) / self.duration

    @property
    def requests_per_busy_second(self) -> float:
        """Served requests per second of accelerator busy time.

        For :class:`~repro.serving.executors.RuntimeExecutor` runs this is
        the real sustained throughput of the serving hot path.
        """
        if self.busy_time <= 0:
            return 0.0
        return len(self.latencies) / self.busy_time

    def for_model(self, name: str) -> np.ndarray:
        """Served latencies of one registered model, in arrival order."""
        served = ~np.isnan(self.request_latencies)
        if self.request_models is None:
            if self._single_model is not None and name != self._single_model:
                return np.zeros(0, dtype=np.float64)
            return self.request_latencies[served]
        mask = served & (np.asarray(self.request_models) == name)
        return self.request_latencies[mask]


def requests_from_trace(
    trace: RequestTrace,
    model: str = "default",
    payloads: Optional[Sequence[np.ndarray]] = None,
) -> List[Request]:
    """Materialize :class:`Request` objects from an arrival-time trace.

    ``payloads`` optionally attaches model inputs round-robin (real execution
    of a trace longer than the available sample pool reuses samples).
    """
    if payloads is not None and len(payloads) == 0:
        raise ValueError("payloads must be non-empty (or None for no payloads)")
    requests = []
    for i, arrival in enumerate(np.sort(np.asarray(trace.arrival_times, dtype=np.float64))):
        payload = payloads[i % len(payloads)] if payloads is not None else None
        requests.append(
            Request(arrival_time=float(arrival), model=model, request_id=i, payload=payload)
        )
    return requests


class ServingEngine:
    """FIFO-batching discrete-event serving engine for a shared accelerator.

    Register one endpoint per model with :meth:`register`, then :meth:`run`
    either a :class:`~repro.data.traces.RequestTrace` (single-model, modeled
    runs — no per-request objects are materialized, keeping million-request
    sweeps cheap) or an explicit list of :class:`Request` objects (multi-model
    and real execution).
    """

    def __init__(self, batching: Optional[BatchingConfig] = None) -> None:
        self.batching = batching if batching is not None else BatchingConfig()
        self._endpoints: Dict[str, _Endpoint] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        executor: Executor,
        policy: Optional[RatioPolicy] = None,
        mode: str = "flexiq",
    ) -> None:
        """Register a model endpoint (executor + ratio policy + mode)."""
        from repro.serving.policies import FixedRatioPolicy

        if policy is None:
            policy = FixedRatioPolicy(0.0)
        self._endpoints[name] = _Endpoint(name, executor, policy, mode)

    @property
    def models(self) -> List[str]:
        return list(self._endpoints)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Optional[RequestTrace] = None,
        requests: Optional[Sequence[Request]] = None,
        model: Optional[str] = None,
        duration: Optional[float] = None,
        record_responses: Optional[bool] = None,
    ) -> EngineResult:
        """Serve a trace or an explicit request list to completion.

        Exactly one of ``trace`` and ``requests`` must be given.  ``model``
        names the endpoint a trace targets (optional when only one is
        registered).  ``duration`` sets the result's time span for
        throughput; it defaults to the trace duration, or to the makespan
        (time until the last batch finishes) for explicit request lists.
        ``record_responses`` materializes per-request :class:`Response`
        objects; it defaults to on for explicit requests and off for traces
        (where only the latency arrays are needed).
        """
        if (trace is None) == (requests is None):
            raise ValueError("provide exactly one of trace or requests")
        if not self._endpoints:
            raise RuntimeError("no model endpoints registered")

        if trace is not None:
            if model is None:
                if len(self._endpoints) != 1:
                    raise ValueError(
                        "model= is required when several models are registered"
                    )
                model = next(iter(self._endpoints))
            if model not in self._endpoints:
                raise KeyError(f"model {model!r} is not registered")
            arrivals = np.sort(np.asarray(trace.arrival_times, dtype=np.float64))
            request_objs: Optional[List[Request]] = None
            single_model: Optional[str] = model
            run_duration = trace.duration if duration is None else float(duration)
        else:
            order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
            request_objs = [requests[i] for i in order]
            if model is not None and model not in self._endpoints:
                raise KeyError(f"model {model!r} is not registered")
            for request in request_objs:
                if request.model not in self._endpoints:
                    raise KeyError(f"model {request.model!r} is not registered")
                if model is not None and request.model != model:
                    raise ValueError(
                        f"model={model!r} conflicts with a request for "
                        f"{request.model!r}; omit model= for multi-model "
                        "request lists"
                    )
            arrivals = np.asarray(
                [request.arrival_time for request in request_objs], dtype=np.float64
            )
            models_present = {request.model for request in request_objs}
            single_model = models_present.pop() if len(models_present) == 1 else None
            # Without an explicit duration the run spans until the last batch
            # finishes (makespan, filled in by _serve); policies windowing
            # over admissions see the arrival horizon.
            run_duration = float(duration) if duration is not None else None

        if record_responses is None:
            record_responses = request_objs is not None

        policy_horizon = run_duration
        if policy_horizon is None:
            policy_horizon = float(arrivals[-1]) if len(arrivals) else 0.0
        self._start_policies(arrivals, request_objs, single_model, trace, policy_horizon)
        return self._serve(
            arrivals, request_objs, single_model, run_duration, record_responses
        )

    def _start_policies(
        self,
        arrivals: np.ndarray,
        request_objs: Optional[List[Request]],
        single_model: Optional[str],
        trace: Optional[RequestTrace],
        duration: float,
    ) -> None:
        """Show every involved policy its model's admitted trace."""
        for name, endpoint in self._endpoints.items():
            if single_model is not None:
                if name != single_model:
                    continue
                sub = trace if trace is not None else RequestTrace(arrivals, duration)
            else:
                mask = np.asarray([r.model == name for r in request_objs])
                if not mask.any():
                    continue
                sub = RequestTrace(arrivals[mask], duration)
            endpoint.policy.on_run_start(sub)

    def _serve(
        self,
        arrivals: np.ndarray,
        request_objs: Optional[List[Request]],
        single_model: Optional[str],
        duration: Optional[float],
        record_responses: bool,
    ) -> EngineResult:
        num_requests = len(arrivals)
        latencies = np.zeros(num_requests, dtype=np.float64)
        records: List[BatchRecord] = []
        responses: Optional[List[Optional[Response]]] = (
            [None] * num_requests if record_responses else None
        )
        dropped = 0
        busy_time = 0.0

        server_free_at = 0.0
        index = 0
        max_batch = self.batching.max_batch
        drop_after = self.batching.drop_after

        while index < num_requests:
            first_arrival = arrivals[index]
            start = max(server_free_at, first_arrival)
            # All requests that have arrived by the time the server starts,
            # capped by the batch size limit.
            end_index = bisect.bisect_right(arrivals, start, lo=index)
            limit = min(end_index, index + max_batch)
            if limit == index:
                limit = index + 1  # serve at least the request that triggered us

            if request_objs is None:
                head_model = single_model
                batch_end = limit
            else:
                # Head-of-line batching: a batch is a FIFO run of consecutive
                # requests for the same model (batches never mix models).
                head_model = request_objs[index].model
                batch_end = index + 1
                while batch_end < limit and request_objs[batch_end].model == head_model:
                    batch_end += 1

            endpoint = self._endpoints[head_model]
            if drop_after is not None:
                window = np.arange(index, batch_end)
                expired = (start - arrivals[window]) > drop_after
                if expired.any():
                    expired_indices = window[expired]
                    dropped += int(expired.sum())
                    latencies[expired_indices] = np.nan
                    if responses is not None:
                        for i in expired_indices:
                            responses[i] = self._response(
                                request_objs, i, arrivals, head_model, start,
                                float("nan"), 0, float("nan"),
                                mode=endpoint.mode, dropped=True,
                            )
                batch_indices = window[~expired]
                if batch_indices.size == 0:
                    index = batch_end
                    continue
            else:
                batch_indices = np.arange(index, batch_end)

            batch_size = len(batch_indices)
            ratio = float(endpoint.policy.select(start))
            batch = Batch(
                model=head_model,
                start_time=start,
                size=batch_size,
                indices=batch_indices,
                requests=(
                    [request_objs[i] for i in batch_indices]
                    if request_objs is not None
                    else None
                ),
            )
            execution = endpoint.executor.execute(batch, endpoint.mode, ratio)
            service_time = float(execution.service_time)
            # Record the ratio the batch actually ran at, which executors may
            # override (mode pinning); metrics built on batch_ratios must
            # reflect executed configurations, not requested ones.
            if execution.ratio is not None:
                ratio = float(execution.ratio)
            finish = start + service_time
            latencies[batch_indices] = finish - arrivals[batch_indices]
            records.append(
                BatchRecord(head_model, start, finish, batch_size, ratio, endpoint.mode)
            )
            if responses is not None:
                outputs = execution.outputs
                for position, i in enumerate(batch_indices):
                    responses[i] = self._response(
                        request_objs, i, arrivals, head_model, start, finish,
                        batch_size, ratio, mode=endpoint.mode,
                        output=outputs[position] if outputs is not None else None,
                    )
            busy_time += service_time
            server_free_at = finish
            index = batch_end

        if duration is None:
            # Makespan: from time zero until the accelerator went idle (or
            # the last arrival, if everything after it was dropped).
            last_arrival = float(arrivals[-1]) if num_requests else 0.0
            duration = max(server_free_at, last_arrival)
        valid = latencies[~np.isnan(latencies)]
        request_models = (
            [request.model for request in request_objs]
            if request_objs is not None
            else None
        )
        return EngineResult(
            latencies=valid,
            request_latencies=latencies,
            request_models=request_models,
            batch_records=records,
            dropped=dropped,
            duration=duration,
            busy_time=busy_time,
            responses=responses,
            _single_model=single_model,
        )

    def _response(
        self,
        request_objs: Optional[List[Request]],
        index: int,
        arrivals: np.ndarray,
        model: str,
        start: float,
        finish: float,
        batch_size: int,
        ratio: float,
        mode: str = "",
        dropped: bool = False,
        output: Any = None,
    ) -> Response:
        request = request_objs[index] if request_objs is not None else None
        request_id = index
        if request is not None and request.request_id >= 0:
            request_id = request.request_id
        return Response(
            request_id=request_id,
            model=model,
            arrival_time=float(arrivals[index]),
            start_time=start,
            finish_time=finish,
            batch_size=batch_size,
            ratio=ratio,
            mode=mode,
            dropped=dropped,
            output=output,
        )

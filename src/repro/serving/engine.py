"""Unified serving engine: one request/response surface for modeled and real execution.

The engine consolidates the serving story of Figures 8 and 9 behind a single
API.  A :class:`ServingEngine` owns admission, batching across ``num_servers``
identical (shared, simulated) accelerators, per-batch 4-bit-ratio selection
and metrics; *what* executes a batch, *which* requests ride in it and *which*
ratio it runs at are pluggable:

* :class:`Executor` — turns one :class:`Batch` into a service time (and
  optionally per-request outputs).  :class:`~repro.serving.executors.
  ModeledExecutor` wraps the analytic :class:`~repro.serving.simulator.
  ServiceTimeModel` (the paper's Figure 8/9 setup, bit-identical to the seed
  simulator); :class:`~repro.serving.executors.RuntimeExecutor` wraps a
  prepared :class:`~repro.core.runtime.FlexiQModel` and measures real
  wall-clock batch latencies.  With ``num_servers=K`` an endpoint may
  register one executor *per server* (e.g. K ``RuntimeExecutor``\\ s, each
  owning an independent prepared-kernel cache).
* :class:`~repro.serving.schedulers.Scheduler` — the queue discipline.
  The default is FIFO (the seed behaviour, served by a fast array path);
  :class:`~repro.serving.schedulers.PriorityScheduler` and the SLO-aware
  :class:`~repro.serving.schedulers.EdfScheduler` reorder queued requests by
  per-request ``priority``/``deadline`` fields.
* :class:`~repro.serving.placement.Placer` — which server the next batch
  runs on.  ``placer=None`` keeps the seed argmin-free-clock dispatch
  (inlined, bit-identical); heterogeneous clusters plug in least-work,
  weighted-by-speed or model-affinity placement (see
  :mod:`repro.serving.placement` and :mod:`repro.serving.cluster`).
* :class:`RatioPolicy` — picks the 4-bit ratio for each batch.  Policies see
  a :class:`~repro.serving.policies.PolicyContext` (start time, queue depth,
  batch size, server, and — when the engine carries a
  :class:`~repro.serving.telemetry.TelemetryBus` — the windowed per-server
  telemetry); legacy one-argument ``select(time)`` policies keep working
  through an adapter (see :mod:`repro.serving.policies`).

An engine given a :class:`~repro.serving.telemetry.TelemetryBus` publishes
per-batch and per-drop events to it, and :meth:`ServingEngine.
set_active_servers` lets a control plane grow/shrink the serving set at run
time — the hooks :mod:`repro.serving.cluster` builds elastic autoscaling on.

Admission is incremental: :meth:`ServingEngine.start` opens a session,
:meth:`ServingEngine.submit` pushes requests while the engine runs,
:meth:`ServingEngine.step` executes one batch at a time, and
:meth:`ServingEngine.finish` drains the queue and returns the
:class:`EngineResult`.  :meth:`ServingEngine.run` is a thin batch driver
over exactly that lifecycle.

Several models can be registered on one engine (multi-model serving on
shared accelerators): each request names its model, batches are formed from
same-model requests in scheduler order, and every model keeps its own
executor(s) and policy — with a :class:`~repro.serving.executors.
RuntimeExecutor` per model and server that means one prepared-kernel cache
each, and a per-batch ``set_ratio()`` that stays an O(1) variable update.

The discrete-event loop reproduces the seed ``ServingSimulator`` semantics
exactly for single-server FIFO runs (same admission, batch-cap and float
arithmetic), so the compatibility wrappers in :mod:`repro.serving.simulator`
and :mod:`repro.serving.adaptation` return bit-identical latencies for the
Figure 8/9 reproductions.  One deliberate deviation from the seed: when
``drop_after`` expires requests, the batch is backfilled from the queue
after the expired prefix is dropped, so drops no longer waste batch slots
(the seed computed the batch window before filtering, leaving batches
under-filled exactly when the queue was backed up).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

import numpy as np

from repro.data.traces import RequestTrace
from repro.serving.core import (
    BatchLedger,
    DROPPED,
    LazyRequests,
    PENDING,
    RequestStore,
    SERVED,
    per_request_latencies,
    run_fifo_columnar,
)
from repro.serving.metrics import (
    latency_percentiles,
    slo_attainment,
    summarize_latencies,
)
from repro.serving.placement import Placer, PlacementContext
from repro.serving.policies import PolicyContext
from repro.serving.schedulers import FifoScheduler, Scheduler, store_keys

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.telemetry import TelemetryBus


@dataclass
class BatchingConfig:
    """Batching policy of the serving system."""

    max_batch: int = 64
    # A request admitted while every server is busy waits in an unbounded
    # queue; ``drop_after`` (seconds) optionally drops requests that waited
    # longer than this (disabled by default, as in the paper).
    drop_after: Optional[float] = None


@dataclass
class Request:
    """One inference request entering the engine.

    ``payload`` carries the actual model input for real execution (a single
    sample, e.g. a ``(C, H, W)`` image); modeled execution needs only the
    arrival time.  ``request_id`` defaults to the admission index.
    ``priority`` (higher serves first) and ``deadline`` (absolute time by
    which the response should finish) are read by the non-FIFO schedulers;
    FIFO ignores both.

    The *generation profile* — ``prefill_tokens`` (prompt length) and
    ``max_new_tokens`` (the stop condition: how many tokens to generate,
    counting the one the prefill emits) — is read only by the
    iteration-level :class:`~repro.serving.generation.IterationScheduler`;
    the one-shot batch engine ignores both, so non-generative runs are
    untouched.  ``max_new_tokens=0`` (the default) marks a non-generative
    request; ``max_new_tokens=1`` is a prefill-only request (first token,
    zero decode steps).
    """

    arrival_time: float
    model: str = "default"
    request_id: int = -1
    payload: Optional[np.ndarray] = None
    priority: int = 0
    deadline: Optional[float] = None
    prefill_tokens: int = 0
    max_new_tokens: int = 0


@dataclass
class Response:
    """Outcome of one request: timing, the batch it rode in, and its output.

    ``migrations`` counts how many times the request was preempted off a
    failing/deactivated server and requeued before this outcome (0 on the
    default, fault-free paths); see :mod:`repro.serving.resilience`.
    """

    request_id: int
    model: str
    arrival_time: float
    start_time: float
    finish_time: float
    batch_size: int
    ratio: float
    mode: str
    dropped: bool = False
    output: Any = None
    priority: int = 0
    deadline: Optional[float] = None
    server: int = 0
    migrations: int = 0

    @property
    def latency(self) -> float:
        """Response time: queueing delay plus batch service time (seconds)."""
        return self.finish_time - self.arrival_time

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the response finished by its deadline (None without one)."""
        if self.deadline is None:
            return None
        return (not self.dropped) and self.finish_time <= self.deadline


@dataclass
class Batch:
    """One batch handed to an :class:`Executor`.

    ``requests`` is populated when the engine was given explicit
    :class:`Request` objects (so executors can read payloads); trace-driven
    runs pass only the size, which is all modeled execution needs.
    ``server`` is the accelerator the batch runs on (0-based).
    """

    model: str
    start_time: float
    size: int
    indices: np.ndarray
    requests: Optional[Sequence[Request]] = None
    server: int = 0


@dataclass
class BatchExecution:
    """What an executor reports back for one batch.

    ``service_time`` is the batch duration in seconds — analytic for modeled
    execution, measured wall-clock for real execution.  ``outputs`` optionally
    holds one entry per request of the batch, in batch order.  ``ratio``
    reports the ratio the batch *actually* executed at when the executor
    overrides the policy-selected one (e.g. ``RuntimeExecutor`` pinning
    ``"int8"``/``"int4"`` modes); ``None`` means the selected ratio ran.
    """

    service_time: float
    outputs: Optional[Sequence[Any]] = None
    ratio: Optional[float] = None


class Executor(Protocol):
    """Executes one batch for one model; see :mod:`repro.serving.executors`."""

    def execute(self, batch: Batch, mode: str, ratio: float) -> BatchExecution:
        ...


class RatioPolicy(Protocol):
    """Selects the 4-bit ratio for each batch; see :mod:`repro.serving.policies`.

    Two select signatures are supported.  Legacy policies implement
    ``select(time)`` and are adapted transparently; context-aware policies
    set ``accepts_context = True`` and implement ``select(context)`` with a
    :class:`~repro.serving.policies.PolicyContext` carrying the batch start
    time plus queue depth, batch size, model and server.
    """

    def on_run_start(self, trace: RequestTrace) -> None:
        """Observe the admitted trace for this model before serving starts."""
        ...

    def select(self, time: float) -> float:
        """Ratio for a batch whose service starts at ``time``."""
        ...


@dataclass
class BatchRecord:
    """Per-batch accounting: what ran, when, where, at which ratio.

    ``queue_depth`` is the number of arrived-and-waiting requests when the
    batch formed (the value telemetry aggregates) — kept on the record so a
    preempted batch can be *un*-recorded exactly.
    """

    model: str
    start: float
    finish: float
    size: int
    ratio: float
    mode: str
    server: int = 0
    queue_depth: int = 0


@dataclass
class _Endpoint:
    """One registered model: per-server executors + policy + execution mode."""

    name: str
    executors: List[Executor]
    policy: RatioPolicy
    mode: str
    select: Callable[[PolicyContext], float]

    @property
    def executor(self) -> Executor:
        """The (first) executor — the whole registration for ``num_servers=1``."""
        return self.executors[0]


@dataclass
class EngineResult:
    """Outcome of one engine run.

    ``latencies`` holds the served requests' response times in admission
    order (dropped requests excluded); ``request_latencies`` keeps one slot
    per admitted request with ``nan`` marking drops, aligned with
    ``request_models`` for per-model breakdowns.  ``server_busy_times`` has
    one accumulated busy time per server (their sum is ``busy_time``).
    ``migrated`` counts successful request moves (preemption + requeue; see
    :mod:`repro.serving.resilience`) — zero on the default fault-free paths.
    """

    latencies: np.ndarray
    request_latencies: np.ndarray
    request_models: Optional[List[str]]
    batch_records: List[BatchRecord]
    dropped: int
    duration: float
    busy_time: float
    responses: Optional[List[Response]] = None
    _single_model: Optional[str] = None
    num_servers: int = 1
    server_busy_times: Optional[List[float]] = None
    migrated: int = 0

    # ------------------------------------------------------------------
    # Batch-level views
    # ------------------------------------------------------------------
    @property
    def batch_sizes(self) -> List[int]:
        records = self.batch_records
        if isinstance(records, BatchLedger):
            return records.sizes.tolist()
        return [record.size for record in records]

    @property
    def batch_ratios(self) -> List[float]:
        records = self.batch_records
        if isinstance(records, BatchLedger):
            return [records.ratio] * len(records)
        return [record.ratio for record in records]

    @property
    def mean_executed_ratio(self) -> float:
        """Batch-size-weighted mean of the executed per-batch 4-bit ratios.

        ``nan`` when no batch was served.  Uses the *executed* ratios (after
        any executor mode pinning), so it reflects what actually ran.
        """
        sizes = np.asarray(self.batch_sizes, dtype=np.float64)
        if sizes.size == 0 or sizes.sum() <= 0:
            return float("nan")
        return float(
            np.average(np.asarray(self.batch_ratios, dtype=np.float64), weights=sizes)
        )

    # ------------------------------------------------------------------
    # Latency statistics
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return latency_percentiles(self.latencies, (50,))["p50"]

    @property
    def p90_latency(self) -> float:
        return latency_percentiles(self.latencies, (90,))["p90"]

    @property
    def throughput(self) -> float:
        """Served requests per second of trace time."""
        if self.duration <= 0:
            return 0.0
        return len(self.latencies) / self.duration

    @property
    def requests_per_busy_second(self) -> float:
        """Served requests per second of accelerator busy time.

        For :class:`~repro.serving.executors.RuntimeExecutor` runs this is
        the real sustained throughput of the serving hot path.  With several
        servers, busy time accumulates across all of them.
        """
        if self.busy_time <= 0:
            return 0.0
        return len(self.latencies) / self.busy_time

    def for_model(self, name: str) -> np.ndarray:
        """Served latencies of one registered model, in admission order."""
        served = ~np.isnan(self.request_latencies)
        if self.request_models is None:
            if self._single_model is not None and name != self._single_model:
                return np.zeros(0, dtype=np.float64)
            return self.request_latencies[served]
        mask = served & (np.asarray(self.request_models) == name)
        return self.request_latencies[mask]

    def deadline_attainment(self) -> float:
        """Fraction of deadline-carrying requests that met their deadline.

        Dropped requests with deadlines count as misses.  Returns ``nan``
        when no response carries a deadline (or responses were not
        recorded).
        """
        if not self.responses:
            return float("nan")
        recorded = [r for r in self.responses if r is not None]
        if not recorded:
            return float("nan")
        # Dropped responses carry finish_time=nan, which slo_attainment
        # counts as a miss whenever a deadline is present.
        return slo_attainment(
            [r.finish_time for r in recorded], [r.deadline for r in recorded]
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready report of the run (plain types only).

        Aggregates, not raw per-request arrays: the summary statistics,
        throughput, drop/migration counts and per-server busy times —
        what a report pipeline or dashboard ingests.  Pair with
        :func:`repro.obs.registry.registry_from_engine` for full metric
        exports.
        """
        summary = {
            key: (None if np.isnan(value) else float(value))
            for key, value in self.summary().items()
        }
        attainment = self.deadline_attainment()
        return {
            "served": int(len(self.latencies)),
            "dropped": int(self.dropped),
            "migrated": int(self.migrated),
            "batches": int(len(self.batch_records)),
            "duration": float(self.duration),
            "busy_time": float(self.busy_time),
            "throughput": float(self.throughput),
            "num_servers": int(self.num_servers),
            "server_busy_times": [
                float(seconds) for seconds in (self.server_busy_times or [])
            ],
            "latency": summary,
            "deadline_attainment": (
                None if np.isnan(attainment) else float(attainment)
            ),
        }


def requests_from_trace(
    trace: RequestTrace,
    model: str = "default",
    payloads: Optional[Sequence[np.ndarray]] = None,
    priorities: Optional[Sequence[int]] = None,
    deadlines: Optional[Sequence[Optional[float]]] = None,
    prefill_tokens: Optional[Sequence[int]] = None,
    max_new_tokens: Optional[Sequence[int]] = None,
    lazy: bool = False,
) -> Sequence[Request]:
    """Materialize :class:`Request` objects from an arrival-time trace.

    ``payloads`` optionally attaches model inputs round-robin (real execution
    of a trace longer than the available sample pool reuses samples).
    ``priorities``/``deadlines`` optionally attach scheduler metadata, also
    round-robin, in arrival order.  ``deadlines`` entries are *relative*
    SLOs (seconds after the request's arrival): the materialized
    ``Request.deadline`` is ``arrival_time + slo`` — an absolute deadline
    list would make every request arriving after the largest entry
    born-expired.  ``prefill_tokens``/``max_new_tokens`` optionally attach
    generation profiles (also round-robin) for iteration-level scheduling
    (see :mod:`repro.serving.generation`) — a mixed prompt-length trace is
    one ``prefill_tokens`` list with several entries.

    Requests build from a columnar :class:`~repro.serving.core.RequestStore`
    (so the sorted arrivals are computed once per trace and the deadline
    arithmetic is the vectorized twin of the per-request ``arrival + slo``).
    ``lazy=True`` skips materialization entirely and returns the store's
    :class:`~repro.serving.core.LazyRequests` view — field-for-field the
    same requests, O(columns) memory instead of O(requests) objects.
    """
    store = RequestStore.from_trace(
        trace,
        model=model,
        payloads=payloads,
        priorities=priorities,
        deadlines=deadlines,
        prefill_tokens=prefill_tokens,
        max_new_tokens=max_new_tokens,
    )
    view = LazyRequests(store)
    if lazy:
        return view
    return list(view)


def _expired_prefix_end(
    arrivals: np.ndarray, lo: int, hi: int, start: float, drop_after: float
) -> int:
    """First position in ``[lo, hi)`` whose request has *not* expired.

    The expiry predicate is exactly the seed's ``start - arrival >
    drop_after``; over sorted arrivals it selects a prefix (float
    subtraction is monotone).  ``searchsorted`` on the algebraically
    equivalent ``arrival < start - drop_after`` lands within an ulp of that
    boundary, so a local walk re-applies the exact predicate — keeping the
    FIFO and scheduled paths' drop *sets* identical to each other and to
    the per-element seed arithmetic, without an O(queue) scan per batch.
    """
    fresh = lo + int(np.searchsorted(arrivals[lo:hi], start - drop_after, side="left"))
    while fresh > lo and not (start - arrivals[fresh - 1] > drop_after):
        fresh -= 1
    while fresh < hi and (start - arrivals[fresh]) > drop_after:
        fresh += 1
    return fresh


class _Session:
    """Mutable state of one serving run (batch or streaming)."""

    def __init__(
        self,
        num_servers: int,
        slot_arrivals: np.ndarray,
        request_objs: Optional[List[Request]],
        single_model: Optional[str],
        trace: Optional[RequestTrace],
        duration: Optional[float],
        record_responses: bool,
    ) -> None:
        num_requests = len(slot_arrivals)
        self.slot_arrivals = slot_arrivals
        self.request_objs = request_objs
        # Columnar backing store when request_objs is a LazyRequests view
        # (store-backed sessions read metadata from columns, not objects).
        self.store = getattr(request_objs, "store", None)
        self.single_model = single_model
        self.trace = trace
        self.duration = duration
        self.record_responses = record_responses
        self.latencies = np.zeros(num_requests, dtype=np.float64)
        self.responses: Optional[List[Optional[Response]]] = (
            [None] * num_requests if record_responses else None
        )
        self.records: List[BatchRecord] = []
        # One slot array per record (views, no copies): what preemption
        # needs to rewind a batch exactly (see preempt_server).
        self.record_slots: List[np.ndarray] = []
        # Per-slot move counts and the run total (resilience accounting).
        self.migrations: Dict[int, int] = {}
        self.migrated = 0
        # Per-slot checkpointed progress fraction (partial-batch
        # checkpointing; see preempt_server).  Empty on the default paths —
        # _execute only looks at it when non-empty, keeping the seed
        # arithmetic untouched.
        self.checkpoints: Dict[int, float] = {}
        # Per-slot checkpoint-restore cost in seconds (state transfer to the
        # resuming server; see StepCheckpoint.restore_seconds).  Paid once,
        # by the first batch that consumes the slot's checkpoint.  Empty
        # unless a checkpoint policy prices restores.
        self.transfer_costs: Dict[int, float] = {}
        self.dropped = 0
        self.free_at: List[float] = [0.0] * num_servers
        self.busy: List[float] = [0.0] * num_servers
        # Servers eligible for new batches (ascending ids).  The control
        # plane shrinks/grows this set at window boundaries (elastic
        # autoscaling); a deactivated server finishes its running batch but
        # receives no new ones.
        self.active: List[int] = list(range(num_servers))
        # Pending admission, sorted by arrival: positions >= ``pos`` are not
        # yet served (FIFO path) / not yet admitted to the queue (scheduled
        # path).  ``pend_slots[p]`` maps a pending position back to the
        # stable per-request slot index.
        self.pend_arrivals = slot_arrivals
        self.pend_slots = np.arange(num_requests, dtype=np.intp)
        self.pos = 0
        # Scheduled path only: admitted-but-unserved requests, a heap
        # ordered by (scheduler key, arrival, slot) — arrival then
        # admission slot are the FIFO tie-breakers behind the discipline's
        # key.  ``arrival_heap`` (lazily cleaned against ``queued_slots``)
        # answers "earliest queued arrival" without scanning the queue.
        self.queue: List[Tuple[Tuple, float, int]] = []
        self.arrival_heap: List[Tuple[float, int]] = []
        self.queued_slots: set = set()

    def model_name(self, slot: int) -> str:
        """Model of one slot, without materializing a store-backed Request."""
        if self.store is not None:
            return self.store.model_name(int(slot))
        return self.request_objs[int(slot)].model


class ServingEngine:
    """Discrete-event serving engine for ``num_servers`` shared accelerators.

    Register one endpoint per model with :meth:`register`, then either
    :meth:`run` a :class:`~repro.data.traces.RequestTrace` (single-model,
    modeled runs — no per-request objects are materialized, keeping
    million-request sweeps cheap) or an explicit list of :class:`Request`
    objects (multi-model, scheduler-aware and real execution) — or drive the
    engine incrementally::

        engine.start()                  # open a streaming session
        engine.submit(first_requests)   # admission while the engine runs
        engine.step()                   # execute one batch
        engine.submit(more_requests)
        result = engine.finish()        # drain the queue, close the session

    ``scheduler`` selects the queue discipline (default FIFO); non-FIFO
    schedulers read per-request ``priority``/``deadline`` fields and
    therefore require explicit request lists (see
    :func:`requests_from_trace`).
    """

    def __init__(
        self,
        batching: Optional[BatchingConfig] = None,
        num_servers: int = 1,
        scheduler: Optional[Scheduler] = None,
        placer: Optional[Placer] = None,
        telemetry: Optional["TelemetryBus"] = None,
        columnar: bool = True,
        tracer=None,
    ) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self.batching = batching if batching is not None else BatchingConfig()
        self.num_servers = int(num_servers)
        self.scheduler = scheduler
        # ``columnar`` lets finish() drain eligible FIFO sessions through
        # the vectorized core (repro.serving.core) — identical results,
        # orders of magnitude faster at trace scale.  False forces the
        # object loop everywhere (the parity-test reference).
        self.columnar = bool(columnar)
        # ``placer=None`` keeps the inlined argmin-free-clock dispatch (the
        # seed rule, bit-identical); a Placer generalizes server selection
        # for heterogeneous clusters (see repro.serving.placement).
        self.placer = placer
        # Optional telemetry bus: receives per-batch/per-drop events for the
        # cluster control plane (see repro.serving.telemetry).
        self.telemetry = telemetry
        # Optional request-lifecycle tracer (duck-typed; see repro.obs).
        # None keeps every hot path on a single is-None branch per batch,
        # preserving bit-identity with the untraced engine.
        self.tracer = tracer
        self._fifo = scheduler is None or isinstance(scheduler, FifoScheduler)
        self._endpoints: Dict[str, _Endpoint] = {}
        self._session: Optional[_Session] = None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        executor: Union[Executor, Sequence[Executor]],
        policy: Optional[RatioPolicy] = None,
        mode: str = "flexiq",
    ) -> None:
        """Register a model endpoint (executor(s) + ratio policy + mode).

        ``executor`` is either one executor shared by every server (fine for
        the stateless :class:`~repro.serving.executors.ModeledExecutor`) or a
        sequence of exactly ``num_servers`` executors, one per server — the
        configuration that gives each server its own
        :class:`~repro.serving.executors.RuntimeExecutor` and therefore its
        own prepared-kernel cache.
        """
        from repro.serving.policies import FixedRatioPolicy, policy_selector

        if policy is None:
            policy = FixedRatioPolicy(0.0)
        if isinstance(executor, (list, tuple)):
            executors = list(executor)
            if len(executors) != self.num_servers:
                raise ValueError(
                    f"got {len(executors)} executors for {self.num_servers} servers; "
                    "register one per server (or a single shared executor)"
                )
        else:
            executors = [executor] * self.num_servers
        self._endpoints[name] = _Endpoint(
            name, executors, policy, mode, policy_selector(policy)
        )

    @property
    def models(self) -> List[str]:
        return list(self._endpoints)

    # ------------------------------------------------------------------
    # Batch driver
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Optional[RequestTrace] = None,
        requests: Optional[Sequence[Request]] = None,
        model: Optional[str] = None,
        duration: Optional[float] = None,
        record_responses: Optional[bool] = None,
    ) -> EngineResult:
        """Serve a trace or an explicit request list to completion.

        A thin driver over the streaming lifecycle: :meth:`start` a session
        with everything admitted up front, then :meth:`finish` (which steps
        until the queue drains).  Exactly one of ``trace`` and ``requests``
        must be given.  ``model`` names the endpoint a trace targets
        (optional when only one is registered).  ``duration`` sets the
        result's time span for throughput; it defaults to the trace
        duration, or to the makespan (time until the last batch finishes)
        for explicit request lists.  ``record_responses`` materializes
        per-request :class:`Response` objects; it defaults to on for
        explicit requests and off for traces (where only the latency arrays
        are needed).
        """
        if (trace is None) == (requests is None):
            raise ValueError("provide exactly one of trace or requests")
        self.start(
            trace=trace,
            requests=requests,
            model=model,
            duration=duration,
            record_responses=record_responses,
        )
        return self.finish()

    # ------------------------------------------------------------------
    # Streaming lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        trace: Optional[RequestTrace] = None,
        requests: Optional[Sequence[Request]] = None,
        model: Optional[str] = None,
        duration: Optional[float] = None,
        record_responses: Optional[bool] = None,
    ) -> None:
        """Open a serving session.

        For streaming use, call with no ``trace``/``requests`` (or just the
        initially known requests) and push the rest through :meth:`submit`
        while :meth:`step`\\ ping.  Ratio policies observe the requests known
        at start time via ``on_run_start`` (endpoints with no admitted
        requests are skipped, as in the seed); later submissions are served
        but not re-shown to the policies.
        """
        if self._session is not None:
            raise RuntimeError("a serving session is already open; finish() it first")
        if trace is not None and requests is not None:
            raise ValueError("provide exactly one of trace or requests")
        if not self._endpoints:
            raise RuntimeError("no model endpoints registered")

        if trace is not None:
            if not self._fifo:
                raise ValueError(
                    "non-FIFO schedulers read per-request priority/deadline "
                    "fields; pass explicit requests (see requests_from_trace)"
                )
            if model is None:
                if len(self._endpoints) != 1:
                    raise ValueError(
                        "model= is required when several models are registered"
                    )
                model = next(iter(self._endpoints))
            if model not in self._endpoints:
                raise KeyError(f"model {model!r} is not registered")
            if hasattr(trace, "sorted_arrivals"):
                # Sorted once per (trace, arrival array) and cached on the
                # trace — repeated runs over a million-request trace stop
                # paying an O(n log n) re-sort per entry.
                arrivals = trace.sorted_arrivals()
            else:
                arrivals = np.sort(
                    np.asarray(trace.arrival_times, dtype=np.float64)
                )
            request_objs: Optional[Sequence[Request]] = None
            single_model: Optional[str] = model
            run_duration = trace.duration if duration is None else float(duration)
        else:
            if requests is None:
                requests = []
            if model is not None and model not in self._endpoints:
                raise KeyError(f"model {model!r} is not registered")
            store = getattr(requests, "store", None)
            if store is not None:
                # Store-backed lazy view (LazyRequests): rows are already
                # arrival-sorted, so alias the arrival column directly —
                # no object walk, no sort, no copies.
                request_objs = requests
                for name in store.model_names:
                    if name not in self._endpoints:
                        raise KeyError(f"model {name!r} is not registered")
                    if model is not None and name != model:
                        raise ValueError(
                            f"model={model!r} conflicts with a request for "
                            f"{name!r}; omit model= for multi-model "
                            "request lists"
                        )
                arrivals = store.arrivals
                single_model = store.single_model
            else:
                order = sorted(
                    range(len(requests)), key=lambda i: requests[i].arrival_time
                )
                request_objs = [requests[i] for i in order]
                for request in request_objs:
                    if request.model not in self._endpoints:
                        raise KeyError(
                            f"model {request.model!r} is not registered"
                        )
                    if model is not None and request.model != model:
                        raise ValueError(
                            f"model={model!r} conflicts with a request for "
                            f"{request.model!r}; omit model= for multi-model "
                            "request lists"
                        )
                arrivals = np.asarray(
                    [request.arrival_time for request in request_objs],
                    dtype=np.float64,
                )
                models_present = {request.model for request in request_objs}
                single_model = (
                    models_present.pop() if len(models_present) == 1 else None
                )
            # Without an explicit duration the run spans until the last batch
            # finishes (makespan, filled in by finish()); policies windowing
            # over admissions see the arrival horizon.
            run_duration = float(duration) if duration is not None else None

        if record_responses is None:
            record_responses = request_objs is not None

        policy_horizon = run_duration
        if policy_horizon is None:
            policy_horizon = float(arrivals[-1]) if len(arrivals) else 0.0
        self._start_policies(arrivals, request_objs, single_model, trace, policy_horizon)
        self._session = _Session(
            self.num_servers,
            arrivals,
            request_objs,
            single_model,
            trace,
            run_duration,
            record_responses,
        )

    def submit(self, requests: Union[Request, Sequence[Request]]) -> None:
        """Push requests into the open session (streaming admission).

        Requests are merged into the unserved part of the queue by arrival
        time; a request whose ``arrival_time`` lies before the engine's
        current simulated time is simply served at the next opportunity.
        """
        session = self._require_session()
        if session.request_objs is None:
            raise RuntimeError(
                "trace sessions are fixed at start(); open a request session "
                "(start() or start(requests=...)) for streaming admission"
            )
        if session.store is not None:
            raise RuntimeError(
                "store-backed sessions (LazyRequests) are fixed at start(); "
                "open a plain request-list session for streaming admission"
            )
        if isinstance(requests, Request):
            requests = [requests]
        if not len(requests):
            return
        new = sorted(requests, key=lambda request: request.arrival_time)
        for request in new:
            if request.model not in self._endpoints:
                raise KeyError(f"model {request.model!r} is not registered")
        first_slot = len(session.request_objs)
        session.request_objs.extend(new)
        new_arrivals = np.asarray([r.arrival_time for r in new], dtype=np.float64)
        session.slot_arrivals = np.concatenate([session.slot_arrivals, new_arrivals])
        session.latencies = np.concatenate(
            [session.latencies, np.zeros(len(new), dtype=np.float64)]
        )
        if session.responses is not None:
            session.responses.extend([None] * len(new))
        new_slots = np.arange(first_slot, first_slot + len(new), dtype=np.intp)
        self._merge_pending(session, new_arrivals, new_slots)

    def step(self) -> Optional[BatchRecord]:
        """Execute the next batch; ``None`` when no admitted work remains."""
        session = self._require_session()
        if self._fifo:
            return self._step_fifo(session)
        return self._step_scheduled(session)

    def finish(self) -> EngineResult:
        """Drain the queue, close the session and return the result.

        The session is closed even if an executor raises mid-drain, so the
        engine stays reusable after a failed run.

        Untouched FIFO sessions that satisfy :meth:`_fast_eligible` drain
        through the columnar core (:mod:`repro.serving.core`) — identical
        results to stepping the object loop, vectorized; everything else
        (and any leftover state) drains through :meth:`step` as before.
        """
        session = self._require_session()
        try:
            if self._fast_eligible(session):
                self._run_columnar_fast(session)
            while self.step() is not None:
                pass
        finally:
            self._session = None
        return self._finalize(session)

    def abort(self) -> None:
        """Discard the open session (if any) without finalizing.

        For streaming callers stepping manually: after an executor error
        (or a decision to stop early) this resets the engine for a fresh
        :meth:`start`.
        """
        self._session = None

    def _require_session(self) -> _Session:
        if self._session is None:
            raise RuntimeError("no serving session open; call start() (or run())")
        return self._session

    # ------------------------------------------------------------------
    # Elasticity (cluster control plane)
    # ------------------------------------------------------------------
    @property
    def active_servers(self) -> List[int]:
        """Server ids eligible for new batches in the open session."""
        return list(self._require_session().active)

    def set_active_servers(
        self,
        servers: Sequence[int],
        available_from: Optional[float] = None,
    ) -> None:
        """Resize the set of servers receiving new batches (elastic scaling).

        ``servers`` are the ids (0-based) to keep active; at least one is
        required, and deactivated servers simply stop receiving batches
        (one already running finishes normally).  ``available_from``
        models provisioning lag: a *newly* activated server's clock is
        advanced to at least that time, so scale-up capacity does not
        retroactively serve the past.
        """
        session = self._require_session()
        active = sorted({int(server) for server in servers})
        if not active:
            raise ValueError("at least one server must stay active")
        for server in active:
            if not 0 <= server < self.num_servers:
                raise ValueError(
                    f"server {server} out of range (num_servers={self.num_servers})"
                )
        if available_from is not None:
            previous = set(session.active)
            for server in active:
                if server not in previous:
                    session.free_at[server] = max(
                        session.free_at[server], float(available_from)
                    )
        session.active = active

    # ------------------------------------------------------------------
    # Preemption & migration (resilience plane)
    # ------------------------------------------------------------------
    def preempt_server(
        self,
        server: int,
        time: float,
        policy=None,
        kill_running: bool = True,
        checkpoint=None,
    ):
        """Rewind a server's unfinished batches and migrate their requests.

        The fault/elasticity hook of :mod:`repro.serving.resilience`: called
        when ``server`` crashes at ``time`` (``kill_running=True`` — the
        running batch dies too, its partial work wasted) or is gracefully
        deactivated (``kill_running=False`` — the running batch finishes,
        only batches that have not *started* by ``time`` are rewound).

        ``checkpoint`` (a :class:`~repro.serving.resilience.
        CheckpointPolicy`) optionally records how much of a *running* killed
        batch's service had been checkpointed by ``time``: each victim keeps
        that fraction as surviving progress (compounding across repeated
        migrations), and when a cohort re-executes, the batch's service time
        shrinks to its largest residual demand — resumed work is not redone,
        though one fresh rider still costs the full batch.

        Every rewound batch is removed from the run's records, its requests'
        latencies/responses un-written and its telemetry contribution
        reversed (busy time up to the kill point stays billed: wasted work
        is still work).  The affected requests are then handed to ``policy``
        (a :class:`~repro.serving.resilience.MigrationPolicy`): requests it
        requeues re-enter the pending queue — ordered and gated by the
        policy's ready key, clamped to ``time`` so migration never serves
        the past — and flow back through the configured scheduler and
        placer; requests it rejects (or all of them when ``policy`` is
        ``None``: lost work) are dropped.  Returns a
        :class:`~repro.serving.resilience.Preemption` report.

        This never touches other servers' state: a session with no
        preempted work is left exactly as it was.
        """
        from repro.serving.resilience import Migrant, Preemption

        s = self._require_session()
        server = int(server)
        time = float(time)
        if not 0 <= server < self.num_servers:
            raise ValueError(
                f"server {server} out of range (num_servers={self.num_servers})"
            )
        victims: List[Tuple[BatchRecord, np.ndarray]] = []
        kept_records: List[BatchRecord] = []
        kept_slots: List[np.ndarray] = []
        for record, slots in zip(s.records, s.record_slots):
            if (
                record.server == server
                and record.finish > time
                and (kill_running or record.start >= time)
            ):
                victims.append((record, slots))
            else:
                kept_records.append(record)
                kept_slots.append(slots)
        if not victims:
            return Preemption(batches=0, migrated=0, dropped=0)
        s.records = kept_records
        s.record_slots = kept_slots

        migrant_slots: List[int] = []
        for record, slots in victims:
            # Busy time up to the kill point stays billed (wasted work);
            # service the server would have done after it is rewound.
            s.busy[server] -= record.finish - max(record.start, time)
            if checkpoint is not None and record.start < time:
                fraction = float(checkpoint.completed_fraction(record, time))
                if not 0.0 <= fraction < 1.0:
                    raise ValueError(
                        "checkpoint completed_fraction must be in [0, 1); "
                        f"got {fraction!r}"
                    )
                if fraction > 0.0:
                    restore = getattr(checkpoint, "restore_seconds", None)
                    for slot in slots:
                        slot = int(slot)
                        done = s.checkpoints.get(slot, 0.0)
                        # Progress compounds: a re-migrated request already
                        # resumed from `done`, so the new checkpoints cover
                        # a fraction of the *residual* work only.
                        s.checkpoints[slot] = done + (1.0 - done) * fraction
                        if restore is not None:
                            # Restoring this checkpoint on another server is
                            # not free: the resuming batch pays the transfer
                            # (see _execute).  Re-priced on re-migration —
                            # only the latest checkpoint is ever restored.
                            s.transfer_costs[slot] = float(
                                restore(s.checkpoints[slot])
                            )
            if self.telemetry is not None:
                deadline_total, deadline_met = self._deadline_counts(
                    s, slots, record.finish
                )
                self.telemetry.unrecord_batch(
                    record,
                    latencies=record.finish - s.slot_arrivals[slots],
                    deadline_total=deadline_total,
                    deadline_met=deadline_met,
                    kill_time=time,
                )
            if self.tracer is not None:
                self.tracer.on_preempt(record, slots, time)
            for slot in slots:
                slot = int(slot)
                s.latencies[slot] = 0.0
                if s.store is not None:
                    s.store.status[slot] = PENDING
                if s.responses is not None:
                    s.responses[slot] = None
                migrant_slots.append(slot)
        # The server's clock rewinds to the preemption point (or the finish
        # of a still-running batch it was allowed to drain).
        s.free_at[server] = max(
            [time]
            + [record.finish for record in kept_records if record.server == server]
        )

        # The scheduled path's arrival heap may hold lazily-uncleaned
        # entries from the victims' first pass through the queue; when a
        # migrant re-enters ``queued_slots`` those stale entries would
        # resurrect with the *original* arrival, defeating the migration
        # ready gate (and expiring migrants against their pre-fault wait).
        # Preemption is rare, so an explicit purge is cheap.
        if s.arrival_heap:
            preempted = set(migrant_slots)
            s.arrival_heap = [
                entry for entry in s.arrival_heap if entry[1] not in preempted
            ]
            heapq.heapify(s.arrival_heap)

        migrants = [
            Migrant(
                slot=slot,
                arrival=float(s.slot_arrivals[slot]),
                deadline=(
                    s.request_objs[slot].deadline
                    if s.request_objs is not None
                    else None
                ),
                request=(
                    s.request_objs[slot] if s.request_objs is not None else None
                ),
                migrations=s.migrations.get(slot, 0),
                progress=s.checkpoints.get(slot, 0.0),
            )
            for slot in migrant_slots
        ]
        if policy is None:
            keys: List[Optional[float]] = [None] * len(migrants)
        else:
            keys = list(policy.plan(migrants, time))
            if len(keys) != len(migrants):
                raise ValueError(
                    "migration policy returned "
                    f"{len(keys)} keys for {len(migrants)} migrants"
                )
        requeue_keys: List[float] = []
        requeue_slots: List[int] = []
        requeue_priors: List[int] = []
        drop_slots: List[int] = []
        for migrant, key in zip(migrants, keys):
            if key is None:
                drop_slots.append(migrant.slot)
            else:
                # Migration can never serve the past: the requeued request
                # becomes serviceable no earlier than the preemption time.
                requeue_keys.append(max(float(key), time))
                requeue_slots.append(migrant.slot)
                requeue_priors.append(migrant.migrations)
                s.migrations[migrant.slot] = s.migrations.get(migrant.slot, 0) + 1
                s.migrated += 1
        if self.tracer is not None and requeue_slots:
            self.tracer.on_requeue(requeue_slots, requeue_priors, time, server)
        if drop_slots:
            self._drop(s, np.asarray(drop_slots, dtype=np.intp), time)
        if requeue_slots:
            self._merge_pending(
                s,
                np.asarray(requeue_keys, dtype=np.float64),
                np.asarray(requeue_slots, dtype=np.intp),
            )
        return Preemption(
            batches=len(victims),
            migrated=len(requeue_slots),
            dropped=len(drop_slots),
        )

    @staticmethod
    def _deadline_counts(
        s: _Session, slots: np.ndarray, finish: float
    ) -> Tuple[int, int]:
        """(deadline-carrying, met-by-``finish``) counts for a batch's slots.

        The one definition of the deadline arithmetic telemetry records —
        and, on preemption, un-records: both must count identically or a
        rewound batch would leave phantom attainment in its window.
        """
        total = met = 0
        if s.store is not None:
            column = s.store.deadlines
            if column is not None:
                batch = column[np.asarray(slots, dtype=np.int64)]
                carrying = ~np.isnan(batch)
                total = int(np.count_nonzero(carrying))
                if total:
                    met = int(np.count_nonzero(finish <= batch[carrying]))
        elif s.request_objs is not None:
            for slot in slots:
                deadline = s.request_objs[int(slot)].deadline
                if deadline is not None:
                    total += 1
                    if finish <= deadline:
                        met += 1
        return total, met

    @staticmethod
    def _slot_deadlines(s: _Session, slots: np.ndarray) -> Optional[np.ndarray]:
        """Absolute deadlines for ``slots`` (``nan`` = none), or ``None``.

        Only materialized when a tracer wants deadline-forced sampling —
        the common traced path (sample_rate=1.0) never pays for it.
        """
        if s.store is not None:
            column = s.store.deadlines
            if column is None:
                return None
            return column[np.asarray(slots, dtype=np.int64)]
        if s.request_objs is not None:
            return np.asarray(
                [
                    float("nan")
                    if s.request_objs[int(slot)].deadline is None
                    else float(s.request_objs[int(slot)].deadline)
                    for slot in slots
                ],
                dtype=np.float64,
            )
        return None

    @staticmethod
    def _merge_pending(s: _Session, keys: np.ndarray, slots: np.ndarray) -> None:
        """Merge slots into the unserved pending queue, sorted by key.

        The single place the 'pend arrays stay key-sorted, ``pos`` resets'
        invariant lives: streaming :meth:`submit` merges fresh requests by
        arrival time, and preemption merges migrants by their ready key —
        both the FIFO ordering position and the earliest time the slot can
        be admitted to a batch.  The stable sort keeps equal-key cohorts in
        insertion order.
        """
        merged = np.concatenate([s.pend_arrivals[s.pos:], keys])
        merged_slots = np.concatenate([s.pend_slots[s.pos:], slots])
        order = np.argsort(merged, kind="stable")
        s.pend_arrivals = merged[order]
        s.pend_slots = merged_slots[order]
        s.pos = 0

    def _select_server(
        self, s: _Session, time: float, model: str, pending: int, arrived: int
    ) -> int:
        """Pick the server for the next batch via the configured placer."""
        context = PlacementContext(
            time=time,
            free_at=s.free_at,
            active=s.active,
            model=model,
            pending=pending,
            batch_hint=max(1, min(arrived, self.batching.max_batch)),
            telemetry=self.telemetry,
        )
        server = int(self.placer.place(context))
        if server not in s.active:
            raise ValueError(
                f"placer returned server {server}, not in the active set {s.active}"
            )
        return server

    def _start_policies(
        self,
        arrivals: np.ndarray,
        request_objs: Optional[List[Request]],
        single_model: Optional[str],
        trace: Optional[RequestTrace],
        duration: float,
    ) -> None:
        """Show every involved policy its model's admitted trace."""
        for name, endpoint in self._endpoints.items():
            if single_model is not None:
                if name != single_model:
                    continue
                sub = trace if trace is not None else RequestTrace(arrivals, duration)
            else:
                store = getattr(request_objs, "store", None)
                if store is not None:
                    mask = store.model_mask(name)
                else:
                    mask = np.asarray(
                        [r.model == name for r in request_objs], dtype=bool
                    )
                if not mask.any():
                    continue
                sub = RequestTrace(arrivals[mask], duration)
            endpoint.policy.on_run_start(sub)

    # ------------------------------------------------------------------
    # Columnar fast core (vectorized whole-session FIFO drain)
    # ------------------------------------------------------------------
    def _fast_eligible(self, s: _Session) -> bool:
        """Whether finish() may drain this session through the columnar core.

        Every assumption the vectorized sweep bakes in is guarded here;
        anything else falls back to the object loop (identical results,
        slower).  Eligible: a columnar-enabled engine, FIFO discipline with
        the seed argmin-free-clock dispatch, an untouched single-model
        session (no steps taken, no queue, no checkpoints, no response
        recording) whose requests come from a trace or a store-backed view
        (plain object lists may still stream more via submit()), served by
        stateless modeled executors under a fixed-ratio policy.
        """
        from repro.serving.executors import ModeledExecutor
        from repro.serving.policies import FixedRatioPolicy

        if not self.columnar or not self._fifo or self.placer is not None:
            return False
        if s.pos != 0 or s.records or s.queue or s.dropped or s.migrated:
            return False
        if s.responses is not None or s.checkpoints or s.transfer_costs:
            return False
        if len(s.pend_arrivals) == 0 or not s.active:
            return False
        if s.request_objs is not None and s.store is None:
            return False
        model = s.store.single_model if s.store is not None else s.single_model
        if model is None:
            return False
        endpoint = self._endpoints.get(model)
        if endpoint is None:
            return False
        if type(endpoint.policy) is not FixedRatioPolicy:
            return False
        return all(
            type(endpoint.executors[server]) is ModeledExecutor
            for server in s.active
        )

    def _run_columnar_fast(self, s: _Session) -> None:
        """Drain the whole pending queue through the vectorized FIFO core.

        Precomputes one service-time table per active server (the modeled
        ``batch_latency`` is a pure function of the batch size for a fixed
        mode/ratio, so table lookup returns the identical floats the
        executor would), sweeps the sorted arrivals through
        :func:`repro.serving.core.run_fifo_columnar`, then reconstructs the
        session state — per-request latencies, a columnar batch ledger,
        server clocks — and bulk-ingests telemetry.  Bit-identical to
        stepping the object loop over the same session.
        """
        model = s.store.single_model if s.store is not None else s.single_model
        endpoint = self._endpoints[model]
        arrivals = s.pend_arrivals
        num_requests = len(arrivals)
        # A FixedRatioPolicy returns the same ratio for every context, and
        # ModeledExecutor never overrides it (BatchExecution.ratio is None).
        ratio = float(endpoint.policy.ratio)
        mode = endpoint.mode
        max_batch = self.batching.max_batch
        size_cap = min(int(max_batch), num_requests)
        tables: Dict[int, List[float]] = {}
        shared: Dict[int, List[float]] = {}
        for server in s.active:
            executor = endpoint.executors[server]
            table = shared.get(id(executor))
            if table is None:
                service_model = executor.service_model
                table = [0.0] + [
                    float(service_model.batch_latency(size, mode, ratio))
                    for size in range(1, size_cap + 1)
                ]
                shared[id(executor)] = table
            tables[server] = table
        run = run_fifo_columnar(
            arrivals,
            s.free_at,
            s.busy,
            s.active,
            tables,
            max_batch,
            self.batching.drop_after,
        )
        latencies = per_request_latencies(arrivals, run.seg_sizes, run.seg_finishes)
        # pend_slots is the identity map on an untouched session, so the
        # position axis IS the slot axis.
        s.latencies = latencies
        s.dropped = run.dropped
        s.records = BatchLedger(
            model, mode, ratio, run.starts, run.finishes, run.sizes,
            run.servers, run.queue_depths,
        )
        s.pos = num_requests
        if s.store is not None:
            status = s.store.status
            status[:num_requests] = SERVED
            for lo, hi in zip(run.drop_los.tolist(), run.drop_his.tolist()):
                status[lo:hi] = DROPPED
        if self.tracer is not None:
            # Bulk span ingestion mirrors the object loop's spans; the
            # position axis is the slot axis on an untouched session.
            self.tracer.ingest_columnar(
                run,
                arrivals,
                deadlines=(
                    (s.store.deadlines if s.store is not None else None)
                    if self.tracer.wants_deadlines
                    else None
                ),
            )
        if self.telemetry is None:
            return
        # Bulk telemetry ingestion: per-request finish times come from the
        # segment columns; positions where the finish is nan were dropped.
        finishes_per_req = (
            np.repeat(run.seg_finishes, run.seg_sizes)
            if len(run.seg_sizes)
            else np.zeros(0, dtype=np.float64)
        )
        if run.dropped:
            served_sel = ~np.isnan(finishes_per_req)
            served_latencies = latencies[served_sel]
        else:
            served_sel = None
            served_latencies = latencies
        deadline_flags = deadline_met = drop_misses = None
        deadlines = s.store.deadlines if s.store is not None else None
        if deadlines is not None:
            flags_all = ~np.isnan(deadlines)
            # nan on either side compares False: dropped requests never
            # count as met, exactly like the object path.
            met_all = finishes_per_req <= deadlines
            if served_sel is not None:
                deadline_flags = flags_all[served_sel]
                deadline_met = met_all[served_sel]
                cumulative = np.zeros(num_requests + 1, dtype=np.int64)
                np.cumsum(flags_all, out=cumulative[1:])
                drop_misses = cumulative[run.drop_his] - cumulative[run.drop_los]
            else:
                deadline_flags = flags_all
                deadline_met = met_all
        self.telemetry.ingest_columnar(
            ratio=ratio,
            starts=run.starts,
            finishes=run.finishes,
            sizes=run.sizes,
            servers=run.servers,
            queue_depths=run.queue_depths,
            latencies=served_latencies,
            deadline_flags=deadline_flags,
            deadline_met=deadline_met,
            drop_times=run.drop_times if run.dropped else None,
            drop_counts=(run.drop_his - run.drop_los) if run.dropped else None,
            drop_misses=drop_misses,
        )

    # ------------------------------------------------------------------
    # FIFO fast path (bit-identical to the seed loop at num_servers=1)
    # ------------------------------------------------------------------
    def _step_fifo(self, s: _Session) -> Optional[BatchRecord]:
        max_batch = self.batching.max_batch
        drop_after = self.batching.drop_after
        arrivals = s.pend_arrivals
        request_objs = s.request_objs

        while True:
            num_requests = len(arrivals)
            if s.pos >= num_requests:
                return None
            index = s.pos
            first_arrival = arrivals[index]
            if self.placer is None:
                # The seed dispatch rule, inlined (bit-identical fast path).
                server = min(s.active, key=s.free_at.__getitem__)
            else:
                head_model = (
                    s.single_model
                    if request_objs is None
                    else s.model_name(s.pend_slots[index])
                )
                # Size hint: arrivals by the *earliest possible* service
                # start (the earliest-free active clock), not by the head's
                # arrival — under backlog the batch really forms then, and
                # a head-arrival count (usually 1) would under-cost slow
                # servers by up to max_batch x.
                est_start = max(
                    min(s.free_at[server] for server in s.active),
                    float(first_arrival),
                )
                arrived = bisect.bisect_right(arrivals, est_start, lo=index) - index
                server = self._select_server(
                    s, float(first_arrival), head_model, num_requests - index, arrived
                )
            start = max(s.free_at[server], first_arrival)
            # All requests that have arrived by the time the server starts.
            end_index = bisect.bisect_right(arrivals, start, lo=index)

            if drop_after is not None:
                # Expired requests form a prefix of the arrived window
                # (arrivals are sorted); drop it *before* forming the batch
                # so drops never consume batch slots (backfill).  Restart
                # the dispatch loop afterwards: the head (and possibly its
                # model) changed, so the placer must re-decide.  Bit-
                # identical for the seed rule: drops imply the start was
                # free-clock-dominated, so the re-derived batch is the same.
                fresh = _expired_prefix_end(
                    arrivals, index, end_index, start, drop_after
                )
                if fresh > index:
                    self._drop(s, s.pend_slots[index:fresh], start)
                    s.pos = fresh
                    continue

            limit = min(end_index, index + max_batch)
            if limit == index:
                limit = index + 1  # serve at least the request that triggered us

            if request_objs is None:
                head_model = s.single_model
                batch_end = limit
            elif s.store is not None and s.store.single_model is not None:
                # Store-backed sessions are fixed at start(): single-model
                # stores can never see another model, so skip the walk.
                head_model = s.store.single_model
                batch_end = limit
            else:
                # Same-model batching: a batch is a FIFO run of consecutive
                # requests for one model (batches never mix models).
                head_model = s.model_name(s.pend_slots[index])
                batch_end = index + 1
                while (
                    batch_end < limit
                    and s.model_name(s.pend_slots[batch_end]) == head_model
                ):
                    batch_end += 1

            slots = s.pend_slots[index:batch_end]
            record = self._execute(
                s, server, start, head_model, slots, queue_depth=end_index - index
            )
            s.pos = batch_end
            return record

    # ------------------------------------------------------------------
    # Scheduled path (priority / EDF / custom disciplines)
    # ------------------------------------------------------------------
    def _step_scheduled(self, s: _Session) -> Optional[BatchRecord]:
        max_batch = self.batching.max_batch
        drop_after = self.batching.drop_after
        request_objs = s.request_objs
        scheduler = self.scheduler

        while True:
            if not s.queue and s.pos >= len(s.pend_arrivals):
                return None
            if s.queue:
                head_time = self._earliest_queued_arrival(s)
            else:
                head_time = float(s.pend_arrivals[s.pos])
            # Admission and expiry run against the earliest-free active
            # clock *before* placement: admitting can reorder the queue
            # head (EDF/priority) and expiry can remove it, and the placer
            # must see the head that will actually lead the batch.  With
            # ``placer=None`` the dispatched server IS the earliest-free
            # one, so this is exactly the seed arithmetic.
            start = max(
                min(s.free_at[server] for server in s.active), head_time
            )
            # Admit everything that has arrived by the batch start.  The
            # pend key — the arrival time for fresh requests (bit-identical
            # to the seed), the migration-ready key for requeued migrants —
            # is what queue ordering ties break on and what ``drop_after``
            # waiting is measured from, so a migrant's wait restarts at its
            # migration exactly as it does on the FIFO path.
            end_index = bisect.bisect_right(s.pend_arrivals, start, lo=s.pos)
            if end_index > s.pos:
                chunk_slots = s.pend_slots[s.pos:end_index]
                if s.store is not None:
                    # Vectorized key extraction over the columnar store —
                    # same key values as scheduler.key on the object views.
                    keys = store_keys(scheduler, s.store, chunk_slots)
                else:
                    keys = [
                        scheduler.key(request_objs[slot])
                        for slot in chunk_slots.tolist()
                    ]
                chunk_arrivals = s.pend_arrivals[s.pos:end_index].tolist()
                for key, arrival, slot in zip(
                    keys, chunk_arrivals, chunk_slots.tolist()
                ):
                    heapq.heappush(s.queue, (key, arrival, slot))
                    heapq.heappush(s.arrival_heap, (arrival, slot))
                    s.queued_slots.add(slot)
            s.pos = end_index

            # Expiry restarts the loop after dropping: the queue head (and
            # its model) may have changed, so placement must re-decide.
            # Bit-identical for the seed rule: every kept entry arrived by
            # ``start`` and none is expired, so the re-derived
            # start/admissions/batch are unchanged.
            if drop_after is not None and self._expire_queued(s, start, drop_after):
                continue

            # The queue head is now final: place the batch's server.  The
            # seed rule re-derives the earliest-free server (``start`` is
            # already its clock, bit-identical); a placer may pick a later-
            # free server, whose service then begins when that server frees
            # (admission stays anchored to the earliest-free clock, so a
            # batch never contains a request that has not arrived by its
            # service start).
            head_model = s.model_name(s.queue[0][2])
            if self.placer is None:
                server = min(s.active, key=s.free_at.__getitem__)
            else:
                pending = len(s.queue) + (len(s.pend_arrivals) - s.pos)
                server = self._select_server(
                    s, start, head_model, pending, len(s.queue)
                )
                placed_start = max(s.free_at[server], start)
                if placed_start > start and drop_after is not None:
                    # The placed server frees later than the earliest-free
                    # clock the expiry ran against: re-check against the
                    # real service start so drop_after means the same thing
                    # on every path (a request never waits beyond it).
                    if self._expire_queued(s, placed_start, drop_after):
                        continue
                start = placed_start

            # Pop same-model requests in scheduler order; requests of other
            # models encountered along the way go back on the heap.
            queue_depth = len(s.queue)
            batch_entries: List[Tuple[Tuple, float, int]] = []
            stash: List[Tuple[Tuple, float, int]] = []
            while s.queue and len(batch_entries) < max_batch:
                entry = heapq.heappop(s.queue)
                if s.model_name(entry[2]) == head_model:
                    batch_entries.append(entry)
                else:
                    stash.append(entry)
            for entry in stash:
                heapq.heappush(s.queue, entry)
            s.queued_slots.difference_update(entry[2] for entry in batch_entries)
            slots = np.asarray([entry[2] for entry in batch_entries], dtype=np.intp)
            return self._execute(s, server, start, head_model, slots, queue_depth)

    def _expire_queued(self, s: _Session, start: float, drop_after: float) -> bool:
        """Drop queued requests that waited beyond ``drop_after`` by ``start``.

        Returns True when anything was dropped (callers restart their
        dispatch loop: the queue head may have changed).  The earliest
        queued arrival answers in O(1) whether anything expired at all; the
        O(queue) filter runs only when something did.
        """
        if not s.queue:
            return False
        if not (start - self._earliest_queued_arrival(s) > drop_after):
            return False
        expired = [e for e in s.queue if start - e[1] > drop_after]
        kept = [e for e in s.queue if start - e[1] <= drop_after]
        heapq.heapify(kept)
        s.queue = kept
        s.queued_slots.difference_update(e[2] for e in expired)
        self._drop(s, np.asarray([e[2] for e in expired], dtype=np.intp), start)
        return True

    @staticmethod
    def _earliest_queued_arrival(s: _Session) -> float:
        """Earliest arrival among queued requests (queue must be non-empty).

        ``arrival_heap`` holds one entry per ever-queued slot; entries whose
        slot already left the queue are discarded lazily here, keeping the
        lookup amortized O(log queue) instead of a per-batch linear scan.
        """
        heap = s.arrival_heap
        while heap and heap[0][1] not in s.queued_slots:
            heapq.heappop(heap)
        return heap[0][0]

    # ------------------------------------------------------------------
    # Shared batch execution
    # ------------------------------------------------------------------
    def _execute(
        self,
        s: _Session,
        server: int,
        start: float,
        head_model: str,
        slots: np.ndarray,
        queue_depth: int,
    ) -> BatchRecord:
        endpoint = self._endpoints[head_model]
        batch_size = len(slots)
        context = PolicyContext(
            time=start,
            queue_depth=queue_depth,
            batch_size=batch_size,
            model=head_model,
            server=server,
            telemetry=self.telemetry,
            num_active=len(s.active),
        )
        ratio = float(endpoint.select(context))
        batch = Batch(
            model=head_model,
            start_time=start,
            size=batch_size,
            indices=slots,
            requests=(
                [s.request_objs[int(slot)] for slot in slots]
                if s.request_objs is not None
                else None
            ),
            server=server,
        )
        execution = endpoint.executors[server].execute(batch, endpoint.mode, ratio)
        service_time = float(execution.service_time)
        if s.checkpoints:
            # Partial-batch checkpointing: a batch executes its members'
            # remaining steps jointly, so the cohort pays its *largest*
            # residual demand (a single fresh member costs the full batch).
            # Consumed either way — re-running from scratch voids the saved
            # progress just as resuming does.
            residual = 0.0
            for slot in slots:
                residual = max(
                    residual, 1.0 - s.checkpoints.pop(int(slot), 0.0)
                )
            if residual < 1.0:
                service_time *= residual
                if s.transfer_costs:
                    # Checkpoint restores happen in parallel across the
                    # cohort (each migrant streams its own state), so the
                    # batch stalls for the slowest transfer — the same
                    # largest-member convention as the residual above.  A
                    # full re-execution (residual == 1.0) restores nothing
                    # and pays nothing.
                    service_time += max(
                        s.transfer_costs.pop(int(slot), 0.0) for slot in slots
                    )
        if s.transfer_costs:
            for slot in slots:
                s.transfer_costs.pop(int(slot), None)
        # Record the ratio the batch actually ran at, which executors may
        # override (mode pinning); metrics built on batch_ratios must
        # reflect executed configurations, not requested ones.
        if execution.ratio is not None:
            ratio = float(execution.ratio)
        finish = start + service_time
        s.latencies[slots] = finish - s.slot_arrivals[slots]
        if s.store is not None:
            s.store.status[slots] = SERVED
        record = BatchRecord(
            head_model, start, finish, batch_size, ratio, endpoint.mode, server,
            queue_depth,
        )
        s.records.append(record)
        # FIFO-path slots are views into pend_slots; store a copy so a
        # superseded pending array (streaming submit, migration requeue) is
        # not pinned alive for the whole session by its batch views.
        s.record_slots.append(slots.copy() if slots.base is not None else slots)
        if self.telemetry is not None:
            deadline_total, deadline_met = self._deadline_counts(s, slots, finish)
            self.telemetry.record_batch(
                record,
                queue_depth=queue_depth,
                latencies=finish - s.slot_arrivals[slots],
                deadline_total=deadline_total,
                deadline_met=deadline_met,
            )
        if self.tracer is not None:
            self.tracer.on_batch(
                record,
                slots,
                s.slot_arrivals[slots],
                deadlines=(
                    self._slot_deadlines(s, slots)
                    if self.tracer.wants_deadlines
                    else None
                ),
            )
        if s.responses is not None:
            outputs = execution.outputs
            for position, slot in enumerate(slots):
                s.responses[int(slot)] = self._response(
                    s, int(slot), head_model, start, finish, batch_size, ratio,
                    mode=endpoint.mode, server=server,
                    output=outputs[position] if outputs is not None else None,
                )
        s.busy[server] += service_time
        s.free_at[server] = finish
        return record

    def _drop(self, s: _Session, slots: np.ndarray, start: float) -> None:
        """Expire ``slots`` (waited beyond ``drop_after``) at time ``start``."""
        s.dropped += len(slots)
        s.latencies[slots] = np.nan
        if s.store is not None:
            s.store.status[slots] = DROPPED
        if s.checkpoints or s.transfer_costs:
            for slot in slots:
                s.checkpoints.pop(int(slot), None)
                s.transfer_costs.pop(int(slot), None)
        if self.telemetry is not None:
            misses = 0
            if s.store is not None:
                if s.store.deadlines is not None:
                    misses = int(np.count_nonzero(
                        ~np.isnan(s.store.deadlines[np.asarray(slots, dtype=np.int64)])
                    ))
            elif s.request_objs is not None:
                misses = sum(
                    1 for slot in slots
                    if s.request_objs[int(slot)].deadline is not None
                )
            self.telemetry.record_drops(start, len(slots), deadline_misses=misses)
        if self.tracer is not None:
            self.tracer.on_drop(slots, s.slot_arrivals[slots], start)
        if s.responses is not None:
            for slot in slots:
                slot = int(slot)
                model = (
                    s.model_name(slot)
                    if s.request_objs is not None or s.store is not None
                    else s.single_model
                )
                s.responses[slot] = self._response(
                    s, slot, model, start, float("nan"), 0, float("nan"),
                    mode=self._endpoints[model].mode, dropped=True,
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _finalize(self, s: _Session) -> EngineResult:
        duration = s.duration
        if duration is None:
            # Makespan: from time zero until the last accelerator went idle
            # (or the last arrival, if everything after it was dropped).
            last_arrival = float(s.slot_arrivals[-1]) if len(s.slot_arrivals) else 0.0
            duration = max(max(s.free_at), last_arrival)
        valid = s.latencies[~np.isnan(s.latencies)]
        if s.store is not None:
            # Columnar sessions answer both questions from the store's
            # columns without materializing Request views.
            request_models = s.store.model_name_list()
            single_model = s.store.single_model
        elif s.request_objs is not None:
            request_models = [request.model for request in s.request_objs]
            models_present = {request.model for request in s.request_objs}
            single_model = models_present.pop() if len(models_present) == 1 else None
        else:
            request_models = None
            single_model = s.single_model
        return EngineResult(
            latencies=valid,
            request_latencies=s.latencies,
            request_models=request_models,
            batch_records=s.records,
            dropped=s.dropped,
            duration=duration,
            busy_time=float(sum(s.busy)),
            responses=s.responses,
            _single_model=single_model,
            num_servers=self.num_servers,
            server_busy_times=list(s.busy),
            migrated=s.migrated,
        )

    def _response(
        self,
        s: _Session,
        slot: int,
        model: str,
        start: float,
        finish: float,
        batch_size: int,
        ratio: float,
        mode: str = "",
        dropped: bool = False,
        output: Any = None,
        server: int = 0,
    ) -> Response:
        request = s.request_objs[slot] if s.request_objs is not None else None
        request_id = slot
        priority = 0
        deadline = None
        if request is not None:
            if request.request_id >= 0:
                request_id = request.request_id
            priority = request.priority
            deadline = request.deadline
        return Response(
            request_id=request_id,
            model=model,
            arrival_time=float(s.slot_arrivals[slot]),
            start_time=start,
            finish_time=finish,
            batch_size=batch_size,
            ratio=ratio,
            mode=mode,
            dropped=dropped,
            output=output,
            priority=priority,
            deadline=deadline,
            server=server,
            migrations=s.migrations.get(slot, 0),
        )

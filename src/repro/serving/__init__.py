"""Inference-serving simulation: queueing, batching and ratio adaptation.

Used for the end-to-end latency experiments of Figures 8 and 9: requests
arrive according to a trace (Poisson or fluctuating), are batched FIFO onto a
single accelerator whose per-batch service time comes from the hardware
latency models, and the resulting response-time distribution is reported.
The adaptive experiments additionally run the FlexiQ ratio controller, which
raises or lowers the 4-bit ratio as the observed request rate changes.
"""

from repro.serving.simulator import (
    BatchingConfig,
    ServingResult,
    ServingSimulator,
    ServiceTimeModel,
)
from repro.serving.metrics import latency_percentiles, summarize_latencies
from repro.serving.adaptation import AdaptiveServingSimulator, AdaptiveServingResult

__all__ = [
    "AdaptiveServingResult",
    "AdaptiveServingSimulator",
    "BatchingConfig",
    "ServiceTimeModel",
    "ServingResult",
    "ServingSimulator",
    "latency_percentiles",
    "summarize_latencies",
]

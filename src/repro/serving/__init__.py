"""Inference serving: one engine for modeled *and* real batched execution.

The package is organised around :mod:`repro.serving.engine`:

* :class:`~repro.serving.engine.ServingEngine` owns admission, batching
  across ``num_servers`` shared accelerators (each with its own clock and,
  optionally, its own executor), per-batch 4-bit-ratio selection and
  metrics, with :class:`~repro.serving.engine.Request` /
  :class:`~repro.serving.engine.Response` dataclasses as the
  request/response surface and a multi-model registry (one endpoint per
  model, batches never mix models).  Admission is incremental:
  ``start()`` / ``submit()`` / ``step()`` / ``finish()`` stream requests
  through a live engine, and ``run()`` is a thin batch driver over them.
* **Columnar core** (:mod:`repro.serving.core`): the vectorized,
  event-driven hot path — :class:`~repro.serving.core.RequestStore` keeps
  request metadata as columns (``Request`` objects become lazy views),
  :class:`~repro.serving.core.EventCalendar` orders the control plane's
  typed events in O(log n), and the FIFO fast sweep +
  streaming-percentile digests let a million-request day clear in
  seconds, bit-identical to the object loop (see the gated
  ``cluster_day`` benchmark).
* **Schedulers** (:mod:`repro.serving.schedulers`) order the queue: FIFO
  (the default, bit-identical to the seed simulator), strict priority, or
  earliest-deadline-first for SLO-aware serving, driven by per-request
  ``priority``/``deadline`` fields.
* **Executors** (:mod:`repro.serving.executors`) decide what a batch costs:
  :class:`~repro.serving.executors.ModeledExecutor` uses the analytic
  :class:`~repro.serving.simulator.ServiceTimeModel` latency tables, while
  :class:`~repro.serving.executors.RuntimeExecutor` runs real forwards
  through a prepared :class:`~repro.core.runtime.FlexiQModel` and measures
  wall-clock batch latencies — switching the 4-bit ratio per batch is an
  O(1) variable update thanks to the prepared-kernel cache.
* **Policies** (:mod:`repro.serving.policies`) pick the ratio per batch:
  fixed, schedule-driven, round-robin, queue-depth-aware (via the
  :class:`~repro.serving.policies.PolicyContext` signature), or the paper's
  :class:`~repro.core.controller.AdaptiveRatioController` adapted through
  :class:`~repro.serving.policies.AdaptiveRatioPolicy`.

* **Resilience** (:mod:`repro.serving.resilience`): a fault-injection plane
  (:class:`~repro.serving.resilience.FaultSchedule` of crash / slowdown /
  recover :class:`~repro.serving.resilience.FaultEvent`\\ s applied at
  window boundaries, per-server health in :class:`~repro.serving.cluster.
  ServerSpec`, slowdowns through :class:`~repro.serving.resilience.
  DegradableExecutor`), request **preemption & migration** (
  :meth:`~repro.serving.engine.ServingEngine.preempt_server` rewinds a
  failed server's unfinished batches; a :class:`~repro.serving.resilience.
  MigrationPolicy` — requeue-at-head / redistribute-by-placer /
  drop-if-past-deadline — requeues the victims through the scheduler with
  explicit migration latency, counted in :attr:`~repro.serving.engine.
  Response.migrations`), and **predictive placement**
  (:class:`~repro.serving.placement.PredictivePlacer` forecasting per-server
  capacity and congestion from telemetry windows instead of instantaneous
  free clocks).  On top of it sit **failure domains** (zone/rack identity on
  specs, :class:`~repro.serving.cluster.ClusterTopology`, domain-scoped
  faults, :class:`~repro.serving.placement.SpreadPlacer`), **warm spares**
  (:class:`~repro.serving.resilience.WarmSparePool` promoted on crashes
  without provisioning lag), **predictive fault-aware autoscaling**
  (:class:`~repro.serving.cluster.PredictiveFaultAutoscaler`) and
  **partial-batch checkpointing**
  (:class:`~repro.serving.resilience.StepCheckpoint` — migrants resume with
  residual demand).

* **Cluster control plane** (:mod:`repro.serving.placement`,
  :mod:`repro.serving.telemetry`, :mod:`repro.serving.cluster`): pluggable
  server **placement** (free-clock / least-outstanding-work /
  weighted-by-speed / model-affinity) replacing the hard-coded argmin
  dispatch, **heterogeneous server profiles** (:class:`~repro.serving.
  cluster.ServerSpec` built from the GPU/NPU hardware models via
  :func:`~repro.serving.cluster.gpu_server` / :func:`~repro.serving.cluster.
  npu_server`), a windowed per-server **telemetry bus** policies consume
  through :class:`~repro.serving.policies.PolicyContext` (enabling
  :class:`~repro.serving.policies.PerServerAdaptiveRatioPolicy`), and
  **elastic autoscaling** (:class:`~repro.serving.cluster.ClusterEngine`
  with queue-depth / latency-SLO autoscalers applying hysteresis decisions
  at window boundaries, recorded as scale events).

The Figure 8 experiment (latency vs Poisson request rate) is a
``ModeledExecutor`` + ``FixedRatioPolicy`` run; Figure 9 (fluctuating load
with per-window adaptation) is ``ModeledExecutor`` + ``AdaptiveRatioPolicy``.
:class:`~repro.serving.simulator.ServingSimulator` and
:class:`~repro.serving.adaptation.AdaptiveServingSimulator` remain as thin,
bit-identical compatibility wrappers running exactly those configurations.
"""

from repro.serving.core import (
    Event,
    EventCalendar,
    LazyRequests,
    P2Quantile,
    RequestStore,
    ReservoirSample,
)
from repro.serving.engine import (
    Batch,
    BatchExecution,
    BatchRecord,
    BatchingConfig,
    EngineResult,
    Executor,
    RatioPolicy,
    Request,
    Response,
    ServingEngine,
    requests_from_trace,
)
from repro.serving.cluster import (
    Autoscaler,
    ClusterEngine,
    ClusterResult,
    ClusterTopology,
    PredictiveFaultAutoscaler,
    QueueDepthAutoscaler,
    ServerSpec,
    SloLatencyAutoscaler,
    gpu_server,
    npu_server,
)
from repro.serving.executors import ModeledExecutor, RuntimeExecutor
from repro.serving.generation import (
    AdmissionPolicy,
    FcfsAdmission,
    GenerationBackend,
    GenerationPreemption,
    GenerationResponse,
    GenerationResult,
    IterationRecord,
    IterationScheduler,
    ModeledGenerationBackend,
    PrefillPriorityAdmission,
    RuntimeGenerationBackend,
    SequenceState,
    TokenBudgetAdmission,
    run_to_completion,
)
from repro.serving.placement import (
    FreeClockPlacer,
    LeastOutstandingWorkPlacer,
    ModelAffinityPlacer,
    Placer,
    PlacementContext,
    PredictivePlacer,
    SpreadPlacer,
    WeightedSpeedPlacer,
)
from repro.serving.resilience import (
    CheckpointPolicy,
    DegradableExecutor,
    DropExpiredMigration,
    FaultEvent,
    FaultSchedule,
    Migrant,
    MigrationPolicy,
    Preemption,
    RedistributeMigration,
    RequeueAtHeadMigration,
    StepCheckpoint,
    WarmSparePool,
)
from repro.serving.policies import (
    AdaptiveRatioPolicy,
    DecodePressureRatioPolicy,
    FixedRatioPolicy,
    GenerationStepContext,
    PerServerAdaptiveRatioPolicy,
    PolicyContext,
    QueueDepthRatioPolicy,
    RatioSchedulePolicy,
    RoundRobinRatioPolicy,
    policy_selector,
)
from repro.serving.telemetry import (
    ClusterWindowStats,
    ScaleEvent,
    ServerWindowStats,
    TelemetryBus,
)
from repro.serving.schedulers import (
    EdfScheduler,
    FifoScheduler,
    PriorityScheduler,
    Scheduler,
    admission_key,
)
from repro.serving.simulator import (
    ServiceTimeModel,
    ServingResult,
    ServingSimulator,
)
from repro.serving.metrics import (
    attainment_within,
    latency_percentiles,
    slo_attainment,
    streaming_percentile,
    streaming_summary,
    summarize_latencies,
    summarize_migrations,
)
from repro.serving.adaptation import AdaptiveServingSimulator, AdaptiveServingResult

__all__ = [
    "AdaptiveRatioPolicy",
    "AdaptiveServingResult",
    "AdaptiveServingSimulator",
    "AdmissionPolicy",
    "Autoscaler",
    "Batch",
    "BatchExecution",
    "BatchRecord",
    "BatchingConfig",
    "CheckpointPolicy",
    "ClusterEngine",
    "ClusterResult",
    "ClusterTopology",
    "ClusterWindowStats",
    "DecodePressureRatioPolicy",
    "DegradableExecutor",
    "DropExpiredMigration",
    "EdfScheduler",
    "EngineResult",
    "Event",
    "EventCalendar",
    "Executor",
    "FaultEvent",
    "FaultSchedule",
    "FcfsAdmission",
    "FifoScheduler",
    "FixedRatioPolicy",
    "FreeClockPlacer",
    "GenerationBackend",
    "GenerationPreemption",
    "GenerationResponse",
    "GenerationResult",
    "GenerationStepContext",
    "IterationRecord",
    "IterationScheduler",
    "LazyRequests",
    "LeastOutstandingWorkPlacer",
    "Migrant",
    "MigrationPolicy",
    "ModelAffinityPlacer",
    "ModeledExecutor",
    "ModeledGenerationBackend",
    "P2Quantile",
    "PerServerAdaptiveRatioPolicy",
    "Placer",
    "PlacementContext",
    "PolicyContext",
    "Preemption",
    "PredictiveFaultAutoscaler",
    "PredictivePlacer",
    "PrefillPriorityAdmission",
    "PriorityScheduler",
    "QueueDepthAutoscaler",
    "QueueDepthRatioPolicy",
    "RatioPolicy",
    "RatioSchedulePolicy",
    "RedistributeMigration",
    "Request",
    "RequestStore",
    "RequeueAtHeadMigration",
    "ReservoirSample",
    "Response",
    "RoundRobinRatioPolicy",
    "RuntimeExecutor",
    "RuntimeGenerationBackend",
    "ScaleEvent",
    "Scheduler",
    "SequenceState",
    "ServerSpec",
    "ServerWindowStats",
    "ServiceTimeModel",
    "ServingEngine",
    "ServingResult",
    "ServingSimulator",
    "SloLatencyAutoscaler",
    "SpreadPlacer",
    "StepCheckpoint",
    "TelemetryBus",
    "TokenBudgetAdmission",
    "WarmSparePool",
    "WeightedSpeedPlacer",
    "admission_key",
    "attainment_within",
    "gpu_server",
    "latency_percentiles",
    "npu_server",
    "policy_selector",
    "requests_from_trace",
    "run_to_completion",
    "slo_attainment",
    "streaming_percentile",
    "streaming_summary",
    "summarize_latencies",
    "summarize_migrations",
]

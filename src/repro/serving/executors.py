"""Executors: pluggable batch-execution backends for the serving engine.

Two implementations of the :class:`~repro.serving.engine.Executor` protocol:

* :class:`ModeledExecutor` — analytic service times from a
  :class:`~repro.serving.simulator.ServiceTimeModel`; reproduces the seed
  simulator (and thus the Figure 8/9 experiments) bit-identically.
* :class:`RuntimeExecutor` — real forwards through a prepared
  :class:`~repro.core.runtime.FlexiQModel`, with measured wall-clock batch
  latencies.  Thanks to the prepared-kernel cache (PR 1), the per-batch
  ``set_ratio()`` the engine's policy drives is an O(1) variable update:
  serving heterogeneous-ratio traffic performs no weight requantization,
  re-permutation or plane lowering (asserted by the serving tests via
  :attr:`repro.core.prepared.PreparedKernel.build_count`).

With multi-server engines (``ServingEngine(num_servers=K)``) an endpoint
registers either one shared executor or a list of K executors, one per
server.  :class:`ModeledExecutor` is stateless and safe to share;
:class:`RuntimeExecutor` holds a runtime whose ratio state mutates per
batch, so a scaled-out deployment registers one per server — K independent
prepared-kernel caches, exactly like K real accelerators each holding their
own copy of the weights.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.serving.engine import Batch, BatchExecution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import FlexiQModel
    from repro.serving.simulator import ServiceTimeModel


class ModeledExecutor:
    """Batch service times from the analytic hardware latency models."""

    def __init__(self, service_model: "ServiceTimeModel") -> None:
        self.service_model = service_model

    def execute(self, batch: Batch, mode: str, ratio: float) -> BatchExecution:
        return BatchExecution(
            service_time=self.service_model.batch_latency(batch.size, mode, ratio)
        )


class RuntimeExecutor:
    """Real batched forwards through a prepared FlexiQ runtime.

    Request payloads are stacked into one input batch; requests without a
    payload use ``default_input`` (a single sample, e.g. one ``(C, H, W)``
    image), so modeled-style traces can also drive real execution.  The
    reported service time is the measured wall-clock duration of the batch
    forward; the engine advances its simulated clock by it, which makes
    queueing behave as if the accelerator really took that long.

    ``mode`` is honoured the way the fixed deployments of Figure 8 define
    it: ``"int8"`` forces ratio 0.0 and ``"int4"`` forces ratio 1.0, while
    ``"flexiq"`` runs at the policy-selected ratio.
    """

    def __init__(
        self,
        runtime: "FlexiQModel",
        default_input: Optional[np.ndarray] = None,
    ) -> None:
        self.runtime = runtime
        self.default_input = (
            np.asarray(default_input, dtype=np.float32)
            if default_input is not None
            else None
        )
        self.batches_executed = 0
        self.requests_executed = 0
        self.ratio_switches = 0
        # Generation accounting (execute_step): iteration forwards run and
        # tokens they emitted (one per live sequence per step).
        self.steps_executed = 0
        self.tokens_emitted = 0

    def _batch_input(self, batch: Batch) -> np.ndarray:
        samples = []
        for position in range(batch.size):
            request = batch.requests[position] if batch.requests is not None else None
            payload = request.payload if request is not None else None
            if payload is None:
                payload = self.default_input
            if payload is None:
                raise ValueError(
                    "request has no payload and RuntimeExecutor has no default_input"
                )
            samples.append(np.asarray(payload, dtype=np.float32))
        return np.stack(samples, axis=0)

    def execute(self, batch: Batch, mode: str, ratio: float) -> BatchExecution:
        if mode == "int8":
            ratio = 0.0
        elif mode == "int4":
            ratio = 1.0
        x = self._batch_input(batch)
        switches_before = self.runtime.ratio_switches
        output, seconds = self.runtime.forward_batch(x, ratio=ratio)
        self.ratio_switches += self.runtime.ratio_switches - switches_before
        self.batches_executed += 1
        self.requests_executed += batch.size
        outputs = [output.data[i] for i in range(batch.size)]
        # Report the executed ratio: mode pinning above may have overridden
        # the policy's selection, and batch records must reflect reality.
        return BatchExecution(service_time=seconds, outputs=outputs, ratio=ratio)

    def execute_step(self, batch: Batch, mode: str, ratio: float) -> BatchExecution:
        """Execute one generation *iteration* (prefill chunk or decode step).

        The step-wise hook the iteration-level
        :class:`~repro.serving.generation.IterationScheduler` drives: the
        same stacked-forward contract as :meth:`execute`, but counted under
        ``steps_executed`` so a generation run's iteration count is
        observable separately from one-shot batches.  Because the prepared
        runtime's ``set_ratio`` is O(1), a *per-step* ratio change — the
        mid-sequence precision switch — still performs no kernel rebuild.
        """
        execution = self.execute(batch, mode, ratio)
        self.batches_executed -= 1
        self.requests_executed -= batch.size
        self.steps_executed += 1
        self.tokens_emitted += batch.size
        return execution

"""Discrete-event serving simulator with FIFO batching.

The simulated system matches the setup behind Figure 8: an open-loop request
stream hits a single accelerator; whenever the accelerator is idle it takes
up to ``max_batch`` queued requests and serves them as one batch whose
duration comes from a :class:`ServiceTimeModel` (built on the analytic GPU or
NPU latency models).  The response time of a request is queueing delay plus
the service time of the batch it rode in.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.traces import RequestTrace
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.workloads import LayerOp, model_ops
from repro.serving.metrics import summarize_latencies


@dataclass
class BatchingConfig:
    """Batching policy of the serving system."""

    max_batch: int = 64
    # A request admitted while the server is busy waits in an unbounded FIFO
    # queue; ``drop_after`` (seconds) optionally drops requests that waited
    # longer than this (disabled by default, as in the paper).
    drop_after: Optional[float] = None


class ServiceTimeModel:
    """Maps (mode, 4-bit ratio, batch size) to a batch service time.

    Latency is precomputed from the hardware model at a set of anchor batch
    sizes and linearly interpolated in between, so the discrete-event loop
    stays cheap even for millions of requests.
    """

    def __init__(
        self,
        model_name: str = "vit_base",
        gpu: str = "a6000",
        anchor_batches: Sequence[int] = (1, 8, 16, 32, 64, 128),
        latency_model: Optional[GpuLatencyModel] = None,
    ) -> None:
        self.model_name = model_name
        self.latency_model = latency_model or GpuLatencyModel(gpu)
        self.anchor_batches = sorted(set(int(b) for b in anchor_batches))
        self._cache: Dict[str, np.ndarray] = {}

    def _key(self, mode: str, ratio: float) -> str:
        return f"{mode}:{ratio:.3f}"

    def _anchor_latencies(self, mode: str, ratio: float) -> np.ndarray:
        key = self._key(mode, ratio)
        if key not in self._cache:
            values = []
            for batch in self.anchor_batches:
                ops = model_ops(self.model_name, batch)
                values.append(
                    self.latency_model.model_latency(ops, mode, four_bit_ratio=ratio)
                )
            self._cache[key] = np.asarray(values)
        return self._cache[key]

    def batch_latency(self, batch_size: int, mode: str, ratio: float = 0.0) -> float:
        """Service time (seconds) for one batch."""
        if batch_size <= 0:
            return 0.0
        anchors = self._anchor_latencies(mode, ratio)
        return float(np.interp(batch_size, self.anchor_batches, anchors))


@dataclass
class ServingResult:
    """Outcome of one serving simulation."""

    latencies: np.ndarray          # per-request response times (seconds)
    batch_sizes: List[int]
    dropped: int
    duration: float
    mode: str
    ratio: float

    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return float(np.percentile(self.latencies, 50)) if self.latencies.size else float("nan")

    @property
    def p90_latency(self) -> float:
        return float(np.percentile(self.latencies, 90)) if self.latencies.size else float("nan")

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return 0.0
        return len(self.latencies) / self.duration


class ServingSimulator:
    """FIFO-batching discrete-event simulator for a single accelerator."""

    def __init__(
        self,
        service_model: ServiceTimeModel,
        batching: BatchingConfig = BatchingConfig(),
    ) -> None:
        self.service_model = service_model
        self.batching = batching

    def run(
        self,
        trace: RequestTrace,
        mode: str,
        ratio: float = 0.0,
        ratio_schedule: Optional[Callable[[float], float]] = None,
    ) -> ServingResult:
        """Simulate the trace and return per-request latencies.

        ``ratio_schedule`` optionally maps simulation time to a 4-bit ratio
        (used by the adaptive experiments); when provided it overrides the
        fixed ``ratio``.
        """
        arrivals = np.sort(np.asarray(trace.arrival_times, dtype=np.float64))
        num_requests = len(arrivals)
        latencies = np.zeros(num_requests, dtype=np.float64)
        served = np.zeros(num_requests, dtype=bool)
        batch_sizes: List[int] = []
        dropped = 0

        server_free_at = 0.0
        index = 0
        max_batch = self.batching.max_batch
        drop_after = self.batching.drop_after

        while index < num_requests:
            first_arrival = arrivals[index]
            start = max(server_free_at, first_arrival)
            # All requests that have arrived by the time the server starts.
            end_index = bisect.bisect_right(arrivals, start, lo=index)
            batch_end = min(end_index, index + max_batch)
            if batch_end == index:
                batch_end = index + 1  # serve at least the request that triggered us

            if drop_after is not None:
                window = np.arange(index, batch_end)
                expired = (start - arrivals[window]) > drop_after
                if expired.any():
                    expired_indices = window[expired]
                    dropped += int(expired.sum())
                    served[expired_indices] = True
                    latencies[expired_indices] = np.nan
                batch_indices = window[~expired]
                if batch_indices.size == 0:
                    index = batch_end
                    continue
            else:
                batch_indices = np.arange(index, batch_end)

            batch_size = len(batch_indices)
            current_ratio = ratio_schedule(start) if ratio_schedule else ratio
            service_time = self.service_model.batch_latency(batch_size, mode, current_ratio)
            finish = start + service_time
            latencies[batch_indices] = finish - arrivals[batch_indices]
            served[batch_indices] = True
            batch_sizes.append(batch_size)
            server_free_at = finish
            index = batch_end

        valid = latencies[~np.isnan(latencies)]
        return ServingResult(
            latencies=valid,
            batch_sizes=batch_sizes,
            dropped=dropped,
            duration=trace.duration,
            mode=mode,
            ratio=ratio,
        )

    def latency_vs_rate(
        self,
        rates: Sequence[float],
        mode: str,
        ratio: float = 0.0,
        duration: float = 10.0,
        seed: int = 0,
    ) -> Dict[float, ServingResult]:
        """Sweep Poisson request rates (the Figure 8 experiment)."""
        from repro.data.traces import PoissonTrace

        results: Dict[float, ServingResult] = {}
        for rate in rates:
            trace = PoissonTrace(rate, duration, seed=seed).generate()
            results[float(rate)] = self.run(trace, mode, ratio=ratio)
        return results

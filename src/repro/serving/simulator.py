"""Modeled FIFO-batching serving (Figure 8) on top of the serving engine.

This module keeps the seed's public surface — :class:`ServiceTimeModel`,
:class:`BatchingConfig`, :class:`ServingResult`, :class:`ServingSimulator` —
but the discrete-event loop now lives in :class:`~repro.serving.engine.
ServingEngine`; :class:`ServingSimulator` is a thin compatibility wrapper
that registers a :class:`~repro.serving.executors.ModeledExecutor` and the
matching ratio policy.  The wrapper is bit-identical to the seed simulator:
same admission, batch-cap, drop and float arithmetic (asserted by the
equivalence tests in ``tests/test_serving_engine.py``).

The simulated system matches the setup behind Figure 8: an open-loop request
stream hits a single accelerator; whenever the accelerator is idle it takes
up to ``max_batch`` queued requests and serves them as one batch whose
duration comes from a :class:`ServiceTimeModel` (built on the analytic GPU or
NPU latency models).  The response time of a request is queueing delay plus
the service time of the batch it rode in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.traces import RequestTrace
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.workloads import LayerOp, model_ops
from repro.serving.engine import BatchingConfig, ServingEngine
from repro.serving.executors import ModeledExecutor
from repro.serving.metrics import latency_percentiles, summarize_latencies
from repro.serving.policies import FixedRatioPolicy, RatioSchedulePolicy


class ServiceTimeModel:
    """Maps (mode, 4-bit ratio, batch size) to a batch service time.

    Latency is precomputed from the hardware model at a set of anchor batch
    sizes and linearly interpolated in between, so the discrete-event loop
    stays cheap even for millions of requests.  Batch sizes beyond the
    largest anchor are computed exactly from the hardware model and cached
    on demand (``np.interp`` would silently clamp them to the last anchor's
    latency, under-reporting service time for ``max_batch`` above the
    anchor range).

    For autoregressive workloads the model also exposes a prefill-vs-decode
    cost split (:meth:`prefill_latency` / :meth:`decode_latency`) built on
    the same anchors: a prefill processes a whole prompt in parallel, so its
    cost scales with prompt tokens (``prefill_tokens_per_sample`` tokens
    cost one batch-1 forward); a decode step processes one token per live
    sequence, so its cost scales with the batch *width* and is a
    ``decode_token_fraction`` of the equally-wide one-shot forward
    (compute per token, defaulting to ``1 / prefill_tokens_per_sample``).
    One-shot classification runs never touch either method.
    """

    def __init__(
        self,
        model_name: str = "vit_base",
        gpu: str = "a6000",
        anchor_batches: Sequence[int] = (1, 8, 16, 32, 64, 128),
        latency_model: Optional[GpuLatencyModel] = None,
        prefill_tokens_per_sample: int = 64,
        decode_token_fraction: Optional[float] = None,
    ) -> None:
        self.model_name = model_name
        self.latency_model = latency_model or GpuLatencyModel(gpu)
        self.anchor_batches = sorted(set(int(b) for b in anchor_batches))
        if prefill_tokens_per_sample < 1:
            raise ValueError("prefill_tokens_per_sample must be >= 1")
        self.prefill_tokens_per_sample = int(prefill_tokens_per_sample)
        if decode_token_fraction is None:
            decode_token_fraction = 1.0 / self.prefill_tokens_per_sample
        if decode_token_fraction <= 0:
            raise ValueError("decode_token_fraction must be > 0")
        self.decode_token_fraction = float(decode_token_fraction)
        self._cache: Dict[str, np.ndarray] = {}
        self._exact: Dict[Tuple[str, int], float] = {}

    def _key(self, mode: str, ratio: float) -> str:
        # repr() round-trips the float exactly; rounding (the seed used
        # ``f"{ratio:.3f}"``) made distinct ratios within 5e-4 collide in
        # the cache and return each other's latencies.
        return f"{mode}:{float(ratio)!r}"

    def _anchor_latencies(self, mode: str, ratio: float) -> np.ndarray:
        key = self._key(mode, ratio)
        if key not in self._cache:
            values = []
            for batch in self.anchor_batches:
                ops = model_ops(self.model_name, batch)
                values.append(
                    self.latency_model.model_latency(ops, mode, four_bit_ratio=ratio)
                )
            self._cache[key] = np.asarray(values)
        return self._cache[key]

    def _exact_latency(self, batch_size: int, mode: str, ratio: float) -> float:
        """Exact (non-interpolated) hardware-model latency, cached on demand."""
        key = (self._key(mode, ratio), batch_size)
        if key not in self._exact:
            ops = model_ops(self.model_name, batch_size)
            self._exact[key] = float(
                self.latency_model.model_latency(ops, mode, four_bit_ratio=ratio)
            )
        return self._exact[key]

    def batch_latency(self, batch_size: int, mode: str, ratio: float = 0.0) -> float:
        """Service time (seconds) for one batch."""
        if batch_size <= 0:
            return 0.0
        if batch_size > self.anchor_batches[-1]:
            return self._exact_latency(int(batch_size), mode, ratio)
        anchors = self._anchor_latencies(mode, ratio)
        return float(np.interp(batch_size, self.anchor_batches, anchors))

    def prefill_latency(
        self, prompt_tokens: int, mode: str, ratio: float = 0.0
    ) -> float:
        """Seconds to prefill one ``prompt_tokens``-token prompt.

        The prompt is processed in parallel like a batch of
        ``ceil(tokens / prefill_tokens_per_sample)`` one-shot samples —
        compute scales with prompt length, with the hardware model's own
        sub-linear batching efficiency applied.  Zero-length prompts (pure
        decode continuations) cost nothing.
        """
        if prompt_tokens <= 0:
            return 0.0
        equivalent = -(-int(prompt_tokens) // self.prefill_tokens_per_sample)
        return self.batch_latency(equivalent, mode, ratio)

    def decode_latency(self, width: int, mode: str, ratio: float = 0.0) -> float:
        """Seconds for one decode step over ``width`` live sequences.

        Each sequence contributes one token, so the step is a width-sized
        forward at per-token compute: ``decode_token_fraction`` of the
        equally-wide one-shot batch latency.  An empty step costs nothing.
        """
        if width <= 0:
            return 0.0
        return self.batch_latency(int(width), mode, ratio) * self.decode_token_fraction


@dataclass
class ServingResult:
    """Outcome of one serving simulation.

    ``ratio`` reports the 4-bit ratio the run *executed*: the fixed ratio
    for fixed-ratio runs, or the batch-weighted mean of the per-batch
    executed ratios when a ``ratio_schedule`` drove the run (``nan`` if no
    batch was served).  The seed reported the fixed ``ratio`` argument even
    when a schedule overrode it for every batch.
    """

    latencies: np.ndarray          # per-request response times (seconds)
    batch_sizes: List[int]
    dropped: int
    duration: float
    mode: str
    ratio: float

    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return latency_percentiles(self.latencies, (50,))["p50"]

    @property
    def p90_latency(self) -> float:
        return latency_percentiles(self.latencies, (90,))["p90"]

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return 0.0
        return len(self.latencies) / self.duration


class ServingSimulator:
    """FIFO-batching discrete-event simulator for a single accelerator.

    Compatibility wrapper over :class:`~repro.serving.engine.ServingEngine`:
    each :meth:`run` registers the service model behind a
    :class:`ModeledExecutor` with a fixed-ratio or schedule policy and
    returns the engine outcome as a classic :class:`ServingResult`.
    """

    def __init__(
        self,
        service_model: ServiceTimeModel,
        batching: Optional[BatchingConfig] = None,
        num_servers: int = 1,
    ) -> None:
        self.service_model = service_model
        # A fresh config per instance: a shared mutable default would leak
        # max_batch/drop_after edits across simulators.
        self.batching = batching if batching is not None else BatchingConfig()
        self.num_servers = int(num_servers)

    def run(
        self,
        trace: RequestTrace,
        mode: str,
        ratio: float = 0.0,
        ratio_schedule: Optional[Callable[[float], float]] = None,
    ) -> ServingResult:
        """Simulate the trace and return per-request latencies.

        ``ratio_schedule`` optionally maps simulation time to a 4-bit ratio
        (used by the adaptive experiments); when provided it overrides the
        fixed ``ratio`` and the result reports the batch-weighted mean of
        the ratios that actually executed.
        """
        if ratio_schedule is not None:
            policy = RatioSchedulePolicy(ratio_schedule)
        else:
            policy = FixedRatioPolicy(ratio)
        engine = ServingEngine(batching=self.batching, num_servers=self.num_servers)
        engine.register(
            self.service_model.model_name,
            ModeledExecutor(self.service_model),
            policy=policy,
            mode=mode,
        )
        outcome = engine.run(trace=trace)
        if ratio_schedule is not None:
            ratio = outcome.mean_executed_ratio
        return ServingResult(
            latencies=outcome.latencies,
            batch_sizes=outcome.batch_sizes,
            dropped=outcome.dropped,
            duration=trace.duration,
            mode=mode,
            ratio=ratio,
        )

    def latency_vs_rate(
        self,
        rates: Sequence[float],
        mode: str,
        ratio: float = 0.0,
        duration: float = 10.0,
        seed: int = 0,
    ) -> Dict[float, ServingResult]:
        """Sweep Poisson request rates (the Figure 8 experiment)."""
        from repro.data.traces import PoissonTrace

        results: Dict[float, ServingResult] = {}
        for rate in rates:
            trace = PoissonTrace(rate, duration, seed=seed).generate()
            results[float(rate)] = self.run(trace, mode, ratio=ratio)
        return results

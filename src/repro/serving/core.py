"""Columnar event-driven serving core: arrays and events behind the object API.

The serving stack of PRs 2-7 carries one Python ``Request`` object per
request through a window-stepped loop — fine at 10^4 requests, hopeless at a
realistic diurnal day (>= 10^6).  This module is the data-layout refactor:
the hot state lives in parallel numpy columns, the control flow advances
through a heap of typed events, and the object API survives as thin lazily
materialized views.

Event taxonomy
==============
The :class:`EventCalendar` is an O(log n) priority queue of :class:`Event`
records ordered by ``(time, push sequence)``.  Five event kinds cover the
serving control plane:

``ARRIVAL_CHUNK``
    A contiguous run of sorted arrivals becomes admissible.  The columnar
    FIFO core never materializes these as heap entries — the sorted arrival
    column *is* the arrival schedule, and ``bisect`` finds each chunk — but
    schedulers that interleave admission with other events push them.
``BATCH_COMPLETION``
    A dispatched batch finishes and frees its server; iteration-level
    generation uses the same kind for iteration boundaries.
``WINDOW_BOUNDARY``
    A telemetry control window closes: the cluster control plane applies
    pending faults, consults the autoscaler, and schedules the next
    boundary (see :meth:`repro.serving.cluster.ClusterEngine.run`).
``FAULT``
    An injected fault (crash / slowdown / recovery) from a
    :class:`~repro.serving.resilience.FaultSchedule` strikes; it is applied
    at the first window boundary at or after its strike time.
``SCALE``
    An elasticity decision (server activation / deactivation) takes effect,
    e.g. a recovered server re-admitted at the next boundary.

Views vs. copies
================
* :class:`RequestStore` owns the columns (one contiguous ``float64``/
  integer array per field).  ``store.arrivals`` *is* the engine's arrival
  array — no copy is taken on ``start()``.
* :class:`LazyRequests` is a zero-copy ``Sequence[Request]`` view over a
  store; indexing materializes a single transient :class:`Request`.
* :class:`BatchLedger` is a columnar ``Sequence[BatchRecord]``: the batch
  arrays are owned, each ``ledger[i]`` materializes one record on demand.
* Per-request latencies are computed once, vectorized, as
  ``repeat(segment_finish, segment_size) - arrivals`` — a fresh array, not
  a view, because the session owns it past the run.
* Telemetry ingestion groups per-request latencies into per-window chunks
  (fresh arrays); everything else aggregates into scalar accumulators.

The unbreakable invariant: a K=1 FIFO run through the columnar core is
**bit-identical** to the seed simulator — same admission boundaries, same
batch formation, same IEEE-754 arithmetic (``start + service``,
``finish - arrival``), same drop predicate (``start - arrival >
drop_after`` re-applied exactly at the searchsorted boundary).
"""

from __future__ import annotations

import bisect
import heapq
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ARRIVAL_CHUNK",
    "BATCH_COMPLETION",
    "WINDOW_BOUNDARY",
    "FAULT",
    "SCALE",
    "Event",
    "EventCalendar",
    "RequestStore",
    "LazyRequests",
    "BatchLedger",
    "ColumnarFifoRun",
    "run_fifo_columnar",
    "per_request_latencies",
    "P2Quantile",
    "ReservoirSample",
]


# ----------------------------------------------------------------------
# Event calendar
# ----------------------------------------------------------------------
ARRIVAL_CHUNK = "arrival_chunk"
BATCH_COMPLETION = "batch_completion"
WINDOW_BOUNDARY = "window_boundary"
FAULT = "fault"
SCALE = "scale"

# Request status column values.
PENDING = 0
SERVED = 1
DROPPED = 2


@dataclass(frozen=True)
class Event:
    """One typed point on the simulation timeline."""

    time: float
    kind: str
    payload: Any = None


class EventCalendar:
    """Min-heap of events ordered by ``(time, push sequence)``.

    Push/pop are O(log n); peeking the next due time is O(1).  Ties break
    by push order, so a producer that pushes an already-sorted schedule
    (e.g. a :class:`~repro.serving.resilience.FaultSchedule`) gets its
    events back in exactly that order.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (float(event.time), self._seq, event))
        self._seq += 1

    def schedule(self, time: float, kind: str, payload: Any = None) -> None:
        """Convenience: build and push an :class:`Event`."""
        self.push(Event(time=float(time), kind=kind, payload=payload))

    def peek(self) -> Optional[Event]:
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> float:
        """Time of the next event (``inf`` when the calendar is empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[2]

    def pop_due(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time``, in calendar order."""
        due: List[Event] = []
        while self._heap and self._heap[0][0] <= time:
            due.append(self.pop())
        return due

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ----------------------------------------------------------------------
# Columnar request storage
# ----------------------------------------------------------------------
def _roundrobin_column(values: Sequence, n: int, dtype) -> np.ndarray:
    """``values`` tiled round-robin to length ``n`` (the trace convention)."""
    pool = np.asarray(values, dtype=dtype)
    if len(pool) >= n:
        return pool[:n].copy()
    reps = -(-n // len(pool))  # ceil
    return np.tile(pool, reps)[:n]


class RequestStore:
    """Columnar storage for a cohort of requests (structure-of-arrays).

    One contiguous array per field; :class:`Request` objects exist only as
    transient views built by :meth:`request`.  ``arrivals`` must be sorted
    ascending (both constructors guarantee it) — the engine's admission
    arithmetic bisects it directly, zero-copy.

    ``deadlines`` uses ``nan`` as the "no deadline" sentinel so the column
    stays a dense ``float64`` array; :meth:`request` converts back to
    ``None`` at the view boundary.  ``status`` tracks request outcomes
    (``PENDING`` / ``SERVED`` / ``DROPPED``) and is maintained by the
    columnar fast core; the legacy object loop leaves it ``PENDING``.
    """

    __slots__ = (
        "arrivals",
        "model_ids",
        "model_names",
        "request_ids",
        "priorities",
        "deadlines",
        "prefill_tokens",
        "max_new_tokens",
        "status",
        "payload_pool",
        "payload_list",
    )

    def __init__(
        self,
        arrivals: np.ndarray,
        model_names: Sequence[str],
        model_ids: Optional[np.ndarray] = None,
        request_ids: Optional[np.ndarray] = None,
        priorities: Optional[np.ndarray] = None,
        deadlines: Optional[np.ndarray] = None,
        prefill_tokens: Optional[np.ndarray] = None,
        max_new_tokens: Optional[np.ndarray] = None,
        payload_pool: Optional[Sequence] = None,
        payload_list: Optional[Sequence] = None,
    ) -> None:
        self.arrivals = np.asarray(arrivals, dtype=np.float64)
        n = len(self.arrivals)
        self.model_names = list(model_names)
        if not self.model_names:
            raise ValueError("model_names must name at least one model")
        self.model_ids = (
            np.zeros(n, dtype=np.int32)
            if model_ids is None
            else np.asarray(model_ids, dtype=np.int32)
        )
        self.request_ids = (
            np.arange(n, dtype=np.int64)
            if request_ids is None
            else np.asarray(request_ids, dtype=np.int64)
        )
        self.priorities = (
            None if priorities is None else np.asarray(priorities, dtype=np.int64)
        )
        self.deadlines = (
            None if deadlines is None else np.asarray(deadlines, dtype=np.float64)
        )
        self.prefill_tokens = (
            None
            if prefill_tokens is None
            else np.asarray(prefill_tokens, dtype=np.int64)
        )
        self.max_new_tokens = (
            None
            if max_new_tokens is None
            else np.asarray(max_new_tokens, dtype=np.int64)
        )
        self.status = np.full(n, PENDING, dtype=np.int8)
        # Payloads: a round-robin pool (trace convention, request i gets
        # pool[i % len(pool)]) or a full per-request list — never both.
        self.payload_pool = list(payload_pool) if payload_pool is not None else None
        self.payload_list = list(payload_list) if payload_list is not None else None

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace,
        model: str = "default",
        payloads: Optional[Sequence] = None,
        priorities: Optional[Sequence[int]] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        prefill_tokens: Optional[Sequence[int]] = None,
        max_new_tokens: Optional[Sequence[int]] = None,
    ) -> "RequestStore":
        """Columnar equivalent of :func:`repro.serving.engine.requests_from_trace`.

        Same semantics, zero ``Request`` objects: metadata pools attach
        round-robin in arrival order, ``deadlines`` entries are relative
        SLOs (the column stores ``arrival + slo``, elementwise — the exact
        IEEE sum the eager constructor computes per request).
        """
        if payloads is not None and len(payloads) == 0:
            raise ValueError("payloads must be non-empty (or None for no payloads)")
        if priorities is not None and len(priorities) == 0:
            raise ValueError("priorities must be non-empty (or None)")
        if deadlines is not None and len(deadlines) == 0:
            raise ValueError("deadlines must be non-empty (or None)")
        if prefill_tokens is not None and len(prefill_tokens) == 0:
            raise ValueError("prefill_tokens must be non-empty (or None)")
        if max_new_tokens is not None and len(max_new_tokens) == 0:
            raise ValueError("max_new_tokens must be non-empty (or None)")
        if hasattr(trace, "sorted_arrivals"):
            arrivals = trace.sorted_arrivals()
        else:
            arrivals = np.sort(np.asarray(trace.arrival_times, dtype=np.float64))
        n = len(arrivals)
        deadline_col = None
        if deadlines is not None:
            slo = _roundrobin_column(
                [np.nan if value is None else float(value) for value in deadlines],
                n,
                np.float64,
            )
            deadline_col = arrivals + slo
        return cls(
            arrivals,
            model_names=[model],
            priorities=(
                _roundrobin_column(priorities, n, np.int64)
                if priorities is not None
                else None
            ),
            deadlines=deadline_col,
            prefill_tokens=(
                _roundrobin_column(prefill_tokens, n, np.int64)
                if prefill_tokens is not None
                else None
            ),
            max_new_tokens=(
                _roundrobin_column(max_new_tokens, n, np.int64)
                if max_new_tokens is not None
                else None
            ),
            payload_pool=payloads,
        )

    @classmethod
    def from_requests(cls, requests: Sequence) -> "RequestStore":
        """Columnarize explicit :class:`Request` objects (arrival-sorted)."""
        order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
        ordered = [requests[i] for i in order]
        names: List[str] = []
        name_ids: Dict[str, int] = {}
        model_ids = np.empty(len(ordered), dtype=np.int32)
        for i, request in enumerate(ordered):
            model_id = name_ids.get(request.model)
            if model_id is None:
                model_id = name_ids[request.model] = len(names)
                names.append(request.model)
            model_ids[i] = model_id
        payload_list = None
        if any(request.payload is not None for request in ordered):
            payload_list = [request.payload for request in ordered]
        return cls(
            np.asarray([r.arrival_time for r in ordered], dtype=np.float64),
            model_names=names,
            model_ids=model_ids,
            request_ids=np.asarray(
                [r.request_id for r in ordered], dtype=np.int64
            ),
            priorities=np.asarray([r.priority for r in ordered], dtype=np.int64),
            deadlines=np.asarray(
                [np.nan if r.deadline is None else float(r.deadline) for r in ordered],
                dtype=np.float64,
            ),
            prefill_tokens=np.asarray(
                [r.prefill_tokens for r in ordered], dtype=np.int64
            ),
            max_new_tokens=np.asarray(
                [r.max_new_tokens for r in ordered], dtype=np.int64
            ),
            payload_list=payload_list,
        )

    # -- column access --------------------------------------------------
    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def single_model(self) -> Optional[str]:
        """The one model every request targets, or ``None`` if mixed."""
        if len(self.model_names) == 1:
            return self.model_names[0]
        return None

    def model_name(self, i: int) -> str:
        return self.model_names[int(self.model_ids[i])]

    def model_mask(self, name: str) -> np.ndarray:
        """Boolean mask of requests targeting ``name`` (vectorized)."""
        try:
            model_id = self.model_names.index(name)
        except ValueError:
            return np.zeros(len(self), dtype=bool)
        if len(self.model_names) == 1:
            return np.ones(len(self), dtype=bool)
        return self.model_ids == model_id

    def model_name_list(self) -> List[str]:
        """Per-request model names (materializes one list of shared strings)."""
        return [self.model_names[model_id] for model_id in self.model_ids.tolist()]

    def deadline_flags(self) -> Optional[np.ndarray]:
        """Boolean mask of deadline-carrying requests (None when no column)."""
        if self.deadlines is None:
            return None
        return ~np.isnan(self.deadlines)

    def payload(self, i: int):
        if self.payload_pool is not None:
            return self.payload_pool[i % len(self.payload_pool)]
        if self.payload_list is not None:
            return self.payload_list[i]
        return None

    # -- view materialization -------------------------------------------
    def request(self, i: int):
        """Materialize the :class:`~repro.serving.engine.Request` view of row ``i``."""
        from repro.serving.engine import Request

        i = int(i)
        deadline = None
        if self.deadlines is not None:
            value = self.deadlines[i]
            if not np.isnan(value):
                deadline = float(value)
        return Request(
            arrival_time=float(self.arrivals[i]),
            model=self.model_names[int(self.model_ids[i])],
            request_id=int(self.request_ids[i]),
            payload=self.payload(i),
            priority=int(self.priorities[i]) if self.priorities is not None else 0,
            deadline=deadline,
            prefill_tokens=(
                int(self.prefill_tokens[i]) if self.prefill_tokens is not None else 0
            ),
            max_new_tokens=(
                int(self.max_new_tokens[i]) if self.max_new_tokens is not None else 0
            ),
        )


class LazyRequests(_SequenceABC):
    """Zero-copy ``Sequence[Request]`` view over a :class:`RequestStore`.

    Rows are arrival-sorted (the store invariant), so the engine skips the
    admission re-sort and aliases ``store.arrivals`` directly.  Indexing
    materializes one transient :class:`~repro.serving.engine.Request`;
    nothing holds the views alive, so peak RSS stays O(columns) instead of
    O(requests x object overhead).
    """

    __slots__ = ("store",)

    def __init__(self, store: RequestStore) -> None:
        self.store = store

    def __len__(self) -> int:
        return len(self.store)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.store.request(i) for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self.store.request(i)


# ----------------------------------------------------------------------
# Columnar batch ledger
# ----------------------------------------------------------------------
class BatchLedger(_SequenceABC):
    """Columnar ``Sequence[BatchRecord]`` (single model/mode/ratio cohort).

    The columnar FIFO core emits one row per batch into parallel arrays;
    record objects materialize lazily on indexing, so a million-batch run
    stores five arrays instead of a million dataclass instances.
    """

    __slots__ = ("model", "mode", "ratio", "starts", "finishes", "sizes",
                 "servers", "queue_depths")

    def __init__(
        self,
        model: str,
        mode: str,
        ratio: float,
        starts: np.ndarray,
        finishes: np.ndarray,
        sizes: np.ndarray,
        servers: np.ndarray,
        queue_depths: np.ndarray,
    ) -> None:
        self.model = model
        self.mode = mode
        self.ratio = float(ratio)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.finishes = np.asarray(finishes, dtype=np.float64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.servers = np.asarray(servers, dtype=np.int64)
        self.queue_depths = np.asarray(queue_depths, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.starts)

    def __getitem__(self, index):
        from repro.serving.engine import BatchRecord

        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return BatchRecord(
            model=self.model,
            start=float(self.starts[i]),
            finish=float(self.finishes[i]),
            size=int(self.sizes[i]),
            ratio=self.ratio,
            mode=self.mode,
            server=int(self.servers[i]),
            queue_depth=int(self.queue_depths[i]),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, BatchLedger):
            return (
                self.model == other.model
                and self.mode == other.mode
                and self.ratio == other.ratio
                and np.array_equal(self.starts, other.starts)
                and np.array_equal(self.finishes, other.finishes)
                and np.array_equal(self.sizes, other.sizes)
                and np.array_equal(self.servers, other.servers)
                and np.array_equal(self.queue_depths, other.queue_depths)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                self[i] == other[i] for i in range(len(self))
            )
        return NotImplemented

    __hash__ = None  # mutable container semantics, like list

    def append(self, record) -> None:
        """Grow the ledger by one (already-materialized) record.

        Rare slow path — only control-plane code appends after a fast run
        (the hot loop never does); O(n) per call, so callers batching many
        appends should rebuild the arrays instead.
        """
        if record.model != self.model or record.mode != self.mode or (
            float(record.ratio) != self.ratio
        ):
            raise ValueError("BatchLedger holds a single model/mode/ratio cohort")
        self.starts = np.append(self.starts, float(record.start))
        self.finishes = np.append(self.finishes, float(record.finish))
        self.sizes = np.append(self.sizes, int(record.size))
        self.servers = np.append(self.servers, int(record.server))
        self.queue_depths = np.append(self.queue_depths, int(record.queue_depth))


# ----------------------------------------------------------------------
# Columnar FIFO fast core
# ----------------------------------------------------------------------
@dataclass
class ColumnarFifoRun:
    """Everything a columnar FIFO sweep produced, still in columns.

    ``seg_sizes``/``seg_finishes`` partition the arrival order into
    consecutive segments — one per batch (finish time) and one per drop
    cohort (``nan``) — so per-request latencies reconstruct vectorized via
    :func:`per_request_latencies` without a per-request loop.
    """

    starts: np.ndarray
    finishes: np.ndarray
    sizes: np.ndarray
    servers: np.ndarray
    queue_depths: np.ndarray
    seg_sizes: np.ndarray
    seg_finishes: np.ndarray
    drop_times: np.ndarray          # one entry per drop cohort
    drop_los: np.ndarray            # cohort position range [lo, hi) ...
    drop_his: np.ndarray            # ... in arrival order
    dropped: int


def run_fifo_columnar(
    arrivals: np.ndarray,
    free_at: List[float],
    busy: List[float],
    active: Sequence[int],
    latency_tables: Dict[int, Sequence[float]],
    max_batch: int,
    drop_after: Optional[float],
) -> ColumnarFifoRun:
    """Sweep sorted ``arrivals`` through the FIFO dispatch rule, columnar.

    Bit-identical to the object loop in
    :meth:`repro.serving.engine.ServingEngine._step_fifo` with the seed
    argmin-free-clock rule: same ``start = max(free, arrival)``, same
    ``bisect_right`` admission boundary, same expired-prefix drop predicate,
    same at-least-one batch rule, and ``finish = start + service`` with the
    *same* service times (``latency_tables[server][size]`` must be the
    executor's ``batch_latency`` evaluated per size).  ``free_at``/``busy``
    are mutated in place, exactly as the object loop leaves them.

    The loop runs over a plain Python float list (numpy scalar extraction
    per element is what makes the object loop slow); all per-request work
    is deferred to the vectorized epilogue.
    """
    arr = arrivals.tolist()
    n = len(arr)
    pos = 0
    starts: List[float] = []
    finishes: List[float] = []
    sizes: List[int] = []
    servers: List[int] = []
    depths: List[int] = []
    drop_times: List[float] = []
    drop_los: List[int] = []
    drop_his: List[int] = []
    dropped = 0

    active_list = sorted(active)
    single = len(active_list) == 1
    only = active_list[0] if single else -1
    table = latency_tables[only] if single else None
    # Free-clock heap: (free_at, server) pops the earliest-free server,
    # ties by lowest id — exactly ``min(active, key=free_at.__getitem__)``
    # over the ascending active list, in O(log K) with no key calls.
    clock_heap = [(free_at[server], server) for server in active_list]
    heapq.heapify(clock_heap)
    replace = heapq.heapreplace
    push_right = bisect.bisect_right
    push_left = bisect.bisect_left
    starts_append = starts.append
    finishes_append = finishes.append
    sizes_append = sizes.append
    servers_append = servers.append
    depths_append = depths.append

    while pos < n:
        first_arrival = arr[pos]
        if single:
            server = only
            free = free_at[only]
        else:
            free, server = clock_heap[0]
        start = free if free >= first_arrival else first_arrival
        # Galloping admission boundary: most batches admit only a few
        # requests, so bracket [pos, hi) by doubling steps before the
        # bisect — O(log(backlog)) instead of O(log n) per batch, with the
        # identical boundary (bisect_right over the same sorted floats).
        step = 8
        lo = pos
        hi = pos + step
        while hi < n and arr[hi] <= start:
            lo = hi
            step += step
            hi = pos + step
        end_index = push_right(arr, start, lo, hi if hi < n else n)

        if drop_after is not None:
            # Expired prefix: searchsorted boundary + exact-predicate walk
            # (the _expired_prefix_end arithmetic, on the float list).
            cut = start - drop_after
            fresh = push_left(arr, cut, pos, end_index)
            while fresh > pos and not (start - arr[fresh - 1] > drop_after):
                fresh -= 1
            while fresh < end_index and (start - arr[fresh]) > drop_after:
                fresh += 1
            if fresh > pos:
                dropped += fresh - pos
                drop_times.append(start)
                drop_los.append(pos)
                drop_his.append(fresh)
                pos = fresh
                continue  # head changed: re-derive server and start

        limit = pos + max_batch
        if end_index < limit:
            limit = end_index
        if limit == pos:
            limit = pos + 1  # serve at least the request that triggered us
        size = limit - pos
        service = table[size] if single else latency_tables[server][size]
        finish = start + service

        starts_append(start)
        finishes_append(finish)
        sizes_append(size)
        servers_append(server)
        depths_append(end_index - pos)
        busy[server] += service
        free_at[server] = finish
        if not single:
            replace(clock_heap, (finish, server))
        pos = limit

    sizes_col = np.asarray(sizes, dtype=np.int64)
    finishes_col = np.asarray(finishes, dtype=np.float64)
    drop_lo_col = np.asarray(drop_los, dtype=np.int64)
    drop_hi_col = np.asarray(drop_his, dtype=np.int64)
    if len(drop_lo_col) == 0:
        # No drop cohorts: the segment partition IS the batch sequence.
        seg_sizes = sizes_col
        seg_finishes = finishes_col
    elif len(sizes_col) == 0:
        seg_sizes = drop_hi_col - drop_lo_col
        seg_finishes = np.full(len(drop_lo_col), np.nan)
    else:
        # Reconstruct the pos-ordered segment interleave (one segment per
        # batch, one nan segment per drop cohort) from the absolute arrival
        # positions each covers: batch k's first position is the
        # ``cumsum``-th surviving (non-dropped) position, a drop cohort's
        # is its recorded ``lo``.  All first-positions are distinct, so a
        # plain merge sort of the two runs restores loop order.
        served_mask = np.ones(n, dtype=bool)
        for lo, hi in zip(drop_los, drop_his):
            served_mask[lo:hi] = False
        served_positions = np.flatnonzero(served_mask)
        offsets = np.concatenate(([0], np.cumsum(sizes_col)[:-1]))
        batch_first = served_positions[offsets]
        order = np.argsort(
            np.concatenate([batch_first, drop_lo_col]), kind="stable"
        )
        seg_sizes = np.concatenate([sizes_col, drop_hi_col - drop_lo_col])[order]
        seg_finishes = np.concatenate(
            [finishes_col, np.full(len(drop_lo_col), np.nan)]
        )[order]

    return ColumnarFifoRun(
        starts=np.asarray(starts, dtype=np.float64),
        finishes=finishes_col,
        sizes=sizes_col,
        servers=np.asarray(servers, dtype=np.int64),
        queue_depths=np.asarray(depths, dtype=np.int64),
        seg_sizes=seg_sizes,
        seg_finishes=seg_finishes,
        drop_times=np.asarray(drop_times, dtype=np.float64),
        drop_los=drop_lo_col,
        drop_his=drop_hi_col,
        dropped=dropped,
    )


def per_request_latencies(
    arrivals: np.ndarray, seg_sizes: np.ndarray, seg_finishes: np.ndarray
) -> np.ndarray:
    """Per-request latencies from segment columns, vectorized.

    ``repeat(finish, size) - arrival`` performs the identical elementwise
    IEEE subtraction the object loop's ``finish - slot_arrivals[slots]``
    does per batch; drop segments carry ``nan`` finishes, which propagate
    to the dropped requests exactly like the object path's ``nan`` store.
    """
    if len(seg_sizes) == 0:
        return np.zeros(len(arrivals), dtype=np.float64)
    return np.repeat(seg_finishes, seg_sizes) - arrivals


# ----------------------------------------------------------------------
# Streaming percentile estimators
# ----------------------------------------------------------------------
class P2Quantile:
    """Jain & Chlamtac's P-squared streaming quantile estimator.

    Tracks one quantile in O(1) memory (five markers) and O(1) per
    observation — the telemetry-side alternative to buffering a window's
    raw latency list.  Exact for the first five observations; afterwards
    the parabolic marker update gives a few-percent estimate on smooth
    distributions.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired",
                 "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = float(q)
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        q = self.q
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if self._heights:
            self._update(value)
            return
        bisect.insort(self._initial, value)
        if len(self._initial) == 5:
            self._heights = list(self._initial)
            self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
            q = self.q
            self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def _update(self, x: float) -> None:
        h = self._heights
        n = self._positions
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        elif x < h[1]:
            k = 0
        elif x < h[2]:
            k = 1
        elif x < h[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        desired = self._desired
        increments = self._increments
        for i in range(5):
            desired[i] += increments[i]
        for i in (1, 2, 3):
            delta = desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 0.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return float("nan")
        return float(
            np.percentile(np.asarray(self._initial, dtype=np.float64), self.q * 100.0)
        )


class ReservoirSample:
    """Fixed-capacity uniform reservoir (Vitter's algorithm R), vectorized.

    Any-percentile queries over an unbounded stream in O(capacity) memory;
    deterministic given the seed, so telemetry digests are reproducible
    run to run.
    """

    __slots__ = ("capacity", "_rng", "_values", "_seen")

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._values = np.empty(self.capacity, dtype=np.float64)
        self._seen = 0

    def __len__(self) -> int:
        return self._seen

    def add(self, value: float) -> None:
        self.extend(np.asarray([value], dtype=np.float64))

    def extend(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        cap = self.capacity
        seen = self._seen
        fill = min(max(cap - seen, 0), arr.size)
        if fill:
            self._values[seen:seen + fill] = arr[:fill]
            seen += fill
        rest = arr[fill:]
        if rest.size:
            # Element at global index m replaces a uniform slot in [0, m]
            # when that slot lands inside the reservoir.
            highs = np.arange(seen + 1, seen + rest.size + 1, dtype=np.int64)
            slots = self._rng.integers(0, highs)
            hits = np.nonzero(slots < cap)[0]
            for i in hits.tolist():  # later hits overwrite earlier, in order
                self._values[slots[i]] = rest[i]
            seen += int(rest.size)
        self._seen = seen

    @property
    def values(self) -> np.ndarray:
        """The current sample (a copy of the filled prefix)."""
        return self._values[: min(self._seen, self.capacity)].copy()

    def percentile(self, percentile: float) -> float:
        filled = self._values[: min(self._seen, self.capacity)]
        if filled.size == 0:
            return float("nan")
        return float(np.percentile(filled, percentile))

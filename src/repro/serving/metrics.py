"""Latency metrics for serving experiments."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def latency_percentiles(
    latencies: Sequence[float], percentiles: Sequence[float] = (50, 90, 99)
) -> Dict[str, float]:
    """Return the requested percentiles of a latency sample (seconds)."""
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        return {f"p{int(p)}": float("nan") for p in percentiles}
    return {f"p{int(p)}": float(np.percentile(values, p)) for p in percentiles}


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    """Median/p90/p99/mean/max summary of a latency sample (seconds)."""
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        return {key: float("nan") for key in ("median", "p90", "p99", "mean", "max", "count")}
    return {
        "median": float(np.percentile(values, 50)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(values.mean()),
        "max": float(values.max()),
        "count": float(values.size),
    }

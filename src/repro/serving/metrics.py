"""Latency metrics for serving experiments."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def _percentile_label(percentile: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p99.9"``.

    The seed formatted labels with ``int(p)``, which collapsed fractional
    percentiles onto their integer neighbours (``p99.9`` silently became —
    and collided with — ``"p99"``).
    """
    return f"p{percentile:g}"


def latency_percentiles(
    latencies: Sequence[float], percentiles: Sequence[float] = (50, 90, 99)
) -> Dict[str, float]:
    """Return the requested percentiles of a latency sample (seconds)."""
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        return {_percentile_label(p): float("nan") for p in percentiles}
    return {
        _percentile_label(p): float(np.percentile(values, p)) for p in percentiles
    }


def latency_percentile(latencies: Sequence[float], percentile: float) -> float:
    """One percentile of a latency sample (``nan`` for an empty sample).

    The single-value companion of :func:`latency_percentiles`, shared by
    the cluster-layer stats objects so the label scheme lives here only.
    """
    return latency_percentiles(latencies, (percentile,))[
        _percentile_label(percentile)
    ]


def streaming_percentile(sample, percentile: float) -> float:
    """One percentile from either an exact sample or a streaming digest.

    Accepts a latency array/sequence (delegates to
    :func:`latency_percentile`) or a streaming estimator from
    :mod:`repro.serving.core` — anything with a ``percentile(p)`` method
    (:class:`~repro.serving.core.ReservoirSample`) or a single-quantile
    ``value`` (:class:`~repro.serving.core.P2Quantile`, which answers only
    the quantile it tracks and raises on any other).  The telemetry layer
    stores digests instead of raw latencies when run at
    ``latency_digest="reservoir"`` scale; this helper lets report code
    treat both representations uniformly.
    """
    estimator = getattr(sample, "percentile", None)
    if callable(estimator):
        # Canonical empty-input behaviour, shared with the array path and
        # summarize_latencies: an empty digest answers nan, not an error.
        return float(estimator(percentile))
    tracked = getattr(sample, "q", None)
    if tracked is not None and hasattr(sample, "value"):
        if abs(tracked * 100.0 - float(percentile)) > 1e-9:
            raise ValueError(
                f"P2 digest tracks q={tracked:g} "
                f"(p{tracked * 100:g}), not p{percentile:g}"
            )
        return float(sample.value)
    return latency_percentile(sample, percentile)


def summarize_latencies(latencies) -> Dict[str, float]:
    """Median/p90/p99/mean/max summary of a latency sample (seconds).

    Accepts the same representations as :func:`streaming_percentile` — a
    raw array/sequence or a multi-quantile streaming digest
    (:class:`~repro.serving.core.ReservoirSample`, exposing the retained
    sample through ``values``) — and both agree on the edge cases: an
    empty input of either representation reports ``nan`` order statistics
    with a well-defined ``count`` of ``0.0`` (the seed reported ``count:
    nan``, poisoning downstream arithmetic that summed counts across
    models or windows).  For a digest, ``count`` is the number of values
    *observed* (``len(digest)``), which at overflow exceeds the retained
    sample the order statistics are estimated from — the same convention
    the telemetry layer uses for windowed counts.  A single-quantile
    digest (:class:`~repro.serving.core.P2Quantile`) cannot produce a
    full summary and raises ``TypeError``; use ``streaming_percentile``
    for the one quantile it tracks.
    """
    if hasattr(latencies, "q") and hasattr(latencies, "value"):
        raise TypeError(
            "summarize_latencies needs a full sample or a multi-quantile "
            "digest; a P2Quantile tracks a single quantile — use "
            "streaming_percentile(digest, p) instead"
        )
    observed = None
    if hasattr(latencies, "percentile") and hasattr(latencies, "values"):
        observed = float(len(latencies))
        latencies = latencies.values
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        summary = {
            key: float("nan") for key in ("median", "p90", "p99", "mean", "max")
        }
        summary["count"] = 0.0
        return summary
    return {
        "median": float(np.percentile(values, 50)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(values.mean()),
        "max": float(values.max()),
        "count": float(values.size) if observed is None else observed,
    }


def attainment_within(latencies: Sequence[float], slo_seconds: float) -> float:
    """Fraction of requests whose response time met a latency SLO.

    The latency-SLO twin of :func:`slo_attainment` (which scores absolute
    per-request deadlines): here every request shares one response-time
    budget.  ``nan`` entries mark dropped requests and count as misses —
    they were admitted and not served in time.  Returns ``nan`` for an
    empty sample.  Used by the cluster control plane for windowed and
    whole-run SLO reporting.
    """
    values = np.asarray(latencies, dtype=np.float64)
    if values.size == 0:
        return float("nan")
    return np.count_nonzero(values <= float(slo_seconds)) / values.size


def summarize_migrations(responses) -> Dict[str, float]:
    """Migration accounting over a run's recorded responses.

    ``responses`` is an iterable of :class:`~repro.serving.engine.Response`
    objects (``None`` entries — unserved slots — are skipped).  Counts the
    requests that were preempted off a failing/deactivated server at least
    once (``migrated_requests``), the total number of moves (``moves``, >=
    ``migrated_requests`` since a request can migrate repeatedly), and how
    the migrants ended: re-served (``served_after_migration``) or dropped
    after the move (``dropped_after_migration``).  All values are floats
    for symmetry with the other summaries.  ``None`` (a run without recorded
    responses) and the empty list both summarize to all-zeros.
    """
    if responses is None:
        responses = ()
    moved = [r for r in responses if r is not None and r.migrations > 0]
    return {
        "migrated_requests": float(len(moved)),
        "moves": float(sum(r.migrations for r in moved)),
        "max_moves": float(max((r.migrations for r in moved), default=0)),
        "served_after_migration": float(
            sum(1 for r in moved if not r.dropped)
        ),
        "dropped_after_migration": float(sum(1 for r in moved if r.dropped)),
    }


def streaming_summary(
    token_times: Sequence[Sequence[float]],
    arrivals: Sequence[float],
    duration: Optional[float] = None,
    percentiles: Sequence[float] = (50, 99),
) -> Dict[str, float]:
    """Per-token streaming metrics over generated-token timestamps.

    ``token_times`` holds one ascending timestamp list per request (the
    emission time of each generated token, the first being the prefill's);
    ``arrivals`` the matching arrival times.  Requests with no tokens
    (dropped, or still queued) contribute nothing to the latency samples
    but stay in ``requests``.  Reported:

    * ``ttft_p*`` — time to first token (first timestamp minus arrival);
    * ``inter_token_p*`` — gaps between consecutive tokens of the same
      request, pooled across requests.  Prefill-only and single-token
      sequences have no gaps and contribute nothing (all such runs report
      ``nan``);
    * ``tokens_per_sec`` — total generated tokens per second of ``duration``
      (defaulting to the last token time; ``0.0`` when no time elapsed);
    * ``tokens`` / ``requests`` — sample sizes behind the rates.

    Empty ``percentiles`` yields only the rate/count fields.
    """
    if len(token_times) != len(arrivals):
        raise ValueError("token_times and arrivals must have the same length")
    ttfts: list = []
    gaps: list = []
    total_tokens = 0
    last = 0.0
    for times, arrival in zip(token_times, arrivals):
        if not len(times):
            continue
        total_tokens += len(times)
        ttfts.append(float(times[0]) - float(arrival))
        last = max(last, float(times[-1]))
        for earlier, later in zip(times, times[1:]):
            gaps.append(float(later) - float(earlier))
    if duration is None:
        duration = last
    summary: Dict[str, float] = {}
    for label, values in (("ttft", ttfts), ("inter_token", gaps)):
        for key, value in latency_percentiles(values, percentiles).items():
            summary[f"{label}_{key}"] = value
    summary["tokens_per_sec"] = (
        total_tokens / float(duration) if duration and duration > 0 else 0.0
    )
    summary["tokens"] = float(total_tokens)
    summary["requests"] = float(len(arrivals))
    return summary


def slo_attainment(
    finish_times: Sequence[float], deadlines: Sequence[Optional[float]]
) -> float:
    """Fraction of deadline-carrying requests that finished in time.

    ``finish_times`` may contain ``nan`` for dropped requests (they count as
    misses when they carry a deadline); ``deadlines`` entries of ``None`` or
    ``nan`` are excluded from the population.  Returns ``nan`` when nothing
    carries a deadline.
    """
    finishes = np.asarray(finish_times, dtype=np.float64)
    dl = np.asarray(
        [float("nan") if d is None else float(d) for d in deadlines],
        dtype=np.float64,
    )
    if finishes.shape != dl.shape:
        raise ValueError("finish_times and deadlines must have the same length")
    has_deadline = ~np.isnan(dl)
    total = int(has_deadline.sum())
    if total == 0:
        return float("nan")
    met = np.count_nonzero(
        has_deadline & ~np.isnan(finishes) & (finishes <= dl)
    )
    return met / total

"""Placement: pluggable server-selection rules for the serving engine.

The seed engine hard-coded *argmin-free-clock* dispatch: every batch goes to
the server whose clock frees earliest.  On a homogeneous cluster that rule is
work-conserving and near-optimal, but on a **heterogeneous** cluster it has a
classic failure mode: an idle slow server always has the earliest free clock,
so it keeps winning batches that a busy fast server would nevertheless have
*finished* sooner.  A :class:`Placer` generalizes the selection while the
engine keeps its invariants (the placer only picks *which* server runs the
next batch; admission, batching and scheduling are unchanged).

Four disciplines ship with the engine:

* :class:`FreeClockPlacer` — argmin over free clocks; the seed behaviour and
  the compatibility default (an engine built with ``placer=None`` takes the
  inlined fast path, bit-identical to the seed simulator at ``num_servers=1``).
* :class:`LeastOutstandingWorkPlacer` — minimize the server's outstanding
  *work* (backlog seconds plus the estimated service seconds of the candidate
  batch).  Needs per-server speeds; on a mixed-speed cluster it stops feeding
  idle slow servers as soon as their service time exceeds a fast server's
  backlog-plus-service.
* :class:`WeightedSpeedPlacer` — earliest estimated *completion* (speed-
  weighted free clock): ``max(free_at, now) + batch_hint / speed``.  The
  scheduling-theory ECT rule; differs from least-work in charging the wait
  until the server frees, not just the work itself.
* :class:`ModelAffinityPlacer` — partitioned / affinity placement: each model
  is restricted to a subset of servers (e.g. models pinned to the accelerators
  holding their weights), with any placer as the rule within the subset.

Per-server speeds are expressed in requests/second at a reference batch size
(see :meth:`repro.serving.cluster.ServerSpec.speed`); only their *ratios*
matter to the placers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable


@dataclass
class PlacementContext:
    """What a placer sees when the engine is about to form a batch.

    ``time`` is the head-of-line arrival time of the request triggering the
    batch (the earliest possible service start).  ``free_at`` holds every
    server's clock (indexable by server id, including inactive servers);
    ``active`` lists the ids eligible for placement, ascending.  ``model`` is
    the model the batch will serve, ``pending`` counts requests known to be
    waiting, and ``batch_hint`` estimates how many will ride in the batch
    (pending requests arrived by ``time``, capped at ``max_batch``) — an
    estimate only, since the batch is formed *after* the server is chosen
    and later arrivals may still join it.
    """

    time: float
    free_at: Sequence[float]
    active: Sequence[int]
    model: str = ""
    pending: int = 0
    batch_hint: int = 1


@runtime_checkable
class Placer(Protocol):
    """Server-selection rule: return the server id for the next batch.

    The returned id must be a member of ``context.active``; the engine
    validates this and raises otherwise.
    """

    def place(self, context: PlacementContext) -> int:
        ...


class FreeClockPlacer:
    """Argmin over server free clocks (the seed rule, ties to lowest id)."""

    def place(self, context: PlacementContext) -> int:
        return min(context.active, key=context.free_at.__getitem__)


def _validated_speeds(speeds: Sequence[float]) -> List[float]:
    values = [float(s) for s in speeds]
    if not values:
        raise ValueError("speeds must be non-empty")
    if any(s <= 0 for s in values):
        raise ValueError("speeds must be positive (requests/second)")
    return values


class LeastOutstandingWorkPlacer:
    """Minimize outstanding work: backlog seconds + candidate batch seconds.

    ``score(s) = max(free_at[s] - now, 0) + batch_hint / speed[s]``: the
    total service-seconds the server would owe after accepting the batch.
    Unlike the free-clock rule, an idle slow server only wins when its
    service time for the batch undercuts a fast server's backlog plus
    service — so slow servers absorb overflow instead of stealing
    head-of-line work.  Ties prefer the faster server, then the lower id.
    """

    def __init__(self, speeds: Sequence[float]) -> None:
        self.speeds = _validated_speeds(speeds)

    def place(self, context: PlacementContext) -> int:
        now = context.time
        hint = max(context.batch_hint, 1)

        def score(server: int) -> Tuple[float, float, int]:
            speed = self.speeds[server]
            backlog = max(context.free_at[server] - now, 0.0)
            return (backlog + hint / speed, -speed, server)

        return min(context.active, key=score)


class WeightedSpeedPlacer:
    """Earliest estimated completion, speed-weighted (the ECT rule).

    ``score(s) = max(free_at[s], now) + batch_hint / speed[s]``: when the
    batch would *finish* if placed on ``s``.  Identical to least-work when
    every server is backlogged; differs for idle servers, whose idle-since
    gap costs nothing here (service cannot start before ``now`` anyway).
    Ties prefer the faster server, then the lower id.
    """

    def __init__(self, speeds: Sequence[float]) -> None:
        self.speeds = _validated_speeds(speeds)

    def place(self, context: PlacementContext) -> int:
        now = context.time
        hint = max(context.batch_hint, 1)

        def score(server: int) -> Tuple[float, float, int]:
            speed = self.speeds[server]
            return (max(context.free_at[server], now) + hint / speed, -speed, server)

        return min(context.active, key=score)


class ModelAffinityPlacer:
    """Partitioned placement: each model restricted to its affine servers.

    ``affinity`` maps model name to the server ids allowed to serve it
    (models absent from the map may use any server).  Within the allowed
    set, ``within`` decides (free-clock by default).  If none of a model's
    affine servers is currently active — e.g. the autoscaler parked them —
    the restriction is waived rather than stalling the queue, so requests
    are always serviceable.
    """

    def __init__(
        self,
        affinity: Dict[str, Sequence[int]],
        within: Optional[Placer] = None,
    ) -> None:
        self.affinity = {
            str(model): sorted({int(s) for s in servers})
            for model, servers in affinity.items()
        }
        self.within = within if within is not None else FreeClockPlacer()

    def place(self, context: PlacementContext) -> int:
        allowed = self.affinity.get(context.model)
        active: Sequence[int] = context.active
        if allowed is not None:
            restricted = [server for server in active if server in allowed]
            if restricted:
                active = restricted
        inner = PlacementContext(
            time=context.time,
            free_at=context.free_at,
            active=active,
            model=context.model,
            pending=context.pending,
            batch_hint=context.batch_hint,
        )
        return self.within.place(inner)

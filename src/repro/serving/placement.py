"""Placement: pluggable server-selection rules for the serving engine.

The seed engine hard-coded *argmin-free-clock* dispatch: every batch goes to
the server whose clock frees earliest.  On a homogeneous cluster that rule is
work-conserving and near-optimal, but on a **heterogeneous** cluster it has a
classic failure mode: an idle slow server always has the earliest free clock,
so it keeps winning batches that a busy fast server would nevertheless have
*finished* sooner.  A :class:`Placer` generalizes the selection while the
engine keeps its invariants (the placer only picks *which* server runs the
next batch; admission, batching and scheduling are unchanged).

Four disciplines ship with the engine:

* :class:`FreeClockPlacer` — argmin over free clocks; the seed behaviour and
  the compatibility default (an engine built with ``placer=None`` takes the
  inlined fast path, bit-identical to the seed simulator at ``num_servers=1``).
* :class:`LeastOutstandingWorkPlacer` — minimize the server's outstanding
  *work* (backlog seconds plus the estimated service seconds of the candidate
  batch).  Needs per-server speeds; on a mixed-speed cluster it stops feeding
  idle slow servers as soon as their service time exceeds a fast server's
  backlog-plus-service.
* :class:`WeightedSpeedPlacer` — earliest estimated *completion* (speed-
  weighted free clock): ``max(free_at, now) + batch_hint / speed``.  The
  scheduling-theory ECT rule; differs from least-work in charging the wait
  until the server frees, not just the work itself.
* :class:`ModelAffinityPlacer` — partitioned / affinity placement: each model
  is restricted to a subset of servers (e.g. models pinned to the accelerators
  holding their weights), with any placer as the rule within the subset.
* :class:`SpreadPlacer` — failure-domain-aware placement: wraps any placer
  and steers each batch toward the least-loaded *domain* (zone, falling back
  to rack, falling back to the server itself — see
  :class:`~repro.serving.cluster.ClusterTopology`) so replicas of a model's
  working set spread across domains and a single zone outage cannot strand
  the whole fleet's backlog.  ``max_domain_share`` optionally hard-bounds how
  much of the cluster backlog one domain may concentrate.
* :class:`PredictivePlacer` — telemetry-driven placement: instead of trusting
  nominal speeds, it forecasts each server's service capacity (EWMA over the
  windowed served-per-busy-second rates the
  :class:`~repro.serving.telemetry.TelemetryBus` aggregates) and its queue
  pressure trend, then places by forecasted completion.  This is the placer
  that notices a *degraded* server — a fault-plane slowdown leaves nominal
  speeds stale, but the telemetry trend shows the true current rate.

Per-server speeds are expressed in requests/second at a reference batch size
(see :meth:`repro.serving.cluster.ServerSpec.speed`); only their *ratios*
matter to the placers.  The speed-aware placers optionally take per-server
``estimators`` — callables mapping a batch size to estimated service seconds
(e.g. :meth:`repro.serving.cluster.ServerSpec.estimate_batch_seconds`) — in
which case scoring uses real batch-size-aware service-time estimates instead
of the scalar reference-batch speed (batching amortizes per-batch overhead,
so ``latency(b) / b`` falls with ``b``; a scalar speed misprices small and
large batches alike).  :meth:`repro.serving.cluster.ClusterEngine.
resolve_placer` wires spec-derived estimators into the named placers
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.cluster import ClusterTopology
    from repro.serving.telemetry import TelemetryBus


@dataclass
class PlacementContext:
    """What a placer sees when the engine is about to form a batch.

    ``time`` is the head-of-line arrival time of the request triggering the
    batch (the earliest possible service start).  ``free_at`` holds every
    server's clock (indexable by server id, including inactive servers);
    ``active`` lists the ids eligible for placement, ascending.  ``model`` is
    the model the batch will serve, ``pending`` counts requests known to be
    waiting, and ``batch_hint`` estimates how many will ride in the batch
    (pending requests arrived by ``time``, capped at ``max_batch``) — an
    estimate only, since the batch is formed *after* the server is chosen
    and later arrivals may still join it.  ``telemetry`` is the engine's
    :class:`~repro.serving.telemetry.TelemetryBus` when one is attached
    (``None`` otherwise) — windowed per-server history for placers that
    forecast rather than react (:class:`PredictivePlacer`).
    """

    time: float
    free_at: Sequence[float]
    active: Sequence[int]
    model: str = ""
    pending: int = 0
    batch_hint: int = 1
    telemetry: Optional["TelemetryBus"] = None


@runtime_checkable
class Placer(Protocol):
    """Server-selection rule: return the server id for the next batch.

    The returned id must be a member of ``context.active``; the engine
    validates this and raises otherwise.
    """

    def place(self, context: PlacementContext) -> int:
        ...


class FreeClockPlacer:
    """Argmin over server free clocks (the seed rule, ties to lowest id)."""

    def place(self, context: PlacementContext) -> int:
        return min(context.active, key=context.free_at.__getitem__)


def _validated_speeds(speeds: Sequence[float]) -> List[float]:
    values = [float(s) for s in speeds]
    if not values:
        raise ValueError("speeds must be non-empty")
    if any(s <= 0 for s in values):
        raise ValueError("speeds must be positive (requests/second)")
    return values


#: Per-server service-time estimator: batch size -> estimated seconds.
ServiceEstimator = Callable[[int], float]


class _SpeedScoredPlacer:
    """Shared scoring base: speeds plus optional batch-size-aware estimates."""

    def __init__(
        self,
        speeds: Sequence[float],
        estimators: Optional[Sequence[ServiceEstimator]] = None,
    ) -> None:
        self.speeds = _validated_speeds(speeds)
        if estimators is not None and len(estimators) != len(self.speeds):
            raise ValueError(
                f"got {len(estimators)} estimators for {len(self.speeds)} servers"
            )
        self.estimators = list(estimators) if estimators is not None else None

    def service_seconds(self, server: int, batch_size: int) -> float:
        """Estimated service seconds of a ``batch_size`` batch on ``server``.

        With estimators this is the real batch-size-aware estimate (per-batch
        overhead amortizes, so seconds-per-request falls as batches grow);
        without, the scalar reference-batch speed approximation.
        """
        if self.estimators is not None:
            return float(self.estimators[server](int(batch_size)))
        return batch_size / self.speeds[server]


class LeastOutstandingWorkPlacer(_SpeedScoredPlacer):
    """Minimize outstanding work: backlog seconds + candidate batch seconds.

    ``score(s) = max(free_at[s] - now, 0) + service_seconds(s, batch_hint)``:
    the total service-seconds the server would owe after accepting the
    batch.  Unlike the free-clock rule, an idle slow server only wins when
    its service time for the batch undercuts a fast server's backlog plus
    service — so slow servers absorb overflow instead of stealing
    head-of-line work.  Ties prefer the faster server, then the lower id.
    Pass per-server ``estimators`` for batch-size-aware service estimates
    instead of the scalar-speed approximation ``batch_hint / speed``.
    """

    def place(self, context: PlacementContext) -> int:
        now = context.time
        hint = max(context.batch_hint, 1)

        def score(server: int) -> Tuple[float, float, int]:
            backlog = max(context.free_at[server] - now, 0.0)
            return (
                backlog + self.service_seconds(server, hint),
                -self.speeds[server],
                server,
            )

        return min(context.active, key=score)


class WeightedSpeedPlacer(_SpeedScoredPlacer):
    """Earliest estimated completion, speed-weighted (the ECT rule).

    ``score(s) = max(free_at[s], now) + service_seconds(s, batch_hint)``:
    when the batch would *finish* if placed on ``s``.  Identical to
    least-work when every server is backlogged; differs for idle servers,
    whose idle-since gap costs nothing here (service cannot start before
    ``now`` anyway).  Ties prefer the faster server, then the lower id.
    Pass per-server ``estimators`` for batch-size-aware service estimates
    instead of the scalar-speed approximation ``batch_hint / speed``.
    """

    def place(self, context: PlacementContext) -> int:
        now = context.time
        hint = max(context.batch_hint, 1)

        def score(server: int) -> Tuple[float, float, int]:
            return (
                max(context.free_at[server], now)
                + self.service_seconds(server, hint),
                -self.speeds[server],
                server,
            )

        return min(context.active, key=score)


class PredictivePlacer(_SpeedScoredPlacer):
    """Forecast-driven placement from windowed telemetry trends.

    The instantaneous placers react to free clocks and *nominal* speeds; on
    a cluster whose servers degrade at run time (fault-plane slowdowns,
    thermal throttling) the nominal speed is stale and the free clock only
    shows damage already done.  This placer reads the engine's
    :class:`~repro.serving.telemetry.TelemetryBus` through the placement
    context and keeps, per server, an EWMA forecast over completed windows
    of

    * the **measured service rate** (served requests per busy second — the
      server's demonstrated capacity, robust to idleness), and
    * the **queue-depth trend** observed at that server's batch formations
      (a congestion signal that rises while a server falls behind).

    Placement minimizes forecasted completion::

        score(s) = max(free_at[s], now)
                 + service_seconds(s, hint) * (nominal_rate[s] / forecast_rate[s])
                 + depth_weight * depth_trend[s] / forecast_rate[s]

    i.e. the batch-size-aware estimate is *re-scaled by the measured
    degradation* and penalized by forecasted congestion.  Servers without
    telemetry history (cold start, no bus attached) fall back to nominal
    speeds — the placer then behaves exactly like
    :class:`WeightedSpeedPlacer`.

    ``alpha`` is the EWMA weight of the newest window.  Forecasts fold in
    incrementally (each window is visited once per server), so per-batch
    placement stays O(active servers).
    """

    def __init__(
        self,
        speeds: Sequence[float],
        estimators: Optional[Sequence[ServiceEstimator]] = None,
        alpha: float = 0.5,
        depth_weight: float = 0.1,
    ) -> None:
        super().__init__(speeds, estimators)
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if depth_weight < 0:
            raise ValueError("depth_weight must be >= 0")
        self.alpha = float(alpha)
        self.depth_weight = float(depth_weight)
        # server -> [last folded window, rate EWMA (nan = none), depth EWMA]
        self._trends: Dict[int, List[float]] = {}

    def _trend(
        self, bus: "TelemetryBus", server: int, now: float
    ) -> Tuple[float, float]:
        """(forecast rate, forecast depth) for one server at time ``now``.

        Folds completed windows into the per-server EWMA state; a state
        ahead of the bus (the bus was reset for a new run) starts over.
        """
        completed = min(bus.window_index(now) - 1, bus.last_window)
        state = self._trends.get(server)
        if state is None or state[0] > completed:
            state = self._trends[server] = [-1.0, float("nan"), 0.0]
        last = int(state[0])
        for window in range(last + 1, completed + 1):
            rate = bus.measured_rate(server, window)
            if rate == rate:  # an idle window carries no capacity signal
                previous = state[1]
                state[1] = (
                    rate
                    if previous != previous
                    else self.alpha * rate + (1 - self.alpha) * previous
                )
            depth = bus.mean_depth(server, window)
            state[2] = self.alpha * depth + (1 - self.alpha) * state[2]
        state[0] = float(completed)
        return state[1], state[2]

    def place(self, context: PlacementContext) -> int:
        bus = context.telemetry
        now = context.time
        hint = max(context.batch_hint, 1)

        def score(server: int) -> Tuple[float, float, int]:
            nominal = self.speeds[server]
            rate, depth = (
                self._trend(bus, server, now)
                if bus is not None
                else (float("nan"), 0.0)
            )
            if not rate > 0:  # nan or zero: no history yet, trust nominal
                rate = nominal
            estimate = self.service_seconds(server, hint) * (nominal / rate)
            pressure = self.depth_weight * depth / rate
            return (
                max(context.free_at[server], now) + estimate + pressure,
                -rate,
                server,
            )

        return min(context.active, key=score)


class SpreadPlacer:
    """Failure-domain-aware placement: spread load across zones/racks.

    Groups the active servers by failure domain (``topology.domain_of``),
    scores each domain by its *mean outstanding backlog per server*
    (``sum(max(free_at[s] - now, 0)) / len(servers)``), and restricts
    placement to the least-backlogged domain — ties prefer the domain with
    more active servers, then the lexically first name, so the choice is
    deterministic.  Within the chosen domain, ``within`` decides (free-clock
    by default), so any speed-aware placer becomes spread-aware by wrapping.

    ``max_domain_share`` (in ``(0, 1]``) additionally excludes any domain
    already holding more than that share of the *total* cluster backlog —
    a hard anti-concentration bound: even if a domain's per-server backlog
    looks cheap (it has many servers), it cannot keep absorbing work once
    it concentrates that fraction of the fleet's outstanding seconds.  The
    bound is waived when it would exclude every domain (an idle cluster has
    no backlog to share) and whenever only one domain is active — the
    placer never stalls the queue.
    """

    def __init__(
        self,
        topology: "ClusterTopology",
        within: Optional[Placer] = None,
        max_domain_share: Optional[float] = None,
    ) -> None:
        if max_domain_share is not None and not 0 < max_domain_share <= 1:
            raise ValueError("max_domain_share must be in (0, 1]")
        self.topology = topology
        self.within = within if within is not None else FreeClockPlacer()
        self.max_domain_share = (
            float(max_domain_share) if max_domain_share is not None else None
        )

    def place(self, context: PlacementContext) -> int:
        domains: Dict[str, List[int]] = {}
        for server in context.active:
            domains.setdefault(self.topology.domain_of(server), []).append(server)
        if len(domains) > 1:
            now = context.time
            backlog = {
                name: sum(
                    max(context.free_at[s] - now, 0.0) for s in servers
                )
                for name, servers in domains.items()
            }
            candidates = dict(domains)
            if self.max_domain_share is not None:
                total = sum(backlog.values())
                if total > 0:
                    bounded = {
                        name: servers
                        for name, servers in domains.items()
                        if backlog[name] / total <= self.max_domain_share
                    }
                    if bounded:  # waived rather than stalling the queue
                        candidates = bounded
            chosen = min(
                candidates,
                key=lambda name: (
                    backlog[name] / len(candidates[name]),
                    -len(candidates[name]),
                    name,
                ),
            )
            context = PlacementContext(
                time=context.time,
                free_at=context.free_at,
                active=candidates[chosen],
                model=context.model,
                pending=context.pending,
                batch_hint=context.batch_hint,
                telemetry=context.telemetry,
            )
        return self.within.place(context)


class ModelAffinityPlacer:
    """Partitioned placement: each model restricted to its affine servers.

    ``affinity`` maps model name to the server ids allowed to serve it
    (models absent from the map may use any server).  Within the allowed
    set, ``within`` decides (free-clock by default).  If none of a model's
    affine servers is currently active — e.g. the autoscaler parked them —
    the restriction is waived rather than stalling the queue, so requests
    are always serviceable.
    """

    def __init__(
        self,
        affinity: Dict[str, Sequence[int]],
        within: Optional[Placer] = None,
    ) -> None:
        self.affinity = {
            str(model): sorted({int(s) for s in servers})
            for model, servers in affinity.items()
        }
        self.within = within if within is not None else FreeClockPlacer()

    def place(self, context: PlacementContext) -> int:
        allowed = self.affinity.get(context.model)
        active: Sequence[int] = context.active
        if allowed is not None:
            restricted = [server for server in active if server in allowed]
            if restricted:
                active = restricted
        inner = PlacementContext(
            time=context.time,
            free_at=context.free_at,
            active=active,
            model=context.model,
            pending=context.pending,
            batch_hint=context.batch_hint,
            telemetry=context.telemetry,
        )
        return self.within.place(inner)
